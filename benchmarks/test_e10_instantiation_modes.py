"""E10 — Section 2: the "used" instantiation mode minimises the IL.

"All template entities used in the compilation are instantiated and
represented in the IL; unused member functions and static data members
are not instantiated unnecessarily, minimizing compilation time and the
size of the IL."

Regenerated as a USED-vs-ALL comparison over the Stack corpus and a
parameter sweep: instantiated member bodies, IL node counts, PDB sizes,
and front-end time.
"""

import time

import pytest

from repro.analyzer import analyze
from repro.cpp.instantiate import InstantiationMode
from repro.pdbfmt import write_pdb
from repro.workloads.stack import UNUSED_MEMBERS, USED_MEMBERS, compile_stack


def measure(mode):
    t0 = time.perf_counter()
    tree = compile_stack(mode)
    elapsed = time.perf_counter() - t0
    doc = analyze(tree)
    return {
        "tree": tree,
        "elapsed": elapsed,
        "il_nodes": tree.node_count(),
        "defined_bodies": sum(1 for r in tree.all_routines if r.defined),
        "pdb_bytes": len(write_pdb(doc)),
        "pdb_items": len(doc.items),
    }


@pytest.fixture(scope="module")
def used():
    return measure(InstantiationMode.USED)


@pytest.fixture(scope="module")
def all_mode():
    return measure(InstantiationMode.ALL)


def test_e10_used_benchmark(benchmark):
    tree = benchmark(compile_stack, InstantiationMode.USED)
    assert tree.find_routine("main")


def test_e10_all_benchmark(benchmark):
    tree = benchmark(compile_stack, InstantiationMode.ALL)
    assert tree.find_routine("main")


def test_e10_print_table(used, all_mode):
    print("\n--- regenerated §2 comparison: USED vs ALL instantiation ---")
    print(f"{'metric':<18} {'USED':>10} {'ALL':>10} {'ratio':>8}")
    for key in ("il_nodes", "defined_bodies", "pdb_bytes", "pdb_items"):
        u, a = used[key], all_mode[key]
        print(f"{key:<18} {u:>10} {a:>10} {u / a:>8.2f}")
    assert True


def test_e10_il_strictly_smaller(used, all_mode):
    assert used["il_nodes"] < all_mode["il_nodes"]
    assert used["defined_bodies"] < all_mode["defined_bodies"]
    assert used["pdb_bytes"] < all_mode["pdb_bytes"]


def test_e10_used_members_present_in_both(used, all_mode):
    for data in (used, all_mode):
        cls = data["tree"].find_class("Stack<int>")
        for name in USED_MEMBERS:
            r = next(x for x in cls.routines if x.name == name)
            assert r.defined


def test_e10_unused_members_only_in_all(used, all_mode):
    used_cls = used["tree"].find_class("Stack<int>")
    all_cls = all_mode["tree"].find_class("Stack<int>")
    for name in UNUSED_MEMBERS:
        assert not next(r for r in used_cls.routines if r.name == name).defined
        assert next(r for r in all_cls.routines if r.name == name).defined


def test_e10_declarations_identical(used, all_mode):
    """Used mode still *declares* every member — the saving is bodies."""
    used_cls = used["tree"].find_class("Stack<int>")
    all_cls = all_mode["tree"].find_class("Stack<int>")
    assert {r.name for r in used_cls.routines} == {r.name for r in all_cls.routines}
    assert [f.name for f in used_cls.fields] == [f.name for f in all_cls.fields]


def test_e10_savings_grow_with_unused_members():
    """Sweep: the more members a template has that main never touches,
    the bigger used-mode's saving."""
    ratios = []
    for extra in (0, 4, 8):
        header = ["int helper(int x) { return x; }",
                  "template <class T>", "class Wide {", "public:",
                  "    T used_one() { return 0; }"]
        for i in range(extra):
            # unused bodies carry call subtrees, so ALL mode pays for them
            header.append(
                f"    T unused_{i}() {{ return helper({i}) + helper({i}); }}"
            )
        header += ["};", "int main() { Wide<int> w; return w.used_one(); }"]
        src = "\n".join(header)
        from tests.util import compile_source

        u = compile_source(src, mode=InstantiationMode.USED).node_count()
        a = compile_source(src, mode=InstantiationMode.ALL).node_count()
        ratios.append(u / a)
    print(f"\nused/all IL-size ratios as unused members grow: {ratios}")
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[-1] < ratios[0]


def test_e10_engine_stats():
    from repro.workloads.stack import stack_frontend

    fe = stack_frontend(InstantiationMode.USED)
    fe.compile("TestStackAr.cpp")
    stats = fe.last_engine.stats
    assert stats["class_instantiations"] >= 2  # Stack<int>, vector<int>
    assert stats["routine_bodies_instantiated"] >= len(USED_MEMBERS)
