"""E4 — Figures 2 & 4: the PDT architecture and DUCTAPE hierarchy.

Figure 2's architecture is asserted structurally: each pipeline stage
consumes exactly the previous stage's output (front end -> IL ->
analyzer -> PDB -> DUCTAPE -> applications), with no stage reaching
around another.  Figure 4's DUCTAPE class hierarchy is asserted as the
exact inheritance tree.
"""

import pytest

from repro.analyzer import analyze
from repro.cpp.il import ILTree
from repro.ductape import (
    PDB,
    PdbClass,
    PdbFile,
    PdbItem,
    PdbMacro,
    PdbNamespace,
    PdbRoutine,
    PdbSimpleItem,
    PdbTemplate,
    PdbTemplateItem,
    PdbType,
)
from repro.ductape.items import PdbFatItem
from repro.pdbfmt.items import PdbDocument
from tests.util import compile_source

#: Figure 4, as (class, direct base) edges
FIGURE4_EDGES = [
    (PdbFile, PdbSimpleItem),
    (PdbItem, PdbSimpleItem),
    (PdbMacro, PdbItem),
    (PdbType, PdbItem),
    (PdbFatItem, PdbItem),
    (PdbTemplate, PdbFatItem),
    (PdbNamespace, PdbFatItem),
    (PdbTemplateItem, PdbFatItem),
    (PdbClass, PdbTemplateItem),
    (PdbRoutine, PdbTemplateItem),
]


@pytest.mark.parametrize("cls,base", FIGURE4_EDGES, ids=lambda c: getattr(c, "__name__", str(c)))
def test_e4_figure4_edge(cls, base):
    assert cls.__bases__ == (base,), (
        f"{cls.__name__} must derive directly (and only) from {base.__name__}"
    )


def test_e4_hierarchy_is_exactly_figure4(benchmark):
    """No extra classes sneak into the item hierarchy."""

    def leaves():
        out = set()
        stack = [PdbSimpleItem]
        while stack:
            c = stack.pop()
            out.add(c)
            stack.extend(c.__subclasses__())
        return out

    classes = benchmark(leaves)
    names = {c.__name__ for c in classes}
    assert names == {
        "PdbSimpleItem", "PdbFile", "PdbItem", "PdbMacro", "PdbType",
        "PdbFatItem", "PdbTemplate", "PdbNamespace", "PdbTemplateItem",
        "PdbClass", "PdbRoutine",
        # repro extension beyond Figure 4: frontend error records
        "PdbFerr",
    }


def test_e4_pipeline_stage_types():
    """Figure 2: source -> (front end) -> IL -> (IL analyzer) -> PDB
    -> (DUCTAPE) -> applications."""
    tree = compile_source("int main() { return 0; }")
    assert isinstance(tree, ILTree)  # front end output
    doc = analyze(tree)
    assert isinstance(doc, PdbDocument)  # analyzer output
    pdb = PDB(doc)
    assert isinstance(pdb.items()[0], PdbSimpleItem)  # DUCTAPE objects


def test_e4_ductape_reads_pdb_text_not_il():
    """DUCTAPE is an API over PDB *files*: a PDB round-tripped through
    text behaves identically (proving no hidden IL dependence)."""
    tree = compile_source(
        "class C { public: int m() { return helper(); } int helper() { return 1; } };\n"
        "int main() { C c; return c.m(); }"
    )
    direct = PDB(analyze(tree))
    via_text = PDB.from_text(direct.to_text())
    assert [i.fullName() for i in direct.items()] == [
        i.fullName() for i in via_text.items()
    ]
    m1 = direct.findRoutine("C::m")
    m2 = via_text.findRoutine("C::m")
    assert [c.call().name() for c in m1.callees()] == [
        c.call().name() for c in m2.callees()
    ]


def test_e4_analyzer_separate_traversals():
    """Section 3.1: separate traversals allow selection of the
    constructs to be reported."""
    from repro.analyzer import ILAnalyzer

    tree = compile_source(
        "#define M 1\nnamespace n { class C { public: void f() { } }; }\n"
        "template <class T> T id2(T x) { return x; }\n"
        "int main() { n::C c; c.f(); return id2(M); }"
    )
    all_prefixes = {"so", "te", "na", "cl", "ro", "ty", "ma"}
    for selected in (("so",), ("so", "ro"), ("so", "te", "ma")):
        doc = ILAnalyzer(tree, passes=selected).run()
        present = {i.prefix for i in doc.items}
        # demand-created reference targets may add 'ty'/'cl'/'te' items,
        # but never passes that were deselected *and* unreferenced
        for p in all_prefixes - set(selected) - {"ty", "cl", "te", "so"}:
            assert p not in present, f"pass {p} ran though deselected"


def test_e4_applications_consume_ductape_only(stack_pdb):
    """TAU and SILOON operate on the PDB through DUCTAPE (Figure 2's
    right half): both run from a text-round-tripped PDB."""
    from repro.siloon.generator import generate_bindings
    from repro.tau.selector import select_instrumentation

    fresh = PDB.from_text(stack_pdb.to_text())
    assert select_instrumentation(fresh)
    assert generate_bindings(fresh).classes
