"""E16 — fault-tolerance: recovery-mode overhead and keep-going builds.

Two questions the robustness work must answer quantitatively:

* **Clean-path overhead** — compiling an error-free workload with
  ``--keep-going-errors`` enabled must produce *byte-identical* PDBs and
  stay within a few percent of the fatal-errors pipeline (the recovery
  machinery is all on error paths; the clean path only swaps exception
  escalation for a flag check).  The issue budget is <5%; the assert
  uses a generous CI guard since sub-second timings jitter, and prints
  the measured ratio for the record.
* **Keep-going yield** — on a workload with broken TUs, ``-k`` must
  still deliver the full merge of every healthy TU (8/10 here), and the
  damage must be inventoried in the stats report.

Run with ``-s`` to see the timing table.
"""

import time
from pathlib import Path

import pytest

from repro.tools.pdbbuild import BuildOptions, build
from repro.workloads.synth import SynthSpec, generate

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests import faults  # noqa: E402

SPEC = SynthSpec(
    n_plain_classes=6,
    methods_per_class=4,
    n_templates=4,
    instantiations_per_template=3,
    n_translation_units=8,
)

#: CI guard for the <5% recovery-overhead budget: wall-clock asserts on
#: shared runners are noisy, so fail only on gross regression; the
#: printed ratio is the tracked number.
OVERHEAD_GUARD = 1.5


@pytest.fixture(scope="module")
def corpus():
    return generate(SPEC)


def _bench(mains, files, options, repeats=3):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out, _ = build(mains, options, files=files)
        best = min(best, time.perf_counter() - t0)
    return out, best


class TestE16RecoveryOverhead:
    def test_clean_path_identical_and_cheap(self, corpus):
        fatal, t_fatal = _bench(corpus.main_files, corpus.files, BuildOptions())
        recov, t_recov = _bench(
            corpus.main_files, corpus.files, BuildOptions(keep_going_errors=50)
        )
        # recovery mode changes the fingerprint, not the clean output:
        # byte-identical PDBs (no ferr items on an error-free workload)
        assert recov.to_text() == fatal.to_text()
        assert not recov.getErrorVec()
        ratio = t_recov / t_fatal
        print(
            f"\nE16 clean-path overhead: fatal {t_fatal * 1e3:.1f} ms, "
            f"recovery {t_recov * 1e3:.1f} ms, ratio {ratio:.3f} "
            f"(budget 1.05, CI guard {OVERHEAD_GUARD})"
        )
        assert ratio < OVERHEAD_GUARD


class TestE16KeepGoingYield:
    def test_broken_tus_quarantined_healthy_tus_delivered(self, tmp_path):
        corpus = generate(SynthSpec(n_translation_units=10))
        root = tmp_path / "src"
        faults.write_corpus(root, corpus.files)
        mains = [str(root / m) for m in corpus.main_files]
        faults.break_tu(Path(mains[2]))
        faults.truncate_file(Path(mains[7]))

        t0 = time.perf_counter()
        merged, stats = build(mains, BuildOptions(), jobs=2, keep_going=True)
        wall = time.perf_counter() - t0

        assert len(stats.failures) == 2
        assert len(stats.tus) == 8
        good = [m for i, m in enumerate(mains) if i not in (2, 7)]
        ref, _ = build(good, BuildOptions(), jobs=2)
        assert merged.to_text() == ref.to_text()
        print(
            f"\nE16 keep-going: {len(stats.tus)}/10 TUs merged, "
            f"{len(stats.failures)} quarantined, {wall * 1e3:.1f} ms"
        )
