"""Shared fixtures for the experiment benches (see DESIGN.md §4).

Each ``test_eN_*`` module regenerates one of the paper's tables/figures:
it prints the regenerated artifact (run with ``-s`` to see it) and
asserts the *shape* the paper reports.  ``pytest benchmarks/
--benchmark-only`` also times the pipeline stages involved.
"""

import pytest

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.workloads.pooma import compile_pooma
from repro.workloads.stack import compile_stack


@pytest.fixture(scope="session")
def stack_tree():
    return compile_stack()


@pytest.fixture(scope="session")
def stack_pdb(stack_tree) -> PDB:
    return PDB(analyze(stack_tree))


@pytest.fixture(scope="session")
def pooma_tree():
    return compile_pooma()


@pytest.fixture(scope="session")
def pooma_pdb(pooma_tree) -> PDB:
    return PDB(analyze(pooma_tree))
