"""E11 — Section 2: the EDG automatic (prelinker) instantiation scheme.

"Compiling source files generates object files and template information
files indicating potential instantiations.  At link time ...
instantiations are assigned to instantiation request files.  The source
files needed for instantiation are then re-compiled.  These steps
continue until all templates are instantiated.  Unfortunately, this
process does not record and instantiate templates in the IL, where
information is accessible by an analysis tool."

Regenerated: the closure loop's convergence record on multi-TU corpora,
and the headline comparison — IL-visible instantiations under the
automatic scheme (zero) versus used mode (everything PDT needs).
"""

import pytest

from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.cpp.prelink import PrelinkSimulator
from repro.workloads.synth import SynthSpec, generate


def corpus(n_tus=3, n_templates=4):
    return generate(
        SynthSpec(
            n_plain_classes=1,
            n_templates=n_templates,
            instantiations_per_template=2,
            n_translation_units=n_tus,
            call_depth=3,
        )
    )


def prelink_frontend(files):
    fe = Frontend(FrontendOptions(instantiation_mode=InstantiationMode.PRELINK))
    fe.register_files(files)
    return fe


def used_frontend(files):
    fe = Frontend(FrontendOptions(instantiation_mode=InstantiationMode.USED))
    fe.register_files(files)
    return fe


@pytest.fixture(scope="module")
def result():
    c = corpus()
    sim = PrelinkSimulator(prelink_frontend(c.files))
    return sim.run(c.main_files), c


def test_e11_prelink_benchmark(benchmark):
    c = corpus()

    def run():
        return PrelinkSimulator(prelink_frontend(c.files)).run(c.main_files)

    res = benchmark(run)
    assert res.total_instantiations > 0


def test_e11_print_convergence(result):
    res, _ = result
    print("\n--- regenerated §2: prelinker closure loop ---")
    print(f"{'round':>6} {'requests assigned':>18} {'recompiled TUs':>15}")
    for r in res.rounds:
        print(f"{r.round_no:>6} {r.new_requests:>18} {', '.join(r.recompiled):>15}")
    print(f"total instantiations: {res.total_instantiations}, "
          f"recompiles: {res.total_recompiles}")
    assert res.rounds


def test_e11_converges(result):
    res, c = result
    assert 1 <= res.iterations <= 10
    assert res.total_instantiations >= c.expected_class_instantiations


def test_e11_il_is_empty_of_instantiations(result):
    """The paper's point, measured."""
    res, _ = result
    assert res.il_instantiation_count() == 0


def test_e11_used_mode_il_is_populated():
    c = corpus()
    fe = used_frontend(c.files)
    visible = 0
    for f in c.main_files:
        tree = fe.compile(f)
        visible += sum(
            1
            for x in tree.all_classes
            if x.is_instantiation and x.flags.get("il_visible", True)
        )
    assert visible >= c.expected_class_instantiations


def test_e11_pdb_comparison():
    """End to end: the PDB an analysis tool sees."""
    c = corpus(n_tus=1)
    pre_tree = prelink_frontend(c.files).compile(c.main_files[0])
    used_tree = used_frontend(c.files).compile(c.main_files[0])
    pre_doc = analyze(pre_tree)
    used_doc = analyze(used_tree)
    pre_instantiated = [i for i in pre_doc.by_prefix("cl") if "<" in i.name]
    used_instantiated = [i for i in used_doc.by_prefix("cl") if "<" in i.name]
    print(f"\nPDB class instantiations: prelink={len(pre_instantiated)}, "
          f"used={len(used_instantiated)}")
    assert not pre_instantiated
    assert used_instantiated


def test_e11_recompile_cost_grows_with_tus():
    recompiles = {}
    for k in (1, 2, 4):
        c = corpus(n_tus=k)
        res = PrelinkSimulator(prelink_frontend(c.files)).run(c.main_files)
        recompiles[k] = res.total_recompiles
    print(f"\nprelinker recompiles by TU count: {recompiles}")
    assert recompiles[4] >= recompiles[1]
