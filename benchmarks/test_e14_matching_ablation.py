"""E14 — ablation of the paper's provenance mechanism (Section 3.1).

The IL Analyzer recovers each instantiation's originating template by
*scanning a template list for location containment* — because "the IL
subtrees indicate that an entity has been instantiated, not the template
from which it is derived."  Our front end, unlike EDG's IL, *does* know
the ground truth (``template_of``), which makes the mechanism testable:

* on every corpus, the location matcher must agree with ground truth for
  all ordinary instantiations (class + routine),
* it must fail exactly where the paper says it fails — explicit
  specializations, whose locations lie outside any template's span,
* the fix the paper proposes ("template IDs would have to be included in
  the IL constructs ... which would require modification of the EDG
  Front End") is quantified: with ground-truth links, specialization
  provenance is 100%.
"""

import pytest

from repro.analyzer.templatematch import TemplateIndex
from repro.cpp.instantiate import template_primary
from repro.workloads.pooma import compile_pooma
from repro.workloads.stack import compile_stack
from repro.workloads.synth import SynthSpec, compile_synth
from tests.util import compile_source


def agreement(tree):
    """(matched-correctly, total, details) over all instantiations with
    ground truth, excluding specializations."""
    index = TemplateIndex(tree.all_templates)
    entities = []
    for c in tree.all_classes:
        if c.is_instantiation and not c.is_specialization and c.template_of is not None:
            entities.append((c, c.template_of))
    for r in tree.all_routines:
        if r.is_instantiation and not r.is_specialization:
            truth = r.template_of
            if truth is None and r.parent_class is not None:
                truth = r.parent_class.template_of
            if truth is not None:
                entities.append((r, truth))
    good = 0
    mismatches = []
    for entity, truth in entities:
        matched = index.match(entity.location)
        # in-class members' ground truth may be the class template while
        # the matcher finds the same template — compare primaries
        ok = matched is not None and (
            matched is truth
            or template_primary(matched) is template_primary(truth)
        )
        if ok:
            good += 1
        else:
            mismatches.append((entity.full_name, truth.name, getattr(matched, "name", None)))
    return good, len(entities), mismatches


CORPORA = {
    "stack": compile_stack,
    "pooma": compile_pooma,
    "synth": lambda: compile_synth(
        SynthSpec(n_templates=4, instantiations_per_template=3, call_depth=4)
    )[0],
}


@pytest.mark.parametrize("name", sorted(CORPORA))
def test_e14_matcher_agrees_with_ground_truth(name):
    good, total, mismatches = agreement(CORPORA[name]())
    assert total > 0
    assert good == total, f"{name}: mismatches {mismatches[:5]}"


def test_e14_matching_benchmark(benchmark):
    tree = compile_pooma()
    index = TemplateIndex(tree.all_templates)
    targets = [c for c in tree.all_classes if c.is_instantiation]

    def run():
        return [index.match(c.location) for c in targets]

    results = benchmark(run)
    assert all(r is not None for r in results)


SPEC_SRC = (
    "template <class T> class Box { public: T get() { return v_; } T v_; };\n"
    "template <> class Box<char> { public: char get() { return 'c'; } };\n"
    "void f() { Box<int> a; Box<char> b; a.get(); b.get(); }\n"
)


def test_e14_specialization_failure_is_exact():
    """Location matching fails on specializations and ONLY there."""
    tree = compile_source(SPEC_SRC)
    index = TemplateIndex(tree.all_templates)
    ordinary = tree.find_class("Box<int>")
    spec = tree.find_class("Box<char>")
    assert index.match(ordinary.location) is not None
    assert index.match(spec.location) is None  # the paper's limitation
    # ground truth (the paper's proposed EDG modification) would fix it:
    assert spec.template_of is not None
    assert spec.template_of.name == "Box"


def test_e14_print_report():
    print("\n--- location-matching vs ground truth ---")
    print(f"{'corpus':<8} {'agree':>6} {'total':>6}")
    for name, make in sorted(CORPORA.items()):
        good, total, _ = agreement(make())
        print(f"{name:<8} {good:>6} {total:>6}")
    tree = compile_source(SPEC_SRC)
    index = TemplateIndex(tree.all_templates)
    spec = tree.find_class("Box<char>")
    recoverable = "yes" if spec.template_of is not None else "no"
    print(f"specialization: matcher=FAIL (per paper), ground truth recoverable={recoverable}")
    assert True


def test_e14_innermost_wins_on_nesting():
    """A memfunc template nested (by span) near its class template: the
    matcher must pick the innermost covering span."""
    src = (
        "template <class T> class Outer {\n"
        "public:\n"
        "    T inline_member() { return 0; }\n"
        "};\n"
        "template <class T> class Other { public: T g() { return 1; } };\n"
        "int f() { Outer<int> o; Other<int> q; return o.inline_member() + q.g(); }\n"
    )
    tree = compile_source(src)
    index = TemplateIndex(tree.all_templates)
    member = next(r for r in tree.all_routines if r.name == "inline_member")
    assert index.match(member.location).name == "Outer"
    g = next(r for r in tree.all_routines if r.name == "g")
    assert index.match(g.location).name == "Other"
