"""E13 — Section 6: the Fortran 90 extension, and the uniformity thesis.

"In general, if the Program Database Toolkit can make a language-
specific parse tree accessible in a uniform manner, static analysis
tools and other applications can be built that process different
languages in a uniform and consistent way."

Regenerated: the Fortran 90 front end feeds the *unchanged* IL
Analyzer, PDB format, DUCTAPE, pdb* tools, TAU instrumentation, and the
execution simulator; a merged C++ + Fortran program database works; the
paper's construct mapping (module→namespace, derived type→class,
interface→aliased routines, entry/exit points) is asserted item by item.
"""

import pytest

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.tools.pdbconv import check_pdb
from repro.tools.pdbtree import render_call_tree
from repro.workloads.fortran90 import compile_heat, fortran_files


@pytest.fixture(scope="module")
def f90_tree():
    return compile_heat()


@pytest.fixture(scope="module")
def f90_pdb(f90_tree):
    return PDB(analyze(f90_tree))


def test_e13_pipeline_benchmark(benchmark):
    tree = benchmark(compile_heat)
    assert tree.all_routines


def test_e13_construct_mapping_table(f90_pdb):
    """The Section 6 mapping, regenerated as a table (run with -s)."""
    rows = [
        ("module", "namespace (na)", [n.fullName() for n in f90_pdb.getNamespaceVec()]),
        ("derived type", "class (cl)", [c.fullName() for c in f90_pdb.getClassVec()]),
        ("subroutine/function", "routine (ro)",
         [r.fullName() for r in f90_pdb.getRoutineVec()][:5] + ["..."]),
        ("interface", "routines with aliases (ralias)",
         [r.fullName() for r in f90_pdb.getRoutineVec() if r.raw.get("ralias")]),
    ]
    print("\n--- regenerated §6 construct mapping ---")
    for fortran, pdb_kind, examples in rows:
        print(f"{fortran:<22} -> {pdb_kind:<30} {', '.join(examples)}")
    assert f90_pdb.getNamespaceVec() and f90_pdb.getClassVec()


def test_e13_derived_type_components(f90_pdb):
    grid = f90_pdb.findClass("grid_mod::grid")
    members = {m.name(): m for m in grid.dataMembers()}
    assert set(members) == {"nx", "ny", "cells", "spacing"}
    assert members["cells"].type().name() == "float [] *"


def test_e13_interface_aliases(f90_pdb):
    aliased = [r for r in f90_pdb.getRoutineVec() if r.raw.get("ralias")]
    assert {r.name() for r in aliased} == {"residual_scalar", "residual_field"}
    assert all(r.raw.get("ralias").words == ["residual"] for r in aliased)


def test_e13_entry_exit_points(f90_pdb):
    """'TAU must know the locations of Fortran routine entry and exit
    points to insert profiling instrumentation.'"""
    check = f90_pdb.findRoutine("heat_mod::check_convergence")
    assert check.raw.get_location("rfexec") is not None
    assert len(check.raw.get_all("rexit")) == 2  # return + end


def test_e13_uniform_tools(f90_pdb):
    """The unchanged C++ tools process the Fortran PDB."""
    assert check_pdb(f90_pdb) == []
    out = render_call_tree(f90_pdb, "heat_app")
    print("\n--- pdbtree on a Fortran program (unchanged tool) ---")
    print(out)
    assert "`--> heat_mod::heat_step" in out
    assert "grid_mod::cell_value" in out


def test_e13_uniform_instrumentation(f90_pdb, benchmark):
    from repro.tau.fortran_instrumentor import instrument_fortran_sources

    results = benchmark(instrument_fortran_sources, f90_pdb, fortran_files())
    total = sum(len(r.routines_instrumented) for r in results.values())
    assert total == len(
        [r for r in f90_pdb.getRoutineVec() if r.linkage() == "fortran"]
    )


def test_e13_uniform_dynamic_analysis(f90_pdb):
    """One simulator, two languages: profile the heat solver."""
    from repro.tau.machine import CostModel
    from repro.tau.profile import exclusive_ranking
    from repro.tau.simulate import ExecutionSimulator, WorkloadSpec

    n = 64 * 64
    cm = (
        CostModel(default_cycles=10.0)
        .add("stencil", 9.0)
        .add("cell_value", 3.0)
        .add("grid_size", 2.0)
    )
    spec = WorkloadSpec(
        entry="heat_app",
        cost=cm,
        pair_counts={
            ("heat_app", "heat_mod::heat_step"): 100,
            ("heat_mod::heat_step", "heat_mod::stencil"): n,
            ("heat_mod::residual_field", "heat_mod::residual_scalar"): n,
        },
    )
    profiler = ExecutionSimulator(f90_pdb, spec).run()
    ranking = exclusive_ranking(profiler)
    assert "stencil" in ranking[0][0] or "cell_value" in ranking[0][0]
    profiler.profile(0).check_consistency()


def test_e13_cross_language_merge(f90_pdb):
    """A C++ PDB and a Fortran PDB merge into one program database."""
    from repro.workloads.stack import compile_stack

    cpp_pdb = PDB(analyze(compile_stack()))
    merged = PDB.from_text(cpp_pdb.to_text())
    stats = merged.merge(PDB.from_text(f90_pdb.to_text()))
    assert stats.items_added > 0
    assert merged.findClass("Stack<int>") is not None  # C++ survives
    assert merged.findClass("grid_mod::grid") is not None  # Fortran joins
    links = {r.linkage() for r in merged.getRoutineVec()}
    assert {"C++", "fortran"} <= links
    assert check_pdb(merged) == []


def test_e13_mixed_language_call_graph(f90_pdb):
    """DUCTAPE's call tree works on the merged multi-language PDB."""
    from repro.workloads.stack import compile_stack

    merged = PDB(analyze(compile_stack()))
    merged.merge(PDB.from_text(f90_pdb.to_text()))
    out_cpp = render_call_tree(merged, "main")
    out_f90 = render_call_tree(merged, "heat_app")
    assert "Stack<int>::push" in out_cpp
    assert "heat_mod::heat_step" in out_f90


# -- the Java half of Section 6 ------------------------------------------------


@pytest.fixture(scope="module")
def java_pdb():
    from repro.workloads.javasim import compile_nbody

    return PDB(analyze(compile_nbody()))


def test_e13_java_pipeline_benchmark(benchmark):
    from repro.workloads.javasim import compile_nbody

    tree = benchmark(compile_nbody)
    assert tree.all_routines


def test_e13_java_construct_mapping(java_pdb):
    """Packages -> namespaces, classes/interfaces -> classes, instance
    methods virtual (Java's dispatch model made explicit in the PDB)."""
    assert {n.name() for n in java_pdb.getNamespaceVec()} == {"math", "sim"}
    force = java_pdb.findClass("sim::Force")
    assert all(m.isPureVirtual() for m in force.memberFunctions())
    dot = java_pdb.findRoutine("math::Vector3::dot")
    assert dot.linkage() == "java" and dot.isVirtual()


def test_e13_java_uniform_tools(java_pdb):
    from repro.tools.pdbconv import check_pdb

    assert check_pdb(java_pdb) == []
    out = render_call_tree(java_pdb, "main")
    print("\n--- pdbtree on a Java program (unchanged tool) ---")
    print(out)
    assert "sim::Simulation::step" in out
    assert "(VIRTUAL)" in out  # interface dispatch


def test_e13_three_language_database(f90_pdb, java_pdb):
    """The paper's closing thesis, end to end: one program database,
    three languages, one tool set."""
    from repro.tools.pdbconv import check_pdb
    from repro.workloads.stack import compile_stack

    merged = PDB(analyze(compile_stack()))
    merged.merge(PDB.from_text(f90_pdb.to_text()))
    merged.merge(PDB.from_text(java_pdb.to_text()))
    by_lang = {}
    for r in merged.getRoutineVec():
        by_lang.setdefault(r.linkage(), []).append(r.fullName())
    print("\n--- one PDB, three languages ---")
    for lang, names in sorted(by_lang.items()):
        print(f"  {lang:<8} {len(names):>3} routines, e.g. {names[0]}")
    assert {"C++", "fortran", "java"} <= set(by_lang)
    assert check_pdb(merged) == []
