"""E18 — pdbcheck throughput and precision.

Not a paper table: the static-analysis pass suite is this repro's
extension of the paper's derived-structure walks (Section 3.3), so the
claim to defend is *it costs about what the walks cost*.  Gates:

* whole-suite checker runtime stays under 2x the pdbtree walk
  (inclusion + class + call trees) on the E12 synthetic corpora;
* zero findings on the clean corpora (no false positives);
* precision = recall = 1.0 on the seeded-defect corpus
  (:mod:`repro.workloads.defects` ground truth);
* per-check wall time is visible in the pdbbuild stats document.
"""

import time

from repro.analyzer import analyze
from repro.check import run_checks
from repro.cpp import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.tools.pdbmerge import merge_pdbs
from repro.tools.pdbtree import (
    render_call_tree,
    render_class_tree,
    render_inclusion_tree,
)
from repro.workloads.defects import EXPECTED, compile_defects
from repro.workloads.synth import SynthSpec, generate

SIZES = [4, 16, 48]


def merged_synth_pdb(n: int, tus: int = 3) -> PDB:
    """An E12-shaped multi-TU corpus, compiled per TU and merged."""
    spec = SynthSpec(
        n_plain_classes=n,
        methods_per_class=4,
        n_templates=max(1, n // 4),
        instantiations_per_template=2,
        n_translation_units=tus,
    )
    corpus = generate(spec)
    pdbs = []
    for main in corpus.main_files:
        fe = Frontend(FrontendOptions())
        fe.register_files(corpus.files)
        pdbs.append(PDB(analyze(fe.compile(main))))
    merged, _stats = merge_pdbs(pdbs)
    return merged


def _min_of_3(fn) -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def walk_all_trees(pdb: PDB) -> int:
    return (
        len(render_inclusion_tree(pdb))
        + len(render_class_tree(pdb))
        + len(render_call_tree(pdb))
    )


def test_e18_checker_vs_tree_walk_budget():
    """The whole check suite must cost < 2x the pdbtree walks.

    Gated per size for the non-trivial corpora and on the aggregate over
    the whole series; the smallest corpus is reported but not gated
    alone — below a millisecond the suite's fixed pass overhead (five
    passes, two SCC condensations) dominates both sides of the ratio.
    """
    print("\n--- E18: pdbcheck runtime vs pdbtree walk (min of 3) ---")
    print(f"{'classes':>8} {'walk ms':>9} {'check ms':>9} {'ratio':>6}")
    total_walk = total_check = 0.0
    for n in SIZES:
        pdb = merged_synth_pdb(n)
        walk_s = _min_of_3(lambda: walk_all_trees(pdb))
        check_s = _min_of_3(lambda: run_checks(pdb))
        total_walk += walk_s
        total_check += check_s
        ratio = check_s / walk_s if walk_s else float("inf")
        print(f"{n:>8} {walk_s * 1e3:>9.2f} {check_s * 1e3:>9.2f} {ratio:>6.2f}")
        if n >= 16:
            assert check_s < 2 * walk_s, (
                f"n={n}: check suite {check_s * 1e3:.2f} ms exceeds "
                f"2x tree walk {walk_s * 1e3:.2f} ms"
            )
    assert total_check < 2 * total_walk, (
        f"aggregate: check suite {total_check * 1e3:.2f} ms exceeds "
        f"2x tree walk {total_walk * 1e3:.2f} ms over the E12 series"
    )


def test_e18_clean_corpora_have_zero_findings():
    """No false positives on the clean synthetic corpora."""
    for n in SIZES:
        report = run_checks(merged_synth_pdb(n))
        assert report.findings == [], [f.render() for f in report.findings]


def test_e18_precision_recall_on_seeded_defects():
    """Every planted defect found, nothing else: P = R = 1.0."""
    pdb, _stats = compile_defects()
    report = run_checks(pdb)
    got: dict[str, set[str]] = {}
    for f in report.findings:
        got.setdefault(f.rule.id, set()).add(f.item)
    true_pos = sum(len(got.get(r, set()) & items) for r, items in EXPECTED.items())
    n_got = sum(len(v) for v in got.values())
    n_exp = sum(len(v) for v in EXPECTED.values())
    precision = true_pos / n_got
    recall = true_pos / n_exp
    print(f"\n--- E18: precision {precision:.2f}  recall {recall:.2f} ---")
    assert precision == 1.0 and recall == 1.0, (got, EXPECTED)


def test_e18_per_check_wall_time_in_stats():
    """pdbbuild --check surfaces per-check wall time (stats + spans)."""
    from repro.tools.pdbbuild import BuildOptions, build
    from repro.workloads.defects import DEFECT_SOURCES, defect_files

    _merged, stats = build(
        list(DEFECT_SOURCES), BuildOptions(), files=defect_files(),
        checks="all", trace=True,
    )
    d = stats.to_dict()
    timings = {name: c["wall_s"] for name, c in d["check"]["checks"].items()}
    assert timings and all(v >= 0 for v in timings.values())
    check_spans = [s for s in stats.trace_spans if s.cat == "check"]
    assert {s.name for s in check_spans} == {f"check.{n}" for n in timings}


def test_e18_check_benchmark(benchmark):
    pdb = merged_synth_pdb(16)
    report = benchmark(run_checks, pdb)
    assert report.findings == []
