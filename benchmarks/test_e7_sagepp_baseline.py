"""E7 — Section 4.1's baseline comparison: Sage++ vs PDT.

"Using PDT's predecessor (Sage++), automatic instrumentation of POOMA
code had been attempted with TAU, but difficulties were encountered in
parsing POOMA's complicated template entities.  PDT's use of the EDG
Front End eliminated the C++ parsing problems."

Regenerated as a quantitative sweep: corpora of increasing template
density, extraction recall of each tool against ground truth.  The
expected shape: PDT stays at 100% while the Sage++-style extractor
degrades monotonically-ish and bottoms out on the POOMA corpus.
"""

import pytest

from repro.baselines.sagepp import SageExtractor, extraction_accuracy
from repro.workloads.pooma import compile_pooma, pooma_files
from repro.workloads.synth import SynthSpec, compile_synth

#: sweep: (label, spec) with rising template share
SWEEP = [
    ("plain", SynthSpec(n_plain_classes=8, n_templates=0, call_depth=0)),
    ("light", SynthSpec(n_plain_classes=6, n_templates=2, call_depth=2)),
    ("medium", SynthSpec(n_plain_classes=4, n_templates=4, call_depth=4)),
    ("heavy", SynthSpec(n_plain_classes=2, n_templates=6, call_depth=6)),
    ("extreme", SynthSpec(n_plain_classes=0, n_templates=8, call_depth=8,
                          instantiations_per_template=3)),
]


def ground_truth(tree) -> set[str]:
    return {r.name for r in tree.all_routines if r.defined}


def pdt_recall(tree) -> float:
    """PDT's own recall is 1.0 by construction — the front end *is* the
    ground truth source — so we verify completeness differently: every
    instantiation requested by the corpus exists and every used body
    was extracted."""
    missing = [
        r for r in tree.all_routines
        if r.used and not r.defined and r.parent_class is not None
    ]
    return 0.0 if missing else 1.0


@pytest.fixture(scope="module")
def sweep_results():
    ext = SageExtractor()
    rows = []
    for label, spec in SWEEP:
        tree, corpus = compile_synth(spec)
        truth = ground_truth(tree)
        res = ext.extract(corpus.files)
        acc = extraction_accuracy(res, truth)
        rows.append((label, acc.recall, pdt_recall(tree), res.parse_failures))
    return rows


def test_e7_sweep_benchmark(benchmark):
    ext = SageExtractor()
    _, corpus = compile_synth(SWEEP[2][1])
    res = benchmark(ext.extract, corpus.files)
    assert res.routines or res.parse_failures


def test_e7_print_table(sweep_results):
    print("\n--- regenerated §4.1 comparison: extraction recall ---")
    print(f"{'corpus':<10} {'Sage++ recall':>14} {'PDT recall':>12} {'Sage++ failures':>16}")
    for label, sage, pdt, failures in sweep_results:
        print(f"{label:<10} {sage:>14.2f} {pdt:>12.2f} {failures:>16}")
    assert sweep_results


def test_e7_pdt_always_complete(sweep_results):
    assert all(pdt == 1.0 for _, _, pdt, _ in sweep_results)


def test_e7_sagepp_degrades(sweep_results):
    recalls = [sage for _, sage, _, _ in sweep_results]
    assert recalls[0] >= 0.9, "baseline must be credible on plain C++"
    assert recalls[-1] < recalls[0] - 0.2, "baseline must degrade on templates"
    # overall monotone trend (allowing small local wobble)
    assert recalls[-1] == min(recalls)


def test_e7_sagepp_fails_on_pooma():
    """The paper's exact scenario: POOMA's templates defeat Sage++."""
    tree = compile_pooma()
    truth = ground_truth(tree)
    user_files = {k: v for k, v in pooma_files().items() if not k.startswith("/pdt")}
    res = SageExtractor().extract(user_files)
    acc = extraction_accuracy(res, truth)
    print(f"\nSage++ on mini-POOMA: recall {acc.recall:.2f}, "
          f"{res.parse_failures} parse failures")
    assert acc.recall < 0.75
    assert res.parse_failures >= 3
    # while PDT handles it completely
    assert pdt_recall(tree) == 1.0
    # and Sage++ sees no instantiations at all (no CT-style naming possible)
    assert not any("<" in r for r in res.routines)


def test_e7_sagepp_misses_out_of_line_member_templates():
    """The Stack corpus's member function templates (Figure 1's idiom:
    ``Stack<Object>::push``) defeat the baseline's declarator
    recognition entirely, while PDT extracts and instantiates them."""
    from repro.workloads.stack import compile_stack, stack_files

    tree = compile_stack()
    user_files = {k: v for k, v in stack_files().items() if not k.startswith("/pdt")}
    res = SageExtractor().extract(user_files)
    pdt_names = {r.name.split("<")[0] for r in tree.all_routines if r.defined}
    assert "push" in pdt_names and "topAndPop" in pdt_names
    assert "push" not in res.routines
    assert "topAndPop" not in res.routines
    assert res.parse_failures >= 7  # the eight out-of-line member templates
