"""E6 — Figure 7: TAU profiles of POOMA's Krylov solver.

The paper shows TAU displays of "time spent in POOMA's Krylov Solver
routines that were generated with TAU automatic instrumentation".  We
instrument the mini-POOMA corpus through the full PDT pipeline, simulate
a preconditioned CG solve on an N×N grid for K iterations on several
nodes, and regenerate the mean and per-node pprof displays.

Shape assertions (the reproduction target — absolute numbers are the
cost model's, see DESIGN.md):

* the matvec (``StencilMatrix::apply``) dominates exclusive time among
  solver kernels — the expected shape for stencil CG,
* dot/axpy-family kernels come next, preconditioner after,
* per-iteration call counts match CG's algebra (1 matvec, 2 dots,
  2+ axpys per iteration),
* solver-class timer names carry the full instantiation (the templates
  point of Section 4.1),
* inclusive time of ``solve`` accounts for ~all of ``run_cg``.
"""

import pytest

from repro.tau.machine import CostModel, linear_skew
from repro.tau.profile import (
    exclusive_ranking,
    format_mean_profile,
    format_profile,
)
from repro.tau.selector import select_instrumentation
from repro.tau.simulate import ExecutionSimulator, TauNaming, WorkloadSpec

GRID = 32  # N x N grid
N = GRID * GRID
ITERS = 50  # CG iterations
NODES = 4

CG_SOLVE = "pooma::CGSolver<double, pooma::StencilMatrix<double>, pooma::DiagonalPreconditioner<double>>::solve"


def krylov_cost_model() -> CostModel:
    """Per-invocation work, proportional to touched elements."""
    cm = CostModel(default_cycles=5.0, node_skew=linear_skew(NODES, 0.2))
    # 5-point stencil: ~10 flops per grid point (5 loads+mults, 4 adds)
    cm.add(r"StencilMatrix<double>::apply", 10.0 * N)
    cm.add(r"DiagonalPreconditioner<double>::apply", 1.0 * N)
    cm.add(r"pooma::dot", 2.0 * N)
    cm.add(r"pooma::axpy", 2.0 * N)
    cm.add(r"pooma::xpay", 2.0 * N)
    cm.add(r"pooma::copy", 1.0 * N)
    cm.add(r"pooma::norm2", 10.0)
    cm.add(r"pooma::sqroot", 40.0)
    cm.add(r"Vector<double>::(Vector|~Vector|fill)", 1.0 * N)
    cm.add(r"solve", 50.0)
    return cm


def _solver_loop_lines() -> set[int]:
    """Line numbers (in Krylov.h) of the CG iteration loop body — every
    call site in this range executes once per iteration."""
    from repro.workloads.pooma import KRYLOV_H

    lines = KRYLOV_H.splitlines()
    start = next(i for i, l in enumerate(lines, 1) if "for ( iterations_" in l)
    end = next(
        i for i, l in enumerate(lines, 1)
        if i > start and "return iterations_" in l
    )
    return set(range(start + 1, end))


def krylov_workload() -> WorkloadSpec:
    """Trip counts: call sites inside the solve loop run ITERS times;
    everything else (initial residual, setup) runs once."""
    sites = {
        (CG_SOLVE, "Krylov.h", line): ITERS for line in _solver_loop_lines()
    }
    pair = {
        # run only the CG side of main on every node
        ("main", "run_bicgstab"): 0,
        ("main", "run_expressions"): 0,
    }
    return WorkloadSpec(
        entry="main",
        nodes=NODES,
        cost=krylov_cost_model(),
        site_counts=sites,
        pair_counts=pair,
    )


@pytest.fixture(scope="module")
def profiler(pooma_pdb):
    points = select_instrumentation(pooma_pdb)
    sim = ExecutionSimulator(
        pooma_pdb, krylov_workload(), namer=TauNaming(points).timer_for
    )
    return sim.run()


def test_e6_simulation_benchmark(pooma_pdb, benchmark):
    points = select_instrumentation(pooma_pdb)
    sim = ExecutionSimulator(
        pooma_pdb, krylov_workload(), namer=TauNaming(points).timer_for
    )
    profiler = benchmark(sim.run)
    assert profiler.profiles


def test_e6_emit_figure7(profiler):
    """The regenerated Figure 7 displays (run with -s)."""
    from repro.tau.profile import format_bars

    print("\n--- regenerated Figure 7: mean profile over nodes ---")
    print(format_mean_profile(profiler, top=12))
    print("\n--- regenerated Figure 7: node 0 profile ---")
    print(format_profile(profiler, node=0, top=12))
    print("\n--- regenerated Figure 7: racy-style bar display ---")
    print(format_bars(profiler, top=8))
    assert len(profiler.profiles) == NODES


def test_e6_bar_display(profiler):
    from repro.tau.profile import format_bars

    out = format_bars(profiler, top=5)
    lines = out.splitlines()[2:]
    assert len(lines) == 5
    # the longest bar belongs to the top entry and hits full width
    assert lines[0].count("#") == 50
    widths = [l.count("#") for l in lines]
    assert widths == sorted(widths, reverse=True)
    assert "StencilMatrix::apply" in lines[0]


def test_e6_matvec_dominates(profiler):
    """Who wins: the stencil matvec has the largest exclusive time."""
    ranking = exclusive_ranking(profiler)
    top_kernels = [name for name, _ in ranking[:3]]
    assert any("StencilMatrix::apply" in n for n in top_kernels[:1]), ranking[:3]


def test_e6_kernel_ordering(profiler):
    """By roughly what factor: matvec ~ 5N/iter, dot-family ~ 4N/iter,
    axpy-family ~ 6N/iter, precond ~ N/iter."""
    stats = profiler.mean_stats()

    def excl(frag):
        return sum(t.exclusive for n, t in stats.items() if frag in n)

    matvec = excl("StencilMatrix::apply")
    dots = excl("dot(")
    precond = excl("DiagonalPreconditioner::apply")
    assert matvec > dots > precond
    # factors: matvec/precond = 10 flops vs 1 per point per iteration
    assert 6.0 < matvec / precond < 14.0


def test_e6_call_counts_match_cg_algebra(profiler):
    stats = profiler.mean_stats()
    apply_calls = sum(
        t.calls for n, t in stats.items() if "StencilMatrix::apply" in n
    )
    dot_calls = sum(t.calls for n, t in stats.items() if "dot(" in n)
    # 1 matvec per iteration, +1 for the initial residual
    assert apply_calls == ITERS + 1
    # 2 dots per iteration in the loop, 1 inside norm2 per iteration,
    # +1 for the initial rho
    assert dot_calls == 3 * ITERS + 1


def test_e6_instantiation_qualified_names(profiler):
    names = profiler.all_timer_names()
    assert any("CGSolver<double, pooma::StencilMatrix<double>" in n for n in names)
    assert any("[CT = " in n for n in names)


def test_e6_solve_inclusive_accounts_for_run(profiler):
    stats = profiler.mean_stats()
    solve = next(t for n, t in stats.items() if "solve" in n and "CGSolver" in n)
    run_cg = next(t for n, t in stats.items() if n.startswith("run_cg"))
    assert solve.inclusive > 0.9 * run_cg.inclusive
    assert solve.inclusive <= run_cg.inclusive + 1e-6


def test_e6_node_imbalance_visible(profiler):
    times = [profiler.profile(n).total_time() for n in range(NODES)]
    assert max(times) > min(times)
    mean = profiler.mean_stats()
    node0 = profiler.profile(0).timers
    # the mean differs from node 0 (skew), same timer set
    assert set(mean) == set(node0)


def test_e6_profiles_internally_consistent(profiler):
    for p in profiler.profiles.values():
        p.check_consistency()
