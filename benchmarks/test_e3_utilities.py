"""E3 — Table 2 & Figure 5: the four DUCTAPE utilities.

Runs pdbconv, pdbhtml, pdbmerge, and pdbtree on the Stack PDB and checks
each tool's documented functionality (Table 2), plus the printFuncTree
output shape of Figure 5 — including that "functions instantiated from
templates are automatically included in the vector of called functions".
"""


from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.tools.pdbconv import check_pdb, convert_pdb
from repro.tools.pdbhtml import generate_html
from repro.tools.pdbmerge import merge_pdbs
from repro.tools.pdbtree import render_call_tree, render_class_tree, render_inclusion_tree
from repro.workloads.stack import stack_files
from repro.workloads.stl import KAI_INCLUDE_DIR


def test_e3_pdbconv(stack_pdb, benchmark):
    """pdbconv: compact PDB -> readable format."""
    text = benchmark(convert_pdb, stack_pdb)
    assert "Program database" in text
    assert 'ROUTINE' in text and 'CLASS' in text and 'TEMPLATE' in text
    # readable output resolves references to names
    assert "[push]" in text
    assert check_pdb(stack_pdb) == []


def test_e3_pdbhtml(stack_pdb, tmp_path, benchmark):
    """pdbhtml: web documentation with navigation links."""
    written = benchmark(generate_html, stack_pdb, str(tmp_path))
    assert "index.html" in written
    cls = stack_pdb.findClass("Stack<int>")
    page = (tmp_path / f"cl_{cls.id()}.html").read_text()
    # navigation via HTML links (Table 2)
    assert "href=" in page
    assert "Instantiated from template" in page


def test_e3_pdbmerge(benchmark):
    """pdbmerge: merges PDBs, eliminating duplicate template
    instantiations in the process (Table 2)."""
    files = dict(stack_files())
    files["Other.cpp"] = (
        '#include "StackAr.h"\n'
        "int other() { Stack<int> s; s.push(2); while (!s.isEmpty()) s.topAndPop(); return 0; }\n"
    )
    fe = Frontend(FrontendOptions(include_paths=[KAI_INCLUDE_DIR]))
    fe.register_files(files)
    pdbs = [
        PDB(analyze(fe.compile("TestStackAr.cpp"))),
        PDB(analyze(fe.compile("Other.cpp"))),
    ]
    sizes_before = [len(p.items()) for p in pdbs]

    def do_merge():
        fresh = [
            PDB.from_text(p.to_text()) for p in pdbs
        ]  # merge mutates; re-read for benchmarking
        return merge_pdbs(fresh)

    merged, stats = benchmark(do_merge)
    assert stats[0].duplicate_instantiations > 0
    # duplicates eliminated: merged is smaller than the sum
    assert len(merged.items()) < sum(sizes_before)
    # exactly one Stack<int> and one vector<int> survive
    for name in ("Stack<int>", "vector<int>"):
        assert len([c for c in merged.getClassVec() if c.name() == name]) == 1
    assert check_pdb(merged) == []


def test_e3_pdbtree_inclusion(stack_pdb, benchmark):
    out = benchmark(render_inclusion_tree, stack_pdb)
    assert "TestStackAr.cpp" in out
    assert "`--> StackAr.h" in out


def test_e3_pdbtree_classes(stack_pdb, benchmark):
    out = benchmark(render_class_tree, stack_pdb)
    assert "Stack<int>" in out


def test_e3_pdbtree_figure5(stack_pdb, benchmark):
    """The Figure 5 call-graph display."""
    out = benchmark(render_call_tree, stack_pdb, "main")
    print("\n--- regenerated Figure 5 output (pdbtree call graph) ---")
    print(out)
    lines = out.splitlines()
    assert lines[0] == "main"
    # template-instantiated functions in the callee vector
    assert "`--> Stack<int>::push" in out
    # recursive reporting: push's callees are indented deeper
    assert any(l.strip().startswith("`--> Stack<int>::isFull") for l in lines)
    # constructor lifetimes show up as calls
    assert "Stack<int>::Stack<int>" in out
    assert "vector<int>::vector<int>" in out


def test_e3_figure5_leaf_filter(stack_pdb):
    """Figure 5's quirk: at level 0 only callees that themselves call
    something are shown — reproduced by the port."""
    from repro.ductape.items import INACTIVE
    from repro.tools.pdbtree import print_func_tree

    for r in stack_pdb.getRoutineVec():
        r.flag(INACTIVE)
    out: list = []
    print_func_tree(stack_pdb.findRoutine("main"), 0, out)
    # at level 0, leaf callees (operator<< etc.) are filtered out
    assert all("operator<<" not in line for line in out)
