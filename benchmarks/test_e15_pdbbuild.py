"""E15 — the pdbbuild driver: parallel + incrementally-cached builds.

Regenerates the PDT multi-TU build workflow (compile each TU separately,
pdbmerge into one database, paper Table 2) three ways over the synth and
STL workloads and compares:

* **serial**   — one worker, cold cache (the cxxparse-per-TU baseline),
* **parallel** — ``-j N`` worker processes, cold cache,
* **warm**     — identical rerun against a populated cache.

Asserts the two acceptance properties: the parallel output is
byte-identical to the serial cxxparse-per-TU + pdbmerge pipeline, and a
warm-cache rerun recompiles zero TUs (checked through the ``--stats-json``
cache counters).  Run with ``-s`` to see the timing table.
"""

import json
import os
import time

import pytest

from repro.tools.pdbbuild import BuildOptions, build
from repro.workloads.stl import KAI_INCLUDE_DIR, stl_files
from repro.workloads.synth import SynthSpec, generate

#: floor of 2 so the ProcessPoolExecutor path is exercised even on 1-CPU CI
JOBS = max(2, min(4, os.cpu_count() or 2))

SPEC = SynthSpec(
    n_plain_classes=6,
    methods_per_class=4,
    n_templates=4,
    instantiations_per_template=3,
    n_translation_units=6,
)


@pytest.fixture(scope="module")
def synth_corpus():
    return generate(SPEC)


@pytest.fixture(scope="module")
def stl_corpus():
    """K TUs sharing the mini-STL headers via -I (the paper's KAI set)."""
    files = dict(stl_files())
    mains = []
    for tu in range(4):
        entry = "main" if tu == 0 else f"tu{tu}_entry"
        files[f"stl_tu{tu}.cpp"] = (
            "#include <vector.h>\n"
            "#include <pair.h>\n"
            f"int {entry}( ) {{\n"
            f"    vector<int> v{tu};\n"
            f"    v{tu}.push_back( {tu} );\n"
            f"    pair<int, double> p{tu};\n"
            f"    return v{tu}.size( );\n"
            "}\n"
        )
        mains.append(f"stl_tu{tu}.cpp")
    return files, mains


def test_e15_parallel_byte_identical_to_serial_pipeline(synth_corpus, tmp_path):
    """Acceptance: pdbbuild -j N == serial cxxparse-per-TU + pdbmerge."""
    from repro.tools.cxxparse import main as cxxparse_main
    from repro.tools.pdbbuild import main as pdbbuild_main
    from repro.tools.pdbmerge import main as pdbmerge_main

    for name, text in synth_corpus.files.items():
        (tmp_path / name).write_text(text)
    sources = [str(tmp_path / f) for f in synth_corpus.main_files]
    per_tu = []
    for i, src in enumerate(sources):
        out = str(tmp_path / f"ref{i}.pdb")
        assert cxxparse_main([src, "-o", out]) == 0
        per_tu.append(out)
    ref = tmp_path / "ref.pdb"
    assert pdbmerge_main(per_tu + ["-o", str(ref)]) == 0

    out = tmp_path / "out.pdb"
    stats_file = tmp_path / "stats.json"
    argv = sources + [
        "-o", str(out),
        "-j", str(JOBS),
        "--cache-dir", str(tmp_path / "cache"),
        "--stats-json", str(stats_file),
    ]
    assert pdbbuild_main(list(argv)) == 0
    assert out.read_text() == ref.read_text()
    cold = json.loads(stats_file.read_text())
    assert cold["cache"]["misses"] == len(sources)

    # acceptance: warm rerun recompiles zero TUs, same bytes
    assert pdbbuild_main(list(argv)) == 0
    warm = json.loads(stats_file.read_text())
    assert warm["cache"]["hits"] == len(sources)
    assert warm["cache"]["misses"] == 0
    assert all(t["cache_hit"] for t in warm["tus"])
    assert out.read_text() == ref.read_text()


def test_e15_speed_table(synth_corpus, tmp_path):
    """The regenerated build-mode comparison (run with -s)."""
    cache = str(tmp_path / "cache")
    timings = {}
    t0 = time.perf_counter()
    serial, _ = build(synth_corpus.main_files, files=synth_corpus.files)
    timings["serial"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    par, _ = build(synth_corpus.main_files, files=synth_corpus.files, jobs=JOBS)
    timings["parallel"] = time.perf_counter() - t0
    build(synth_corpus.main_files, files=synth_corpus.files, cache_dir=cache)
    t0 = time.perf_counter()
    warm, warm_stats = build(
        synth_corpus.main_files, files=synth_corpus.files, cache_dir=cache
    )
    timings["warm-cache"] = time.perf_counter() - t0

    print(f"\n--- pdbbuild modes ({len(synth_corpus.main_files)} TUs, -j {JOBS}) ---")
    for mode, wall in timings.items():
        speedup = timings["serial"] / wall if wall else float("inf")
        print(f"{mode:>10}: {wall:8.3f}s  ({speedup:4.1f}x vs serial)")
    assert serial.to_text() == par.to_text() == warm.to_text()
    assert warm_stats.cache_hits == len(synth_corpus.main_files)
    # a warm build does no frontend work at all — it must beat serial
    assert timings["warm-cache"] < timings["serial"]


def test_e15_stl_workload_parallel_cache(stl_corpus, tmp_path):
    """Same properties on the KAI mini-STL multi-TU workload."""
    files, mains = stl_corpus
    opts = BuildOptions(include_paths=(KAI_INCLUDE_DIR,))
    cache = str(tmp_path / "cache")
    serial, _ = build(mains, opts, files=files)
    par, _ = build(mains, opts, files=files, jobs=JOBS, cache_dir=cache)
    warm, warm_stats = build(mains, opts, files=files, jobs=JOBS, cache_dir=cache)
    assert serial.to_text() == par.to_text() == warm.to_text()
    assert warm_stats.cache_hits == len(mains) and warm_stats.cache_misses == 0
    # shared vector<int>/pair instantiations merged to one copy
    names = [c.name() for c in warm.getClassVec()]
    assert names.count("vector<int>") == 1
    merged_routines = {r.name() for r in warm.getRoutineVec()}
    assert {"main", "tu1_entry", "tu2_entry", "tu3_entry"} <= merged_routines
    assert warm_stats.merge.duplicate_instantiations > 0


def test_e15_serial_build_benchmark(synth_corpus, benchmark):
    merged, _ = benchmark(lambda: build(synth_corpus.main_files, files=synth_corpus.files))
    assert merged.findRoutine("main") is not None


def test_e15_warm_cache_benchmark(synth_corpus, tmp_path, benchmark):
    cache = str(tmp_path / "cache")
    build(synth_corpus.main_files, files=synth_corpus.files, cache_dir=cache)

    def warm():
        return build(synth_corpus.main_files, files=synth_corpus.files, cache_dir=cache)

    merged, stats = benchmark(warm)
    assert stats.cache_misses == 0
