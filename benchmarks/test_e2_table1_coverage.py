"""E2 — Table 1: PDB item types, attributes, and prefixes.

Regenerates Table 1 as a coverage matrix: compiles a corpus that uses
every language construct Table 1 mentions and asserts that the pipeline
emits every attribute the table lists for every item type.  The printed
matrix (run with -s) is the regenerated table.
"""

import pytest

from repro.analyzer import analyze
from repro.pdbfmt.spec import ATTRIBUTE_SCHEMAS, ITEM_TYPES
from tests.util import compile_source

#: a corpus exercising every Table 1 attribute
COVERAGE_HEADER = """\
#ifndef COVERAGE_H
#define COVERAGE_H
class FromHeader { public: int h; };
#endif
"""

COVERAGE_SRC = """\
#include "coverage.h"
#define LIMIT 64
#define SQ(x) ((x)*(x))
#undef LIMIT

namespace outer {
    namespace inner {
        class Deep { public: int d; };
    }
    namespace alias_target { }
    namespace shortname = alias_target;

    enum Mode { FAST = 1, SLOW = 2 };
    typedef unsigned long size_type;

    class Base {
    public:
        virtual ~Base() { }
        virtual int vfunc() = 0;
    };

    class Friendly;

    template <class T>
    class Container {
    public:
        Container() : data_(0), count_(0) { }
        T& at(unsigned long i) { return data_[i]; }
        unsigned long count() const { return count_; }
        static int instances() { return 0; }
    private:
        friend class Friendly;
        T* data_;
        unsigned long count_;
        static int live_;
    };

    class Derived : public virtual Base {
    public:
        Derived() : tag_(0) { }
        int vfunc() { return tag_; }
        int with_default(int a, int b = 9) throw(Base) { return a + b; }
        int ccall() const { return helper(tag_); }
    private:
        static int helper(int x) { return SQ(x); }
        mutable int tag_;
    };

    template <class T>
    T pass_through(const T& v) { return v; }
}

extern "C" int c_linkage(void);
static int file_local(double d, ...) { return 0; }

int main() {
    outer::Container<double> c;
    c.at(0);
    c.count();
    outer::Container<double>::instances();
    outer::Derived d;
    d.with_default(1);
    d.vfunc();
    outer::pass_through(5);
    file_local(1.0);
    return 0;
}
"""


@pytest.fixture(scope="module")
def doc():
    return analyze(compile_source(COVERAGE_SRC, files={"coverage.h": COVERAGE_HEADER}))


def emitted_attributes(doc, prefix) -> set[str]:
    keys: set[str] = set()
    for item in doc.by_prefix(prefix):
        keys.update(a.key for a in item.attributes)
    return keys


#: Table 1, row by row: the attributes the paper names, mapped to our
#: concrete attribute keys.
TABLE1_EXPECTATIONS: dict[str, dict[str, list[str]]] = {
    "so": {
        "files included by source file": ["sinc"],
    },
    "ro": {
        "source position": ["rloc"],
        "template from which instantiated": ["rtempl"],
        "parent class or namespace": ["rclass", "rnspace"],
        "access mode": ["racs"],
        "signature": ["rsig"],
        "functions called": ["rcall"],
        "linkage": ["rlink"],
        "storage class": ["rstore"],
        "virtuality": ["rvirt"],
        "header/body positions": ["rpos"],
    },
    "cl": {
        "source position": ["cloc"],
        "template from which instantiated": ["ctempl"],
        "parent class or namespace": ["cnspace", "cclass"],
        "direct base classes": ["cbase"],
        "friend classes and functions": ["cfriend"],
        "characteristics": ["ckind"],
        "member functions": ["cfunc"],
        "member information (access, kind, type)": ["cmem", "cmloc", "cmacs", "cmkind", "cmtype"],
        "header/body positions": ["cpos"],
    },
    "ty": {
        "kind": ["ykind"],
        "function return type": ["yrett"],
        "parameter types": ["yargt"],
        "presence of ellipsis": ["yellip"],
        "exception class IDs": ["yexcep"],
    },
    "te": {
        "source position": ["tloc"],
        "parent class or namespace": ["tnspace", "tclass"],
        "kind": ["tkind"],
        "text of template": ["ttext"],
        "header/body positions": ["tpos"],
    },
    "na": {
        "source position": ["nloc"],
        "members of namespace": ["nmem"],
        "alias": ["nalias"],
    },
    "ma": {
        "kind": ["makind"],
        "text of macro": ["matext"],
        "source position": ["maloc"],
    },
}


def test_e2_coverage_benchmark(benchmark):
    doc = benchmark(
        lambda: analyze(
            compile_source(COVERAGE_SRC, files={"coverage.h": COVERAGE_HEADER})
        )
    )
    assert doc.items


@pytest.mark.parametrize("prefix", sorted(TABLE1_EXPECTATIONS))
def test_e2_item_type_emitted(doc, prefix):
    assert doc.by_prefix(prefix), f"no {ITEM_TYPES[prefix]} items emitted"


@pytest.mark.parametrize(
    "prefix,label",
    [(p, label) for p, rows in TABLE1_EXPECTATIONS.items() for label in rows],
)
def test_e2_attribute_covered(doc, prefix, label):
    expected_keys = TABLE1_EXPECTATIONS[prefix][label]
    got = emitted_attributes(doc, prefix)
    assert any(k in got for k in expected_keys), (
        f"Table 1 row {ITEM_TYPES[prefix]}/{label!r}: none of {expected_keys} emitted"
    )


def test_e2_every_emitted_attribute_is_in_schema(doc):
    for prefix in ITEM_TYPES:
        schema = set(ATTRIBUTE_SCHEMAS[prefix])
        assert emitted_attributes(doc, prefix) <= schema


def test_e2_print_matrix(doc):
    """The regenerated Table 1 (run with -s)."""
    print("\n--- regenerated Table 1: item types, attributes, prefixes ---")
    print(f"{'Item Type':<14} {'Prefix':<7} Attributes emitted")
    for prefix, label in ITEM_TYPES.items():
        attrs = ", ".join(sorted(emitted_attributes(doc, prefix)))
        print(f"{label:<14} {prefix:<7} {attrs}")
    assert True
