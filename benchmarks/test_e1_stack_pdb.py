"""E1 — Figures 1 & 3: the PDB file for the templated Stack code.

Regenerates the PDB of paper Figure 3 from the Figure 1 corpus and
checks every construct category the figure excerpts:

(2)  the header file with its sinc chain (including StackAr.cpp),
(3)  the KAI vector header by full path,
(7)  the class template ``Stack`` (tkind class, ttext),
(8)  the member function template ``push`` (tkind memfunc),
(9)  the instantiated routine ``push`` with rclass/racs/rsig/rtempl and
     its rcall rows,
(10) ``isFull`` calling vector's ``size``,
(12) the class ``Stack<int>`` with ctempl, cfunc rows, cmem groups,
(13) ``bool`` with yikind char,
(15/16) the const-int-& -> const-int -> int type chain,
(17/18) function signature types with const qualifier / argument list.

The benchmark times the full source -> PDB pipeline.
"""

import pytest

from repro.analyzer import analyze
from repro.pdbfmt import ItemRef, write_pdb
from repro.workloads.stack import compile_stack


@pytest.fixture(scope="module")
def doc(stack_tree):
    return analyze(stack_tree)


def find(doc, prefix, name):
    matches = [i for i in doc.by_prefix(prefix) if i.name == name]
    assert matches, f"no {prefix} item named {name!r}"
    return matches[0]


def deref(doc, item, key):
    ref = item.get_ref(key)
    assert ref is not None, f"{item.ref} lacks {key}"
    return doc.find(ref)


def test_e1_pipeline_benchmark(benchmark):
    doc = benchmark(lambda: analyze(compile_stack()))
    assert len(doc.items) > 80


def test_e1_header_and_sinc_chain(doc):
    header = find(doc, "so", "StackAr.h")
    inc_names = {doc.find(ItemRef.parse(a.words[0])).name for a in header.get_all("sinc")}
    # "(so#66) 'includes' the implementation file StackAr.cpp (so#73)"
    assert "StackAr.cpp" in inc_names
    assert "dsexceptions.h" in inc_names
    assert "/pdt/include/kai/vector.h" in inc_names  # Figure 3 item (3)


def test_e1_test_file_includes_header(doc):
    test_file = find(doc, "so", "TestStackAr.cpp")
    incs = {doc.find(ItemRef.parse(a.words[0])).name for a in test_file.get_all("sinc")}
    assert "StackAr.h" in incs


def test_e1_class_template_item(doc):
    te = find(doc, "te", "Stack")
    assert te.first_word("tkind") == "class"
    assert te.get("ttext").text.startswith("template <class Object>")
    loc = te.get_location("tloc")
    assert doc.find(loc.file).name == "StackAr.h"


def test_e1_push_memfunc_template(doc):
    te = find(doc, "te", "push")
    assert te.first_word("tkind") == "memfunc"
    assert "Stack<Object>::" in te.get("ttext").text
    loc = te.get_location("tloc")
    assert doc.find(loc.file).name == "StackAr.cpp"


def test_e1_stack_int_class_item(doc):
    cl = find(doc, "cl", "Stack<int>")
    assert cl.first_word("ckind") == "class"
    # (12) ctempl points at the Stack class template
    assert deref(doc, cl, "ctempl").name == "Stack"
    # member functions listed with their locations
    funcs = cl.get_all("cfunc")
    names = {doc.find(ItemRef.parse(a.words[0])).name for a in funcs}
    assert {"push", "isEmpty", "isFull", "top", "pop", "makeEmpty", "topAndPop"} <= names
    # cmem groups: theArray then topOfStack, both private vars
    mems = [a.text for a in cl.attributes if a.key == "cmem"]
    assert mems == ["theArray", "topOfStack"]
    kinds = [a.words[0] for a in cl.attributes if a.key == "cmacs"]
    assert kinds == ["priv", "priv"]
    # theArray's type is the class vector<int> (cmtype cl#N, Figure 3)
    mtypes = [a.words[0] for a in cl.attributes if a.key == "cmtype"]
    assert mtypes[0].startswith("cl#")
    assert doc.find(ItemRef.parse(mtypes[0])).name == "vector<int>"
    assert doc.find(ItemRef.parse(mtypes[1])).name == "int"


def test_e1_push_routine_item(doc):
    ro = find(doc, "ro", "push")
    # (9): parent class, access, linkage, storage, virtuality
    assert deref(doc, ro, "rclass").name == "Stack<int>"
    assert ro.first_word("racs") == "pub"
    assert ro.first_word("rlink") == "C++"
    assert ro.first_word("rstore") == "NA"
    assert ro.first_word("rvirt") == "no"
    # rtempl: the push member function template
    assert deref(doc, ro, "rtempl").name == "push"
    # rloc points into StackAr.cpp (the definition site)
    loc = ro.get_location("rloc")
    assert doc.find(loc.file).name == "StackAr.cpp"
    # rcall rows: isFull, the Overflow ctor, operator[]
    callees = {doc.find(ItemRef.parse(a.words[0])).name for a in ro.get_all("rcall")}
    assert "isFull" in callees
    assert "Overflow" in callees
    assert "operator[]" in callees


def test_e1_isfull_calls_vector_size(doc):
    ro = find(doc, "ro", "isFull")
    callees = {doc.find(ItemRef.parse(a.words[0])).name for a in ro.get_all("rcall")}
    assert "size" in callees  # Figure 3 (10): rcall ro#31


def test_e1_push_signature_type(doc):
    ro = find(doc, "ro", "push")
    sig = deref(doc, ro, "rsig")
    # (18): void (const int &)
    assert sig.name == "void (const int &)"
    assert sig.first_word("ykind") == "func"
    assert deref(doc, sig, "yrett").name == "void"
    arg_ref = ItemRef.parse(sig.get("yargt").words[0])
    assert doc.find(arg_ref).name == "const int &"
    assert sig.get("yargt").words[-1] == "F"


def test_e1_const_member_signature(doc):
    ro = find(doc, "ro", "isFull")
    sig = deref(doc, ro, "rsig")
    # (17): bool () const
    assert sig.name == "bool () const"
    assert sig.get("yqual").words == ["const"]


def test_e1_type_chain(doc):
    # (15) const int & -> (16) const int -> (11) int
    ref = find(doc, "ty", "const int &")
    assert ref.first_word("ykind") == "ref"
    tref = deref(doc, ref, "yref")
    assert tref.name == "const int"
    assert tref.first_word("ykind") == "tref"
    base = deref(doc, tref, "ytref")
    assert base.name == "int"
    assert base.first_word("yikind") == "int"


def test_e1_bool_type(doc):
    b = find(doc, "ty", "bool")
    # (13): ykind bool, yikind char
    assert b.first_word("ykind") == "bool"
    assert b.first_word("yikind") == "char"


def test_e1_header_line(doc):
    text = write_pdb(doc)
    assert text.splitlines()[0] == "<PDB 1.0>"  # Figure 3 (1)


def test_e1_unused_members_not_defined(stack_tree):
    """Used-mode: top/pop/makeEmpty are never called by main, so their
    bodies are not instantiated (cf. their header-file cfunc locations
    in Figure 3 versus the .cpp locations of the used members)."""
    cls = stack_tree.find_class("Stack<int>")
    status = {r.name: r.defined for r in cls.routines}
    assert status["push"] and status["isFull"] and status["topAndPop"]
    assert not status["top"] and not status["pop"] and not status["makeEmpty"]


def test_e1_emit_figure(doc, stack_tree):
    """Print the regenerated Figure 3 excerpts (run with -s)."""
    interesting = []
    for item in doc.items:
        if item.prefix == "so":
            interesting.append(item)
        elif item.prefix == "te" and item.name in ("Stack", "push"):
            interesting.append(item)
        elif item.prefix == "cl" and item.name == "Stack<int>":
            interesting.append(item)
        elif item.prefix == "ro" and item.name in ("push", "isFull"):
            interesting.append(item)
    print("\n--- regenerated Figure 3 excerpts ---")
    for item in interesting:
        print(f"{item.prefix}#{item.id} {item.name}")
        for a in item.attributes:
            print(f"  {a.render()}")
    assert interesting
