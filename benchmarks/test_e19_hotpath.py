"""E19 — hot-path performance: header cache, fast reader, lazy DUCTAPE
load, tree merge.

Regenerates the before/after table for the four hot-path optimisations,
asserting each gate *and* byte-equality of the outputs (the entire
point is zero observable change):

* **header cache** — 16 TUs sharing one config-style header (a wall of
  ``#define``/``#if`` lines, preprocessing-dominated, the shape of real
  config headers): ``compile_many`` with the cache vs without must be
  >= 2x and byte-identical;
* **reader** — the partition/slice scanner vs the regex reference path
  (``strict=True``) over the same PDB text: >= 2x, identical document;
* **lazy load** — opening a large database and touching one routine vs
  eagerly materialising every wrapper: >= 5x;
* **tree merge** — pairwise reduction vs the serial left fold: parity
  at N=4 (the reduction keeps the fold shape below ``TREE_MIN_FANIN``),
  faster at N=16, byte-identical at N in {2, 4, 16}.

Timings are interleaved best-of-N so background noise hits both sides
equally.  Results land in ``BENCH_E19.json`` (CI uploads it as an
artifact); run with ``-s`` to see the table.
"""

import gc
import json
import time
from pathlib import Path

import pytest

from repro.analyzer import analyze
from repro.cpp.frontend import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.pdbfmt.items import PdbDocument, RawItem
from repro.pdbfmt.reader import parse_pdb
from repro.pdbfmt.writer import write_pdb
from repro.tools.pdbmerge import merge_pdbs, merge_pdbs_tree
from repro.workloads.synth import SynthSpec, generate

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_E19.json"

_results: dict = {}


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best


def _interleaved(fa, fb, repeats=5):
    """Best-of-N for two competitors, alternating so noise is shared.
    Collection is forced up front and the collector paused during the
    timed region — earlier tests in the same process otherwise leave
    enough garbage that cycles land inside one side's window."""
    best_a = best_b = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fa()
            da = time.perf_counter() - t0
            t0 = time.perf_counter()
            fb()
            db = time.perf_counter() - t0
            best_a = min(best_a, da)
            best_b = min(best_b, db)
    finally:
        gc.enable()
    return best_a, best_b


def _record(name: str, row: dict) -> None:
    _results[name] = row
    RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")


# -- corpora -----------------------------------------------------------------


def _config_corpus(n_tus=16, n_macros=400, n_blocks=60):
    """Config-style shared header: dominated by #define walls and #if
    blocks (which produce no parse tokens), plus a few declarations."""
    lines = ["#ifndef CONFIG_H", "#define CONFIG_H"]
    for i in range(n_macros):
        lines.append(f"#define CFG_OPT_{i} {i}")
        lines.append(f"#define CFG_FLAG_{i}(x) ((x) + {i})")
    for b in range(n_blocks):
        lines.append(f"#if CFG_OPT_{b % n_macros} > {b}")
        lines.append(f"#define CFG_SEL_{b} 1")
        lines.append("#else")
        lines.append(f"#define CFG_SEL_{b} 0")
        lines.append("#endif")
    lines.append("class Config { public: int mode(); };")
    lines.append("int config_level(int v);")
    lines.append("#endif")
    files = {"config.h": "\n".join(lines) + "\n"}
    mains = []
    for t in range(n_tus):
        files[f"tu{t}.cpp"] = (
            '#include "config.h"\n'
            f"int use_{t}(int v) "
            f"{{ return config_level(v) + CFG_FLAG_{t}(v) + CFG_SEL_{t % n_blocks}; }}\n"
        )
        mains.append(f"tu{t}.cpp")
    return files, mains


def _tu_pdb(tu: int, shared=60, unique=120) -> PDB:
    """Realistic merge input: items shared across every TU (headers)
    plus per-TU unique definitions (the TU's own code).  Deliberately
    lean on attributes — merge cost is dominated by key computation and
    duplicate scans, which is what the tree reduction attacks."""
    doc = PdbDocument()
    so = RawItem("so", 1, f"tu{tu}.cpp")
    so.add("skind", "source")
    doc.add(so)
    cl_id = ro_id = 0
    for s in range(shared):
        cl = RawItem("cl", cl_id, f"Shared{s}")
        cl_id += 1
        cl.add("ckind", "class")
        if s % 2:
            cl.add("ctempl", "NULL")
        doc.add(cl)
        ro = RawItem("ro", ro_id, f"shared_fn{s}")
        ro_id += 1
        ro.add("rsig", "NULL")
        if s % 3 == 0:
            ro.add("rtempl", "NULL")
        doc.add(ro)
    for u in range(unique):
        ro = RawItem("ro", ro_id, f"tu{tu}_fn{u}")
        ro_id += 1
        ro.add("rsig", "NULL")
        doc.add(ro)
    return PDB(doc)


@pytest.fixture(scope="module")
def e12_text() -> str:
    """A real merged database (the E12 pipeline's shape): synth corpus
    through frontend + analyzer + tree merge, written to text.  Genuine
    attribute density is what the reader/lazy measurements need —
    hand-rolled sparse items understate both."""
    spec = SynthSpec(
        n_plain_classes=10,
        methods_per_class=6,
        n_templates=6,
        instantiations_per_template=4,
        call_depth=4,
        n_translation_units=12,
    )
    corpus = generate(spec)
    fe = Frontend(FrontendOptions())
    fe.register_files(corpus.files)
    pdbs = [PDB(analyze(t)) for t in fe.compile_many(corpus.main_files)]
    merged, _, _ = merge_pdbs_tree(pdbs)
    return write_pdb(merged.doc)


# -- the four gates ----------------------------------------------------------


def test_e19_header_cache_speedup():
    files, mains = _config_corpus()

    def compile_all(cache_on):
        fe = Frontend(FrontendOptions(header_cache=cache_on))
        fe.register_files(files)
        return fe, fe.compile_many(mains)

    # byte-equality first (PDB text and diagnostics)
    fe_on, trees_on = compile_all(True)
    fe_off, trees_off = compile_all(False)
    texts_on = [write_pdb(analyze(t)) for t in trees_on]
    texts_off = [write_pdb(analyze(t)) for t in trees_off]
    assert texts_on == texts_off
    diags_on = [[str(d) for d in s.diagnostics] for s in fe_on.last_sinks]
    diags_off = [[str(d) for d in s.diagnostics] for s in fe_off.last_sinks]
    assert diags_on == diags_off
    assert fe_on.header_cache.hits == len(mains) - 1

    t_on, t_off = _interleaved(
        lambda: compile_all(True), lambda: compile_all(False), repeats=3
    )
    speedup = t_off / t_on
    _record(
        "header_cache",
        {
            "corpus": f"{len(mains)} TUs sharing one config header",
            "cache_off_s": round(t_off, 4),
            "cache_on_s": round(t_on, 4),
            "speedup": round(speedup, 2),
            "gate": ">= 2x",
        },
    )
    print(
        f"\nE19 header cache: off={t_off * 1000:.1f}ms on={t_on * 1000:.1f}ms "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= 2.0


def test_e19_reader_speedup(e12_text):
    text = e12_text
    fast_doc = parse_pdb(text)
    strict_doc = parse_pdb(text, strict=True)
    assert write_pdb(fast_doc) == write_pdb(strict_doc)  # identical documents

    t_fast, t_strict = _interleaved(
        lambda: parse_pdb(text), lambda: parse_pdb(text, strict=True), repeats=7
    )
    speedup = t_strict / t_fast
    _record(
        "reader",
        {
            "corpus": f"{len(fast_doc.items)} items, {len(text)} bytes",
            "regex_s": round(t_strict, 6),
            "fast_s": round(t_fast, 6),
            "speedup": round(speedup, 2),
            "gate": ">= 2x",
        },
    )
    print(
        f"\nE19 reader: regex={t_strict * 1000:.1f}ms fast={t_fast * 1000:.1f}ms "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= 2.0


def test_e19_lazy_load_speedup(e12_text):
    """The DUCTAPE layer alone: given a parsed document, wrapping is
    O(touched items), so opening a database to inspect one routine must
    no longer pay for every wrapper (``materialize`` restores the old
    eager behaviour for comparison)."""
    doc = parse_pdb(e12_text)
    ref = None
    for it in doc.items:
        if it.prefix == "ro":
            ref = it.ref  # last routine: a miss-everything scan is over
    assert ref is not None

    def touch_one_lazy():
        pdb = PDB(doc)
        assert pdb.item(ref) is not None

    def touch_one_eager():
        pdb = PDB(doc)
        pdb.materialize()
        assert pdb.item(ref) is not None

    t_lazy, t_eager = _interleaved(touch_one_lazy, touch_one_eager, repeats=7)
    speedup = t_eager / t_lazy
    _record(
        "lazy_load",
        {
            "corpus": f"{len(doc.items)} items, single-routine touch",
            "eager_s": round(t_eager, 6),
            "lazy_s": round(t_lazy, 6),
            "speedup": round(speedup, 2),
            "gate": ">= 5x",
        },
    )
    print(
        f"\nE19 lazy load: eager={t_eager * 1000:.1f}ms lazy={t_lazy * 1000:.1f}ms "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= 5.0


def test_e19_tree_merge():
    # byte-identity at N in {2, 4, 16}, pairwise shape forced
    for n in (2, 4, 16):
        serial, _ = merge_pdbs([_tu_pdb(i) for i in range(n)])
        tree, _, _ = merge_pdbs_tree([_tu_pdb(i) for i in range(n)], min_fanin=2)
        assert tree.to_text() == serial.to_text(), f"tree != fold at N={n}"

    rows = {}
    for n in (4, 16):
        inputs = [_tu_pdb(i) for i in range(n)]

        def run_serial():
            merge_pdbs(inputs)

        def run_tree():
            merge_pdbs_tree(inputs)

        # neither path mutates its inputs (the result of the tree path
        # may alias them, but each timing run discards it), so both
        # sides reuse the same prebuilt set
        t_serial, t_tree = _interleaved(run_serial, run_tree, repeats=5)
        rows[n] = {
            "serial_s": round(t_serial, 4),
            "tree_s": round(t_tree, 4),
            "ratio": round(t_serial / t_tree, 2),
        }
        print(
            f"\nE19 tree merge N={n}: serial={t_serial * 1000:.1f}ms "
            f"tree={t_tree * 1000:.1f}ms -> {t_serial / t_tree:.2f}x"
        )
    _record(
        "tree_merge",
        {
            "corpus": "per-TU docs, 60 shared + 120 unique items",
            "n4": rows[4],
            "n16": rows[16],
            "gate": "parity at N=4, faster at N=16, byte-identical",
        },
    )
    # N=4 keeps the fold shape (TREE_MIN_FANIN) — parity within noise;
    # the 0.85 floor absorbs timer jitter on loaded CI machines, since
    # both sides execute the same fold (tree adds only stat summing)
    assert rows[4]["ratio"] >= 0.85
    # N=16: the pairwise tree must beat the fold's quadratic re-scans,
    # including the tree path's corpus-construction overhead
    assert rows[16]["ratio"] > 1.0
