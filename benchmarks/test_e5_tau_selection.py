"""E5 — Figure 6: the TAU instrumentor's template selection.

Reproduces the Figure 6 loop's observable behaviour on a corpus with all
three function-template kinds, checks the CT(*this) decision per kind,
verifies the rewritten sources re-compile with identical call graphs,
and confirms the Section 4.1 headline: per-instantiation timer names via
run-time type information.
"""

import pytest

from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.ductape.items import PdbTemplate
from repro.ductape.pdb import PDB
from repro.tau.instrumentor import TAU_H, instrument_sources
from repro.tau.selector import select_instrumentation
from repro.tau.simulate import ExecutionSimulator, TauNaming, WorkloadSpec
from tests.util import compile_source

FIG6_SRC = """\
template <class T>
class Matrix {
public:
    Matrix() : n_(0) { }
    T trace() const;
    static int registry();
private:
    int n_;
};

template <class T>
T Matrix<T>::trace() const { return 0; }

template <class T>
int Matrix<T>::registry() { return 0; }

template <class T>
T norm(const T& x) { return x; }

int plain_function() { return 7; }

int main() {
    Matrix<double> md;
    Matrix<int> mi;
    md.trace();
    mi.trace();
    Matrix<double>::registry();
    norm(3.5);
    return plain_function();
}
"""


@pytest.fixture(scope="module")
def pdb():
    return PDB(analyze(compile_source(FIG6_SRC)))


@pytest.fixture(scope="module")
def points(pdb):
    return select_instrumentation(pdb)


def test_e5_selection_benchmark(pdb, benchmark):
    pts = benchmark(select_instrumentation, pdb)
    assert pts


def test_e5_nonfunction_templates_filtered(points):
    """Figure 6 (2): class templates are filtered out."""
    for p in points:
        if isinstance(p.item, PdbTemplate):
            assert p.item.kind() != PdbTemplate.TE_CLASS


def test_e5_memfunc_gets_ct(points):
    """Figure 6 (3) else-branch: member functions get CT(*this)."""
    trace = next(p for p in points if "trace" in p.timer_name())
    assert trace.needs_ct
    assert trace.type_argument() == "CT(*this)"


def test_e5_statmem_no_ct(points):
    """Figure 6 (3): static members get no CT(*this)."""
    registry = next(p for p in points if "registry" in p.timer_name())
    assert not registry.needs_ct


def test_e5_func_template_no_ct(points):
    norm = next(p for p in points if "norm" in p.timer_name())
    assert not norm.needs_ct


def test_e5_points_sorted_by_location(points):
    """Figure 6's final sort(itemvec, locCmp)."""
    keys = [(p.file_name, p.line, p.column) for p in points]
    assert keys == sorted(keys)


def test_e5_rewritten_source_compiles(benchmark):
    """The translated source 'can subsequently be compiled' (4.1)."""
    tree = compile_source(FIG6_SRC)
    pdb = PDB(analyze(tree))
    sources = {"main.cpp": FIG6_SRC}

    def rewrite_and_recompile():
        results = instrument_sources(pdb, sources)
        fe = Frontend(FrontendOptions())
        fe.register_files({"main.cpp": results["main.cpp"].text, "TAU.h": TAU_H})
        return fe.compile("main.cpp"), results

    tree2, results = benchmark(rewrite_and_recompile)
    assert results["main.cpp"].insertions
    # the instrumented call graph is unchanged
    before = {c.callee.full_name for c in tree.find_routine("main").calls}
    after = {c.callee.full_name for c in tree2.find_routine("main").calls}
    assert before == after


def test_e5_macro_text_shape():
    tree = compile_source(FIG6_SRC)
    pdb = PDB(analyze(tree))
    res = instrument_sources(pdb, {"main.cpp": FIG6_SRC})["main.cpp"]
    ct_lines = [l for l in res.text.splitlines() if "CT(*this)" in l]
    assert ct_lines, "member function templates must carry CT(*this)"
    for line in ct_lines:
        assert "TAU_PROFILE(" in line
    static_lines = [
        l for l in res.text.splitlines()
        if "TAU_PROFILE(" in l and "CT(*this)" not in l
    ]
    assert static_lines, "non-member entities use static names"


def test_e5_unique_names_per_instantiation(pdb, points):
    """Section 4.1: 'The unique instantiation of the class can therefore
    be incorporated in the name of an instantiated template.'"""
    naming = TauNaming(points)
    traces = [r for r in pdb.getRoutineVec() if r.name() == "trace"]
    names = sorted(filter(None, (naming.timer_for(r) for r in traces)))
    assert len(names) == len(set(names)) == 2
    assert any("Matrix<double>" in n for n in names)
    assert any("Matrix<int>" in n for n in names)


def test_e5_simulated_profile_distinguishes_instantiations(pdb, points):
    profiler = ExecutionSimulator(
        pdb, WorkloadSpec(), namer=TauNaming(points).timer_for
    ).run()
    timers = profiler.profile(0).timers
    ct_names = [n for n in timers if "[CT = " in n]
    assert any("Matrix<double>" in n for n in ct_names)
    assert any("Matrix<int>" in n for n in ct_names)
