"""E17 — observability overhead: tracing the toolchain must be ~free.

The ``repro.obs`` layer dogfoods the TAU measurement runtime to time the
toolchain itself (frontend phases, analyzer passes, PDB write/merge,
pdbbuild workers).  Instrumented code calls ``obs.observe`` whether or
not an observer is installed, so two costs matter:

* **disabled** — the permanent cost every build pays: one global list
  read per phase.  Budget: < ~3% over the E15 serial workload.
* **enabled**  — the cost of a ``--trace-json`` build: span capture and
  TAU accounting on the wall clock.  Cheap, but not budgeted to zero.

Also asserts the trace acceptance properties on this workload: the
per-TU compile spans plus driver phases sum to within 5% of the build
wall time, and the replayed TAU self-profile passes the runtime's own
consistency check.  Run with ``-s`` to see the timing table.
"""

import statistics
import time

import pytest

from repro import obs
from repro.tools.pdbbuild import build
from repro.workloads.synth import SynthSpec, generate

#: same shape as the E15 serial workload — overhead is measured on the
#: workload the budget is defined against
SPEC = SynthSpec(
    n_plain_classes=6,
    methods_per_class=4,
    n_templates=4,
    instantiations_per_template=3,
    n_translation_units=6,
)

#: the paper-level budget is ~3%; CI boxes are noisy (cron jobs, shared
#: runners), so the hard gate leaves headroom while the printed table
#: reports the real number
OVERHEAD_BUDGET = 0.03
OVERHEAD_GATE = 0.15


@pytest.fixture(scope="module")
def corpus():
    return generate(SPEC)


def _timed_builds(corpus, repeats, trace=False):
    """Serial in-process builds; returns the per-run wall times."""
    walls = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        build(corpus.main_files, files=corpus.files, trace=trace)
        walls.append(time.perf_counter() - t0)
    return walls


def test_e17_disabled_overhead_within_budget(corpus):
    """Acceptance: instrumentation with no observer installed costs
    under the budget (median over repeated serial builds)."""
    assert not obs.is_enabled()
    # interleave the two arms so drift (cache warmup, frequency
    # scaling) hits both equally; first pair warms up and is dropped
    base_walls, traced_walls = [], []
    for _ in range(6):
        traced_walls.extend(_timed_builds(corpus, 1, trace=True))
        base_walls.extend(_timed_builds(corpus, 1, trace=False))
    base = statistics.median(base_walls[1:])
    traced = statistics.median(traced_walls[1:])
    overhead = traced / base - 1.0
    print(
        f"\n--- E17 observability overhead ({len(corpus.main_files)} TUs) ---\n"
        f"  plain build : {base:8.3f}s (median of {len(base_walls) - 1})\n"
        f"  traced build: {traced:8.3f}s (median of {len(traced_walls) - 1})\n"
        f"  overhead    : {overhead:+8.1%}  (budget {OVERHEAD_BUDGET:.0%}, "
        f"gate {OVERHEAD_GATE:.0%})"
    )
    assert overhead < OVERHEAD_GATE


def test_e17_trace_spans_cover_build_wall(corpus):
    """Acceptance: compile + merge + cache spans sum to within 5% of
    the serial build's wall time."""
    t0 = time.perf_counter()
    _, stats = build(corpus.main_files, files=corpus.files, trace=True)
    wall = time.perf_counter() - t0
    covered = sum(
        s.dur / 1e6
        for s in stats.trace_spans
        if s.name.startswith("compile ")
        or s.name in ("pdb.merge", "cache.lookup")
    )
    build_span = next(
        s for s in stats.trace_spans if s.name == "pdbbuild.build"
    )
    assert covered <= wall * 1.0001
    assert covered >= build_span.dur / 1e6 * 0.95
    # every TU reported its frontend phases
    assert all("frontend.parse" in t.phases for t in stats.tus)


def test_e17_self_profile_replay_consistent(corpus):
    """The replayed TAU profiler passes the runtime's own consistency
    invariants and shows the toolchain's phase hierarchy."""
    _, stats = build(corpus.main_files, files=corpus.files, trace=True)
    profiler = obs.replay_spans(stats.trace_spans)
    for prof in profiler.profiles.values():
        prof.check_consistency()
    driver = profiler.profile(0)
    assert "pdbbuild.build" in driver.timers
    assert driver.timers["frontend.parse"].calls == len(corpus.main_files)


def test_e17_disabled_observe_benchmark(benchmark):
    """Microbenchmark: the disabled obs.observe fast path."""
    assert not obs.is_enabled()

    def probe():
        with obs.observe("phase", cat="bench"):
            pass

    benchmark(probe)
