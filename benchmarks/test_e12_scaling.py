"""E12 — pipeline throughput scaling.

Not a paper table (the paper reports no performance numbers for PDT
itself), but the production-quality claim implies the pipeline must
scale: front-end + analyzer throughput versus corpus size, PDB
read/write round-trip throughput, and DUCTAPE load cost.
"""

import time


from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.pdbfmt import parse_pdb, write_pdb
from repro.workloads.synth import SynthSpec, generate

SIZES = [4, 16, 48]


def compile_spec(n: int):
    spec = SynthSpec(
        n_plain_classes=n,
        methods_per_class=4,
        n_templates=max(1, n // 4),
        instantiations_per_template=2,
    )
    corpus = generate(spec)
    fe = Frontend(FrontendOptions())
    fe.register_files(corpus.files)
    tree = fe.compile(corpus.main_files[0])
    return tree, corpus


def test_e12_frontend_benchmark_small(benchmark):
    corpus = generate(SynthSpec(n_plain_classes=4))
    fe = Frontend(FrontendOptions())
    fe.register_files(corpus.files)
    tree = benchmark(fe.compile, corpus.main_files[0])
    assert tree.all_classes


def test_e12_frontend_benchmark_large(benchmark):
    corpus = generate(SynthSpec(n_plain_classes=48, n_templates=12))
    fe = Frontend(FrontendOptions())
    fe.register_files(corpus.files)
    tree = benchmark(fe.compile, corpus.main_files[0])
    assert tree.all_classes


def test_e12_analyzer_benchmark(benchmark):
    tree, _ = compile_spec(16)
    doc = benchmark(analyze, tree)
    assert doc.items


def test_e12_pdb_write_benchmark(benchmark):
    tree, _ = compile_spec(16)
    doc = analyze(tree)
    text = benchmark(write_pdb, doc)
    assert text


def test_e12_pdb_parse_benchmark(benchmark):
    tree, _ = compile_spec(16)
    text = write_pdb(analyze(tree))
    doc = benchmark(parse_pdb, text)
    assert doc.items


def test_e12_ductape_load_benchmark(benchmark):
    tree, _ = compile_spec(16)
    text = write_pdb(analyze(tree))
    pdb = benchmark(PDB.from_text, text)
    assert pdb.getRoutineVec()


def test_e12_throughput_table():
    """The regenerated scaling series (run with -s)."""
    print("\n--- pipeline throughput vs corpus size ---")
    print(f"{'classes':>8} {'corpus LoC':>11} {'frontend s':>11} "
          f"{'LoC/s':>9} {'PDB items':>10} {'items/s':>9}")
    rows = []
    for n in SIZES:
        spec = SynthSpec(
            n_plain_classes=n, n_templates=max(1, n // 4),
            instantiations_per_template=2,
        )
        corpus = generate(spec)
        fe = Frontend(FrontendOptions())
        fe.register_files(corpus.files)
        t0 = time.perf_counter()
        tree = fe.compile(corpus.main_files[0])
        t_fe = time.perf_counter() - t0
        t0 = time.perf_counter()
        doc = analyze(tree)
        t_an = time.perf_counter() - t0
        loc_rate = corpus.total_lines / t_fe
        item_rate = len(doc.items) / max(t_an, 1e-9)
        rows.append((n, corpus.total_lines, t_fe, loc_rate, len(doc.items), item_rate))
        print(f"{n:>8} {corpus.total_lines:>11} {t_fe:>11.3f} "
              f"{loc_rate:>9.0f} {len(doc.items):>10} {item_rate:>9.0f}")
    # sanity: bigger corpora produce proportionally more items
    assert rows[-1][4] > rows[0][4] * 3
    # throughput does not collapse: large corpus stays within 20x of small
    assert rows[-1][3] > rows[0][3] / 20


def test_e12_roundtrip_fixpoint_large():
    tree, _ = compile_spec(32)
    text = write_pdb(analyze(tree))
    assert write_pdb(parse_pdb(text)) == text
