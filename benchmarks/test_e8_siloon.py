"""E8 — Figure 8 & the Section 4.2 feature list: SILOON bindings.

Regenerates the Figure 8 workflow on a templated numeric library:
PDT parses the C++ sources (no IDL!), SILOON generates script-side
wrapper functions and engine-side bridging code, the wrappers register
routines with the routine management structures, and scripted calls
dispatch into the computational engine.

The Section 4.2 feature list is asserted item by item; the
explicit-instantiation-only rule and the paper's proposed template-list
extension are both exercised.
"""

import pytest

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.siloon.bridge import Bridge
from repro.siloon.generator import generate_bindings, propose_instantiations
from tests.util import compile_source

#: a numeric library exercising the whole Section 4.2 feature list
LIBRARY = """\
enum Norm { L1, L2, LINF };
typedef unsigned long index_t;

template <class T>
class Grid {
public:
    Grid() : n_(0) { }
    explicit Grid(index_t n) : n_(n) { }
    ~Grid() { }

    index_t size() const { return n_; }
    T& operator[](index_t i) { return cells_[i]; }
    bool operator==(const Grid& other) const { return n_ == other.n_; }

    virtual T boundary(index_t i) const { return 0; }
    static int dimensions() { return 2; }

    void assemble(const T& value, int passes = 1) { }
    void assemble(const T& value, const T& scale, int passes) { }

private:
    T* cells_;
    index_t n_;
};

template <class T>
class GhostGrid : public Grid<T> {
public:
    GhostGrid() { }
    T boundary(index_t i) const { return 1; }
};

template <class T>
T integrate(const Grid<T>& g) { return 0; }

double measure(const Grid<double>& g, Norm which = L2) { return 0.0; }

// the user explicitly instantiates what the scripts should see
template class Grid<double>;
template class GhostGrid<double>;

int main() {
    Grid<double> g(64);
    GhostGrid<double> gg;
    integrate(g);
    measure(g);
    return 0;
}
"""


@pytest.fixture(scope="module")
def pdb():
    return PDB(analyze(compile_source(LIBRARY)))


@pytest.fixture(scope="module")
def bindings(pdb):
    return generate_bindings(pdb)


@pytest.fixture()
def live(pdb, bindings):
    bridge = Bridge(pdb)
    bindings.register_all(bridge)
    return bindings.make_module(bridge), bridge


def test_e8_generation_benchmark(pdb, benchmark):
    bs = benchmark(generate_bindings, pdb)
    assert bs.classes


def test_e8_no_idl_needed(bindings):
    """'users simply give their C++ source code as input to SILOON,
    rather than specify their interfaces in an IDL'."""
    assert bindings.wrapper_source  # generated from the PDB alone
    assert bindings.bridging_source


def test_e8_feature_templated_classes(bindings):
    names = {c.cls.name() for c in bindings.classes}
    assert "Grid<double>" in names and "GhostGrid<double>" in names


def test_e8_feature_templated_functions(pdb, bindings):
    fn = [b for b in bindings.functions if b.routine.name() == "integrate"]
    assert fn and fn[0].routine.template() is not None


def test_e8_feature_virtual_and_static(bindings):
    grid = next(c for c in bindings.classes if c.cls.name() == "Grid<double>")
    assert any(m.routine.isVirtual() for m in grid.methods)  # boundary
    assert any(m.routine.isStatic() for m in grid.methods)  # dimensions


def test_e8_feature_ctors_dtors(bindings):
    grid = next(c for c in bindings.classes if c.cls.name() == "Grid<double>")
    assert grid.constructors  # bound
    assert all("~" not in m.routine.name() for m in grid.methods)  # dtor managed


def test_e8_feature_overloaded_operators(bindings):
    grid = next(c for c in bindings.classes if c.cls.name() == "Grid<double>")
    names = {m.python_name for m in grid.methods}
    assert "__getitem__" in names and "__eq__" in names


def test_e8_feature_overloaded_functions(bindings):
    grid = next(c for c in bindings.classes if c.cls.name() == "Grid<double>")
    assembles = [m for m in grid.methods if m.python_name.startswith("assemble")]
    assert len(assembles) == 2
    assert len({m.mangled for m in assembles}) == 2  # distinct mangles


def test_e8_feature_default_arguments(pdb, bindings):
    bridge = Bridge(pdb)
    bindings.register_all(bridge)
    measure = next(b for b in bindings.functions if b.routine.name() == "measure")
    assert bridge.lookup(measure.mangled).required_params == 1


def test_e8_feature_references_enums_typedefs(pdb):
    # the signature types carry references and typedef'd index_t
    measure = pdb.findRoutine("measure")
    (arg0, *_rest) = measure.signature().argumentTypes()
    assert "&" in arg0.name()
    assert any(t.name() == "Norm" and t.kind() == "enum" for t in pdb.getTypeVec())
    assert any(t.name() == "index_t" and t.kind() == "typedef" for t in pdb.getTypeVec())


def test_e8_explicit_instantiation_rule(pdb, bindings):
    """'the user must explicitly instantiate such templates in the
    parsed code; only these instantiations are included'."""
    names = {c.cls.name() for c in bindings.classes}
    assert "Grid<float>" not in names  # never instantiated
    # explicit instantiation made all members available
    grid = next(c for c in bindings.classes if c.cls.name() == "Grid<double>")
    assert {m.routine.name() for m in grid.methods} >= {
        "size", "boundary", "dimensions", "assemble"
    }


def test_e8_round_trip_calls(live):
    """Figure 8's full loop: user script -> wrapper -> bridge -> engine."""
    mod, bridge = live
    Grid = mod["Grid_double"]
    g = Grid(64)
    assert g.size() == 0  # synthesised integer default
    g.assemble(1.0)
    assert g.__getitem__(3) == 0.0
    ghost = mod["GhostGrid_double"]()
    ghost.boundary(0)
    result = mod["integrate"](g._handle)
    assert result == 0.0
    counts = bridge.call_counts()
    # 7 dispatches: Grid ctor, size, assemble, operator[], GhostGrid
    # ctor, boundary, integrate
    assert sum(counts.values()) == 7
    assert bridge.total_engine_time() > 0


def test_e8_inherited_virtual_dispatches(live):
    mod, bridge = live
    ghost = mod["GhostGrid_double"]()
    ghost.boundary(1)  # the override, bound on the derived class
    assert any("boundary" in e.full_name for e in bridge.registry.values() if e.calls)


def test_e8_bridging_code_shape(bindings):
    src = bindings.bridging_source
    assert 'extern "C"' in src
    assert "siloon_register_all" in src
    assert "siloon_dispatch" in src
    # every bound routine has a bridging function and a registration line
    for rb in bindings.all_routine_bindings():
        assert src.count(rb.mangled) >= 2


def test_e8_template_list_extension(pdb):
    """The paper's future-work extension, implemented."""
    src = LIBRARY + "template <class T> class NeverUsed { public: T x_; };\n"
    pdb2 = PDB(analyze(compile_source(src)))
    proposals = propose_instantiations(pdb2)
    names = {te.name() for te, _ in proposals}
    assert "NeverUsed" in names
    assert "Grid" not in names  # already instantiated
