"""E9 — Section 3.3 / Table 2: pdbmerge eliminates duplicate template
instantiations from separate compilations.

Regenerates the merge workflow at scale: K translation units share a
templated header and instantiate overlapping sets of templates; merging
must collapse every duplicate instantiation while keeping each TU's own
entities, and throughput should scale roughly linearly in input size.
"""

import pytest

from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.tools.pdbconv import check_pdb
from repro.tools.pdbmerge import merge_pdbs
from repro.workloads.synth import SynthSpec, generate


def make_pdbs(n_tus: int, n_templates: int = 3) -> list[PDB]:
    spec = SynthSpec(
        n_plain_classes=2,
        n_templates=n_templates,
        instantiations_per_template=2,
        n_translation_units=n_tus,
    )
    corpus = generate(spec)
    fe = Frontend(FrontendOptions())
    fe.register_files(corpus.files)
    return [PDB(analyze(fe.compile(f))) for f in corpus.main_files]


@pytest.fixture(scope="module")
def five_pdbs():
    return make_pdbs(5)


def _fresh(pdbs: list[PDB]) -> list[PDB]:
    """Merge mutates its first argument: copy via text round trip."""
    return [PDB.from_text(p.to_text()) for p in pdbs]


def test_e9_merge_benchmark(five_pdbs, benchmark):
    merged, stats = benchmark(lambda: merge_pdbs(_fresh(five_pdbs)))
    assert stats


def test_e9_duplicates_eliminated(five_pdbs):
    merged, stats = merge_pdbs(_fresh(five_pdbs))
    total_dupes = sum(s.duplicates_eliminated for s in stats)
    assert total_dupes > 0
    # every shared instantiation appears exactly once
    names = [c.name() for c in merged.getClassVec()]
    for name in set(names):
        if "<" in name:
            assert names.count(name) == 1, f"{name} duplicated after merge"


def test_e9_dedup_ratio_table(five_pdbs):
    """The regenerated merge report (run with -s)."""
    merged, stats = merge_pdbs(_fresh(five_pdbs))
    total_in = sum(len(p.items()) for p in five_pdbs)
    print("\n--- pdbmerge dedup report (5 TUs sharing templates) ---")
    print(f"{'TU':>4} {'items in':>9} {'added':>7} {'dupes':>7} {'dup instantiations':>19}")
    for i, s in enumerate(stats, start=2):
        print(f"{i:>4} {s.items_in:>9} {s.items_added:>7} {s.duplicates_eliminated:>7} "
              f"{s.duplicate_instantiations:>19}")
    ratio = len(merged.items()) / total_in
    print(f"merged items: {len(merged.items())} / {total_in} = {ratio:.2f}")
    assert ratio < 0.75  # heavy sharing collapses well


def test_e9_per_tu_entities_survive(five_pdbs):
    merged, _ = merge_pdbs(_fresh(five_pdbs))
    names = {r.name() for r in merged.getRoutineVec()}
    assert "main" in names
    for tu in range(1, 5):
        assert f"tu{tu}_entry" in names


def test_e9_merged_references_valid(five_pdbs):
    merged, _ = merge_pdbs(_fresh(five_pdbs))
    assert check_pdb(merged) == []
    # navigation still works across remapped references
    main = merged.findRoutine("main")
    assert main.callees()


def test_e9_merge_scaling():
    """Merged size grows sub-linearly in TU count (shared templates)."""
    sizes = {}
    for k in (2, 4, 8):
        merged, _ = merge_pdbs(_fresh(make_pdbs(k)))
        sizes[k] = len(merged.items())
    print(f"\nmerged sizes by TU count: {sizes}")
    # doubling TUs must NOT double the merged PDB
    assert sizes[8] < 2 * sizes[4]
    assert sizes[4] < 2 * sizes[2]


def test_e9_order_insensitive_content():
    """Merging in a different order yields the same entity set."""
    pdbs = make_pdbs(3)
    m1, _ = merge_pdbs(_fresh(pdbs))
    m2, _ = merge_pdbs(_fresh(pdbs[::-1]))
    names1 = sorted(i.fullName() for i in m1.items())
    names2 = sorted(i.fullName() for i in m2.items())
    assert names1 == names2
