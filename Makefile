# Convenience targets for the PDT reproduction.

PYTHON ?= python

.PHONY: install test bench bench-only examples figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/

bench-only:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# print every regenerated table/figure (DESIGN.md §4)
figures:
	$(PYTHON) -m pytest benchmarks/ -s -q

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
