# Convenience targets for the PDT reproduction.

PYTHON ?= python
JOBS ?= 4

.PHONY: install test lint bench bench-only examples figures pdb clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/

bench-only:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# print every regenerated table/figure (DESIGN.md §4)
figures:
	$(PYTHON) -m pytest benchmarks/ -s -q

# parallel, incrementally-cached PDB build, e.g.:
#   make pdb SRCS="a.cpp b.cpp" OUT=app.pdb JOBS=8
pdb:
	$(PYTHON) -m repro.tools.pdbbuild $(SRCS) -o $(OUT) -j $(JOBS) -v \
		--stats-json $(OUT).stats.json

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .ruff_cache .pdbbuild-cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
