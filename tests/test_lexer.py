"""Lexer unit tests: token kinds, literals, positions, trivia."""

import pytest

from repro.cpp.diagnostics import CppError
from repro.cpp.lexer import tokenize
from repro.cpp.source import SourceFile
from repro.cpp.tokens import TokenKind, tokens_to_text
from tests.util import lex, texts


class TestBasicTokens:
    def test_identifiers(self):
        toks = lex("foo _bar baz123 _")
        assert all(t.kind is TokenKind.IDENT for t in toks)
        assert texts(toks) == ["foo", "_bar", "baz123", "_"]

    def test_keywords_are_idents(self):
        (tok,) = lex("class")
        assert tok.kind is TokenKind.IDENT
        assert tok.is_keyword("class")

    def test_non_keyword_ident(self):
        (tok,) = lex("classy")
        assert not tok.is_keyword()

    def test_punctuators_maximal_munch(self):
        assert texts(lex("<<=")) == ["<<="]
        assert texts(lex("<< =")) == ["<<", "="]
        assert texts(lex("->*")) == ["->*"]
        assert texts(lex("a->b")) == ["a", "->", "b"]
        assert texts(lex("a--b")) == ["a", "--", "b"]
        assert texts(lex("::")) == ["::"]
        assert texts(lex(": :")) == [":", ":"]
        assert texts(lex("...")) == ["..."]

    def test_eof_token_present(self):
        f = SourceFile(name="t", text="x")
        toks = tokenize(f)
        assert toks[-1].kind is TokenKind.EOF

    def test_empty_file(self):
        f = SourceFile(name="t", text="")
        toks = tokenize(f)
        assert len(toks) == 1 and toks[0].kind is TokenKind.EOF


class TestNumbers:
    @pytest.mark.parametrize(
        "text",
        ["0", "42", "0x1F", "3.14", "1e10", "1.5e-3", "10u", "10UL", "2.5f", "0777"],
    )
    def test_number_forms(self, text):
        (tok,) = lex(text)
        assert tok.kind is TokenKind.NUMBER
        assert tok.text == text

    def test_number_at_eof_terminates(self):
        # regression: EOF sentinel must not match suffix charsets
        toks = lex("199711")
        assert texts(toks) == ["199711"]

    def test_float_starting_with_dot(self):
        (tok,) = lex(".5")
        assert tok.kind is TokenKind.NUMBER

    def test_member_dot_not_number(self):
        toks = lex("a.b")
        assert texts(toks) == ["a", ".", "b"]


class TestStringsAndChars:
    def test_string(self):
        (tok,) = lex('"hello world"')
        assert tok.kind is TokenKind.STRING
        assert tok.text == '"hello world"'

    def test_string_escapes(self):
        (tok,) = lex(r'"a\"b\\c"')
        assert tok.kind is TokenKind.STRING

    def test_char(self):
        (tok,) = lex("'x'")
        assert tok.kind is TokenKind.CHAR

    def test_char_escape(self):
        (tok,) = lex(r"'\n'")
        assert tok.kind is TokenKind.CHAR

    def test_unterminated_string_raises(self):
        with pytest.raises(CppError, match="unterminated string"):
            lex('"abc')

    def test_unterminated_char_raises(self):
        with pytest.raises(CppError, match="unterminated character"):
            lex("'a")


class TestTrivia:
    def test_line_comment(self):
        assert texts(lex("a // comment\nb")) == ["a", "b"]

    def test_block_comment(self):
        assert texts(lex("a /* x\ny */ b")) == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CppError, match="unterminated block comment"):
            lex("a /* never closed")

    def test_line_continuation(self):
        toks = lex("ab\\\ncd")
        # backslash-newline splices: but identifiers are lexed per-char,
        # so the continuation acts as whitespace between tokens here
        assert texts(toks) == ["ab", "cd"]

    def test_leading_space_flag(self):
        a, b = lex("a b")
        assert not a.leading_space  # first on line: at_line_start instead
        assert b.leading_space

    def test_at_line_start_flag(self):
        toks = lex("a\nb")
        assert toks[0].at_line_start
        assert toks[1].at_line_start


class TestPositions:
    def test_line_col_tracking(self):
        toks = lex("a\n  b\n    c")
        assert (toks[0].location.line, toks[0].location.column) == (1, 1)
        assert (toks[1].location.line, toks[1].location.column) == (2, 3)
        assert (toks[2].location.line, toks[2].location.column) == (3, 5)

    def test_column_after_token(self):
        a, b = lex("abc def")
        assert b.location.column == 5

    def test_position_in_comment_spanning_lines(self):
        toks = lex("/* a\nb */ x")
        assert toks[0].location.line == 2

    def test_unexpected_character(self):
        with pytest.raises(CppError, match="unexpected character"):
            lex("a @ b")


class TestTokensToText:
    def test_roundtrip_spacing(self):
        text = "template <class T> class X"
        assert tokens_to_text(lex(text)) == text

    def test_no_space_inside_operators(self):
        assert tokens_to_text(lex("a->b")) == "a->b"

    def test_newlines_collapse_to_spaces(self):
        assert tokens_to_text(lex("a\nb")) == "a b"
