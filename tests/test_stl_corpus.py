"""Integration tests exercising the full mini-STL (the KAI-headers
substitute) — paper Section 6 credits these headers with improving
"PDT's robustness of parsing and analysis"."""

import pytest

from repro.cpp.instantiate import InstantiationMode
from repro.workloads.stl import KAI_INCLUDE_DIR, stl_files
from tests.util import compile_source

SRC = """\
#include <vector.h>
#include <list.h>
#include <pair.h>
#include <algorithm.h>
#include <string.h>
#include <iostream.h>

int sum_vector() {
    vector<int> v;
    for (int i = 0; i < 8; i++)
        v.push_back(i);
    int total = 0;
    for (unsigned long j = 0; j < v.size(); j++)
        total = total + v[j];
    v.clear();
    return total;
}

double drain_list() {
    list<double> q;
    q.push_back(1.5);
    q.push_back(2.5);
    double front = q.front();
    q.pop_front();
    return front;
}

pair<int, double> bundle() {
    return make_pair(3, 4.5);
}

int algorithms() {
    int a = 3, b = 9;
    swap(a, b);
    return mymax_check(a, b);
}

int mymax_check(int a, int b) {
    return max(a, b) + min(a, b);
}

bool compare_strings(const string& s, const string& t) {
    if (s == t)
        return true;
    return s < t;
}

int main() {
    int v = sum_vector();
    double d = drain_list();
    pair<int, double> p = bundle();
    cout << v << endl;
    cout << d << endl;
    return algorithms();
}
"""


@pytest.fixture(scope="module")
def tree():
    # mymax_check used before definition: declare it first
    src = "int mymax_check(int a, int b);\n" + SRC
    return compile_source(src, files=stl_files(), include_paths=[KAI_INCLUDE_DIR])


class TestContainers:
    def test_vector_int(self, tree):
        cls = tree.find_class("vector<int>")
        assert cls is not None
        used = {r.name for r in cls.routines if r.defined}
        assert {"push_back", "size", "operator[]", "clear", "~vector"} <= used

    def test_push_back_grows_via_reserve(self, tree):
        cls = tree.find_class("vector<int>")
        pb = next(r for r in cls.routines if r.name == "push_back")
        assert any(c.callee.name == "reserve" for c in pb.calls)

    def test_list_double(self, tree):
        cls = tree.find_class("list<double>")
        assert cls is not None
        used = {r.name for r in cls.routines if r.defined}
        assert {"push_back", "front", "pop_front"} <= used

    def test_list_inner_node_instantiated(self, tree):
        cls = tree.find_class("list<double>")
        inner = [c.name for c in cls.inner_classes]
        assert "node" in inner
        node = cls.inner_classes[0]
        assert {f.name for f in node.fields} == {"value", "next", "prev"}

    def test_list_dtor_chain(self, tree):
        cls = tree.find_class("list<double>")
        dtor = cls.destructor()
        assert dtor.defined
        assert any(c.callee.name == "clear" for c in dtor.calls)
        clear = next(r for r in cls.routines if r.name == "clear")
        callees = {c.callee.name for c in clear.calls}
        assert {"empty", "pop_front"} <= callees


class TestPairAndAlgorithms:
    def test_pair_instantiation(self, tree):
        cls = tree.find_class("pair<int, double>")
        assert cls is not None
        assert [f.type.spelling() for f in cls.fields] == ["int", "double"]

    def test_make_pair_deduction(self, tree):
        mp = [r for r in tree.all_routines if r.name == "make_pair" and r.is_instantiation]
        assert mp
        assert mp[0].signature.return_type.spelling() == "pair<int, double>"

    def test_swap_instantiated(self, tree):
        sw = [r for r in tree.all_routines if r.name == "swap" and r.is_instantiation]
        assert sw and sw[0].template_args[0].spelling() == "int"

    def test_max_min(self, tree):
        check = tree.find_routine("mymax_check")
        callees = {c.callee.name for c in check.calls}
        assert {"max", "min"} <= callees


class TestStringAndStreams:
    def test_string_operators(self, tree):
        cmp = tree.find_routine("compare_strings")
        callees = {c.callee.name for c in cmp.calls}
        assert {"operator==", "operator<"} <= callees

    def test_stream_output(self, tree):
        main = tree.find_routine("main")
        shifts = [c for c in main.calls if c.callee.name == "operator<<"]
        assert len(shifts) >= 4


class TestWholeCorpusPdb:
    def test_pdb_valid(self, tree):
        from repro.analyzer import analyze
        from repro.ductape.pdb import PDB
        from repro.tools.pdbconv import check_pdb

        pdb = PDB(analyze(tree))
        assert check_pdb(pdb) == []

    def test_all_mode_also_compiles(self):
        src = "int mymax_check(int a, int b);\n" + SRC
        tree = compile_source(
            src, files=stl_files(), include_paths=[KAI_INCLUDE_DIR],
            mode=InstantiationMode.ALL,
        )
        cls = tree.find_class("vector<int>")
        assert all(r.defined for r in cls.routines)
