"""DUCTAPE API tests: the class hierarchy of paper Figure 4, item
accessors, PDB-level queries, and merge."""


from repro.analyzer import analyze
from repro.ductape import (
    PDB,
    PdbClass,
    PdbFile,
    PdbItem,
    PdbMacro,
    PdbNamespace,
    PdbRoutine,
    PdbSimpleItem,
    PdbTemplate,
    PdbTemplateItem,
    PdbType,
)
from repro.ductape.items import PdbFatItem
from tests.util import compile_source


def pdb_for(src: str, **kw) -> PDB:
    return PDB(analyze(compile_source(src, **kw)))


class TestHierarchy:
    """The DUCTAPE class hierarchy must match paper Figure 4."""

    def test_root(self):
        for cls in (PdbFile, PdbItem, PdbMacro, PdbType, PdbTemplate,
                    PdbNamespace, PdbClass, PdbRoutine):
            assert issubclass(cls, PdbSimpleItem)

    def test_file_is_direct_child_of_simple_item(self):
        assert PdbFile.__bases__ == (PdbSimpleItem,)

    def test_item_children(self):
        assert issubclass(PdbMacro, PdbItem)
        assert issubclass(PdbType, PdbItem)
        assert issubclass(PdbFatItem, PdbItem)

    def test_fat_item_children(self):
        assert issubclass(PdbTemplate, PdbFatItem)
        assert issubclass(PdbNamespace, PdbFatItem)
        assert issubclass(PdbTemplateItem, PdbFatItem)

    def test_template_items(self):
        assert issubclass(PdbClass, PdbTemplateItem)
        assert issubclass(PdbRoutine, PdbTemplateItem)

    def test_macro_not_fat(self):
        assert not issubclass(PdbMacro, PdbFatItem)
        assert not issubclass(PdbType, PdbFatItem)

    def test_heterogeneous_template_item_list(self):
        """Paper: 'list<pdbTemplateItem> can store a list of all template
        instantiations'."""
        pdb = pdb_for(
            "template <class T> class B { public: T g() { return 0; } };\n"
            "int f() { B<int> b; return b.g(); }"
        )
        instantiations = [
            i for i in pdb.items()
            if isinstance(i, PdbTemplateItem) and i.isTemplateInstantiation()
        ]
        kinds = {type(i).__name__ for i in instantiations}
        assert "PdbClass" in kinds and "PdbRoutine" in kinds


class TestVectors:
    SRC = (
        "#define FLAG 1\n"
        "namespace n { enum E { A }; }\n"
        "template <class T> class B { public: T g(); };\n"
        "class C { public: void m(); };\n"
        "int f() { return FLAG; }\n"
    )

    def test_all_vectors_populated(self):
        pdb = pdb_for(self.SRC)
        assert pdb.getFileVec()
        assert pdb.getRoutineVec()
        assert pdb.getClassVec()
        assert pdb.getTypeVec()
        assert pdb.getTemplateVec()
        assert pdb.getNamespaceVec()
        assert pdb.getMacroVec()

    def test_items_ordering_matches_document(self):
        pdb = pdb_for(self.SRC)
        assert [i.raw.ref for i in pdb.items()] == [r.ref for r in pdb.doc.items]

    def test_find_routine(self):
        pdb = pdb_for(self.SRC)
        assert pdb.findRoutine("f") is not None
        assert pdb.findRoutine("C::m") is not None
        assert pdb.findRoutine("nope") is None

    def test_find_class(self):
        pdb = pdb_for(self.SRC)
        assert pdb.findClass("C") is not None


class TestAccessors:
    def test_routine_accessors(self):
        pdb = pdb_for(
            "class C { public: virtual int m(int x) const; };\n"
            "int C::m(int x) const { return x; }\n"
        )
        m = pdb.findRoutine("C::m")
        assert m.kind() == PdbRoutine.RO_MEMFUNC
        assert m.isVirtual() and not m.isPureVirtual()
        assert m.access() == "pub"
        assert m.linkage() == "C++"
        assert m.parentClass().name() == "C"
        assert m.fullName() == "C::m"
        assert m.signature().kind() == "func"
        assert m.signature().isConst()
        assert [n for _, n, _ in m.parameters()] == ["x"]

    def test_routine_positions(self):
        pdb = pdb_for("int f()\n{\n  return 1;\n}\n")
        f = pdb.findRoutine("f")
        assert f.bodyBegin().line() == 2
        assert f.bodyEnd().line() == 4
        assert f.headerBegin().line() == 1

    def test_callees_and_callers(self):
        pdb = pdb_for(
            "int leaf() { return 1; }\nint mid() { return leaf(); }\nint top() { return mid(); }"
        )
        mid = pdb.findRoutine("mid")
        assert [c.call().name() for c in mid.callees()] == ["leaf"]
        assert [r.name() for r in mid.callers()] == ["top"]
        leaf = pdb.findRoutine("leaf")
        assert [r.name() for r in leaf.callers()] == ["mid"]

    def test_class_accessors(self):
        pdb = pdb_for(
            "class A { public: virtual ~A(); };\n"
            "class B : public A { public: void m(); private: int x; };\n"
        )
        b = pdb.findClass("B")
        assert b.kind() == "class"
        acc, virt, base = b.baseClasses()[0]
        assert (acc, virt, base.name()) == ("pub", False, "A")
        assert [m.name() for m in b.memberFunctions()] == ["m"]
        member = b.dataMembers()[0]
        assert member.name() == "x"
        assert member.access() == "priv"
        assert member.kind() == "var"
        assert member.type().name() == "int"
        a = pdb.findClass("A")
        assert [d.name() for d in a.derivedClasses()] == ["B"]

    def test_template_accessors(self):
        pdb = pdb_for("template <class T> class B { public: T g(); };\nB<int> b;")
        te = pdb.getTemplateVec()[0]
        assert te.kind() == PdbTemplate.TE_CLASS
        assert "template" in te.text()
        cls = pdb.findClass("B<int>")
        assert cls.template() is te
        assert cls.isTemplateInstantiation()

    def test_namespace_accessors(self):
        pdb = pdb_for("namespace outer { namespace inner { class C {}; } }")
        outer = next(n for n in pdb.getNamespaceVec() if n.name() == "outer")
        inner = next(n for n in pdb.getNamespaceVec() if n.name() == "inner")
        assert inner.parentNamespace() is outer
        assert inner.fullName() == "outer::inner"
        assert any(m.name() == "C" for m in inner.members())

    def test_macro_accessors(self):
        pdb = pdb_for("#define TWICE(x) ((x)+(x))\nint f() { return TWICE(2); }")
        m = pdb.getMacroVec()[0]
        assert m.kind() == "def"
        assert m.name() == "TWICE"
        assert "(x)+(x)" in m.text()

    def test_type_navigation(self):
        pdb = pdb_for("void f(const int& x);")
        f = pdb.findRoutine("f")
        sig = f.signature()
        (arg,) = sig.argumentTypes()
        assert arg.name() == "const int &"
        assert arg.kind() == "ref"
        assert arg.referencedType().name() == "const int"

    def test_file_accessors(self):
        pdb = PDB(
            analyze(
                compile_source('#include "h.h"\nint main() { return 0; }', files={"h.h": ""})
            )
        )
        main = next(f for f in pdb.getFileVec() if f.name() == "main.cpp")
        assert [f.name() for f in main.includes()] == ["h.h"]

    def test_flag(self):
        pdb = pdb_for("int f();")
        f = pdb.findRoutine("f")
        assert f.flag() == 0
        f.flag(1)
        assert f.flag() == 1


class TestTrees:
    def test_inclusion_tree(self):
        pdb = PDB(
            analyze(
                compile_source(
                    '#include "a.h"\nint main() { return 0; }',
                    files={"a.h": '#include "b.h"\n', "b.h": ""},
                )
            )
        )
        tree = pdb.getInclusionTree()
        assert [r.name() for r in tree.roots] == ["main.cpp"]
        walk = list(tree.walk(tree.roots[0]))
        assert [(f.name(), d) for f, d in walk] == [
            ("main.cpp", 0), ("a.h", 1), ("b.h", 2)
        ]

    def test_call_tree_roots(self):
        pdb = pdb_for("int leaf() { return 1; }\nint main() { return leaf(); }")
        tree = pdb.getCallTree()
        assert [r.name() for r in tree.roots] == ["main"]

    def test_call_tree_cycle_cut(self):
        pdb = pdb_for(
            "int odd(int n);\n"
            "int even(int n) { return odd(n - 1); }\n"
            "int odd(int n) { return even(n - 1); }\n"
            "int main() { return even(4); }\n"
        )
        tree = pdb.getCallTree()
        walk = list(tree.walk(pdb.findRoutine("main")))
        assert any(cyc for _, _, _, cyc in walk)
        # terminates and visits both
        names = {r.name() for r, *_ in walk}
        assert {"main", "even", "odd"} <= names

    def test_class_hierarchy(self):
        pdb = pdb_for(
            "class A {};\nclass B : public A {};\nclass C : public B {};\nclass D : public A {};"
        )
        h = pdb.getClassHierarchy()
        a = pdb.findClass("A")
        assert a in h.roots
        walked = [(c.name(), d) for c, d in h.walk(a)]
        assert ("C", 2) in walked and ("D", 1) in walked
        assert h.depth_of(pdb.findClass("C")) == 2


class TestMerge:
    def make_pair(self):
        """Two TUs sharing a header with a template, both instantiating
        Box<int> — the paper's pdbmerge scenario."""
        from repro.cpp import Frontend, FrontendOptions

        files = {
            "box.h": (
                "#ifndef BOX_H\n#define BOX_H\n"
                "template <class T> class Box { public: T g() { return 0; } };\n"
                "#endif\n"
            ),
            "a.cpp": '#include "box.h"\nint fa() { Box<int> b; return b.g(); }\n',
            "b.cpp": '#include "box.h"\nint fb() { Box<int> b; return b.g(); }\n',
        }
        fe = Frontend(FrontendOptions())
        fe.register_files(files)
        return (
            PDB(analyze(fe.compile("a.cpp"))),
            PDB(analyze(fe.compile("b.cpp"))),
        )

    def test_merge_dedupes_instantiations(self):
        pa, pb = self.make_pair()
        stats = pa.merge(pb)
        assert stats.duplicates_eliminated > 0
        boxes = [c for c in pa.getClassVec() if c.name() == "Box<int>"]
        assert len(boxes) == 1
        gs = [r for r in pa.getRoutineVec() if r.name() == "g"]
        assert len(gs) == 1

    def test_merge_keeps_distinct_entities(self):
        pa, pb = self.make_pair()
        pa.merge(pb)
        names = {r.name() for r in pa.getRoutineVec()}
        assert {"fa", "fb"} <= names

    def test_merge_remaps_references(self):
        pa, pb = self.make_pair()
        pa.merge(pb)
        fb = pa.findRoutine("fb")
        callee_names = {c.call().name() for c in fb.callees() if c.call()}
        assert "g" in callee_names or "Box<int>" in callee_names

    def test_merge_idempotent(self):
        pa, pb = self.make_pair()
        pa.merge(pb)
        n = len(pa.items())
        stats2 = pa.merge(pb)
        assert len(pa.items()) == n
        assert stats2.items_added == 0

    def test_merged_pdb_still_parses(self):
        from repro.pdbfmt import parse_pdb

        pa, pb = self.make_pair()
        pa.merge(pb)
        text = pa.to_text()
        assert parse_pdb(text).items

    def test_merge_no_dangling_refs(self):
        from repro.tools.pdbconv import check_pdb

        pa, pb = self.make_pair()
        pa.merge(pb)
        assert check_pdb(pa) == []
