"""DUCTAPE API tests: the class hierarchy of paper Figure 4, item
accessors, PDB-level queries, and merge."""


from repro.analyzer import analyze
from repro.ductape import (
    PDB,
    PdbClass,
    PdbFile,
    PdbItem,
    PdbMacro,
    PdbNamespace,
    PdbRoutine,
    PdbSimpleItem,
    PdbTemplate,
    PdbTemplateItem,
    PdbType,
)
from repro.ductape.items import PdbFatItem
from tests.util import compile_source


def pdb_for(src: str, **kw) -> PDB:
    return PDB(analyze(compile_source(src, **kw)))


class TestHierarchy:
    """The DUCTAPE class hierarchy must match paper Figure 4."""

    def test_root(self):
        for cls in (PdbFile, PdbItem, PdbMacro, PdbType, PdbTemplate,
                    PdbNamespace, PdbClass, PdbRoutine):
            assert issubclass(cls, PdbSimpleItem)

    def test_file_is_direct_child_of_simple_item(self):
        assert PdbFile.__bases__ == (PdbSimpleItem,)

    def test_item_children(self):
        assert issubclass(PdbMacro, PdbItem)
        assert issubclass(PdbType, PdbItem)
        assert issubclass(PdbFatItem, PdbItem)

    def test_fat_item_children(self):
        assert issubclass(PdbTemplate, PdbFatItem)
        assert issubclass(PdbNamespace, PdbFatItem)
        assert issubclass(PdbTemplateItem, PdbFatItem)

    def test_template_items(self):
        assert issubclass(PdbClass, PdbTemplateItem)
        assert issubclass(PdbRoutine, PdbTemplateItem)

    def test_macro_not_fat(self):
        assert not issubclass(PdbMacro, PdbFatItem)
        assert not issubclass(PdbType, PdbFatItem)

    def test_heterogeneous_template_item_list(self):
        """Paper: 'list<pdbTemplateItem> can store a list of all template
        instantiations'."""
        pdb = pdb_for(
            "template <class T> class B { public: T g() { return 0; } };\n"
            "int f() { B<int> b; return b.g(); }"
        )
        instantiations = [
            i for i in pdb.items()
            if isinstance(i, PdbTemplateItem) and i.isTemplateInstantiation()
        ]
        kinds = {type(i).__name__ for i in instantiations}
        assert "PdbClass" in kinds and "PdbRoutine" in kinds


class TestVectors:
    SRC = (
        "#define FLAG 1\n"
        "namespace n { enum E { A }; }\n"
        "template <class T> class B { public: T g(); };\n"
        "class C { public: void m(); };\n"
        "int f() { return FLAG; }\n"
    )

    def test_all_vectors_populated(self):
        pdb = pdb_for(self.SRC)
        assert pdb.getFileVec()
        assert pdb.getRoutineVec()
        assert pdb.getClassVec()
        assert pdb.getTypeVec()
        assert pdb.getTemplateVec()
        assert pdb.getNamespaceVec()
        assert pdb.getMacroVec()

    def test_items_ordering_matches_document(self):
        pdb = pdb_for(self.SRC)
        assert [i.raw.ref for i in pdb.items()] == [r.ref for r in pdb.doc.items]

    def test_find_routine(self):
        pdb = pdb_for(self.SRC)
        assert pdb.findRoutine("f") is not None
        assert pdb.findRoutine("C::m") is not None
        assert pdb.findRoutine("nope") is None

    def test_find_class(self):
        pdb = pdb_for(self.SRC)
        assert pdb.findClass("C") is not None


class TestAccessors:
    def test_routine_accessors(self):
        pdb = pdb_for(
            "class C { public: virtual int m(int x) const; };\n"
            "int C::m(int x) const { return x; }\n"
        )
        m = pdb.findRoutine("C::m")
        assert m.kind() == PdbRoutine.RO_MEMFUNC
        assert m.isVirtual() and not m.isPureVirtual()
        assert m.access() == "pub"
        assert m.linkage() == "C++"
        assert m.parentClass().name() == "C"
        assert m.fullName() == "C::m"
        assert m.signature().kind() == "func"
        assert m.signature().isConst()
        assert [n for _, n, _ in m.parameters()] == ["x"]

    def test_routine_positions(self):
        pdb = pdb_for("int f()\n{\n  return 1;\n}\n")
        f = pdb.findRoutine("f")
        assert f.bodyBegin().line() == 2
        assert f.bodyEnd().line() == 4
        assert f.headerBegin().line() == 1

    def test_callees_and_callers(self):
        pdb = pdb_for(
            "int leaf() { return 1; }\nint mid() { return leaf(); }\nint top() { return mid(); }"
        )
        mid = pdb.findRoutine("mid")
        assert [c.call().name() for c in mid.callees()] == ["leaf"]
        assert [r.name() for r in mid.callers()] == ["top"]
        leaf = pdb.findRoutine("leaf")
        assert [r.name() for r in leaf.callers()] == ["mid"]

    def test_class_accessors(self):
        pdb = pdb_for(
            "class A { public: virtual ~A(); };\n"
            "class B : public A { public: void m(); private: int x; };\n"
        )
        b = pdb.findClass("B")
        assert b.kind() == "class"
        acc, virt, base = b.baseClasses()[0]
        assert (acc, virt, base.name()) == ("pub", False, "A")
        assert [m.name() for m in b.memberFunctions()] == ["m"]
        member = b.dataMembers()[0]
        assert member.name() == "x"
        assert member.access() == "priv"
        assert member.kind() == "var"
        assert member.type().name() == "int"
        a = pdb.findClass("A")
        assert [d.name() for d in a.derivedClasses()] == ["B"]

    def test_template_accessors(self):
        pdb = pdb_for("template <class T> class B { public: T g(); };\nB<int> b;")
        te = pdb.getTemplateVec()[0]
        assert te.kind() == PdbTemplate.TE_CLASS
        assert "template" in te.text()
        cls = pdb.findClass("B<int>")
        assert cls.template() is te
        assert cls.isTemplateInstantiation()

    def test_namespace_accessors(self):
        pdb = pdb_for("namespace outer { namespace inner { class C {}; } }")
        outer = next(n for n in pdb.getNamespaceVec() if n.name() == "outer")
        inner = next(n for n in pdb.getNamespaceVec() if n.name() == "inner")
        assert inner.parentNamespace() is outer
        assert inner.fullName() == "outer::inner"
        assert any(m.name() == "C" for m in inner.members())

    def test_macro_accessors(self):
        pdb = pdb_for("#define TWICE(x) ((x)+(x))\nint f() { return TWICE(2); }")
        m = pdb.getMacroVec()[0]
        assert m.kind() == "def"
        assert m.name() == "TWICE"
        assert "(x)+(x)" in m.text()

    def test_type_navigation(self):
        pdb = pdb_for("void f(const int& x);")
        f = pdb.findRoutine("f")
        sig = f.signature()
        (arg,) = sig.argumentTypes()
        assert arg.name() == "const int &"
        assert arg.kind() == "ref"
        assert arg.referencedType().name() == "const int"

    def test_file_accessors(self):
        pdb = PDB(
            analyze(
                compile_source('#include "h.h"\nint main() { return 0; }', files={"h.h": ""})
            )
        )
        main = next(f for f in pdb.getFileVec() if f.name() == "main.cpp")
        assert [f.name() for f in main.includes()] == ["h.h"]

    def test_flag(self):
        pdb = pdb_for("int f();")
        f = pdb.findRoutine("f")
        assert f.flag() == 0
        f.flag(1)
        assert f.flag() == 1


class TestTrees:
    def test_inclusion_tree(self):
        pdb = PDB(
            analyze(
                compile_source(
                    '#include "a.h"\nint main() { return 0; }',
                    files={"a.h": '#include "b.h"\n', "b.h": ""},
                )
            )
        )
        tree = pdb.getInclusionTree()
        assert [r.name() for r in tree.roots] == ["main.cpp"]
        walk = list(tree.walk(tree.roots[0]))
        assert [(f.name(), d) for f, d in walk] == [
            ("main.cpp", 0), ("a.h", 1), ("b.h", 2)
        ]

    def test_call_tree_roots(self):
        pdb = pdb_for("int leaf() { return 1; }\nint main() { return leaf(); }")
        tree = pdb.getCallTree()
        assert [r.name() for r in tree.roots] == ["main"]

    def test_call_tree_cycle_cut(self):
        pdb = pdb_for(
            "int odd(int n);\n"
            "int even(int n) { return odd(n - 1); }\n"
            "int odd(int n) { return even(n - 1); }\n"
            "int main() { return even(4); }\n"
        )
        tree = pdb.getCallTree()
        walk = list(tree.walk(pdb.findRoutine("main")))
        assert any(cyc for _, _, _, cyc in walk)
        # terminates and visits both
        names = {r.name() for r, *_ in walk}
        assert {"main", "even", "odd"} <= names

    def test_class_hierarchy(self):
        pdb = pdb_for(
            "class A {};\nclass B : public A {};\nclass C : public B {};\nclass D : public A {};"
        )
        h = pdb.getClassHierarchy()
        a = pdb.findClass("A")
        assert a in h.roots
        walked = [(c.name(), d) for c, d in h.walk(a)]
        assert ("C", 2) in walked and ("D", 1) in walked
        assert h.depth_of(pdb.findClass("C")) == 2


class TestMerge:
    def make_pair(self):
        """Two TUs sharing a header with a template, both instantiating
        Box<int> — the paper's pdbmerge scenario."""
        from repro.cpp import Frontend, FrontendOptions

        files = {
            "box.h": (
                "#ifndef BOX_H\n#define BOX_H\n"
                "template <class T> class Box { public: T g() { return 0; } };\n"
                "#endif\n"
            ),
            "a.cpp": '#include "box.h"\nint fa() { Box<int> b; return b.g(); }\n',
            "b.cpp": '#include "box.h"\nint fb() { Box<int> b; return b.g(); }\n',
        }
        fe = Frontend(FrontendOptions())
        fe.register_files(files)
        return (
            PDB(analyze(fe.compile("a.cpp"))),
            PDB(analyze(fe.compile("b.cpp"))),
        )

    def test_merge_dedupes_instantiations(self):
        pa, pb = self.make_pair()
        stats = pa.merge(pb)
        assert stats.duplicates_eliminated > 0
        boxes = [c for c in pa.getClassVec() if c.name() == "Box<int>"]
        assert len(boxes) == 1
        gs = [r for r in pa.getRoutineVec() if r.name() == "g"]
        assert len(gs) == 1

    def test_merge_keeps_distinct_entities(self):
        pa, pb = self.make_pair()
        pa.merge(pb)
        names = {r.name() for r in pa.getRoutineVec()}
        assert {"fa", "fb"} <= names

    def test_merge_remaps_references(self):
        pa, pb = self.make_pair()
        pa.merge(pb)
        fb = pa.findRoutine("fb")
        callee_names = {c.call().name() for c in fb.callees() if c.call()}
        assert "g" in callee_names or "Box<int>" in callee_names

    def test_merge_idempotent(self):
        pa, pb = self.make_pair()
        pa.merge(pb)
        n = len(pa.items())
        stats2 = pa.merge(pb)
        assert len(pa.items()) == n
        assert stats2.items_added == 0

    def test_merged_pdb_still_parses(self):
        from repro.pdbfmt import parse_pdb

        pa, pb = self.make_pair()
        pa.merge(pb)
        text = pa.to_text()
        assert parse_pdb(text).items

    def test_merge_no_dangling_refs(self):
        from repro.tools.pdbconv import check_pdb

        pa, pb = self.make_pair()
        pa.merge(pb)
        assert check_pdb(pa) == []


def _chain_call_pdb(n: int) -> str:
    """A call chain f0 -> f1 -> ... -> f{n-1}, as hand-written PDB text."""
    parts = ["<PDB 3.0>", "", "so#1 t.cpp", ""]
    for i in range(n):
        parts.append(f"ro#{i + 1} f{i}")
        parts.append(f"rloc so#1 {i + 1} 1")
        if i + 1 < n:
            parts.append(f"rcall ro#{i + 2} no so#1 {i + 1} 1")
        parts.append("")
    return "\n".join(parts)


def _chain_include_pdb(n: int) -> str:
    """An include chain h0 -> h1 -> ... -> h{n-1}."""
    parts = ["<PDB 3.0>", ""]
    for i in range(n):
        parts.append(f"so#{i + 1} h{i}.h")
        if i + 1 < n:
            parts.append(f"sinc so#{i + 2}")
        parts.append("")
    return "\n".join(parts)


def _diamond_ladder_pdb(levels: int) -> str:
    """A stack of inheritance diamonds: B0 <- {M1_i, M2_i} <- B_i.

    ``depth_of(B_levels)`` is 2*levels; without memoization the diamond
    sharing makes naive recursion visit 2^levels paths.
    """
    parts = ["<PDB 3.0>", "", "so#1 t.h", "", "cl#1 B0", "cloc so#1 1 1", ""]
    prev = 1
    nid = 1
    for lv in range(1, levels + 1):
        m1, m2, bot = nid + 1, nid + 2, nid + 3
        nid = bot
        for cid, name in ((m1, f"M1_{lv}"), (m2, f"M2_{lv}")):
            parts += [f"cl#{cid} {name}", f"cloc so#1 {cid} 1",
                      f"cbase pub no cl#{prev} so#1 {cid} 1", ""]
        parts += [f"cl#{bot} B{lv}", f"cloc so#1 {bot} 1",
                  f"cbase pub no cl#{m1} so#1 {bot} 1",
                  f"cbase pub no cl#{m2} so#1 {bot} 1", ""]
        prev = bot
    return "\n".join(parts)


class TestDerivedQueries:
    """PDB.callers_of / PDB.derived_of (paper's derived-structure queries)."""

    SRC = (
        "class A { public: virtual int v( ) { return 0; } };\n"
        "class B : public A { };\n"
        "class C : public B { };\n"
        "int leaf( ) { return 1; }\n"
        "int mid( ) { return leaf( ); }\n"
        "int main( ) { return mid( ) + leaf( ); }\n"
    )

    def test_callers_of(self):
        pdb = pdb_for(self.SRC)
        byname = {r.name(): r for r in pdb.getRoutineVec()}
        assert {r.name() for r in pdb.callers_of(byname["leaf"])} == {"mid", "main"}
        assert {r.name() for r in pdb.callers_of(byname["mid"])} == {"main"}
        assert pdb.callers_of(byname["main"]) == []

    def test_derived_of_is_direct_only(self):
        pdb = pdb_for(self.SRC)
        byname = {c.name(): c for c in pdb.getClassVec()}
        assert [c.name() for c in pdb.derived_of(byname["A"])] == ["B"]
        assert [c.name() for c in pdb.derived_of(byname["B"])] == ["C"]
        assert pdb.derived_of(byname["C"]) == []

    def test_callers_of_mutual_recursion(self):
        pdb = PDB.from_text(_chain_call_pdb(1).replace(
            "rloc so#1 1 1", "rloc so#1 1 1\nrcall ro#1 no so#1 1 1"))
        (f0,) = pdb.getRoutineVec()
        assert pdb.callers_of(f0) == [f0]


class TestPureCycleCallGraph:
    """A mutually-recursive cluster nothing calls: every routine is
    'called', so the call tree has no roots at all."""

    CYCLE = (
        "<PDB 3.0>\n\n"
        "so#1 t.cpp\n\n"
        "ro#1 ping\nrloc so#1 1 1\nrcall ro#2 no so#1 1 1\n\n"
        "ro#2 pong\nrloc so#1 2 1\nrcall ro#1 no so#1 2 1\n"
    )

    def test_no_roots(self):
        pdb = PDB.from_text(self.CYCLE)
        tree = pdb.getCallTree()
        assert tree.roots == []
        assert [row for r in tree.roots for row in tree.walk(r)] == []

    def test_callers_of_sees_cycle_edges(self):
        pdb = PDB.from_text(self.CYCLE)
        byname = {r.name(): r for r in pdb.getRoutineVec()}
        assert [r.name() for r in pdb.callers_of(byname["ping"])] == ["pong"]


class TestIterativeWalks:
    """CallTree.walk / InclusionTree.walk must survive chains far deeper
    than the Python recursion limit (they are explicit-stack walks)."""

    def test_deep_call_chain(self):
        import sys

        n = sys.getrecursionlimit() + 500
        pdb = PDB.from_text(_chain_call_pdb(n))
        tree = pdb.getCallTree()
        (root,) = tree.roots
        rows = list(tree.walk(root))
        assert len(rows) == n
        last, depth, cyclic, _virt = rows[-1]
        assert last.name() == f"f{n - 1}"
        assert depth == n - 2  # root is yielded at depth -1
        assert not cyclic

    def test_deep_include_chain(self):
        import sys

        n = sys.getrecursionlimit() + 500
        pdb = PDB.from_text(_chain_include_pdb(n))
        tree = pdb.getInclusionTree()
        (root,) = tree.roots
        rows = list(tree.walk(root))
        assert len(rows) == n
        assert rows[-1][0].name() == f"h{n - 1}.h"
        assert rows[-1][1] == n - 1

    def test_call_walk_flags_reset_when_abandoned(self):
        """Abandoning the generator mid-walk must not leave ACTIVE flags
        behind (the try/finally sweep)."""
        pdb = PDB.from_text(_chain_call_pdb(10))
        tree = pdb.getCallTree()
        (root,) = tree.roots
        g = tree.walk(root)
        next(g)
        next(g)
        g.close()
        assert len(list(tree.walk(root))) == 10


class TestDepthOf:
    def test_linear_chain(self):
        pdb = pdb_for(
            "class A { };\nclass B : public A { };\nclass C : public B { };\n"
        )
        h = pdb.getClassHierarchy()
        byname = {c.name(): c for c in pdb.getClassVec()}
        assert h.depth_of(byname["A"]) == 0
        assert h.depth_of(byname["C"]) == 2

    def test_diamond_ladder_is_polynomial(self):
        """30 stacked diamonds = 2^30 root-to-leaf paths; the memoized
        walk must answer instantly (and exactly)."""
        levels = 30
        pdb = PDB.from_text(_diamond_ladder_pdb(levels))
        h = pdb.getClassHierarchy()
        byname = {c.name(): c for c in pdb.getClassVec()}
        assert h.depth_of(byname[f"B{levels}"]) == 2 * levels
        # the memo now holds every class on the ladder
        assert len(h._depths) == 1 + 3 * levels

    def test_cycle_raises_value_error(self):
        import pytest

        text = (
            "<PDB 3.0>\n\n"
            "so#1 t.h\n\n"
            "cl#1 A\ncloc so#1 1 1\ncbase pub no cl#2 so#1 1 1\n\n"
            "cl#2 B\ncloc so#1 2 1\ncbase pub no cl#1 so#1 2 1\n"
        )
        pdb = PDB.from_text(text)
        h = pdb.getClassHierarchy()
        byname = {c.name(): c for c in pdb.getClassVec()}
        with pytest.raises(ValueError, match="class hierarchy cycle"):
            h.depth_of(byname["A"])
