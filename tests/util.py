"""Shared test helpers."""

from __future__ import annotations

from repro.cpp import Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.cpp.lexer import tokenize
from repro.cpp.preprocessor import Preprocessor
from repro.cpp.source import SourceFile, SourceManager
from repro.cpp.tokens import TokenKind


def lex(text: str):
    """Lex a string; returns tokens without the EOF."""
    f = SourceFile(name="test.cpp", text=text)
    return [t for t in tokenize(f) if t.kind is not TokenKind.EOF]


def preprocess(main: str, files: dict[str, str] | None = None, **kw):
    """Preprocess ``main`` (with optional extra files); returns
    (tokens-without-EOF, preprocessor)."""
    mgr = SourceManager()
    mgr.register_many(files or {})
    f = mgr.register("main.cpp", main)
    pp = Preprocessor(mgr, **kw)
    toks = pp.preprocess(f)
    return [t for t in toks if t.kind is not TokenKind.EOF], pp


def compile_source(
    main: str,
    files: dict[str, str] | None = None,
    mode: InstantiationMode = InstantiationMode.USED,
    include_paths: list[str] | None = None,
):
    """Compile a source string as main.cpp; returns the ILTree."""
    fe = Frontend(
        FrontendOptions(
            include_paths=include_paths or [], instantiation_mode=mode
        )
    )
    fe.register_files(files or {})
    fe.register_files({"main.cpp": main})
    return fe.compile("main.cpp")


def texts(tokens) -> list[str]:
    return [t.text for t in tokens]
