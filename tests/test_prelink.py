"""Prelink simulator tests (the EDG automatic scheme, paper Section 2)."""

import pytest

from repro.cpp import Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.cpp.prelink import PrelinkSimulator

SHARED = {
    "box.h": (
        "#ifndef BOX_H\n#define BOX_H\n"
        "template <class T> class Box {\n"
        "public:\n"
        "    Box() : v_(0) { }\n"
        "    T get() const { return v_; }\n"
        "    void set(const T& x) { v_ = x; }\n"
        "private:\n"
        "    T v_;\n"
        "};\n"
        "#endif\n"
    ),
    "a.cpp": '#include "box.h"\nint fa() { Box<int> b; b.set(1); return b.get(); }\n',
    "b.cpp": '#include "box.h"\nint fb() { Box<double> b; b.set(2.0); return 0; }\n',
}


def simulator():
    fe = Frontend(FrontendOptions(instantiation_mode=InstantiationMode.PRELINK))
    fe.register_files(SHARED)
    return PrelinkSimulator(fe)


class TestPrelinkLoop:
    def test_converges(self):
        result = simulator().run(["a.cpp", "b.cpp"])
        assert result.iterations >= 1
        assert result.total_instantiations >= 2  # Box<int>, Box<double>

    def test_recompiles_recorded(self):
        result = simulator().run(["a.cpp", "b.cpp"])
        assert result.total_recompiles >= 1
        recompiled = {name for r in result.rounds for name in r.recompiled}
        assert recompiled <= {"a.cpp", "b.cpp"}

    def test_il_has_no_instantiations(self):
        """The paper's point: the automatic scheme leaves the IL empty of
        instantiation subtrees."""
        result = simulator().run(["a.cpp", "b.cpp"])
        assert result.il_instantiation_count() == 0

    def test_used_mode_has_instantiations(self):
        fe = Frontend(FrontendOptions(instantiation_mode=InstantiationMode.USED))
        fe.register_files(SHARED)
        tree = fe.compile("a.cpp")
        visible = [
            c for c in tree.all_classes
            if c.is_instantiation and c.flags.get("il_visible", True)
        ]
        assert visible

    def test_wrong_mode_rejected(self):
        fe = Frontend(FrontendOptions(instantiation_mode=InstantiationMode.USED))
        with pytest.raises(AssertionError):
            PrelinkSimulator(fe)

    def test_object_files_carry_potential_lists(self):
        result = simulator().run(["a.cpp", "b.cpp"])
        a = next(o for o in result.objects if o.name == "a.cpp")
        assert any("Box<int>" in p for p in a.potential)
