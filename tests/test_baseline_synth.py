"""Sage++ baseline and synthetic corpus generator tests."""


from repro.baselines.sagepp import SageExtractor, extraction_accuracy
from repro.workloads.synth import SynthSpec, compile_synth, generate


class TestSynthGenerator:
    def test_deterministic(self):
        spec = SynthSpec(n_plain_classes=3, n_templates=2)
        assert generate(spec).files == generate(spec).files

    def test_compiles(self):
        tree, corpus = compile_synth(SynthSpec())
        assert tree.find_routine("main") is not None

    def test_expected_instantiations(self):
        spec = SynthSpec(n_templates=3, instantiations_per_template=2)
        tree, corpus = compile_synth(spec)
        inst = [c for c in tree.all_classes if c.is_instantiation]
        assert len(inst) == corpus.expected_class_instantiations

    def test_plain_classes(self):
        spec = SynthSpec(n_plain_classes=5)
        tree, corpus = compile_synth(spec)
        plains = [c for c in tree.all_classes if c.name.startswith("Plain")]
        assert len(plains) == 5

    def test_call_chain_depth(self):
        tree, _ = compile_synth(SynthSpec(call_depth=4))
        lvl0 = next(r for r in tree.all_routines if r.name == "level0" and r.is_instantiation)
        assert any(c.callee.name == "level1" for c in lvl0.calls)

    def test_multiple_tus(self):
        spec = SynthSpec(n_translation_units=3)
        corpus = generate(spec)
        assert len(corpus.main_files) == 3

    def test_scaling(self):
        small = generate(SynthSpec(n_plain_classes=2)).total_lines
        big = generate(SynthSpec(n_plain_classes=20)).total_lines
        assert big > small * 3


class TestSageBaseline:
    def test_finds_plain_functions(self):
        files = {"a.cpp": "int add(int a, int b) { return a + b; }\n"}
        res = SageExtractor().extract(files)
        assert "add" in res.routines

    def test_finds_classes(self):
        files = {"a.cpp": "class Widget { public: int x; };\n"}
        res = SageExtractor().extract(files)
        assert "Widget" in res.classes

    def test_finds_member_definitions(self):
        files = {
            "a.cpp": "class C { public: int m(); };\nint C::m() { return 1; }\n"
        }
        res = SageExtractor().extract(files)
        assert "m" in res.routines

    def test_ignores_keywords(self):
        files = {"a.cpp": "void f() { if (1) { } while (0) { } }\n"}
        res = SageExtractor().extract(files)
        assert "if" not in res.routines and "while" not in res.routines

    def test_fails_on_templated_qualifier(self):
        files = {
            "a.cpp": (
                "template <class T> class S { public: void push(const T& x); };\n"
                "template <class T> void S<T>::push(const T& x) { }\n"
            )
        }
        res = SageExtractor().extract(files)
        assert "push" not in res.routines
        assert res.parse_failures >= 1

    def test_no_instantiations_ever(self):
        files = {
            "a.cpp": (
                "template <class T> class S { public: T g() { return 0; } };\n"
                "int main() { S<int> s; return s.g(); }\n"
            )
        }
        res = SageExtractor().extract(files)
        assert not any("<" in r for r in res.routines)

    def test_accuracy_on_plain_code_is_high(self):
        spec = SynthSpec(n_templates=0, call_depth=0, n_plain_classes=5)
        tree, corpus = compile_synth(spec)
        res = SageExtractor().extract(corpus.files)
        truth = {r.name for r in tree.all_routines if r.defined}
        acc = extraction_accuracy(res, truth)
        assert acc.recall >= 0.9

    def test_accuracy_degrades_with_templates(self):
        """The paper's qualitative claim, quantified (bench E7)."""
        plain_spec = SynthSpec(n_templates=0, call_depth=0, n_plain_classes=6)
        heavy_spec = SynthSpec(n_templates=6, call_depth=6, n_plain_classes=0,
                               instantiations_per_template=2)
        recalls = []
        for spec in (plain_spec, heavy_spec):
            tree, corpus = compile_synth(spec)
            res = SageExtractor().extract(corpus.files)
            truth = {r.name for r in tree.all_routines if r.defined}
            recalls.append(extraction_accuracy(res, truth).recall)
        assert recalls[1] < recalls[0]

    def test_pdt_is_complete_on_the_same_corpus(self):
        spec = SynthSpec(n_templates=6, call_depth=6, n_plain_classes=0)
        tree, corpus = compile_synth(spec)
        defined = {r.name.split("<")[0] for r in tree.all_routines if r.defined}
        expected = {n for n in corpus.routine_names}
        # every generated routine that main exercises is present
        assert {"get", "set", "combine", "level0"} <= defined
