"""Tool tests: pdbconv, pdbtree, pdbhtml, pdbmerge, cxxparse CLIs."""


import pytest

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.tools.pdbconv import check_pdb, convert_pdb
from repro.tools.pdbhtml import generate_html
from repro.tools.pdbtree import (
    print_func_tree,
    render_call_tree,
    render_class_tree,
    render_inclusion_tree,
)
from repro.workloads.stack import compile_stack, stack_files
from tests.util import compile_source


@pytest.fixture(scope="module")
def stack_pdb() -> PDB:
    return PDB(analyze(compile_stack()))


class TestPdbConv:
    def test_readable_output(self, stack_pdb):
        text = convert_pdb(stack_pdb)
        assert "Program database, format 1.0" in text
        assert 'CLASS cl#' in text
        assert 'ROUTINE ro#' in text
        assert "location:" in text

    def test_references_humanised(self, stack_pdb):
        text = convert_pdb(stack_pdb)
        # references carry the target's name: ro#N[push]
        assert "[push]" in text

    def test_check_clean_pdb(self, stack_pdb):
        assert check_pdb(stack_pdb) == []

    def test_check_detects_dangling_ref(self):
        pdb = PDB.from_text("<PDB 1.0>\nro#1 f\nrcall ro#99 no NULL 0 0\n")
        problems = check_pdb(pdb)
        assert any("dangling" in p for p in problems)

    def test_check_detects_unknown_attribute(self):
        pdb = PDB.from_text("<PDB 1.0>\nro#1 f\nrbogus x\n")
        assert any("unknown attribute" in p for p in check_pdb(pdb))

    def test_cli(self, stack_pdb, tmp_path):
        from repro.tools.pdbconv import main

        src = tmp_path / "x.pdb"
        out = tmp_path / "x.txt"
        src.write_text(stack_pdb.to_text())
        assert main([str(src), "-o", str(out)]) == 0
        assert "ROUTINE" in out.read_text()

    def test_cli_check_mode(self, stack_pdb, tmp_path):
        from repro.tools.pdbconv import main

        src = tmp_path / "x.pdb"
        src.write_text(stack_pdb.to_text())
        assert main([str(src), "--check"]) == 0


class TestPdbTree:
    def test_figure5_call_tree_shape(self, stack_pdb):
        """The pdbtree output format of paper Figure 5."""
        out = render_call_tree(stack_pdb, "main")
        lines = out.splitlines()
        assert lines[0] == "main"
        assert any(line.startswith("`--> ") for line in lines)
        assert "`--> Stack<int>::push" in out
        # template-instantiated functions appear in the callee vectors
        assert "Stack<int>::isFull" in out

    def test_indentation_grows_with_depth(self, stack_pdb):
        out = render_call_tree(stack_pdb, "main")
        push_line = next(l for l in out.splitlines() if "push" in l)
        isfull_line = next(l for l in out.splitlines() if "isFull" in l)
        assert len(isfull_line) - len(isfull_line.lstrip()) > len(push_line) - len(
            push_line.lstrip()
        )

    def test_virtual_tag(self):
        pdb = PDB(
            analyze(
                compile_source(
                    "class B { public: virtual void v() { } };\n"
                    "int main() { B* b = new B(); b->v(); return 0; }"
                )
            )
        )
        out = render_call_tree(pdb, "main")
        assert "(VIRTUAL)" in out

    def test_cycle_marker(self):
        pdb = PDB(
            analyze(
                compile_source(
                    "int pong(int n);\n"
                    "int ping(int n) { return pong(n); }\n"
                    "int pong(int n) { return ping(n); }\n"
                    "int main() { return ping(3); }"
                )
            )
        )
        out = render_call_tree(pdb, "main")
        assert " ..." in out

    def test_print_func_tree_resets_flags(self, stack_pdb):
        main = stack_pdb.findRoutine("main")
        out: list = []
        print_func_tree(main, 1, out)
        assert all(r.flag() == 0 for r in stack_pdb.getRoutineVec())

    def test_inclusion_tree_render(self, stack_pdb):
        out = render_inclusion_tree(stack_pdb)
        assert "TestStackAr.cpp" in out.splitlines()[0]
        assert "`--> StackAr.h" in out
        assert "StackAr.cpp" in out

    def test_class_tree_render(self):
        pdb = PDB(
            analyze(compile_source("class A {};\nclass B : public A {};"))
        )
        out = render_class_tree(pdb)
        assert "A" in out and "`--> B" in out

    def test_cli(self, stack_pdb, tmp_path):
        from repro.tools.pdbtree import main

        src = tmp_path / "x.pdb"
        src.write_text(stack_pdb.to_text())
        assert main([str(src), "-t", "calls", "-r", "main"]) == 0


class TestPdbHtml:
    def test_generates_pages(self, stack_pdb, tmp_path):
        written = generate_html(stack_pdb, str(tmp_path))
        assert "index.html" in written
        assert len(written) > 20
        index = (tmp_path / "index.html").read_text()
        assert "Stack&lt;int&gt;" in index or "Stack<int>" in index

    def test_class_page_links(self, stack_pdb, tmp_path):
        generate_html(stack_pdb, str(tmp_path))
        cls = stack_pdb.findClass("Stack<int>")
        page = (tmp_path / f"cl_{cls.id()}.html").read_text()
        assert "push" in page
        assert "theArray" in page
        assert "Instantiated from template" in page

    def test_routine_page_shows_calls(self, stack_pdb, tmp_path):
        generate_html(stack_pdb, str(tmp_path))
        push = stack_pdb.findRoutine("Stack<int>::push")
        page = (tmp_path / f"ro_{push.id()}.html").read_text()
        assert "Calls" in page and "isFull" in page
        assert "Called by" in page

    def test_all_links_resolve(self, stack_pdb, tmp_path):
        import re

        written = set(generate_html(stack_pdb, str(tmp_path)))
        for name in written:
            html_text = (tmp_path / name).read_text()
            for target in re.findall(r"href='([^']+)'|href=\"([^\"]+)\"", html_text):
                t = (target[0] or target[1]).split("#")[0]
                assert t in written, f"{name} links to missing {t}"

    def test_cli(self, stack_pdb, tmp_path):
        from repro.tools.pdbhtml import main

        src = tmp_path / "x.pdb"
        src.write_text(stack_pdb.to_text())
        outdir = tmp_path / "html"
        assert main([str(src), "-o", str(outdir)]) == 0
        assert (outdir / "index.html").exists()


class TestPdbMergeCli:
    def test_cli_merges(self, tmp_path):
        from repro.cpp import Frontend, FrontendOptions
        from repro.tools.pdbmerge import main
        from repro.workloads.stl import KAI_INCLUDE_DIR

        files = dict(stack_files())
        files["Second.cpp"] = (
            '#include "StackAr.h"\n'
            "int second() { Stack<int> s; s.push(1); return 0; }\n"
        )
        fe = Frontend(FrontendOptions(include_paths=[KAI_INCLUDE_DIR]))
        fe.register_files(files)
        p1 = PDB(analyze(fe.compile("TestStackAr.cpp")))
        p2 = PDB(analyze(fe.compile("Second.cpp")))
        f1, f2, out = tmp_path / "1.pdb", tmp_path / "2.pdb", tmp_path / "m.pdb"
        f1.write_text(p1.to_text())
        f2.write_text(p2.to_text())
        assert main([str(f1), str(f2), "-o", str(out), "-v"]) == 0
        merged = PDB.read(str(out))
        stacks = [c for c in merged.getClassVec() if c.name() == "Stack<int>"]
        assert len(stacks) == 1
        assert merged.findRoutine("second") is not None


class TestCxxParse:
    def test_cli_produces_pdb(self, tmp_path):
        from repro.tools.cxxparse import main

        src = tmp_path / "hello.cpp"
        src.write_text("int helper() { return 1; }\nint main() { return helper(); }\n")
        out = tmp_path / "hello.pdb"
        assert main([str(src), "-o", str(out)]) == 0
        pdb = PDB.read(str(out))
        assert pdb.findRoutine("main") is not None


class TestPdbHtmlSourcePages:
    def test_annotated_source_with_anchors(self, stack_pdb, tmp_path):
        sources = stack_files()
        generate_html(stack_pdb, str(tmp_path), sources=sources)
        header = next(
            f for f in stack_pdb.getFileVec() if f.name() == "StackAr.h"
        )
        page = (tmp_path / f"so_{header.id()}.html").read_text()
        assert "<a id='L1'>" in page
        assert "template &lt;class Object&gt;" in page

    def test_item_locations_link_to_source_lines(self, stack_pdb, tmp_path):
        generate_html(stack_pdb, str(tmp_path), sources=stack_files())
        push = stack_pdb.findRoutine("Stack<int>::push")
        page = (tmp_path / f"ro_{push.id()}.html").read_text()
        loc = push.location()
        assert f"#L{loc.line()}" in page
