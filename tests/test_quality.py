"""Repository-level quality gates: public API documentation and
package layout invariants."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.cpp",
    "repro.pdbfmt",
    "repro.analyzer",
    "repro.ductape",
    "repro.tools",
    "repro.tau",
    "repro.siloon",
    "repro.fortran",
    "repro.java",
    "repro.baselines",
    "repro.workloads",
]


def all_modules():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                out.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    return out


@pytest.mark.parametrize("module", all_modules(), ids=lambda m: m.__name__)
def test_every_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


def public_classes_and_functions():
    out = []
    for module in all_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports documented at their definition
            if inspect.isclass(obj) or inspect.isfunction(obj):
                out.append((f"{module.__name__}.{name}", obj))
    return out


@pytest.mark.parametrize(
    "qualname,obj", public_classes_and_functions(), ids=lambda x: x if isinstance(x, str) else ""
)
def test_public_items_documented(qualname, obj):
    assert obj.__doc__ and obj.__doc__.strip(), f"{qualname} lacks a doc comment"


def test_version_exposed():
    assert repro.__version__


def test_public_api_importable():
    from repro import (  # noqa: F401
        Frontend,
        FrontendOptions,
        ILAnalyzer,
        InstantiationMode,
        PDB,
        PdbDocument,
        analyze,
        parse_pdb,
        write_pdb,
    )


def test_entry_points_resolve():
    """Every console script declared in pyproject must import and expose
    a main() callable."""
    import tomllib

    with open("pyproject.toml", "rb") as f:
        data = tomllib.load(f)
    for name, target in data["project"]["scripts"].items():
        module_name, _, attr = target.partition(":")
        module = importlib.import_module(module_name)
        assert callable(getattr(module, attr)), f"{name} -> {target} not callable"
