"""Whole-pipeline differential sweep: every corpus, both instantiation
modes, through compile -> analyze -> validate -> round trip."""

import pytest

from repro.analyzer import analyze
from repro.cpp.instantiate import InstantiationMode
from repro.ductape.pdb import PDB
from repro.pdbfmt import parse_pdb, write_pdb
from repro.tools.pdbconv import check_pdb

CORPORA = {
    "stack": lambda mode: __import__(
        "repro.workloads.stack", fromlist=["compile_stack"]
    ).compile_stack(mode),
    "pooma": lambda mode: __import__(
        "repro.workloads.pooma", fromlist=["compile_pooma"]
    ).compile_pooma(mode),
    "synth": lambda mode: __import__(
        "repro.workloads.synth", fromlist=["compile_synth"]
    ).compile_synth(
        __import__("repro.workloads.synth", fromlist=["SynthSpec"]).SynthSpec(
            n_templates=3, instantiations_per_template=2, call_depth=3
        ),
        mode=mode,
    )[0],
}

MODES = [InstantiationMode.USED, InstantiationMode.ALL]


@pytest.mark.parametrize("corpus", sorted(CORPORA))
@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_pipeline_sweep(corpus, mode):
    tree = CORPORA[corpus](mode)
    doc = analyze(tree)
    # every PDB is schema-clean with no dangling references
    pdb = PDB(doc)
    assert check_pdb(pdb) == [], f"{corpus}/{mode.value} PDB invalid"
    # write -> parse -> write is the identity
    text = write_pdb(doc)
    assert write_pdb(parse_pdb(text)) == text
    # DUCTAPE loads and navigates it
    loaded = PDB.from_text(text)
    assert len(loaded.items()) == len(doc.items)
    for r in loaded.getRoutineVec():
        for call in r.callees():
            assert call.call() is not None


@pytest.mark.parametrize("corpus", sorted(CORPORA))
def test_used_mode_call_graph_subset_of_all(corpus):
    """Every call edge extracted under USED also exists under ALL."""

    def edges(tree):
        out = set()
        for r in tree.all_routines:
            for c in r.calls:
                out.add((r.full_name, c.callee.full_name))
        return out

    used = edges(CORPORA[corpus](InstantiationMode.USED))
    full = edges(CORPORA[corpus](InstantiationMode.ALL))
    assert used <= full


def test_multi_source_cxxparse(tmp_path):
    """cxxparse over multiple TUs auto-merges (the PDT build workflow)."""
    from repro.tools.cxxparse import main

    (tmp_path / "box.h").write_text(
        "#ifndef BOX_H\n#define BOX_H\n"
        "template <class T> class Box { public: T g() { return 0; } };\n"
        "#endif\n"
    )
    (tmp_path / "a.cpp").write_text('#include "box.h"\nint fa() { Box<int> b; return b.g(); }\n')
    (tmp_path / "b.cpp").write_text('#include "box.h"\nint fb() { Box<int> b; return b.g(); }\n')
    out = tmp_path / "all.pdb"
    rc = main([str(tmp_path / "a.cpp"), str(tmp_path / "b.cpp"), "-o", str(out)])
    assert rc == 0
    pdb = PDB.read(str(out))
    assert pdb.findRoutine("fa") is not None
    assert pdb.findRoutine("fb") is not None
    boxes = [c for c in pdb.getClassVec() if c.name() == "Box<int>"]
    assert len(boxes) == 1  # merged, duplicate instantiation eliminated
    assert check_pdb(pdb) == []
