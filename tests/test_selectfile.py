"""Tests for TAU select files and throttling."""

import pytest

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.tau.runtime import TimerStats
from repro.tau.selectfile import SelectiveRules, throttle
from repro.tau.selector import select_instrumentation
from repro.workloads.stack import compile_stack


@pytest.fixture(scope="module")
def stack_points():
    pdb = PDB(analyze(compile_stack()))
    return select_instrumentation(pdb)


class TestParsing:
    def test_sections(self):
        rules = SelectiveRules.parse(
            "BEGIN_EXCLUDE_LIST\nvector#\nEND_EXCLUDE_LIST\n"
            "BEGIN_FILE_INCLUDE_LIST\n*.cpp\nEND_FILE_INCLUDE_LIST\n"
        )
        assert rules.exclude == ["vector#"]
        assert rules.file_include == ["*.cpp"]

    def test_comments_and_blanks(self):
        rules = SelectiveRules.parse(
            "# this is a comment\n\n"
            "BEGIN_EXCLUDE_LIST\n"
            "# another comment\n"
            "foo#\n"
            "END_EXCLUDE_LIST\n"
        )
        assert rules.exclude == ["foo#"]

    def test_missing_end_rejected(self):
        with pytest.raises(ValueError, match="missing END_EXCLUDE_LIST"):
            SelectiveRules.parse("BEGIN_EXCLUDE_LIST\nfoo\n")

    def test_stray_line_rejected(self):
        with pytest.raises(ValueError, match="BEGIN"):
            SelectiveRules.parse("random_pattern\n")


class TestMatching:
    def test_hash_wildcard(self):
        r = SelectiveRules(exclude=["vector#"])
        assert not r.allows_routine("vector::push_back()")
        assert r.allows_routine("Stack::push()")

    def test_hash_mid_pattern(self):
        r = SelectiveRules(exclude=["Stack::#Pop#"])
        assert not r.allows_routine("Stack::topAndPop()")
        assert r.allows_routine("Stack::push()")

    def test_include_list_is_exhaustive(self):
        r = SelectiveRules(include=["Stack#"])
        assert r.allows_routine("Stack::push()")
        assert not r.allows_routine("vector::size()")

    def test_file_globs(self):
        r = SelectiveRules(file_include=["*.cpp"])
        assert r.allows_file("StackAr.cpp")
        assert not r.allows_file("/pdt/include/kai/vector.h")

    def test_file_exclude(self):
        r = SelectiveRules(file_exclude=["/pdt/include/*"])
        assert not r.allows_file("/pdt/include/kai/vector.h")
        assert r.allows_file("StackAr.cpp")


class TestApply:
    def test_exclude_library_headers(self, stack_points):
        rules = SelectiveRules.parse(
            "BEGIN_FILE_EXCLUDE_LIST\n/pdt/include/*\nEND_FILE_EXCLUDE_LIST\n"
        )
        filtered = rules.apply(stack_points)
        assert filtered
        assert all("/pdt/include" not in p.file_name for p in filtered)
        assert len(filtered) < len(stack_points)

    def test_exclude_routine_family(self, stack_points):
        rules = SelectiveRules.parse(
            "BEGIN_EXCLUDE_LIST\nvector#\nostream#\nistream#\nEND_EXCLUDE_LIST\n"
        )
        filtered = rules.apply(stack_points)
        names = [p.timer_name() for p in filtered]
        assert not any(n.startswith("vector") for n in names)
        assert any(n.startswith("Stack") for n in names)

    def test_include_only_stack(self, stack_points):
        rules = SelectiveRules.parse(
            "BEGIN_INCLUDE_LIST\nStack#\nEND_INCLUDE_LIST\n"
        )
        filtered = rules.apply(stack_points)
        assert filtered
        assert all(p.timer_name().startswith("Stack") for p in filtered)


class TestThrottle:
    def make_stats(self):
        hot = TimerStats(name="kernel", calls=10, inclusive=5000.0, exclusive=5000.0)
        tiny = TimerStats(
            name="operator[]", calls=1_000_000, inclusive=2_000_000.0, exclusive=2_000_000.0
        )  # 2 usec/call
        return {"kernel": hot, "operator[]": tiny}

    def test_throttles_high_frequency_cheap_timers(self):
        kept, throttled = throttle(self.make_stats(), calls_threshold=100_000,
                                   percall_threshold_usec=10.0)
        assert throttled == ["operator[]"]
        assert set(kept) == {"kernel"}

    def test_keeps_expensive_high_frequency(self):
        stats = self.make_stats()
        stats["operator[]"].inclusive = 100_000_000.0  # 100 usec/call
        kept, throttled = throttle(stats)
        assert throttled == []

    def test_keeps_low_frequency(self):
        kept, throttled = throttle(self.make_stats(), calls_threshold=10_000_000)
        assert throttled == []


class TestTauInstrCli:
    def test_cli_with_select_file(self, tmp_path):
        from repro.tau.cli import main
        from repro.workloads.stack import stack_files

        src_dir = tmp_path / "src"
        src_dir.mkdir()
        # materialise the whole corpus on disk with a flat include layout
        flat = {}
        for name, text in stack_files().items():
            base = name.rsplit("/", 1)[-1]
            flat[base] = text
        for base, text in flat.items():
            (src_dir / base).write_text(text)
        select = tmp_path / "select.tau"
        select.write_text(
            "BEGIN_EXCLUDE_LIST\nvector#\nostream#\nistream#\nEND_EXCLUDE_LIST\n"
        )
        outdir = tmp_path / "out"
        rc = main(
            [
                str(src_dir / "TestStackAr.cpp"),
                "-I", str(src_dir),
                "-o", str(outdir),
                "--select", str(select),
                "--run",
            ]
        )
        assert rc == 0
        rewritten = (outdir / "vector.h").read_text()
        assert "TAU_PROFILE(\"vector" not in rewritten
        stack_cpp = (outdir / "StackAr.cpp").read_text()
        assert 'TAU_PROFILE("Stack::push()"' in stack_cpp
