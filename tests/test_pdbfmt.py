"""PDB format tests: writer, reader, round trips."""

import pytest

from repro.pdbfmt import (
    ItemRef,
    PdbDocument,
    PdbLocation,
    PdbParseError,
    RawItem,
    parse_pdb,
    write_pdb,
)
from repro.pdbfmt.spec import ATTRIBUTE_SCHEMAS, ITEM_TYPES


def sample_doc() -> PdbDocument:
    doc = PdbDocument()
    so = doc.add(RawItem("so", 1, "main.cpp"))
    so.add("sinc", "so#2")
    doc.add(RawItem("so", 2, "lib.h"))
    ro = doc.add(RawItem("ro", 1, "main"))
    ro.add("rloc", "so#1", 3, 5)
    ro.add("racs", "NA")
    ro.add("rcall", "ro#2", "no", "so#1", 4, 9)
    ro.add("rpos", "so#1", 3, 1, "so#1", 3, 10, "so#1", 3, 12, "so#1", 6, 1)
    ro2 = doc.add(RawItem("ro", 2, "helper"))
    ro2.add("rloc", "so#2", 1, 5)
    te = doc.add(RawItem("te", 1, "Stack"))
    te.add_text("ttext", "template <class T> class Stack { };")
    return doc


class TestItemRef:
    def test_parse(self):
        ref = ItemRef.parse("so#66")
        assert ref == ItemRef("so", 66)

    def test_str(self):
        assert str(ItemRef("ro", 7)) == "ro#7"

    def test_null(self):
        assert ItemRef.parse("NULL") is None

    def test_malformed(self):
        with pytest.raises(ValueError):
            ItemRef.parse("plainword")


class TestLocation:
    def test_str(self):
        loc = PdbLocation(ItemRef("so", 66), 23, 15)
        assert str(loc) == "so#66 23 15"

    def test_null_renders(self):
        assert str(PdbLocation.null()) == "NULL 0 0"


class TestWriter:
    def test_header(self):
        text = write_pdb(PdbDocument())
        assert text.startswith("<PDB 1.0>")

    def test_item_lines(self):
        text = write_pdb(sample_doc())
        assert "so#1 main.cpp" in text
        assert "sinc so#2" in text
        assert "rcall ro#2 no so#1 4 9" in text

    def test_text_attribute_verbatim(self):
        text = write_pdb(sample_doc())
        assert "ttext template <class T> class Stack { };" in text

    def test_deterministic(self):
        assert write_pdb(sample_doc()) == write_pdb(sample_doc())


class TestReader:
    def test_round_trip(self):
        text = write_pdb(sample_doc())
        doc2 = parse_pdb(text)
        assert write_pdb(doc2) == text

    def test_counts(self):
        doc = parse_pdb(write_pdb(sample_doc()))
        assert len(doc.by_prefix("so")) == 2
        assert len(doc.by_prefix("ro")) == 2
        assert len(doc.by_prefix("te")) == 1

    def test_find(self):
        doc = parse_pdb(write_pdb(sample_doc()))
        item = doc.find(ItemRef("ro", 1))
        assert item is not None and item.name == "main"

    def test_get_ref(self):
        doc = parse_pdb(write_pdb(sample_doc()))
        so1 = doc.find(ItemRef("so", 1))
        assert so1.get_ref("sinc") == ItemRef("so", 2)

    def test_get_location(self):
        doc = parse_pdb(write_pdb(sample_doc()))
        ro = doc.find(ItemRef("ro", 1))
        loc = ro.get_location("rloc")
        assert (loc.file, loc.line, loc.column) == (ItemRef("so", 1), 3, 5)

    def test_get_positions(self):
        doc = parse_pdb(write_pdb(sample_doc()))
        ro = doc.find(ItemRef("ro", 1))
        locs = ro.get_positions("rpos")
        assert len(locs) == 4
        assert locs[3].line == 6

    def test_unknown_attribute_preserved(self):
        text = "<PDB 1.0>\n\nro#1 f\nrfancy a b c\n"
        doc = parse_pdb(text)
        assert doc.items[0].get("rfancy").words == ["a", "b", "c"]

    def test_blank_lines_optional(self):
        text = "<PDB 1.0>\nso#1 a.cpp\nso#2 b.cpp\n"
        assert len(parse_pdb(text).items) == 2

    def test_missing_header_rejected(self):
        with pytest.raises(PdbParseError, match="header"):
            parse_pdb("so#1 a.cpp\n")

    def test_attribute_outside_item_rejected(self):
        with pytest.raises(PdbParseError, match="outside"):
            parse_pdb("<PDB 1.0>\nsinc so#2\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(PdbParseError, match="duplicate"):
            parse_pdb("<PDB 1.0>\n<PDB 1.0>\n")

    def test_empty_input_rejected(self):
        with pytest.raises(PdbParseError):
            parse_pdb("")

    def test_version_parsed(self):
        assert parse_pdb("<PDB 2.5>\n").version == "2.5"


class TestLazyAttributes:
    """The fast reader defers attribute materialisation per item."""

    def test_parse_defers_materialisation(self):
        doc = parse_pdb(write_pdb(sample_doc()))
        ro = doc.find(ItemRef("ro", 1))
        assert ro._attrs is None and ro._raw is not None
        attrs = ro.attributes  # first touch materialises...
        assert ro._attrs is attrs and ro._raw is None
        assert ro.attributes is attrs  # ...exactly once

    def test_mutation_after_parse_sticks(self):
        doc = parse_pdb(write_pdb(sample_doc()))
        ro = doc.find(ItemRef("ro", 2))
        ro.add("racs", "PUB")
        assert ro.get("racs").words == ["PUB"]
        assert "racs PUB" in write_pdb(doc)

    def test_lazy_and_eager_items_compare_equal(self):
        eager = sample_doc().find(ItemRef("ro", 1))
        lazy = parse_pdb(write_pdb(sample_doc())).find(ItemRef("ro", 1))
        assert lazy == eager

    def test_constructed_items_stay_eager(self):
        item = RawItem("ro", 9, "f")
        assert item._attrs == [] and item._raw is None
        item.add("rloc", "so#1", 1, 1)
        assert len(item.attributes) == 1


class TestSpec:
    def test_table1_prefixes(self):
        """Paper Table 1's prefix column, exactly, plus this repro's
        ``ferr`` extension for fault-tolerant builds."""
        assert ITEM_TYPES == {
            "so": "SOURCE FILES",
            "ro": "ROUTINES",
            "cl": "CLASSES",
            "ty": "TYPES",
            "te": "TEMPLATES",
            "na": "NAMESPACES",
            "ma": "MACROS",
            "ferr": "FRONTEND ERRORS",
        }

    def test_every_prefix_has_schema(self):
        assert set(ATTRIBUTE_SCHEMAS) == set(ITEM_TYPES)

    def test_attribute_keys_use_prefix_letter(self):
        # each item type's attribute keys start with a letter tied to the
        # prefix ("distinguishing prefixes for common item attributes")
        first = {
            "so": "s", "ro": "r", "cl": "c", "ty": "y",
            "te": "t", "na": "n", "ma": "m", "ferr": "f",
        }
        for prefix, attrs in ATTRIBUTE_SCHEMAS.items():
            for key in attrs:
                assert key.startswith(first[prefix]), (prefix, key)
