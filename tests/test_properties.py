"""Property-based tests (hypothesis) on core invariants."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpp.lexer import tokenize
from repro.cpp.source import SourceFile
from repro.cpp.tokens import TokenKind, tokens_to_text
from repro.pdbfmt import PdbDocument, RawItem, parse_pdb, write_pdb
from repro.siloon.mangler import demangle_hint, mangle_text
from repro.tau.runtime import Profiler, ThreadProfile

# ---------------------------------------------------------------- lexer

ident = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True)
number = st.integers(min_value=0, max_value=10**9).map(str)
punct = st.sampled_from(["(", ")", "{", "}", ";", ",", "+", "-", "*", "::", "<<", "->"])
token_text = st.one_of(ident, number, punct)


@given(st.lists(token_text, min_size=0, max_size=30))
@settings(max_examples=200)
def test_lexer_token_stream_roundtrip(parts):
    """Lexing space-joined tokens preserves count and text."""
    src = " ".join(parts)
    toks = [t for t in tokenize(SourceFile(name="p", text=src)) if t.kind is not TokenKind.EOF]
    assert [t.text for t in toks] == parts


@given(st.lists(token_text, min_size=1, max_size=30))
@settings(max_examples=100)
def test_tokens_to_text_relex_fixpoint(parts):
    """text -> tokens -> text -> tokens is stable."""
    src = " ".join(parts)
    toks1 = tokenize(SourceFile(name="p", text=src))
    text1 = tokens_to_text(toks1)
    toks2 = tokenize(SourceFile(name="p", text=text1))
    assert [t.text for t in toks1] == [t.text for t in toks2]


@given(st.text(alphabet=string.printable, max_size=200))
@settings(max_examples=200)
def test_lexer_terminates_or_errors(text):
    """The lexer never hangs: it either tokenises or raises CppError."""
    from repro.cpp.diagnostics import CppError

    try:
        toks = tokenize(SourceFile(name="p", text=text))
    except CppError:
        return
    assert toks[-1].kind is TokenKind.EOF


# ---------------------------------------------------------------- PDB format

pdb_name = st.from_regex(r"[A-Za-z_][A-Za-z0-9_:<>,]{0,15}", fullmatch=True)
attr_word = st.one_of(
    st.from_regex(r"[a-z0-9#]{1,8}", fullmatch=True),
    st.sampled_from(["so#1", "ro#2", "NULL", "pub", "no"]),
)


@st.composite
def pdb_documents(draw):
    doc = PdbDocument()
    n = draw(st.integers(min_value=0, max_value=8))
    counters: dict[str, int] = {}
    for _ in range(n):
        prefix = draw(st.sampled_from(["so", "ro", "cl", "ty", "te", "na", "ma"]))
        counters[prefix] = counters.get(prefix, 0) + 1
        item = RawItem(prefix, counters[prefix], draw(pdb_name))
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            key = prefix[0] + draw(st.from_regex(r"[a-z]{2,6}", fullmatch=True))
            words = draw(st.lists(attr_word, min_size=1, max_size=4))
            item.add(key, *words)
        doc.add(item)
    return doc


@given(pdb_documents())
@settings(max_examples=150)
def test_pdb_write_parse_roundtrip(doc):
    """write -> parse -> write is the identity on PDB text."""
    text = write_pdb(doc)
    assert write_pdb(parse_pdb(text)) == text


@given(pdb_documents())
@settings(max_examples=50)
def test_pdb_parse_preserves_item_count(doc):
    text = write_pdb(doc)
    assert len(parse_pdb(text).items) == len(doc.items)


# ---------------------------------------------------------------- mangler

cpp_name = st.text(
    alphabet=string.ascii_letters + string.digits + "_<>,:~()&* []=+-!%|^/",
    min_size=1,
    max_size=40,
)


@given(cpp_name)
@settings(max_examples=300)
def test_mangle_roundtrip(name):
    """The mangling is invertible (hence injective)."""
    assert demangle_hint(mangle_text(name)) == name


@given(cpp_name)
@settings(max_examples=200)
def test_mangle_produces_identifier(name):
    assert mangle_text(name).isidentifier()


@given(st.lists(cpp_name, min_size=2, max_size=10, unique=True))
@settings(max_examples=100)
def test_mangle_injective_on_sets(names):
    assert len({mangle_text(n) for n in names}) == len(names)


# ---------------------------------------------------------------- TAU runtime

@st.composite
def timer_scripts(draw):
    """Random well-nested timer scripts: (op, arg) sequences."""
    script = []
    depth = 0
    names = ["a", "b", "c", "d"]
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        choices = ["advance"]
        if depth < 6:
            choices.append("start")
        if depth > 0:
            choices.append("stop")
        op = draw(st.sampled_from(choices))
        if op == "start":
            script.append(("start", draw(st.sampled_from(names))))
            depth += 1
        elif op == "stop":
            script.append(("stop", None))
            depth -= 1
        else:
            script.append(("advance", draw(st.floats(min_value=0, max_value=100))))
    for _ in range(depth):
        script.append(("stop", None))
    return script


@given(timer_scripts())
@settings(max_examples=200)
def test_runtime_invariants(script):
    """inclusive >= exclusive >= 0; nothing exceeds total time; exclusive
    sums to total elapsed while timers were running."""
    p = ThreadProfile()
    for op, arg in script:
        if op == "start":
            p.start(arg)
        elif op == "stop":
            p.stop()
        else:
            p.advance(arg)
    p.check_consistency()


@given(timer_scripts())
@settings(max_examples=100)
def test_runtime_call_balance(script):
    """Each timer's call count equals the number of starts."""
    p = ThreadProfile()
    starts: dict[str, int] = {}
    for op, arg in script:
        if op == "start":
            p.start(arg)
            starts[arg] = starts.get(arg, 0) + 1
        elif op == "stop":
            p.stop()
        else:
            p.advance(arg)
    for name, t in p.timers.items():
        assert t.calls == starts.get(name, 0)


@st.composite
def open_timer_scripts(draw):
    """Timer scripts that may end with timers still running (no
    auto-close): models a run snapshotted before completion."""
    script = draw(timer_scripts())
    # peel off the balancing stops timer_scripts appended at the end
    while script and script[-1] == ("stop", None):
        if draw(st.booleans()):
            break
        script.pop()
    return script


def _run_script(script):
    p = ThreadProfile()
    for op, arg in script:
        if op == "start":
            p.start(arg)
        elif op == "stop":
            p.stop()
        else:
            p.advance(arg)
    return p


@given(open_timer_scripts())
@settings(max_examples=200)
def test_runtime_dangling_stop_all(script):
    """stop_all unwinds any dangling timers; the result satisfies the
    usual consistency invariants, and matches the non-mutating
    snapshot taken just before."""
    p = _run_script(script)
    snap = p.snapshot_timers()
    p.check_consistency()  # consistency holds even with timers running
    p.stop_all()
    assert p.depth == 0
    p.check_consistency()
    for name, t in p.timers.items():
        assert t.inclusive == pytest.approx(snap[name].inclusive)
        assert t.exclusive == pytest.approx(snap[name].exclusive)


@given(st.lists(timer_scripts(), min_size=1, max_size=4))
@settings(max_examples=100)
def test_mean_stats_scale_to_totals(scripts):
    """mean over N profiles times N equals the total, for every field —
    including fractional call counts (timers absent on some nodes)."""
    profiler = Profiler()
    for node, script in enumerate(scripts):
        prof = profiler.profile(node=node)
        for op, arg in script:
            if op == "start":
                prof.start(arg)
            elif op == "stop":
                prof.stop()
            else:
                prof.advance(arg)
    n = len(profiler.profiles)
    mean, total = profiler.mean_stats(), profiler.total_stats()
    assert set(mean) == set(total)
    for name in mean:
        assert mean[name].calls * n == pytest.approx(total[name].calls)
        assert mean[name].subrs * n == pytest.approx(total[name].subrs)
        assert mean[name].inclusive * n == pytest.approx(total[name].inclusive)
        assert mean[name].exclusive * n == pytest.approx(total[name].exclusive)


@given(timer_scripts())
@settings(max_examples=100)
def test_chrome_trace_events_well_formed(script):
    """Traces built from arbitrary nesting are valid Chrome events:
    metadata first, then body sorted by ts, every X event with
    non-negative ts/dur and string names."""
    from repro import obs

    class Clock:
        t = 0.0

        def __call__(self):
            return self.t

    clock = Clock()
    observer = obs.Observer(clock=clock, epoch=0.0)
    stack = []
    for op, arg in script:
        if op == "start":
            cm = observer.phase(arg, cat="t")
            cm.__enter__()
            stack.append(cm)
        elif op == "stop":
            stack.pop().__exit__(None, None, None)
        else:
            clock.t += arg
    while stack:
        stack.pop().__exit__(None, None, None)
    observer.counter("cache", hits=1.0)
    events = obs.chrome_trace_events(
        observer.spans, observer.counters, process_names={observer.pid: "p"}
    )
    meta = [e for e in events if e["ph"] == "M"]
    body = [e for e in events if e["ph"] != "M"]
    assert events == meta + body  # metadata leads
    assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)
    assert len([e for e in body if e["ph"] == "X"]) == sum(
        1 for op, _ in script if op == "start"
    )
    for e in body:
        assert e["ph"] in ("X", "C")
        assert isinstance(e["name"], str) and e["name"]
        assert e["ts"] >= 0
        assert e["ph"] != "X" or (e["dur"] >= 0 and isinstance(e["cat"], str))


# ------------------------------------------------------- front end + merge

from repro.analyzer import analyze  # noqa: E402
from repro.ductape.pdb import PDB  # noqa: E402
from repro.workloads.synth import SynthSpec, generate  # noqa: E402


@given(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=15, deadline=None)
def test_synth_corpus_always_compiles(n_classes, n_templates, insts):
    from repro.workloads.synth import compile_synth

    spec = SynthSpec(
        n_plain_classes=n_classes,
        n_templates=n_templates,
        instantiations_per_template=insts,
        call_depth=2,
    )
    tree, corpus = compile_synth(spec)
    inst = [c for c in tree.all_classes if c.is_instantiation]
    assert len(inst) == corpus.expected_class_instantiations


@given(st.integers(min_value=1, max_value=3))
@settings(max_examples=8, deadline=None)
def test_merge_self_is_noop(n_templates):
    """Merging a PDB with a copy of itself adds nothing."""
    from repro.cpp import Frontend, FrontendOptions

    spec = SynthSpec(n_templates=n_templates)
    corpus = generate(spec)
    fe = Frontend(FrontendOptions())
    fe.register_files(corpus.files)
    a = PDB(analyze(fe.compile(corpus.main_files[0])))
    b = PDB(analyze(fe.compile(corpus.main_files[0])))
    n = len(a.items())
    stats = a.merge(b)
    assert stats.items_added == 0
    assert len(a.items()) == n


@given(st.integers(min_value=2, max_value=4))
@settings(max_examples=6, deadline=None)
def test_used_subset_of_all(k):
    """USED-mode defined routines are a subset of ALL-mode's."""
    from repro.cpp.instantiate import InstantiationMode
    from repro.workloads.synth import compile_synth

    spec = SynthSpec(n_templates=k, instantiations_per_template=1)
    used, _ = compile_synth(spec, mode=InstantiationMode.USED)
    full, _ = compile_synth(spec, mode=InstantiationMode.ALL)
    used_defined = {r.full_name for r in used.all_routines if r.defined}
    all_defined = {r.full_name for r in full.all_routines if r.defined}
    assert used_defined <= all_defined


# --------------------------------------------------- Fortran statement scanner

from repro.cpp.source import SourceFile as _SF  # noqa: E402
from repro.fortran.lexer import split_statements  # noqa: E402

f90_stmt = st.from_regex(r"[a-z][a-z0-9_ =+*()%,]{0,30}[a-z0-9)]", fullmatch=True)


@given(st.lists(f90_stmt, min_size=1, max_size=10))
@settings(max_examples=100)
def test_fortran_statement_count_preserved(stmts):
    """One source line per statement -> same statements back."""
    text = "\n".join(stmts) + "\n"
    out = split_statements(_SF(name="p.f90", text=text))
    expected = [" ".join(s.split()) for s in stmts]
    assert [s.text for s in out] == expected


@given(st.lists(f90_stmt, min_size=1, max_size=6), st.integers(min_value=1, max_value=3))
@settings(max_examples=100)
def test_fortran_continuations_join(stmts, pieces):
    """Splitting a statement across & continuations yields one statement."""
    target = stmts[0]
    words = target.split()
    if len(words) < 2:
        lines = [target]
    else:
        cut = max(1, len(words) // 2)
        lines = [" ".join(words[:cut]) + " &", "   " + " ".join(words[cut:])]
    text = "\n".join(lines) + "\n"
    out = split_statements(_SF(name="p.f90", text=text))
    assert len(out) == 1
    assert out[0].text == " ".join(target.split())


@given(st.text(alphabet="abc'!x \n", max_size=80))
@settings(max_examples=200)
def test_fortran_scanner_never_crashes(text):
    split_statements(_SF(name="p.f90", text=text))


# --------------------------------------------------------- TAU select patterns

from repro.tau.selectfile import SelectiveRules  # noqa: E402

plain_name = st.from_regex(r"[A-Za-z_][A-Za-z0-9_:<>()]{0,20}", fullmatch=True)


@given(plain_name)
@settings(max_examples=100)
def test_selectfile_literal_pattern_matches_itself(name):
    rules = SelectiveRules(exclude=[name])
    assert not rules.allows_routine(name)


@given(plain_name, plain_name)
@settings(max_examples=100)
def test_selectfile_hash_prefix(a, b):
    rules = SelectiveRules(exclude=[a + "#"])
    assert not rules.allows_routine(a + b)


# -------------------------------------------------------- TAU profile files

from repro.tau.profiledata import read_profiles, write_profiles  # noqa: E402
from repro.tau.runtime import Profiler as _Profiler  # noqa: E402

timer_name = st.from_regex(r'[A-Za-z_][A-Za-z0-9_:<> =>()\[\]]{0,25}', fullmatch=True)


@given(
    st.dictionaries(
        timer_name,
        st.tuples(
            st.integers(min_value=1, max_value=10**6),
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
        ),
        min_size=0,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_profile_file_roundtrip(timers):
    import tempfile

    prof = _Profiler()
    p = prof.profile(0)
    for name, (calls, incl) in timers.items():
        t = p.timer(name.strip() or "x")
        t.calls = calls
        t.inclusive = incl
        t.exclusive = incl / 2
    with tempfile.TemporaryDirectory() as d:
        write_profiles(prof, d)
        loaded = read_profiles(d)
        lp = loaded.profile(0)
        assert set(lp.timers) == set(p.timers)
        for name, t in p.timers.items():
            got = lp.timers[name]
            assert got.calls == t.calls
            assert abs(got.inclusive - t.inclusive) <= max(1e-6, t.inclusive * 1e-5)
