"""Fault-injection harness for the robustness tests.

Three damage families, matching the recovery paths under test:

* **source faults** — write corpora to disk with broken TUs
  (:func:`write_corpus`, :func:`truncate_file`, :func:`break_tu`),
* **worker faults** — hang or kill worker processes via the
  ``PDBBUILD_FAULT_*`` environment hooks that :func:`_compile_tu` reads
  (:func:`slow_tu`, :func:`crashing_tu`); env vars are inherited by
  forked pool workers, so the hooks fire inside the worker,
* **cache faults** — flip bytes in / truncate / corrupt entries of an
  on-disk build cache (:func:`corrupt_cache_object`,
  :func:`truncate_cache_object`, :func:`corrupt_cache_manifest`).
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path

#: parse-breaking TU body: fatal without error recovery, one recovered
#: error (then resync) with --keep-going-errors
BROKEN_TU = "int broken( { this is not C++ ;;;\n"

#: one recoverable parse error sandwiched between healthy declarations
PARTIAL_TU = (
    "int alpha() { return 1; }\n"
    "int broken( { ;;;\n"
    "class Keep { public: int m; };\n"
    "int beta() { return alpha(); }\n"
)


# -- source faults ------------------------------------------------------


def write_corpus(root: Path, files: dict[str, str]) -> list[Path]:
    """Materialise an in-memory corpus on disk; returns written paths."""
    out = []
    for name, text in files.items():
        p = root / name
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
        out.append(p)
    return out


def truncate_file(path: Path, keep_bytes: int = 17) -> None:
    """Cut a source file mid-token, as a crashed editor or partial
    checkout would."""
    data = path.read_bytes()
    path.write_bytes(data[:keep_bytes])


def break_tu(path: Path) -> None:
    """Replace a TU with unparsable text."""
    path.write_text(BROKEN_TU)


# -- worker faults ------------------------------------------------------


@contextlib.contextmanager
def slow_tu(name: str, seconds: float):
    """Compiling a TU whose basename matches ``name`` sleeps first —
    drives the per-TU timeout path."""
    os.environ["PDBBUILD_FAULT_SLEEP"] = f"{name}:{seconds}"
    try:
        yield
    finally:
        os.environ.pop("PDBBUILD_FAULT_SLEEP", None)


@contextlib.contextmanager
def crashing_tu(name: str, once_marker: Path | None = None):
    """Compiling a TU whose basename matches ``name`` kills the worker
    process (``os._exit``).  With ``once_marker``, only the first
    attempt crashes — drives the retry-recovers path; without it, every
    attempt crashes — drives the deterministic-crasher path."""
    spec = name if once_marker is None else f"{name}:{once_marker}"
    os.environ["PDBBUILD_FAULT_EXIT"] = spec
    try:
        yield
    finally:
        os.environ.pop("PDBBUILD_FAULT_EXIT", None)


# -- cache faults -------------------------------------------------------


def _cache_objects(cache_dir: Path) -> list[Path]:
    objs = sorted((cache_dir / "objects").glob("*.pdb"))
    assert objs, f"no cached objects under {cache_dir}"
    return objs


def corrupt_cache_object(cache_dir: Path, n: int = 1) -> list[Path]:
    """Flip a byte in the middle of ``n`` cached PDB objects (silent
    disk corruption: size unchanged, content wrong)."""
    victims = _cache_objects(cache_dir)[:n]
    for p in victims:
        data = bytearray(p.read_bytes())
        mid = len(data) // 2
        data[mid] ^= 0xFF
        p.write_bytes(bytes(data))
    return victims


def truncate_cache_object(cache_dir: Path, n: int = 1) -> list[Path]:
    """Cut ``n`` cached PDB objects short (torn write / full disk)."""
    victims = _cache_objects(cache_dir)[:n]
    for p in victims:
        data = p.read_bytes()
        p.write_bytes(data[: len(data) // 3])
    return victims


def corrupt_cache_manifest(cache_dir: Path, n: int = 1) -> list[Path]:
    """Replace ``n`` cache manifests with invalid JSON."""
    manifests = sorted((cache_dir / "manifests").glob("*.json"))[:n]
    assert manifests, f"no manifests under {cache_dir}"
    for p in manifests:
        p.write_text("{ not json !!")
    return manifests
