"""Header-cache tests: cross-TU memoized preprocessing must be
observably invisible (byte-identical PDB text, identical diagnostics)
while invalidating on exactly the things that matter — macro
environments the header reads, and content changes anywhere in the
cached subtree."""

import pytest

from repro.analyzer import analyze
from repro.cpp.frontend import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.workloads.synth import SynthSpec, generate


def _frontend(files, cache=True, **opts):
    fe = Frontend(FrontendOptions(header_cache=cache, **opts))
    fe.register_files(files)
    return fe


def _pdb_text(tree) -> str:
    return PDB(analyze(tree)).to_text()


class TestByteEquality:
    def test_synth_corpus_identical_with_and_without_cache(self):
        spec = SynthSpec(
            n_plain_classes=4,
            methods_per_class=3,
            n_templates=3,
            instantiations_per_template=2,
            n_translation_units=6,
        )
        corpus = generate(spec)
        results = {}
        for cache in (True, False):
            fe = _frontend(corpus.files, cache=cache)
            trees = fe.compile_many(corpus.main_files)
            results[cache] = (
                [_pdb_text(t) for t in trees],
                [[str(d) for d in s.diagnostics] for s in fe.last_sinks],
                [[f.name for f in t.files] for t in trees],
                [[(m.name, m.kind, m.text) for m in t.macros] for t in trees],
            )
        assert results[True] == results[False]

    def test_shared_header_hits_after_first_tu(self):
        files = {
            "common.h": "#ifndef COMMON_H\n#define COMMON_H\n"
            "#define ANSWER 42\nint common(int x);\n#endif\n",
        }
        mains = []
        for t in range(4):
            files[f"tu{t}.cpp"] = (
                '#include "common.h"\n'
                f"int use{t}(int v) {{ return common(v) + ANSWER; }}\n"
            )
            mains.append(f"tu{t}.cpp")
        fe = _frontend(files)
        fe.compile_many(mains)
        hc = fe.header_cache
        assert hc.misses == 1
        assert hc.hits == 3

    def test_cache_off_creates_no_cache(self):
        fe = _frontend({"a.cpp": "int f();\n"}, cache=False)
        assert fe.header_cache is None
        fe.compile("a.cpp")  # plain-dict macro table path


class TestInvalidation:
    def test_two_macro_environments_get_two_variants(self):
        """A macro the header *reads* keys separate variants — no false
        sharing — while both variants replay for later TUs."""
        files = {
            "mode.h": "#ifdef FAST\nint speed() ;\n#else\nint safety() ;\n#endif\n",
            "a.cpp": '#include "mode.h"\nint ua() { return safety(); }\n',
            "b.cpp": '#define FAST 1\n#include "mode.h"\nint ub() { return speed(); }\n',
            "a2.cpp": '#include "mode.h"\nint ua2() { return safety(); }\n',
            "b2.cpp": '#define FAST 1\n#include "mode.h"\nint ub2() { return speed(); }\n',
        }
        fe = _frontend(files)
        trees = fe.compile_many(["a.cpp", "b.cpp", "a2.cpp", "b2.cpp"])
        hc = fe.header_cache
        assert hc.misses == 2  # one per environment
        assert hc.hits == 2  # each environment replayed once
        texts = [_pdb_text(t) for t in trees]
        assert texts[0] != texts[1]  # the variants really differ
        fe2 = _frontend(files, cache=False)
        trees2 = fe2.compile_many(["a.cpp", "b.cpp", "a2.cpp", "b2.cpp"])
        assert texts == [_pdb_text(t) for t in trees2]

    def test_unread_macro_does_not_invalidate(self):
        """#define before #include of a macro the header never consults
        must not fork a new variant."""
        files = {
            "plain.h": "int plain();\n",
            "a.cpp": '#include "plain.h"\nint ua() { return plain(); }\n',
            "b.cpp": '#define UNRELATED 7\n#include "plain.h"\n'
            "int ub() { return plain(); }\n",
        }
        fe = _frontend(files)
        fe.compile_many(["a.cpp", "b.cpp"])
        assert fe.header_cache.misses == 1
        assert fe.header_cache.hits == 1

    def test_define_before_include_that_header_expands(self):
        """The header expands EXTRA in a declaration — each definition
        of EXTRA must produce its own cached expansion."""
        files = {
            "tmpl.h": "int scaled(int v) { return v * EXTRA ; }\n",
            "a.cpp": '#define EXTRA 2\n#include "tmpl.h"\nint ua() { return scaled(1); }\n',
            "b.cpp": '#define EXTRA 3\n#include "tmpl.h"\nint ub() { return scaled(1); }\n',
        }
        fe = _frontend(files)
        trees = fe.compile_many(["a.cpp", "b.cpp"])
        assert fe.header_cache.misses == 2
        fe2 = _frontend(files, cache=False)
        trees2 = fe2.compile_many(["a.cpp", "b.cpp"])
        assert [_pdb_text(t) for t in trees] == [_pdb_text(t) for t in trees2]

    def test_content_change_evicts(self):
        files = {
            "v.h": "#define VERSION 1\nint api_v1();\n",
            "a.cpp": '#include "v.h"\nint ua() { return api_v1(); }\n',
        }
        fe = _frontend(files)
        t1 = _pdb_text(fe.compile("a.cpp"))
        assert fe.header_cache.misses == 1
        # same content again: replay
        t2 = _pdb_text(fe.compile("a.cpp"))
        assert fe.header_cache.hits == 1
        assert t1 == t2
        # re-register with new content: the old entry must not replay
        fe.manager.register("v.h", "#define VERSION 2\nint api_v2();\n")
        fe.register_files({"a.cpp": '#include "v.h"\nint ua() { return api_v2(); }\n'})
        t3 = _pdb_text(fe.compile("a.cpp"))
        assert fe.header_cache.misses == 2
        assert "api_v2" in t3 and "api_v2" not in t1

    def test_nested_header_change_evicts_enclosing_subtree(self):
        """outer.h's cached subtree embeds inner.h's expansion; replacing
        inner.h must invalidate the outer entry too."""
        files = {
            "inner.h": "int inner_one();\n",
            "outer.h": '#include "inner.h"\nint outer();\n',
            "a.cpp": '#include "outer.h"\nint ua() { return outer(); }\n',
        }
        fe = _frontend(files)
        t1 = _pdb_text(fe.compile("a.cpp"))
        assert "inner_one" in t1
        fe.manager.register("inner.h", "int inner_two();\n")
        t2 = _pdb_text(fe.compile("a.cpp"))
        assert "inner_two" in t2 and "inner_one" not in t2

    def test_include_guard_second_inclusion_is_own_variant(self):
        files = {
            "g.h": "#ifndef G_H\n#define G_H\nint guarded();\n#endif\n",
            "a.cpp": '#include "g.h"\n#include "g.h"\n'
            "int ua() { return guarded(); }\n",
            "b.cpp": '#include "g.h"\n#include "g.h"\n'
            "int ub() { return guarded(); }\n",
        }
        fe = _frontend(files)
        trees = fe.compile_many(["a.cpp", "b.cpp"])
        hc = fe.header_cache
        # TU a: miss (guard undefined) + miss (guard defined, empty
        # variant); TU b: both variants replay
        assert hc.misses == 2
        assert hc.hits == 2
        fe2 = _frontend(files, cache=False)
        trees2 = fe2.compile_many(["a.cpp", "b.cpp"])
        assert [_pdb_text(t) for t in trees] == [_pdb_text(t) for t in trees2]

    def test_conditional_include_tracks_selector_macro(self):
        files = {
            "fast.h": "int fast_impl();\n",
            "safe.h": "int safe_impl();\n",
            "sel.h": '#ifdef FAST\n#include "fast.h"\n#else\n#include "safe.h"\n#endif\n',
            "a.cpp": '#include "sel.h"\nint ua() { return safe_impl(); }\n',
            "b.cpp": '#define FAST 1\n#include "sel.h"\nint ub() { return fast_impl(); }\n',
        }
        fe = _frontend(files)
        trees = fe.compile_many(["a.cpp", "b.cpp"])
        texts = [_pdb_text(t) for t in trees]
        assert "safe_impl" in texts[0] and "fast_impl" not in texts[0]
        assert "fast_impl" in texts[1]

    def test_diagnosing_header_repeats_per_tu(self):
        """Subtrees that emit diagnostics are uncacheable: the warning
        must appear once per including TU, exactly as without the cache."""
        files = {
            "w.h": "#warning legacy header\nint legacy();\n",
            "a.cpp": '#include "w.h"\nint ua() { return legacy(); }\n',
            "b.cpp": '#include "w.h"\nint ub() { return legacy(); }\n',
        }
        fe = _frontend(files)
        fe.compile_many(["a.cpp", "b.cpp"])
        assert fe.header_cache.uncacheable == 2
        assert fe.header_cache.hits == 0
        assert [s.warning_count for s in fe.last_sinks] == [1, 1]

    def test_macro_records_replay_into_ma_items(self):
        """PDB ``ma`` items come from replayed MacroRecords — every TU
        must report the header's #defines identically."""
        files = {
            "m.h": "#define LIMIT 99\n#define TWICE(x) ((x) * 2)\nint m();\n",
            "a.cpp": '#include "m.h"\nint ua() { return m(); }\n',
            "b.cpp": '#include "m.h"\nint ub() { return m(); }\n',
        }
        fe = _frontend(files)
        trees = fe.compile_many(["a.cpp", "b.cpp"])
        assert fe.header_cache.hits == 1
        for tree in trees:
            names = [m.name for m in tree.macros]
            assert "LIMIT" in names and "TWICE" in names

    def test_consumed_files_replay_for_dep_hashing(self):
        """pdbbuild hashes ``last_consumed_files`` — a cache hit must
        report the same dependency set as a live compile."""
        files = {
            "inner.h": "int inner();\n",
            "outer.h": '#include "inner.h"\nint outer();\n',
            "a.cpp": '#include "outer.h"\nint ua() { return outer(); }\n',
            "b.cpp": '#include "outer.h"\nint ub() { return outer(); }\n',
        }
        fe = _frontend(files)
        fe.compile_many(["a.cpp", "b.cpp"])
        assert fe.header_cache.hits == 1
        names = [[f.name for f in consumed] for consumed in fe.last_consumed_files_per_tu]
        assert names[0] == ["a.cpp", "outer.h", "inner.h"]
        assert names[1] == ["b.cpp", "outer.h", "inner.h"]


class TestFrontendDriver:
    """The compile()/compile_many() satellite fixes."""

    def test_missing_main_file_raises_cleanly(self):
        fe = Frontend(FrontendOptions())
        with pytest.raises(FileNotFoundError):
            fe.compile("nonexistent_main.cpp")
        # the finally block must not trip over unbound locals, and the
        # dependency list must reflect that nothing was consumed
        assert fe.last_consumed_files == []
        assert fe.last_engine is None

    def test_missing_main_file_in_recovery_mode(self):
        fe = Frontend(FrontendOptions(fatal_errors=False))
        with pytest.raises(FileNotFoundError):
            fe.compile("nonexistent_main.cpp")

    def test_compile_many_accumulates_per_tu_sinks(self):
        files = {
            "a.cpp": "#warning from a\nint fa();\n",
            "b.cpp": "int fb();\n",
            "c.cpp": "#warning from c\nint fc();\n",
        }
        fe = _frontend(files)
        fe.compile_many(["a.cpp", "b.cpp", "c.cpp"])
        assert len(fe.last_sinks) == 3
        assert [s.warning_count for s in fe.last_sinks] == [1, 0, 1]
        # scalar attributes still reflect the last TU (back-compat)
        assert fe.last_sink is fe.last_sinks[-1]
        assert len(fe.last_engines) == 3
        assert [c[0].name for c in fe.last_consumed_files_per_tu] == [
            "a.cpp",
            "b.cpp",
            "c.cpp",
        ]
