"""Tree-merge equivalence: the pairwise reduction must reproduce the
serial left fold byte for byte (items, ids, ferr records) and recover
the fold's aggregate MergeStats analytically."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.ductape.pdb import PDB
from repro.pdbfmt.items import PdbDocument, RawItem
from repro.tools.pdbmerge import merge_pdb_texts_tree, merge_pdbs, merge_pdbs_tree


def _tu_pdb(tu: int, shared: int = 5, unique: int = 8) -> PDB:
    """One synthetic per-TU document: shared items that dedup across
    TUs, unique items that survive, and a template instantiation mix."""
    doc = PdbDocument()
    so = RawItem("so", 1, f"tu{tu}.cpp")
    so.add("skind", "source")
    doc.add(so)
    next_id = {"cl": 0, "ro": 0}
    for s in range(shared):
        cl = RawItem("cl", next_id["cl"], f"Shared{s}")
        next_id["cl"] += 1
        cl.add("ckind", "class")
        if s % 2:
            cl.add("ctempl", "NULL")
        doc.add(cl)
        ro = RawItem("ro", next_id["ro"], f"shared_fn{s}")
        next_id["ro"] += 1
        ro.add("rsig", "NULL")
        if s % 2:
            ro.add("rtempl", "NULL")
        doc.add(ro)
    for u in range(unique):
        ro = RawItem("ro", next_id["ro"], f"tu{tu}_fn{u}")
        next_id["ro"] += 1
        ro.add("rsig", "NULL")
        doc.add(ro)
    return PDB(doc)


def _corpus(n: int) -> list[PDB]:
    return [_tu_pdb(i) for i in range(n)]


def _serial_aggregate(pdbs):
    merged, per_fold = merge_pdbs(pdbs)
    agg = {
        "items_in": sum(s.items_in for s in per_fold),
        "items_added": sum(s.items_added for s in per_fold),
        "duplicates_eliminated": sum(s.duplicates_eliminated for s in per_fold),
        "duplicate_instantiations": sum(s.duplicate_instantiations for s in per_fold),
        "odr_conflicts": sum(s.odr_conflicts for s in per_fold),
    }
    return merged, agg


@pytest.mark.parametrize("n", [2, 4, 16])
@pytest.mark.parametrize("min_fanin", [2, 8])
def test_tree_merge_byte_identical_to_fold(n, min_fanin):
    serial, agg = _serial_aggregate(_corpus(n))
    tree, stats, depth = merge_pdbs_tree(_corpus(n), min_fanin=min_fanin)
    assert tree.to_text() == serial.to_text()
    assert {
        "items_in": stats.items_in,
        "items_added": stats.items_added,
        "duplicates_eliminated": stats.duplicates_eliminated,
        "duplicate_instantiations": stats.duplicate_instantiations,
        "odr_conflicts": stats.odr_conflicts,
    } == agg
    if min_fanin == 2 and n > 1:
        assert depth == (n - 1).bit_length()  # genuinely pairwise


def test_tree_merge_empty_and_single():
    merged, stats, depth = merge_pdbs_tree([])
    assert merged.to_text() == PDB(PdbDocument()).to_text()
    assert depth == 0
    one = _tu_pdb(0)
    merged, stats, depth = merge_pdbs_tree([one])
    assert merged.to_text() == one.to_text()
    assert merged.doc is not one.doc  # still a private copy
    assert depth == 0


def test_tree_merge_does_not_mutate_inputs():
    inputs = _corpus(6)
    before = [p.to_text() for p in inputs]
    merge_pdbs_tree(inputs, min_fanin=2)
    assert [p.to_text() for p in inputs] == before


def test_tree_merge_odr_conflicts_match_fold():
    """Conflicting class definitions across TUs: the analytic aggregate
    must equal the fold's summed odr_conflicts."""

    def tu(i, line):
        doc = PdbDocument()
        so = RawItem("so", 1, f"t{i}.cpp")
        so.add("skind", "source")
        doc.add(so)
        cl = RawItem("cl", 0, "Widget")
        cl.add("ckind", "class")
        cl.add("cloc", "so#1", line, 1)
        doc.add(cl)
        return PDB(doc)

    pdbs = [tu(i, line) for i, line in enumerate([10, 20, 30, 40])]
    serial, agg = _serial_aggregate(pdbs)
    assert agg["odr_conflicts"] > 0
    tree, stats, _ = merge_pdbs_tree(pdbs, min_fanin=2)
    assert tree.to_text() == serial.to_text()
    assert stats.odr_conflicts == agg["odr_conflicts"]


def test_tree_merge_preserves_ferr_items():
    def tu(i):
        doc = PdbDocument()
        so = RawItem("so", 1, f"t{i}.cpp")
        so.add("skind", "source")
        doc.add(so)
        fe = RawItem("ferr", 0, f"t{i}.cpp:1: broken")
        fe.add_text("emsg", f"broken in t{i}")
        doc.add(fe)
        return PDB(doc)

    pdbs = [tu(i) for i in range(4)]
    serial, _ = _serial_aggregate(pdbs)
    tree, _, _ = merge_pdbs_tree(pdbs, min_fanin=2)
    assert tree.to_text() == serial.to_text()
    assert len(tree.doc.by_prefix("ferr")) == 4


def test_text_tree_matches_fold():
    texts = [p.to_text() for p in _corpus(9)]
    serial, _ = _serial_aggregate([PDB.from_text(t) for t in texts])
    merged, stats, depth = merge_pdb_texts_tree(texts, min_fanin=2)
    assert merged.to_text() == serial.to_text()


def test_text_tree_pooled_matches_fold():
    texts = [p.to_text() for p in _corpus(8)]
    serial, _ = _serial_aggregate([PDB.from_text(t) for t in texts])
    with ProcessPoolExecutor(max_workers=2) as pool:
        merged, stats, depth = merge_pdb_texts_tree(texts, pool=pool, min_fanin=2)
    assert merged.to_text() == serial.to_text()
    assert depth == 3
