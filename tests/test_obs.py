"""repro.obs tests: phase timers, Chrome traces, TAU replay, layering.

The observability layer dogfoods the TAU measurement runtime with a
wall clock; these tests drive it with a fake clock so every duration is
deterministic.
"""

import json
import subprocess
import sys

import pytest

from repro import obs
from repro.tau.profiledata import read_profiles, write_profiles
from repro.tau.runtime import Profiler


class FakeClock:
    """Deterministic monotonic clock for observer tests (seconds)."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


def make_observer():
    clock = FakeClock()
    return obs.Observer(clock=clock, epoch=0.0), clock


class TestObserver:
    def test_phase_records_span(self):
        o, clock = make_observer()
        with o.phase("parse", cat="frontend", file="a.cpp"):
            clock.tick(2.0)
        assert len(o.spans) == 1
        s = o.spans[0]
        assert s.name == "parse" and s.cat == "frontend"
        assert s.ts == 0.0 and s.dur == pytest.approx(2e6)
        assert s.args == {"file": "a.cpp"}

    def test_nested_phases_drive_tau_accounting(self):
        o, clock = make_observer()
        with o.phase("outer"):
            clock.tick(1.0)
            with o.phase("inner"):
                clock.tick(3.0)
            clock.tick(0.5)
        prof = o.profiler.profile(0)
        assert prof.timers["outer"].inclusive == pytest.approx(4.5)
        assert prof.timers["outer"].exclusive == pytest.approx(1.5)
        assert prof.timers["inner"].exclusive == pytest.approx(3.0)
        # spans complete in exit order: inner first
        assert [s.name for s in o.spans] == ["inner", "outer"]

    def test_phase_survives_exception(self):
        o, clock = make_observer()
        with pytest.raises(RuntimeError, match="boom"):
            with o.phase("failing"):
                clock.tick(1.0)
                raise RuntimeError("boom")
        assert [s.name for s in o.spans] == ["failing"]
        assert o.spans[0].dur == pytest.approx(1e6)
        assert o.profiler.profile(0).depth == 0  # timer stack unwound

    def test_timed_decorator(self):
        o, clock = make_observer()

        @o.timed("work", cat="x")
        def work():
            clock.tick(2.5)
            return 42

        assert work() == 42
        assert o.spans[0].name == "work"
        assert o.spans[0].dur == pytest.approx(2.5e6)

    def test_counter_samples(self):
        o, clock = make_observer()
        o.counter("cache", hits=0, misses=1)
        clock.tick(1.0)
        o.counter("cache", hits=2, misses=1)
        assert len(o.counters) == 2
        assert o.counters[1].values == {"hits": 2, "misses": 1}
        assert o.counters[1].ts == pytest.approx(1e6)


class TestGating:
    def test_disabled_observe_is_noop(self):
        assert not obs.is_enabled()
        with obs.observe("anything") as handle:
            assert handle is None
        assert obs.get_observer() is None

    def test_enable_disable_stack(self):
        a = obs.enable()
        b = obs.enable()
        assert obs.get_observer() is b
        assert obs.disable() is b
        assert obs.get_observer() is a
        assert obs.disable() is a
        assert not obs.is_enabled()

    def test_module_level_observe_routes_to_top(self):
        o, clock = make_observer()
        obs.enable(o)
        try:
            with obs.observe("phase"):
                clock.tick(1.0)
        finally:
            obs.disable()
        assert [s.name for s in o.spans] == ["phase"]

    def test_module_timed_checks_at_call_time(self):
        calls = []

        @obs.timed("late")
        def fn():
            calls.append(1)

        fn()  # disabled: plain call
        o = obs.enable()
        try:
            fn()
        finally:
            obs.disable()
        assert len(calls) == 2
        assert [s.name for s in o.spans] == ["late"]


class TestChromeTrace:
    def make_spans(self):
        o, clock = make_observer()
        with o.phase("build", cat="driver"):
            with o.phase("a", cat="tu"):
                clock.tick(1.0)
            with o.phase("b", cat="tu"):
                clock.tick(2.0)
        o.counter("cache", hits=1)
        return o

    def test_events_well_formed(self):
        o = self.make_spans()
        events = obs.chrome_trace_events(o.spans, o.counters)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        for e in xs:
            assert isinstance(e["name"], str) and e["name"]
            assert isinstance(e["ts"], float) and e["ts"] >= 0
            assert isinstance(e["dur"], float) and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        cs = [e for e in events if e["ph"] == "C"]
        assert len(cs) == 1 and cs[0]["args"] == {"hits": 1}

    def test_events_sorted_and_rebased(self):
        o = self.make_spans()
        events = [e for e in obs.chrome_trace_events(o.spans, o.counters) if e["ph"] != "M"]
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)
        assert stamps[0] == 0.0

    def test_metadata_process_names(self):
        o = self.make_spans()
        events = obs.chrome_trace_events(o.spans, process_names={o.pid: "driver"})
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "driver"

    def test_write_chrome_trace_loads_back(self, tmp_path):
        o = self.make_spans()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(str(path), o.spans, o.counters)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"


class TestReplay:
    def test_replay_reconstructs_nesting(self):
        o, clock = make_observer()
        with o.phase("outer"):
            clock.tick(1.0)
            with o.phase("inner"):
                clock.tick(3.0)
            clock.tick(0.5)
        prof = obs.replay_spans(o.spans).profile(0)
        # replay unit is microseconds
        assert prof.timers["outer"].inclusive == pytest.approx(4.5e6)
        assert prof.timers["outer"].exclusive == pytest.approx(1.5e6)
        assert prof.timers["inner"].inclusive == pytest.approx(3e6)
        prof.check_consistency()

    def test_replay_pid_becomes_node(self):
        spans = [
            obs.Span(name="w", cat="tu", ts=0.0, dur=5.0, pid=200, tid=1),
            obs.Span(name="w", cat="tu", ts=0.0, dur=7.0, pid=100, tid=1),
        ]
        profiler = obs.replay_spans(spans)
        assert sorted(profiler.profiles) == [(0, 0, 0), (1, 0, 0)]
        # sorted pid order: pid 100 -> node 0
        assert profiler.profile(0).timers["w"].inclusive == pytest.approx(7.0)

    def test_replay_siblings_not_nested(self):
        spans = [
            obs.Span(name="a", cat="t", ts=0.0, dur=4.0, pid=1, tid=1),
            obs.Span(name="b", cat="t", ts=4.0, dur=6.0, pid=1, tid=1),
        ]
        prof = obs.replay_spans(spans).profile(0)
        assert prof.timers["a"].subrs == 0
        assert prof.timers["b"].exclusive == pytest.approx(6.0)

    def test_replayed_profile_round_trips_profile_files(self, tmp_path):
        o, clock = make_observer()
        with o.phase("compile x.cpp", cat="tu"):
            with o.phase("frontend.parse", cat="frontend"):
                clock.tick(1.0)
        write_profiles(obs.replay_spans(o.spans), str(tmp_path))
        loaded = read_profiles(str(tmp_path))
        assert isinstance(loaded, Profiler)
        assert "compile x.cpp" in loaded.profile(0).timers
        assert "frontend.parse" in loaded.profile(0).timers

    def test_phase_aggregates(self):
        o, clock = make_observer()
        for _ in range(3):
            with o.phase("p"):
                clock.tick(1.0)
        agg = obs.phase_aggregates(o.spans)
        assert agg == {"p": {"count": 3, "wall_s": pytest.approx(3.0)}}


class TestLayering:
    def test_obs_import_does_not_load_tools(self):
        """repro.obs must stay import-free of the tools it observes
        (pdbbuild imports obs, never the reverse) — checked in a fresh
        interpreter so this test is order-independent.  The repro
        package __init__ re-exports the frontend, so the check is on
        what importing repro.obs *adds* beyond that baseline."""
        code = (
            "import sys, repro; before = set(sys.modules); "
            "import repro.obs; "
            "added = sorted(set(sys.modules) - before); "
            "bad = [m for m in added if not ("
            "m.startswith('repro.obs') or m.startswith('repro.tau'))]; "
            "assert not bad, f'repro.obs pulled in {bad}'; "
            "assert not any(m.startswith('repro.tools') for m in sys.modules)"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=_src_env()
        )

    def test_toolchain_instrumentation_reports_phases(self):
        """Compiling through the frontend with an observer installed
        yields the frontend/analyzer/writer phase spans."""
        from repro.analyzer import analyze
        from repro.pdbfmt.writer import write_pdb
        from tests.util import compile_source

        o = obs.enable()
        try:
            tree = compile_source("int main() { return 0; }\n")
            write_pdb(analyze(tree))
        finally:
            obs.disable()
        names = {s.name for s in o.spans}
        assert {
            "frontend.preprocess",
            "frontend.lex",
            "frontend.parse",
            "frontend.instantiate",
            "analyze.ro",
            "pdb.write",
        } <= names


def _src_env():
    import os

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env
