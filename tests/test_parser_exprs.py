"""Expression/statement parser tests: call extraction, lifetimes."""


from repro.cpp.il import RoutineKind
from tests.util import compile_source


def calls_of(tree, name):
    r = tree.find_routine(name)
    assert r is not None, f"routine {name} not found"
    return r.calls


def callee_names(tree, name):
    return [c.callee.name for c in calls_of(tree, name)]


class TestPlainCalls:
    def test_direct_call(self):
        tree = compile_source("int f() { return 1; }\nint g() { return f(); }")
        assert callee_names(tree, "g") == ["f"]

    def test_call_location(self):
        tree = compile_source("int f() { return 1; }\nint g() {\n  return f();\n}")
        call = calls_of(tree, "g")[0]
        assert call.location.line == 3

    def test_nested_calls(self):
        tree = compile_source(
            "int a() { return 1; }\nint b(int x) { return x; }\nint c() { return b(a()); }"
        )
        assert sorted(callee_names(tree, "c")) == ["a", "b"]

    def test_call_in_condition(self):
        tree = compile_source(
            "bool check() { return true; }\nvoid f() { if (check()) { } }"
        )
        assert callee_names(tree, "f") == ["check"]

    def test_call_in_loop(self):
        tree = compile_source(
            "int step() { return 1; }\nvoid f() { for (int i = 0; i < 3; i++) step(); }"
        )
        assert callee_names(tree, "f") == ["step"]

    def test_call_in_while(self):
        tree = compile_source(
            "bool more() { return false; }\nvoid f() { while (more()) { } }"
        )
        assert callee_names(tree, "f") == ["more"]

    def test_duplicate_callsite_locations_deduped(self):
        tree = compile_source("int f() { return 1; }\nint g() { return f() + f(); }")
        # two distinct locations: both recorded
        assert len(calls_of(tree, "g")) == 2

    def test_recursive_call(self):
        tree = compile_source("int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }")
        assert callee_names(tree, "fact") == ["fact"]

    def test_overload_resolution_by_arity(self):
        tree = compile_source(
            "void f(int) { }\nvoid f(int, int) { }\nvoid g() { f(1, 2); }"
        )
        call = calls_of(tree, "g")[0]
        assert len(call.callee.parameters) == 2

    def test_overload_resolution_prefers_type_match(self):
        tree = compile_source(
            "class C {};\nvoid f(C c) { }\nvoid f(int x) { }\n"
            "void g() { C c; f(c); }"
        )
        picked = [c.callee for c in calls_of(tree, "g") if c.callee.name == "f"]
        assert picked and picked[0].parameters[0].type.spelling() == "C"

    def test_default_args_allow_fewer(self):
        tree = compile_source("void f(int a, int b = 2) { }\nvoid g() { f(1); }")
        assert callee_names(tree, "g") == ["f"]


class TestMemberCalls:
    SRC = (
        "class C { public:\n"
        "  void m() { }\n"
        "  int get() const { return 0; }\n"
        "};\n"
    )

    def test_dot_call(self):
        tree = compile_source(self.SRC + "void f() { C c; c.m(); }")
        assert "m" in callee_names(tree, "f")

    def test_arrow_call(self):
        tree = compile_source(self.SRC + "void f(C* p) { p->m(); }")
        assert "m" in callee_names(tree, "f")

    def test_chained_member_access(self):
        tree = compile_source(
            "class Inner { public: int v() { return 1; } };\n"
            "class Outer { public: Inner inner; };\n"
            "int f() { Outer o; return o.inner.v(); }"
        )
        assert "v" in callee_names(tree, "f")

    def test_implicit_this_call(self):
        tree = compile_source(
            "class C { public: void a() { b(); } void b() { } };"
        )
        a = tree.find_routine("C::a")
        assert [c.callee.name for c in a.calls] == ["b"]

    def test_method_returning_object_chains(self):
        tree = compile_source(
            "class C { public: C& self() { return *this; } void done() { } };\n"
            "void f() { C c; c.self().done(); }"
        )
        names = callee_names(tree, "f")
        assert "self" in names and "done" in names

    def test_virtual_flag_on_call(self):
        tree = compile_source(
            "class B { public: virtual void v(); void nv(); };\n"
            "void f(B* b) { b->v(); b->nv(); }"
        )
        flags = {c.callee.name: c.is_virtual for c in calls_of(tree, "f")}
        assert flags == {"v": True, "nv": False}

    def test_inherited_member_call(self):
        tree = compile_source(
            "class A { public: void base_m() { } };\n"
            "class B : public A { };\n"
            "void f() { B b; b.base_m(); }"
        )
        assert "base_m" in callee_names(tree, "f")

    def test_static_call_via_qualifier(self):
        tree = compile_source(
            "class C { public: static int s() { return 1; } };\n"
            "int f() { return C::s(); }"
        )
        assert "s" in callee_names(tree, "f")


class TestOperatorCalls:
    def test_member_binary_operator(self):
        tree = compile_source(
            "class V { public: V operator+(const V& o); };\n"
            "void f() { V a, b; V c = a + b; }"
        )
        assert "operator+" in callee_names(tree, "f")

    def test_subscript_operator(self):
        tree = compile_source(
            "class A { public: int& operator[](int i); };\n"
            "void f() { A a; a[0] = 1; }"
        )
        assert "operator[]" in callee_names(tree, "f")

    def test_call_operator(self):
        tree = compile_source(
            "class F { public: int operator()(int x) { return x; } };\n"
            "int g() { F f; return f(1); }"
        )
        assert "operator()" in callee_names(tree, "g")

    def test_free_operator(self):
        tree = compile_source(
            "class S { };\n"
            "S& operator<<(S& s, int v) { return s; }\n"
            "void f() { S s; s << 1 << 2; }"
        )
        shifts = [c for c in calls_of(tree, "f") if c.callee.name == "operator<<"]
        assert len(shifts) == 2

    def test_comparison_operator(self):
        tree = compile_source(
            "class K { public: bool operator<(const K& o) const; };\n"
            "bool f() { K a, b; return a < b; }"
        )
        assert "operator<" in callee_names(tree, "f")

    def test_assignment_operator(self):
        tree = compile_source(
            "class C { public: C& operator=(const C& o); };\n"
            "void f() { C a, b; a = b; }"
        )
        assert "operator=" in callee_names(tree, "f")

    def test_builtin_ops_record_nothing(self):
        tree = compile_source("int f() { int a = 1, b = 2; return a + b * 3; }")
        assert calls_of(tree, "f") == []


class TestLifetimes:
    """Constructor/destructor call extraction — paper Section 3.1's
    'lifetime' handling."""

    CLS = (
        "class Obj { public:\n"
        "  Obj() { }\n"
        "  Obj(int x) { }\n"
        "  ~Obj() { }\n"
        "};\n"
    )

    def test_default_ctor_on_declaration(self):
        tree = compile_source(self.CLS + "void f() { Obj o; }")
        kinds = [c.callee.kind for c in calls_of(tree, "f")]
        assert RoutineKind.CONSTRUCTOR in kinds

    def test_ctor_overload_with_args(self):
        tree = compile_source(self.CLS + "void f() { Obj o(5); }")
        ctor_calls = [
            c.callee for c in calls_of(tree, "f")
            if c.callee.kind is RoutineKind.CONSTRUCTOR
        ]
        assert ctor_calls and len(ctor_calls[0].parameters) == 1

    def test_dtor_at_scope_end(self):
        tree = compile_source(self.CLS + "void f() {\n  Obj o;\n}")
        dtors = [
            c for c in calls_of(tree, "f") if c.callee.kind is RoutineKind.DESTRUCTOR
        ]
        assert len(dtors) == 1
        # CLS is 5 lines; the closing brace is 3 lines into f
        assert dtors[0].location.line == 5 + 3

    def test_dtor_reverse_order(self):
        tree = compile_source(self.CLS + "void f() { Obj a; Obj b; }")
        dtors = [
            c for c in calls_of(tree, "f") if c.callee.kind is RoutineKind.DESTRUCTOR
        ]
        assert len(dtors) == 2

    def test_inner_scope_dtor(self):
        tree = compile_source(self.CLS + "void f() {\n  {\n    Obj o;\n  }\n  int x;\n}")
        dtors = [
            c for c in calls_of(tree, "f") if c.callee.kind is RoutineKind.DESTRUCTOR
        ]
        assert dtors[0].location.line == 5 + 4  # inner closing brace

    def test_temporary_ctor(self):
        tree = compile_source(self.CLS + "void f() { throw Obj(); }")
        kinds = [c.callee.kind for c in calls_of(tree, "f")]
        assert RoutineKind.CONSTRUCTOR in kinds

    def test_new_records_ctor(self):
        tree = compile_source(self.CLS + "Obj* f() { return new Obj(3); }")
        ctors = [
            c.callee for c in calls_of(tree, "f")
            if c.callee.kind is RoutineKind.CONSTRUCTOR
        ]
        assert ctors and len(ctors[0].parameters) == 1

    def test_delete_records_dtor(self):
        tree = compile_source(self.CLS + "void f(Obj* p) { delete p; }")
        kinds = [c.callee.kind for c in calls_of(tree, "f")]
        assert kinds == [RoutineKind.DESTRUCTOR]

    def test_ctor_initialiser_list(self):
        tree = compile_source(
            self.CLS
            + "class Holder { public: Holder() : member(7) { } private: Obj member; };"
        )
        holder_ctor = tree.find_class("Holder").constructors()[0]
        assert any(
            c.callee.kind is RoutineKind.CONSTRUCTOR and len(c.callee.parameters) == 1
            for c in holder_ctor.calls
        )

    def test_base_initialiser(self):
        tree = compile_source(
            "class Base { public: Base(int x) { } };\n"
            "class Derived : public Base { public: Derived() : Base(1) { } };"
        )
        dctor = tree.find_class("Derived").constructors()[0]
        assert any(c.callee.parent.name == "Base" for c in dctor.calls)

    def test_no_dtor_no_call(self):
        tree = compile_source("class Plain { public: Plain() { } };\nvoid f() { Plain p; }")
        kinds = [c.callee.kind for c in calls_of(tree, "f")]
        assert RoutineKind.DESTRUCTOR not in kinds


class TestMiscExpressions:
    def test_cast_expressions_parse(self):
        tree = compile_source(
            "void f() { int x = (int) 3.5; double d = static_cast<double>(x); }"
        )
        assert tree.find_routine("f").defined

    def test_sizeof(self):
        tree = compile_source("int f() { return sizeof(int) + sizeof(double); }")
        assert tree.find_routine("f").defined

    def test_ternary(self):
        tree = compile_source("int f(int x) { return x > 0 ? x : -x; }")
        assert tree.find_routine("f").defined

    def test_comma_in_for(self):
        tree = compile_source("void f() { for (int i = 0, j = 9; i < j; i++, j--) { } }")
        assert tree.find_routine("f").defined

    def test_switch(self):
        tree = compile_source(
            "int f(int x) { switch (x) { case 1: return 1; case 2: return 2; default: return 0; } }"
        )
        assert tree.find_routine("f").defined

    def test_do_while(self):
        tree = compile_source("void f() { int i = 0; do { i++; } while (i < 3); }")
        assert tree.find_routine("f").defined

    def test_try_catch(self):
        tree = compile_source(
            "class E {};\nvoid f() { try { int x = 1; } catch (const E& e) { } catch (...) { } }"
        )
        assert tree.find_routine("f").defined

    def test_string_and_char_literals(self):
        tree = compile_source('void f() { const char* s = "hi"; char c = \'x\'; }')
        assert tree.find_routine("f").defined

    def test_condition_declaration(self):
        tree = compile_source("void f(int* p) { if (int v = *p) { v++; } }")
        assert tree.find_routine("f").defined

    def test_enumerator_reference(self):
        tree = compile_source("enum E { A, B };\nint f() { return A + B; }")
        assert tree.find_routine("f").defined

    def test_address_of_function(self):
        tree = compile_source(
            "int target() { return 0; }\nvoid f() { int (*p)(void) = &target; }"
        )
        assert tree.find_routine("f").defined


class TestAdvancedResolution:
    def test_smart_pointer_operator_arrow(self):
        tree = compile_source(
            "class Payload { public: void work() { } };\n"
            "class SmartPtr {\n"
            "public:\n"
            "    Payload* operator->() { return raw; }\n"
            "private:\n"
            "    Payload* raw;\n"
            "};\n"
            "void f() { SmartPtr p; p->work(); }\n"
        )
        f = tree.find_routine("f")
        names = {c.callee.name for c in f.calls}
        assert "work" in names
        assert "operator->" in names  # the smart-pointer hop is a call too

    def test_nontemplate_overload_preferred_over_template(self):
        tree = compile_source(
            "template <class T> T pick(T v) { return v; }\n"
            "int pick(int v) { return v + 1; }\n"
            "int f() { return pick(3); }\n"
        )
        f = tree.find_routine("f")
        picked = next(c.callee for c in f.calls if c.callee.name == "pick")
        assert not picked.is_instantiation  # exact non-template wins

    def test_conversion_operator_parses_in_condition(self):
        tree = compile_source(
            "class Flag { public: operator bool() const { return true; } };\n"
            "int f() { Flag x; if (x) { return 1; } return 0; }\n"
        )
        assert tree.find_routine("f").defined

    def test_reference_local_records_no_lifetime(self):
        from repro.cpp.il import RoutineKind

        tree = compile_source(
            "class Obj { public: Obj() { } ~Obj() { } };\n"
            "void f(Obj& source) { Obj& alias = source; }\n"
        )
        f = tree.find_routine("f")
        kinds = [c.callee.kind for c in f.calls]
        assert RoutineKind.DESTRUCTOR not in kinds
        assert RoutineKind.CONSTRUCTOR not in kinds

    def test_pointer_local_records_no_lifetime(self):
        from repro.cpp.il import RoutineKind

        tree = compile_source(
            "class Obj { public: Obj() { } ~Obj() { } };\n"
            "void f() { Obj* p = new Obj(); delete p; }\n"
        )
        f = tree.find_routine("f")
        kinds = [c.callee.kind for c in f.calls]
        # exactly one ctor (new) and one dtor (delete); no scope-end dtor
        assert kinds.count(RoutineKind.CONSTRUCTOR) == 1
        assert kinds.count(RoutineKind.DESTRUCTOR) == 1

    def test_member_call_on_returned_temporary(self):
        tree = compile_source(
            "class Builder {\n"
            "public:\n"
            "    Builder& step() { return *this; }\n"
            "    int finish() { return 0; }\n"
            "};\n"
            "Builder make() { Builder b; return b; }\n"
            "int f() { return make().step().finish(); }\n"
        )
        f = tree.find_routine("f")
        names = [c.callee.name for c in f.calls]
        assert names.count("step") == 1
        assert "finish" in names and "make" in names
