"""Java front end tests (the other half of the paper's Section 6 plan)."""

import pytest

from repro.analyzer import analyze
from repro.cpp.il import Access, RoutineKind, Virtuality
from repro.ductape.pdb import PDB
from repro.java.frontend import JavaFrontend
from repro.workloads.javasim import compile_nbody


def compile_java(files: dict[str, str]):
    fe = JavaFrontend()
    fe.register_files(files)
    return fe.compile(sorted(files))


class TestConstructMapping:
    def test_package_becomes_namespace(self):
        tree = compile_java({"A.java": "package physics.core;\npublic class A { }\n"})
        names = [n.full_name for n in tree.all_namespaces]
        assert names == ["physics", "physics::core"]
        assert tree.find_class("physics::core::A") is not None

    def test_default_package(self):
        tree = compile_java({"A.java": "public class A { }\n"})
        assert tree.find_class("A") is not None

    def test_fields(self):
        tree = compile_java(
            {"A.java": "public class A { private int count; public double[] data; static boolean on; }\n"}
        )
        cls = tree.find_class("A")
        by_name = {f.name: f for f in cls.fields}
        assert by_name["count"].access is Access.PRIVATE
        assert by_name["count"].type.spelling() == "int"
        assert by_name["data"].type.spelling() == "double []"
        assert by_name["on"].is_static

    def test_methods_and_constructor(self):
        tree = compile_java(
            {
                "A.java": (
                    "public class A {\n"
                    "  public A(int n) { }\n"
                    "  public int get() { return 0; }\n"
                    "  private void helper() { }\n"
                    "  public static A make() { return new A(1); }\n"
                    "}\n"
                )
            }
        )
        cls = tree.find_class("A")
        ctor = cls.constructors()[0]
        assert ctor.kind is RoutineKind.CONSTRUCTOR
        get = next(r for r in cls.routines if r.name == "get")
        assert get.linkage == "java"
        assert get.signature.return_type.spelling() == "int"
        make = next(r for r in cls.routines if r.name == "make")
        assert make.is_static_member

    def test_virtuality_rules(self):
        tree = compile_java(
            {
                "A.java": (
                    "public class A {\n"
                    "  public void instanceM() { }\n"
                    "  public static void staticM() { }\n"
                    "  public final void finalM() { }\n"
                    "  private void privateM() { }\n"
                    "  public abstract void abstractM();\n"
                    "}\n"
                )
            }
        )
        cls = tree.find_class("A")
        virts = {r.name: r.virtuality for r in cls.routines}
        assert virts["instanceM"] is Virtuality.VIRTUAL
        assert virts["staticM"] is Virtuality.NO
        assert virts["finalM"] is Virtuality.NO
        assert virts["privateM"] is Virtuality.NO
        assert virts["abstractM"] is Virtuality.PURE

    def test_interface_is_abstract_class(self):
        tree = compile_java(
            {"I.java": "public interface I { int size(); void clear(); }\n"}
        )
        cls = tree.find_class("I")
        assert cls.is_abstract
        assert cls.flags["java_interface"]
        assert all(r.virtuality is Virtuality.PURE for r in cls.routines)

    def test_extends_and_implements(self):
        tree = compile_nbody()
        star = tree.find_class("sim::Star")
        assert [b.name for b, _, _ in star.bases] == ["Body"]
        gravity = tree.find_class("sim::Gravity")
        assert [b.name for b, _, _ in gravity.bases] == ["Force"]

    def test_cross_file_resolution_any_order(self):
        files = {
            "B.java": "public class B extends A { }\n",
            "A.java": "public class A { }\n",
        }
        tree = compile_java(files)  # sorted: A then B — but reverse works too
        fe = JavaFrontend()
        fe.register_files(files)
        tree2 = fe.compile(["B.java", "A.java"])
        for t in (tree, tree2):
            assert [b.name for b, _, _ in t.find_class("B").bases] == ["A"]


class TestCallExtraction:
    def test_unqualified_call(self):
        tree = compile_nbody()
        norm = tree.find_routine("math::Vector3::norm")
        assert [c.callee.name for c in norm.calls] == ["dot"]

    def test_receiver_call_via_local(self):
        tree = compile_nbody()
        main = tree.find_routine("sim::Simulation::main")
        assert any(c.callee.full_name == "sim::Simulation::step" for c in main.calls)

    def test_new_records_constructor(self):
        tree = compile_nbody()
        main = tree.find_routine("sim::Simulation::main")
        ctors = [c.callee.parent.name for c in main.calls if c.callee.kind is RoutineKind.CONSTRUCTOR]
        assert "Gravity" in ctors and "Simulation" in ctors

    def test_static_call_via_class_name(self):
        tree = compile_nbody()
        body_ctor = tree.find_class("sim::Body").constructors()[0]
        assert [c.callee.name for c in body_ctor.calls] == ["zero", "zero"]

    def test_field_receiver(self):
        tree = compile_nbody()
        drift = tree.find_routine("sim::Body::drift")
        names = [c.callee.name for c in drift.calls]
        assert "add" in names and "scale" in names

    def test_interface_dispatch_is_virtual(self):
        tree = compile_nbody()
        step = tree.find_routine("sim::Simulation::step")
        apply_call = next(c for c in step.calls if c.callee.name == "apply")
        assert apply_call.is_virtual
        assert apply_call.callee.parent.name == "Force"

    def test_chained_calls(self):
        tree = compile_nbody()
        apply_r = tree.find_routine("sim::Gravity::apply")
        names = [c.callee.name for c in apply_r.calls]
        assert "position" in names and "add" in names  # b.position().add(…)

    def test_no_duplicate_for_single_site(self):
        tree = compile_java(
            {
                "A.java": (
                    "public class A {\n"
                    "  public void once() { }\n"
                    "  public void run() { A a = new A(); a.once(); }\n"
                    "}\n"
                )
            }
        )
        run = tree.find_routine("A::run")
        onces = [c for c in run.calls if c.callee.name == "once"]
        assert len(onces) == 1


class TestUniformPdb:
    @pytest.fixture(scope="class")
    def pdb(self):
        return PDB(analyze(compile_nbody()))

    def test_items(self, pdb):
        assert pdb.findClass("sim::Body") is not None
        assert pdb.findRoutine("sim::Simulation::step") is not None
        r = pdb.findRoutine("math::Vector3::dot")
        assert r.linkage() == "java"

    def test_pdbtree_unchanged(self, pdb):
        from repro.tools.pdbtree import render_call_tree

        out = render_call_tree(pdb, "main")
        assert "sim::Simulation::step" in out
        assert "(VIRTUAL)" in out  # the Force.apply dispatch

    def test_pdbconv_clean(self, pdb):
        from repro.tools.pdbconv import check_pdb

        assert check_pdb(pdb) == []

    def test_class_hierarchy(self, pdb):
        h = pdb.getClassHierarchy()
        body = pdb.findClass("sim::Body")
        derived = [c.name() for c, d in h.walk(body) if d == 1]
        assert "Star" in derived

    def test_simulator_profiles_java(self, pdb):
        from repro.tau.machine import CostModel
        from repro.tau.simulate import ExecutionSimulator, WorkloadSpec

        cm = CostModel(default_cycles=5.0).add("kick", 200.0)
        spec = WorkloadSpec(
            entry="sim::Simulation::main",
            cost=cm,
            pair_counts={("sim::Simulation::main", "sim::Simulation::step"): 100},
        )
        prof = ExecutionSimulator(pdb, spec).run().profile(0)
        prof.check_consistency()
        kick = next(t for n, t in prof.timers.items() if "kick" in n)
        assert kick.calls == 100
        # Force::apply is abstract (no body): correctly untimed — the
        # static call graph does not invent a dynamic dispatch target
        assert not any("apply" in n for n in prof.timers)

    def test_three_language_merge(self, pdb):
        """C++ + Fortran + Java in one program database."""
        from repro.tools.pdbconv import check_pdb
        from repro.workloads.fortran90 import compile_heat
        from repro.workloads.stack import compile_stack

        merged = PDB(analyze(compile_stack()))
        merged.merge(PDB(analyze(compile_heat())))
        merged.merge(PDB.from_text(pdb.to_text()))
        links = {r.linkage() for r in merged.getRoutineVec()}
        assert {"C++", "fortran", "java"} <= links
        assert check_pdb(merged) == []
