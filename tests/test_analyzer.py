"""IL Analyzer tests: item emission, attributes, template matching."""


from repro.analyzer import ILAnalyzer, analyze
from repro.cpp.instantiate import InstantiationMode
from repro.pdbfmt import ItemRef
from tests.util import compile_source


def doc_for(src: str, **kw):
    return analyze(compile_source(src, **kw))


def items_named(doc, prefix, name):
    return [i for i in doc.by_prefix(prefix) if i.name == name]


def the_item(doc, prefix, name):
    matches = items_named(doc, prefix, name)
    assert len(matches) == 1, f"expected one {prefix} {name!r}, got {len(matches)}"
    return matches[0]


class TestFilesPass:
    def test_files_and_inclusions(self):
        doc = analyze(
            compile_source('#include "a.h"\nint main() { return 0; }', files={"a.h": ""})
        )
        main_item = the_item(doc, "so", "main.cpp")
        a_item = the_item(doc, "so", "a.h")
        assert main_item.get_ref("sinc") == a_item.ref

    def test_synthetic_files_excluded(self):
        doc = doc_for("int x;")
        assert all(not i.name.startswith("<") for i in doc.by_prefix("so"))


class TestRoutinesPass:
    SRC = (
        "class C { public: virtual int m(int a, int b = 2) const; };\n"
        "int C::m(int a, int b) const { return a + b; }\n"
        "static void helper() { }\n"
        "void caller() { C c; c.m(1); helper(); }\n"
    )

    def test_core_attributes(self):
        doc = doc_for(self.SRC)
        m = the_item(doc, "ro", "m")
        assert m.first_word("racs") == "pub"
        assert m.first_word("rvirt") == "virt"
        assert m.first_word("rkind") == "memfunc"
        assert m.first_word("rlink") == "C++"
        assert m.get_ref("rclass") == the_item(doc, "cl", "C").ref

    def test_signature_reference(self):
        doc = doc_for(self.SRC)
        m = the_item(doc, "ro", "m")
        sig_ref = m.get_ref("rsig")
        sig = doc.find(sig_ref)
        assert sig.prefix == "ty"
        assert sig.first_word("ykind") == "func"
        assert sig.get("yqual").words == ["const"]

    def test_storage_class(self):
        doc = doc_for(self.SRC)
        assert the_item(doc, "ro", "helper").first_word("rstore") == "static"

    def test_rcall_rows(self):
        doc = doc_for(self.SRC)
        caller = the_item(doc, "ro", "caller")
        calls = caller.get_all("rcall")
        callees = {doc.find(ItemRef.parse(a.words[0])).name for a in calls}
        assert callees == {"m", "helper"}
        virt_flags = {doc.find(ItemRef.parse(a.words[0])).name: a.words[1] for a in calls}
        assert virt_flags["m"] == "virt"
        assert virt_flags["helper"] == "no"

    def test_rcall_location(self):
        doc = doc_for(self.SRC)
        caller = the_item(doc, "ro", "caller")
        call = caller.get_all("rcall")[0]
        assert int(call.words[3]) == 4  # line of the call expression

    def test_rarg_rows(self):
        doc = doc_for(self.SRC)
        m = the_item(doc, "ro", "m")
        args = m.get_all("rarg")
        assert len(args) == 2
        assert args[0].words[1] == "a" and args[0].words[2] == "-"
        assert args[1].words[1] == "b" and args[1].words[2] == "D"

    def test_rpos(self):
        doc = doc_for(self.SRC)
        m = the_item(doc, "ro", "m")
        locs = m.get_positions("rpos")
        assert locs[0].line == 2  # header begin at the definition


class TestClassesPass:
    SRC = (
        "class Base { public: virtual ~Base(); };\n"
        "class Friendly;\n"
        "class D : public virtual Base {\n"
        "public:\n"
        "    void m();\n"
        "    friend class Friendly;\n"
        "private:\n"
        "    int counter;\n"
        "    static double rate;\n"
        "};\n"
    )

    def test_ckind_cloc(self):
        doc = doc_for(self.SRC)
        d = the_item(doc, "cl", "D")
        assert d.first_word("ckind") == "class"
        assert d.get_location("cloc").line == 3

    def test_cbase(self):
        doc = doc_for(self.SRC)
        d = the_item(doc, "cl", "D")
        base_attr = d.get("cbase")
        assert base_attr.words[0] == "pub"
        assert base_attr.words[1] == "virt"
        assert doc.find(ItemRef.parse(base_attr.words[2])).name == "Base"

    def test_cfriend(self):
        doc = doc_for(self.SRC)
        d = the_item(doc, "cl", "D")
        assert doc.find(d.get_ref("cfriend")).name == "Friendly"

    def test_cfunc_rows(self):
        doc = doc_for(self.SRC)
        d = the_item(doc, "cl", "D")
        funcs = d.get_all("cfunc")
        assert {doc.find(ItemRef.parse(a.words[0])).name for a in funcs} == {"m"}

    def test_cmem_groups(self):
        doc = doc_for(self.SRC)
        d = the_item(doc, "cl", "D")
        keys = [a.key for a in d.attributes if a.key.startswith("cm")]
        # each cmem followed by its loc/acs/kind/type rows (Figure 3)
        assert keys == ["cmem", "cmloc", "cmacs", "cmkind", "cmtype"] * 2
        mems = [a.text for a in d.attributes if a.key == "cmem"]
        assert mems == ["counter", "rate"]
        kinds = [a.words[0] for a in d.attributes if a.key == "cmkind"]
        assert kinds == ["var", "svar"]
        accesses = [a.words[0] for a in d.attributes if a.key == "cmacs"]
        assert accesses == ["priv", "priv"]


class TestTypesPass:
    def test_builtin_int(self):
        doc = doc_for("int x;")
        # int is referenced by nothing in the PDB (variables are not
        # items), so force it via a signature
        doc = doc_for("int f();")
        int_items = items_named(doc, "ty", "int")
        assert int_items and int_items[0].first_word("yikind") == "int"

    def test_bool_yikind_char(self):
        doc = doc_for("bool f();")
        b = the_item(doc, "ty", "bool")
        assert b.first_word("ykind") == "bool"
        assert b.first_word("yikind") == "char"  # paper Figure 3

    def test_const_ref_chain(self):
        """Reproduce Figure 3's ty#49 -> ty#439 -> ty#5 chain."""
        doc = doc_for("void f(const int& x);")
        ref = the_item(doc, "ty", "const int &")
        assert ref.first_word("ykind") == "ref"
        tref = doc.find(ref.get_ref("yref"))
        assert tref.name == "const int"
        assert tref.first_word("ykind") == "tref"
        assert tref.get("yqual").words == ["const"]
        base = doc.find(tref.get_ref("ytref"))
        assert base.name == "int"

    def test_function_type_args_final_marker(self):
        doc = doc_for("void f(int a, double b);")
        sig = the_item(doc, "ty", "void (int, double)")
        args = sig.get_all("yargt")
        assert len(args) == 2
        assert "F" not in args[0].words
        assert args[1].words[-1] == "F"  # paper Figure 3's trailing F

    def test_enum_item(self):
        doc = doc_for("enum Color { RED = 1, BLUE = 4 };")
        e = the_item(doc, "ty", "Color")
        assert e.first_word("ykind") == "enum"
        names = [a.words for a in e.get_all("yename")]
        assert names == [["RED", "1"], ["BLUE", "4"]]

    def test_typedef_item(self):
        doc = doc_for("typedef unsigned long size_type;")
        td = the_item(doc, "ty", "size_type")
        assert td.first_word("ykind") == "typedef"
        assert doc.find(td.get_ref("ytref")).name == "unsigned long"

    def test_class_types_are_cl_refs(self):
        doc = doc_for("class C { public: int x; };\nclass D { C member; };")
        d = the_item(doc, "cl", "D")
        mtype = [a for a in d.attributes if a.key == "cmtype"][0]
        assert mtype.words[0].startswith("cl#")

    def test_ellipsis_and_exceptions(self):
        doc = doc_for("class E {};\nvoid f(int x, ...);\nvoid g() throw(E);")
        fsig = [i for i in doc.by_prefix("ty") if i.get("yellip")]
        assert fsig
        gsig = [i for i in doc.by_prefix("ty") if i.get("yexcep")]
        assert gsig


class TestTemplatesPassAndMatching:
    BOX = (
        "template <class T>\n"
        "class Box {\n"
        "public:\n"
        "    T get() const { return value_; }\n"
        "private:\n"
        "    T value_;\n"
        "};\n"
    )

    def test_te_item(self):
        doc = doc_for(self.BOX)
        te = the_item(doc, "te", "Box")
        assert te.first_word("tkind") == "class"
        assert "template" in te.get("ttext").text

    def test_ctempl_via_location_matching(self):
        doc = doc_for(self.BOX + "Box<int> b;")
        cls = the_item(doc, "cl", "Box<int>")
        assert doc.find(cls.get_ref("ctempl")).name == "Box"

    def test_rtempl_for_inline_member(self):
        doc = doc_for(self.BOX + "int f() { Box<int> b; return b.get(); }")
        get = the_item(doc, "ro", "get")
        te = doc.find(get.get_ref("rtempl"))
        assert te is not None and te.name == "Box"

    def test_rtempl_for_out_of_line_member(self):
        src = (
            "template <class T> class H { public: T v(); };\n"
            "template <class T> T H<T>::v() { return 0; }\n"
            "int f() { H<int> h; return h.v(); }\n"
        )
        doc = doc_for(src)
        v = the_item(doc, "ro", "v")
        te = doc.find(v.get_ref("rtempl"))
        assert te.name == "v"
        assert te.first_word("tkind") == "memfunc"

    def test_specialization_has_no_ctempl(self):
        """The paper's documented limitation: a specialization's location
        is outside the primary template, so no originating template."""
        src = (
            self.BOX
            + "template <> class Box<char> { public: char get() const { return 'x'; } };\n"
            + "Box<char> b;\n"
        )
        doc = doc_for(src)
        spec = the_item(doc, "cl", "Box<char>")
        assert spec.get_ref("ctempl") is None
        assert spec.first_word("cspecl") == "yes"

    def test_uninstantiated_members_match_class_template(self):
        src = self.BOX + "Box<int> b;"
        doc = doc_for(src)
        get = the_item(doc, "ro", "get")  # declared but body not used
        te = doc.find(get.get_ref("rtempl"))
        assert te.name == "Box"


class TestNamespacesAndMacros:
    def test_namespace_item(self):
        doc = doc_for("namespace util { class C {}; int f(); }")
        ns = the_item(doc, "na", "util")
        member_names = {doc.find(ItemRef.parse(a.words[0])).name for a in ns.get_all("nmem")}
        assert {"C", "f"} <= member_names

    def test_nested_namespace_parent(self):
        doc = doc_for("namespace a { namespace b { } }")
        b = the_item(doc, "na", "b")
        assert doc.find(b.get_ref("nnspace")).name == "a"

    def test_macro_items(self):
        doc = doc_for("#define LIMIT 100\n#define SQ(x) ((x)*(x))\nint arr[LIMIT];")
        limit = the_item(doc, "ma", "LIMIT")
        assert limit.first_word("makind") == "def"
        assert limit.get("matext").text == "#define LIMIT 100"
        sq = the_item(doc, "ma", "SQ")
        assert "((x)*(x))" in sq.get("matext").text

    def test_undef_recorded(self):
        doc = doc_for("#define A 1\n#undef A\n")
        kinds = [i.first_word("makind") for i in doc.by_prefix("ma")]
        assert kinds == ["def", "undef"]


class TestPassSelection:
    def test_selected_passes_only(self):
        tree = compile_source("#define M 1\nclass C {};\nint f() { return M; }")
        doc = ILAnalyzer(tree, passes=("so", "ma")).run()
        assert doc.by_prefix("ma")
        assert doc.by_prefix("so")
        assert not doc.by_prefix("cl")
        assert not doc.by_prefix("ro")


class TestPrelinkVisibility:
    def test_instantiations_absent_from_pdb(self):
        src = (
            "template <class T> class B { public: T g() { return 0; } };\n"
            "int f() { B<int> b; return b.g(); }\n"
        )
        used_doc = doc_for(src, mode=InstantiationMode.USED)
        pre_doc = doc_for(src, mode=InstantiationMode.PRELINK)
        assert items_named(used_doc, "cl", "B<int>")
        assert not items_named(pre_doc, "cl", "B<int>")
        # the caller's rcall into the hidden instantiation is dropped too
        f_pre = the_item(pre_doc, "ro", "f")
        callee_refs = [a.words[0] for a in f_pre.get_all("rcall")]
        assert all(pre_doc.find(ItemRef.parse(w)) is not None for w in callee_refs)


class TestDeterminism:
    def test_same_source_same_pdb(self):
        src = "template <class T> class B { public: T g(); };\nB<int> b;\nint f();"
        from repro.pdbfmt import write_pdb

        assert write_pdb(doc_for(src)) == write_pdb(doc_for(src))

    def test_ids_are_dense_per_prefix(self):
        doc = doc_for("class A {}; class B {}; int f(); int g();")
        for prefix in ("cl", "ro"):
            ids = [i.id for i in doc.by_prefix(prefix)]
            assert ids == list(range(1, len(ids) + 1))
