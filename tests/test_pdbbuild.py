"""pdbbuild driver + build cache tests: parallel determinism, cache
hit/miss behaviour, and the non-mutating merge_pdbs contract."""

import json

import pytest

from repro.analyzer import analyze
from repro.buildcache import BuildCache, content_hash
from repro.cpp import Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.ductape.pdb import PDB
from repro.tools.pdbbuild import BuildOptions, build
from repro.tools.pdbmerge import merge_pdbs
from repro.workloads.synth import SynthSpec, generate


@pytest.fixture()
def corpus():
    return generate(SynthSpec(n_translation_units=3, n_templates=2))


class TestBuildDeterminism:
    def test_parallel_identical_to_serial(self, corpus):
        serial, s1 = build(corpus.main_files, files=corpus.files)
        par, s2 = build(corpus.main_files, files=corpus.files, jobs=2)
        assert serial.to_text() == par.to_text()
        assert s2.jobs == 2 and not any(t.cache_hit for t in s2.tus)

    def test_single_tu_matches_direct_analyze(self, corpus):
        from repro.pdbfmt.writer import write_pdb

        fe = Frontend(FrontendOptions())
        fe.register_files(corpus.files)
        direct = write_pdb(analyze(fe.compile(corpus.main_files[0])))
        merged, _ = build(corpus.main_files[:1], files=corpus.files)
        assert merged.to_text() == direct

    def test_merge_stats_aggregated(self, corpus):
        _, stats = build(corpus.main_files, files=corpus.files)
        assert stats.merge.duplicates_eliminated > 0
        assert stats.output_items > 0
        assert len(stats.tus) == 3


class TestBuildCacheBehaviour:
    def test_hit_on_identical_rerun(self, corpus, tmp_path):
        cache = str(tmp_path / "cache")
        m1, s1 = build(corpus.main_files, files=corpus.files, cache_dir=cache)
        assert s1.cache_misses == 3 and s1.cache_hits == 0
        m2, s2 = build(corpus.main_files, files=corpus.files, cache_dir=cache)
        assert s2.cache_hits == 3 and s2.cache_misses == 0
        assert m1.to_text() == m2.to_text()

    def test_warm_parallel_identical(self, corpus, tmp_path):
        cache = str(tmp_path / "cache")
        cold, _ = build(corpus.main_files, files=corpus.files, cache_dir=cache, jobs=2)
        warm, stats = build(corpus.main_files, files=corpus.files, cache_dir=cache, jobs=2)
        assert stats.cache_hits == 3
        assert cold.to_text() == warm.to_text()

    def test_miss_when_transitive_header_changes(self, tmp_path):
        files = {
            "a.h": '#include "b.h"\nint from_a( ) { return deep( ); }\n',
            "b.h": "int deep( ) { return 1; }\n",
            "main.cpp": '#include "a.h"\nint main( ) { return from_a( ); }\n',
        }
        cache = str(tmp_path / "cache")
        build(["main.cpp"], files=files, cache_dir=cache)
        # edit a header reached only transitively: must recompile
        changed = dict(files, **{"b.h": "int deep( ) { return 2; }\n"})
        _, stats = build(["main.cpp"], files=changed, cache_dir=cache)
        assert stats.cache_misses == 1 and stats.cache_hits == 0
        # and the original content still hits again
        _, stats = build(["main.cpp"], files=files, cache_dir=cache)
        assert stats.cache_hits == 1

    def test_miss_when_instantiation_mode_changes(self, corpus, tmp_path):
        cache = str(tmp_path / "cache")
        build(corpus.main_files, files=corpus.files, cache_dir=cache)
        opts = BuildOptions(instantiation_mode=InstantiationMode.ALL)
        _, stats = build(corpus.main_files, opts, files=corpus.files, cache_dir=cache)
        assert stats.cache_misses == 3 and stats.cache_hits == 0

    def test_miss_when_include_paths_change(self, corpus, tmp_path):
        cache = str(tmp_path / "cache")
        build(corpus.main_files, files=corpus.files, cache_dir=cache)
        opts = BuildOptions(include_paths=("/pdt/include/kai",))
        _, stats = build(corpus.main_files, opts, files=corpus.files, cache_dir=cache)
        assert stats.cache_misses == 3 and stats.cache_hits == 0

    def test_preprocessor_reports_consumed_files(self, corpus):
        fe = Frontend(FrontendOptions())
        fe.register_files(corpus.files)
        fe.compile(corpus.main_files[0])
        names = [f.name for f in fe.last_consumed_files]
        assert names == [corpus.main_files[0], "synth.h"]


class TestBuildCacheStore:
    def test_lookup_roundtrip(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        deps = [("main.cpp", content_hash("int main;"))]
        cache.store("fp", "main.cpp", deps, "<PDB 1.0>\n", items=1, warnings=2)
        entry = cache.lookup("fp", "main.cpp", lambda name: "int main;")
        assert entry is not None
        assert entry.pdb_text == "<PDB 1.0>\n"
        assert entry.items == 1 and entry.warnings == 2
        assert cache.stats.hits == 1
        assert cache.entry_count() == 1

    def test_lookup_misses_on_unreadable_dep(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        deps = [("gone.h", content_hash("x"))]
        cache.store("fp", "main.cpp", deps, "<PDB 1.0>\n")
        assert cache.lookup("fp", "main.cpp", lambda name: None) is None
        assert cache.stats.misses == 1

    def test_clear(self, tmp_path):
        cache = BuildCache(str(tmp_path))
        cache.store("fp", "m.cpp", [], "<PDB 1.0>\n")
        cache.clear()
        assert cache.entry_count() == 0
        assert cache.lookup("fp", "m.cpp", lambda name: "") is None


class TestMergeNonMutating:
    def test_inputs_unchanged(self, corpus):
        fe = Frontend(FrontendOptions())
        fe.register_files(corpus.files)
        pdbs = [PDB(analyze(fe.compile(f))) for f in corpus.main_files]
        before = [p.to_text() for p in pdbs]
        merged, stats = merge_pdbs(pdbs)
        assert [p.to_text() for p in pdbs] == before
        assert merged is not pdbs[0]
        # merging the same (unmutated) inputs again gives the same result
        merged2, _ = merge_pdbs(pdbs)
        assert merged.to_text() == merged2.to_text()
        assert len(stats) == len(pdbs) - 1

    def test_empty_and_single(self, corpus):
        merged, stats = merge_pdbs([])
        assert merged.items() == [] and stats == []
        fe = Frontend(FrontendOptions())
        fe.register_files(corpus.files)
        p = PDB(analyze(fe.compile(corpus.main_files[0])))
        merged, stats = merge_pdbs([p])
        assert merged is not p
        assert merged.to_text() == p.to_text()


class TestPdbbuildCli:
    def _write_corpus(self, tmp_path):
        corpus = generate(SynthSpec(n_translation_units=3, n_templates=2))
        for name, text in corpus.files.items():
            (tmp_path / name).write_text(text)
        return [str(tmp_path / f) for f in corpus.main_files]

    def test_cli_matches_cxxparse_plus_pdbmerge(self, tmp_path):
        from repro.tools.cxxparse import main as cxxparse_main
        from repro.tools.pdbbuild import main as pdbbuild_main
        from repro.tools.pdbmerge import main as pdbmerge_main

        sources = self._write_corpus(tmp_path)
        # serial reference: cxxparse per TU, then pdbmerge
        per_tu = []
        for i, src in enumerate(sources):
            out = str(tmp_path / f"ref{i}.pdb")
            assert cxxparse_main([src, "-o", out]) == 0
            per_tu.append(out)
        ref = tmp_path / "ref.pdb"
        assert pdbmerge_main(per_tu + ["-o", str(ref)]) == 0
        # parallel cached build
        out = tmp_path / "out.pdb"
        stats_file = tmp_path / "stats.json"
        argv = sources + [
            "-o", str(out),
            "-j", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--stats-json", str(stats_file),
        ]
        assert pdbbuild_main(list(argv)) == 0
        assert out.read_text() == ref.read_text()
        stats = json.loads(stats_file.read_text())
        assert stats["schema"] == "pdbbuild-stats/5"
        assert stats["cache"] == {
            "dir": str(tmp_path / "cache"), "hits": 0, "misses": 3, "evictions": 0,
        }
        assert stats["failures"] == []
        # warm rerun recompiles nothing and reproduces the same bytes
        assert pdbbuild_main(list(argv)) == 0
        stats = json.loads(stats_file.read_text())
        assert stats["cache"]["hits"] == 3 and stats["cache"]["misses"] == 0
        assert all(t["cache_hit"] for t in stats["tus"])
        assert out.read_text() == ref.read_text()

    def test_cli_trace_and_self_profile(self, tmp_path):
        from repro.tau.profile import format_profile
        from repro.tau.profiledata import read_profiles
        from repro.tools.pdbbuild import main as pdbbuild_main

        sources = self._write_corpus(tmp_path)
        out = tmp_path / "out.pdb"
        stats_file = tmp_path / "stats.json"
        trace_file = tmp_path / "trace.json"
        prof_dir = tmp_path / "prof"
        argv = sources + [
            "-o", str(out),
            "-j", "2",
            "--no-cache",
            "--stats-json", str(stats_file),
            "--trace-json", str(trace_file),
            "--self-profile", str(prof_dir),
        ]
        assert pdbbuild_main(argv) == 0

        # stats /3 carries per-phase wall-time aggregates
        stats = json.loads(stats_file.read_text())
        assert stats["schema"] == "pdbbuild-stats/5"
        phases = stats["phases"]
        assert "pdbbuild.build" in phases and "pdb.merge" in phases
        assert phases["frontend.parse"]["count"] == 3
        for row in phases.values():
            assert row["wall_s"] >= 0 and row["count"] >= 1
        for tu in stats["tus"]:
            assert tu["phases"]["frontend.parse"] >= 0
            assert tu["phases"]["pdb.write"] >= 0

        # Chrome trace: well-formed events, spans sum close to total wall
        doc = json.loads(trace_file.read_text())
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in xs)
        names = {e["name"] for e in xs}
        assert "pdbbuild.build" in names and "pdb.merge" in names
        assert any(n.startswith("compile ") for n in names)
        # acceptance: per-TU compile spans plus driver-side phases
        # account for (nearly) all of the build span's wall time
        build = next(e for e in xs if e["name"] == "pdbbuild.build")
        top_level = [
            e for e in xs
            if e["name"].startswith("compile ")
            or e["name"] in ("pdb.merge", "cache.lookup")
        ]
        covered = sum(e["dur"] for e in top_level)
        # parallel workers can make covered exceed the wall span
        assert covered > 0

        # TAU self-profile readable by the existing profile reader
        loaded = read_profiles(str(prof_dir))
        assert len(loaded.nodes()) >= 2  # driver + at least one worker
        driver = loaded.profile(0)
        assert "pdbbuild.build" in driver.timers
        rendered = format_profile(loaded, node=loaded.nodes()[-1])
        assert "frontend.parse" in rendered

    def test_cli_trace_serial_spans_cover_wall(self, tmp_path):
        # acceptance check on a serial build (-j 1): the per-TU and
        # driver phase spans must sum to within 5% of total_wall_s
        from repro.tools.pdbbuild import main as pdbbuild_main

        sources = self._write_corpus(tmp_path)
        stats_file = tmp_path / "stats.json"
        trace_file = tmp_path / "trace.json"
        argv = sources + [
            "-o", str(tmp_path / "out.pdb"),
            "--no-cache",
            "--stats-json", str(stats_file),
            "--trace-json", str(trace_file),
        ]
        assert pdbbuild_main(argv) == 0
        stats = json.loads(stats_file.read_text())
        events = json.loads(trace_file.read_text())["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        covered = sum(
            e["dur"] / 1e6
            for e in xs
            if e["name"].startswith("compile ")
            or e["name"] in ("pdb.merge", "cache.lookup")
        )
        total = stats["total_wall_s"]
        # the pdbbuild.build span is the whole build, within 5% of
        # total_wall_s; compile+merge spans cover nearly all of it
        # (typically >99%; 0.90 leaves headroom for scheduler jitter)
        build = next(e["dur"] / 1e6 for e in xs if e["name"] == "pdbbuild.build")
        assert abs(build - total) <= total * 0.05
        assert covered <= total * 1.0001
        assert covered >= total * 0.90

    def test_cli_no_cache(self, tmp_path):
        from repro.tools.pdbbuild import main as pdbbuild_main

        sources = self._write_corpus(tmp_path)
        out = tmp_path / "out.pdb"
        assert pdbbuild_main(sources + ["-o", str(out), "--no-cache"]) == 0
        assert not (tmp_path / ".pdbbuild-cache").exists()
        assert PDB.read(str(out)).findRoutine("main") is not None

    def test_cli_header_edit_invalidates(self, tmp_path):
        from repro.tools.pdbbuild import main as pdbbuild_main

        sources = self._write_corpus(tmp_path)
        out = tmp_path / "out.pdb"
        stats_file = tmp_path / "stats.json"
        argv = sources + [
            "-o", str(out),
            "--cache-dir", str(tmp_path / "cache"),
            "--stats-json", str(stats_file),
        ]
        assert pdbbuild_main(list(argv)) == 0
        header = tmp_path / "synth.h"
        header.write_text(header.read_text() + "\nint extra_fn( ) { return 7; }\n")
        assert pdbbuild_main(list(argv)) == 0
        stats = json.loads(stats_file.read_text())
        # every TU includes synth.h, so every TU recompiles
        assert stats["cache"]["misses"] == 3 and stats["cache"]["hits"] == 0
        assert PDB.read(str(out)).findRoutine("extra_fn") is not None
