"""Tests for the extension features: parser error recovery, TAU profile
groups, bar displays, and the f90parse CLI."""

import pytest

from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.cpp.diagnostics import CppError
from repro.ductape.pdb import PDB
from repro.tau.machine import uniform_model
from repro.tau.profile import format_bars
from repro.tau.simulate import ExecutionSimulator, WorkloadSpec
from tests.util import compile_source


class TestErrorRecovery:
    BROKEN = (
        "int good_one() { return 1; }\n"
        "int broken( { ;;; !!\n"          # unparseable declaration
        "int good_two() { return 2; }\n"
    )

    def test_fatal_mode_raises(self):
        with pytest.raises(CppError):
            compile_source(self.BROKEN)

    def test_recovery_mode_continues(self):
        fe = Frontend(FrontendOptions(fatal_errors=False))
        fe.register_files({"main.cpp": self.BROKEN})
        tree = fe.compile("main.cpp")
        assert tree.find_routine("good_one") is not None
        assert tree.find_routine("good_two") is not None
        assert fe.last_sink.error_count >= 1

    def test_recovery_reports_location(self):
        fe = Frontend(FrontendOptions(fatal_errors=False))
        fe.register_files({"main.cpp": self.BROKEN})
        fe.compile("main.cpp")
        errors = [d for d in fe.last_sink.diagnostics if d.severity.name == "ERROR"]
        assert any(d.location is not None and d.location.line == 2 for d in errors)

    def test_recovery_terminates_on_garbage(self):
        fe = Frontend(FrontendOptions(fatal_errors=False))
        fe.register_files({"main.cpp": "((((( }}}}} class ;;; int\n" * 5})
        tree = fe.compile("main.cpp")  # must not hang or crash
        assert tree is not None

    def test_error_cap_degrades_to_partial_tree(self):
        fe = Frontend(FrontendOptions(fatal_errors=False, max_errors=10))
        # enough distinct broken declarations to exceed max_errors
        src = "int good_one() { return 1; }\n" + "\n".join(
            f"int broken{i}( {{ ;;;" for i in range(120)
        )
        fe.register_files({"main.cpp": src})
        # the cascade bound stops the unit early, but the IL built before
        # the cap — and every recorded diagnostic — survives
        tree = fe.compile("main.cpp")
        assert fe.last_error_overflow
        assert tree.find_routine("good_one") is not None
        assert 10 <= fe.last_sink.error_count <= 12

    def test_recovery_inside_class(self):
        src = (
            "class C {\n"
            "public:\n"
            "    int ok();\n"
            "    !!!garbage!!!\n"
            "};\n"
            "int after() { return 0; }\n"
        )
        fe = Frontend(FrontendOptions(fatal_errors=False))
        fe.register_files({"main.cpp": src})
        tree = fe.compile("main.cpp")
        assert tree.find_routine("after") is not None


class TestProfileGroups:
    SRC = (
        "int kernel() { return 1; }\n"
        "int io_read() { return 2; }\n"
        "int main() { return kernel() + io_read(); }\n"
    )

    def make_profiler(self):
        pdb = PDB(analyze(compile_source(self.SRC)))

        def namer(r):
            name = r.name()
            if not r.bodyBegin().known:
                return None
            group = "TAU_IO" if name.startswith("io_") else "TAU_USER"
            return (name, group)

        sim = ExecutionSimulator(
            pdb, WorkloadSpec(cost=uniform_model(10.0)), namer=namer
        )
        return sim.run()

    def test_groups_recorded(self):
        profiler = self.make_profiler()
        assert set(profiler.groups()) == {"TAU_USER", "TAU_IO"}

    def test_group_filtering(self):
        profiler = self.make_profiler()
        io = profiler.group_stats("TAU_IO")
        assert set(io) == {"io_read"}
        user = profiler.group_stats("TAU_USER")
        assert set(user) == {"kernel", "main"}

    def test_groups_match_in_both_engines(self):
        pdb = PDB(analyze(compile_source(self.SRC)))

        def namer(r):
            if not r.bodyBegin().known:
                return None
            return (r.name(), "TAU_IO" if r.name().startswith("io_") else "TAU_USER")

        sim = ExecutionSimulator(pdb, WorkloadSpec(cost=uniform_model(1.0)), namer=namer)
        fast = sim.run().profile(0)
        traced = sim.run_traced().profile(0)
        assert {t.group for t in fast.timers.values()} == {
            t.group for t in traced.timers.values()
        }


class TestBarDisplay:
    def test_bars_shape(self):
        src = (
            "int hot() { return 1; }\nint warm() { return 2; }\n"
            "int main() { return hot() + warm(); }\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        from repro.tau.machine import CostModel

        cm = CostModel(default_cycles=10.0).add("hot", 1000.0).add("warm", 500.0)
        profiler = ExecutionSimulator(pdb, WorkloadSpec(cost=cm)).run()
        out = format_bars(profiler, width=40, top=3)
        lines = out.splitlines()[2:]
        assert "hot" in lines[0] and lines[0].count("#") == 40
        assert "warm" in lines[1] and 15 <= lines[1].count("#") <= 25

    def test_bars_inclusive_metric(self):
        src = "int a() { return 0; }\nint main() { return a(); }\n"
        pdb = PDB(analyze(compile_source(src)))
        profiler = ExecutionSimulator(pdb, WorkloadSpec(cost=uniform_model(5.0))).run()
        out = format_bars(profiler, metric="inclusive", top=2)
        assert "main" in out.splitlines()[2]  # main has the largest inclusive


class TestF90ParseCli:
    def test_cli(self, tmp_path):
        from repro.tools.f90parse import main
        from repro.workloads.fortran90 import fortran_files

        paths = []
        for name, text in fortran_files().items():
            p = tmp_path / name
            p.write_text(text)
            paths.append(str(p))
        out = tmp_path / "heat.pdb"
        assert main(paths + ["-o", str(out)]) == 0
        pdb = PDB.read(str(out))
        assert pdb.findRoutine("heat_app") is not None
        assert pdb.findClass("grid_mod::grid") is not None
