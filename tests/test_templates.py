"""Template machinery tests: definition, instantiation, specialization."""


from repro.cpp.il import TemplateKind
from repro.cpp.instantiate import InstantiationMode
from tests.util import compile_source

BOX = (
    "template <class T>\n"
    "class Box {\n"
    "public:\n"
    "    Box() : value_(0) { }\n"
    "    T get() const { return value_; }\n"
    "    void set(const T& v) { value_ = v; }\n"
    "    void unused_member() { int x = 1; }\n"
    "private:\n"
    "    T value_;\n"
    "};\n"
)


class TestClassTemplateDefinition:
    def test_template_registered(self):
        tree = compile_source(BOX)
        te = tree.find_template("Box")
        assert te is not None
        assert te.kind is TemplateKind.CLASS
        assert te.param_names() == ["T"]

    def test_template_text_captured(self):
        tree = compile_source(BOX)
        te = tree.find_template("Box")
        assert te.text.startswith("template <class T>")
        assert "class Box" in te.text

    def test_no_instantiation_without_use(self):
        tree = compile_source(BOX)
        assert not [c for c in tree.all_classes if c.is_instantiation]

    def test_pattern_not_in_registries(self):
        tree = compile_source(BOX)
        assert tree.find_class("Box") is None

    def test_multi_param_template(self):
        tree = compile_source(
            "template <class K, class V> class Map { K key; V value; };\n"
            "Map<int, double> m;"
        )
        cls = tree.find_class("Map<int, double>")
        assert cls is not None
        assert [f.type.spelling() for f in cls.fields] == ["int", "double"]

    def test_nontype_parameter(self):
        tree = compile_source(
            "template <class T, int N> class Arr { T data[N]; };\n"
            "Arr<double, 16> a;\nArr<double, 32> b;"
        )
        names = {c.name for c in tree.all_classes if c.is_instantiation}
        assert names == {"Arr<double, 16>", "Arr<double, 32>"}

    def test_default_template_argument(self):
        tree = compile_source(
            "template <class T, class U = T> class Pair2 { T a; U b; };\n"
            "Pair2<int> p;"
        )
        cls = next(c for c in tree.all_classes if c.is_instantiation)
        assert cls.name == "Pair2<int, int>"


class TestClassTemplateInstantiation:
    def test_instantiation_on_variable_declaration(self):
        tree = compile_source(BOX + "void f() { Box<int> b; }")
        assert tree.find_class("Box<int>") is not None

    def test_distinct_args_distinct_instantiations(self):
        tree = compile_source(BOX + "void f() { Box<int> a; Box<double> b; }")
        assert tree.find_class("Box<int>") is not None
        assert tree.find_class("Box<double>") is not None

    def test_same_args_shared_instantiation(self):
        tree = compile_source(BOX + "void f() { Box<int> a; }\nvoid g() { Box<int> b; }")
        boxes = [c for c in tree.all_classes if c.name == "Box<int>"]
        assert len(boxes) == 1

    def test_member_types_substituted(self):
        tree = compile_source(BOX + "Box<double> b;")
        cls = tree.find_class("Box<double>")
        assert cls.fields[0].type.spelling() == "double"
        get = next(r for r in cls.routines if r.name == "get")
        assert get.signature.return_type.spelling() == "double"

    def test_used_mode_laziness(self):
        tree = compile_source(BOX + "void f() { Box<int> b; b.set(1); }")
        cls = tree.find_class("Box<int>")
        by_name = {r.name.split("<")[0]: r for r in cls.routines}
        assert by_name["set"].defined
        assert by_name["Box"].defined  # ctor used by declaration
        assert not by_name["unused_member"].defined
        assert not by_name["get"].defined

    def test_transitive_use(self):
        src = (
            "template <class T> class Chain {\n"
            "public:\n"
            "    T outer() { return inner(); }\n"
            "    T inner() { return leaf(); }\n"
            "    T leaf() { return 0; }\n"
            "};\n"
            "int f() { Chain<int> c; return c.outer(); }\n"
        )
        tree = compile_source(src)
        cls = tree.find_class("Chain<int>")
        assert all(r.defined for r in cls.routines if r.name in ("outer", "inner", "leaf"))

    def test_all_mode_instantiates_members(self):
        tree = compile_source(
            BOX + "void f() { Box<int> b; }", mode=InstantiationMode.ALL
        )
        cls = tree.find_class("Box<int>")
        assert all(r.defined for r in cls.routines)

    def test_instantiation_positions_inside_template(self):
        tree = compile_source(BOX + "Box<int> b;")
        cls = tree.find_class("Box<int>")
        te = tree.find_template("Box")
        assert cls.location.file is te.location.file
        assert te.position.header.begin.line <= cls.location.line <= te.position.body.end.line

    def test_pointer_to_instantiation(self):
        tree = compile_source(BOX + "Box<int>* p;")
        assert tree.find_class("Box<int>") is not None

    def test_nested_template_args(self):
        tree = compile_source(BOX + "Box< Box<int> > nested;")
        assert tree.find_class("Box<Box<int>>") is not None

    def test_recursive_self_reference(self):
        src = (
            "template <class T> class Node {\n"
            "public:\n"
            "    T value;\n"
            "    Node<T>* next;\n"
            "};\n"
            "Node<int> n;"
        )
        tree = compile_source(src)
        cls = tree.find_class("Node<int>")
        assert cls.fields[1].type.spelling() == "Node<int> *"

    def test_explicit_instantiation_instantiates_all(self):
        tree = compile_source(BOX + "template class Box<char>;")
        cls = tree.find_class("Box<char>")
        assert cls is not None
        assert all(r.defined for r in cls.routines)


class TestOutOfLineMemberTemplates:
    SRC = (
        "template <class T>\n"
        "class Holder {\n"
        "public:\n"
        "    Holder(int n);\n"
        "    T fetch() const;\n"
        "    static int census();\n"
        "private:\n"
        "    T item_;\n"
        "};\n"
        "\n"
        "template <class T>\n"
        "Holder<T>::Holder(int n) : item_(0) {\n"
        "}\n"
        "\n"
        "template <class T>\n"
        "T Holder<T>::fetch() const {\n"
        "    return item_;\n"
        "}\n"
        "\n"
        "template <class T>\n"
        "int Holder<T>::census() {\n"
        "    return 0;\n"
        "}\n"
    )

    def test_memfunc_template_kinds(self):
        tree = compile_source(self.SRC)
        kinds = {
            t.name: t.kind for t in tree.all_templates if t.owner_class_template
        }
        assert kinds["Holder"] is TemplateKind.MEMBER_FUNCTION
        assert kinds["fetch"] is TemplateKind.MEMBER_FUNCTION
        assert kinds["census"] is TemplateKind.STATIC_MEMBER

    def test_body_from_out_of_line_definition(self):
        tree = compile_source(self.SRC + "int f() { Holder<int> h(1); return h.fetch(); }")
        cls = tree.find_class("Holder<int>")
        fetch = next(r for r in cls.routines if r.name == "fetch")
        assert fetch.defined
        assert fetch.template_of is not None
        assert fetch.template_of.name == "fetch"

    def test_instantiated_member_location_at_definition(self):
        tree = compile_source(self.SRC + "int f() { Holder<int> h(1); return h.fetch(); }")
        cls = tree.find_class("Holder<int>")
        fetch = next(r for r in cls.routines if r.name == "fetch")
        assert fetch.location.line == 16  # the out-of-line definition

    def test_ctor_instantiated_via_out_of_line_template(self):
        tree = compile_source(self.SRC + "void f() { Holder<double> h(2); }")
        cls = tree.find_class("Holder<double>")
        ctor = cls.constructors()[0]
        assert ctor.defined


class TestFunctionTemplates:
    MAXT = (
        "template <class T>\n"
        "const T& mymax(const T& a, const T& b) {\n"
        "    if (a < b) return b;\n"
        "    return a;\n"
        "}\n"
    )

    def test_registered(self):
        tree = compile_source(self.MAXT)
        te = tree.find_template("mymax")
        assert te.kind is TemplateKind.FUNCTION

    def test_deduction_from_args(self):
        tree = compile_source(self.MAXT + "int f() { return mymax(1, 2); }")
        inst = [r for r in tree.all_routines if r.name == "mymax" and r.is_instantiation]
        assert len(inst) == 1
        assert inst[0].signature.spelling() == "const int & (const int &, const int &)"

    def test_distinct_deductions(self):
        tree = compile_source(
            self.MAXT + "void f() { mymax(1, 2); mymax(1.0, 2.0); }"
        )
        inst = [r for r in tree.all_routines if r.name == "mymax" and r.is_instantiation]
        types = {r.template_args[0].spelling() for r in inst}
        assert types == {"int", "double"}

    def test_cached_instantiation(self):
        tree = compile_source(self.MAXT + "void f() { mymax(1, 2); mymax(3, 4); }")
        inst = [r for r in tree.all_routines if r.name == "mymax" and r.is_instantiation]
        assert len(inst) == 1

    def test_explicit_template_args(self):
        tree = compile_source(self.MAXT + "double f() { return mymax<double>(1, 2); }")
        inst = [r for r in tree.all_routines if r.name == "mymax" and r.is_instantiation]
        assert inst[0].template_args[0].spelling() == "double"

    def test_call_recorded_to_instantiation(self):
        tree = compile_source(self.MAXT + "int f() { return mymax(1, 2); }")
        f = tree.find_routine("f")
        assert any(c.callee.name == "mymax" and c.callee.is_instantiation for c in f.calls)

    def test_deduction_through_class_template(self):
        src = (
            "template <class T> class Vec { public: int size() const { return 0; } };\n"
            "template <class T> T total(const Vec<T>& v) { return 0; }\n"
            "double f() { Vec<double> v; return total(v); }\n"
        )
        tree = compile_source(src)
        inst = [r for r in tree.all_routines if r.name == "total" and r.is_instantiation]
        assert inst and inst[0].template_args[0].spelling() == "double"

    def test_template_body_calls_recorded_per_instantiation(self):
        src = (
            "int work(int x) { return x; }\n"
            "template <class T> T wrap(const T& v) { return work(1); }\n"
            "void f() { wrap(2); }\n"
        )
        tree = compile_source(src)
        inst = next(r for r in tree.all_routines if r.name == "wrap" and r.is_instantiation)
        assert [c.callee.name for c in inst.calls] == ["work"]


class TestSpecializations:
    def test_explicit_specialization_selected(self):
        src = (
            BOX
            + "template <> class Box<char> {\n"
            "public:\n"
            "    char get() const { return 'c'; }\n"
            "};\n"
            "void f() { Box<char> b; Box<int> i; }\n"
        )
        tree = compile_source(src)
        spec = tree.find_class("Box<char>")
        assert spec.is_specialization
        assert [r.name for r in spec.routines] == ["get"]
        # the primary instantiation is unaffected
        assert not tree.find_class("Box<int>").is_specialization

    def test_specialization_not_a_template_item(self):
        src = BOX + "template <> class Box<char> { public: int z; };\n"
        tree = compile_source(src)
        assert len([t for t in tree.all_templates if t.name == "Box"]) == 1

    def test_partial_specialization_for_pointers(self):
        src = (
            BOX
            + "template <class T> class Box<T*> {\n"
            "public:\n"
            "    bool is_pointer() const { return true; }\n"
            "};\n"
            "void f() { Box<int*> p; Box<int> v; }\n"
        )
        tree = compile_source(src)
        ptr_box = tree.find_class("Box<int *>")
        assert ptr_box is not None
        assert any(r.name == "is_pointer" for r in ptr_box.routines)
        assert any(r.name == "get" for r in tree.find_class("Box<int>").routines)

    def test_partial_specialization_registered_as_template(self):
        src = BOX + "template <class T> class Box<T*> { public: int q; };\n"
        tree = compile_source(src)
        boxes = [t for t in tree.all_templates if t.name == "Box"]
        assert len(boxes) == 2
        assert sum(1 for t in boxes if t.is_specialization) == 1


class TestPrelinkMode:
    def test_instantiations_invisible(self):
        tree = compile_source(
            BOX + "void f() { Box<int> b; b.set(3); }",
            mode=InstantiationMode.PRELINK,
        )
        cls = tree.find_class("Box<int>")
        assert cls is not None  # exists for type checking...
        assert cls.flags.get("il_visible") is False  # ...but not in the IL

    def test_requests_logged(self):
        from repro.cpp import Frontend, FrontendOptions
        from repro.cpp.instantiate import InstantiationMode as IM

        fe = Frontend(FrontendOptions(instantiation_mode=IM.PRELINK))
        fe.register_files({"main.cpp": BOX + "void f() { Box<int> b; }"})
        fe.compile("main.cpp")
        reqs = fe.last_engine.prelink_requests
        assert ("Box", ("int",)) in [(n, a) for (n, a, _loc) in reqs]
