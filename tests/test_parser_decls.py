"""Declaration parser tests: classes, namespaces, enums, functions."""


from repro.cpp.il import Access, ClassKind, RoutineKind, Virtuality
from tests.util import compile_source


class TestClasses:
    def test_simple_class(self):
        tree = compile_source("class Foo { public: int x; };")
        c = tree.find_class("Foo")
        assert c is not None and c.defined
        assert c.kind is ClassKind.CLASS
        assert [f.name for f in c.fields] == ["x"]

    def test_struct_default_public(self):
        tree = compile_source("struct S { int x; };")
        assert tree.find_class("S").fields[0].access is Access.PUBLIC

    def test_class_default_private(self):
        tree = compile_source("class C { int x; };")
        assert tree.find_class("C").fields[0].access is Access.PRIVATE

    def test_access_sections(self):
        tree = compile_source(
            "class C { int a; public: int b; protected: int c; private: int d; };"
        )
        acs = {f.name: f.access for f in tree.find_class("C").fields}
        assert acs == {
            "a": Access.PRIVATE,
            "b": Access.PUBLIC,
            "c": Access.PROTECTED,
            "d": Access.PRIVATE,
        }

    def test_union(self):
        tree = compile_source("union U { int i; double d; };")
        assert tree.find_class("U").kind is ClassKind.UNION

    def test_forward_declaration_then_definition(self):
        tree = compile_source("class F; class F { public: int x; };")
        classes = [c for c in tree.all_classes if c.name == "F"]
        assert len(classes) == 1 and classes[0].defined

    def test_single_inheritance(self):
        tree = compile_source("class A {}; class B : public A {};")
        b = tree.find_class("B")
        base, access, virtual = b.bases[0]
        assert base.name == "A" and access is Access.PUBLIC and not virtual

    def test_multiple_inheritance(self):
        tree = compile_source(
            "class A {}; class B {}; class C : public A, private B {};"
        )
        c = tree.find_class("C")
        assert len(c.bases) == 2
        assert c.bases[1][1] is Access.PRIVATE

    def test_virtual_inheritance(self):
        tree = compile_source("class A {}; class B : public virtual A {};")
        assert tree.find_class("B").bases[0][2] is True

    def test_default_base_access_class_is_private(self):
        tree = compile_source("class A {}; class B : A {};")
        assert tree.find_class("B").bases[0][1] is Access.PRIVATE

    def test_default_base_access_struct_is_public(self):
        tree = compile_source("class A {}; struct B : A {};")
        assert tree.find_class("B").bases[0][1] is Access.PUBLIC

    def test_nested_class(self):
        tree = compile_source("class Outer { public: class Inner { int x; }; };")
        outer = tree.find_class("Outer")
        assert outer.inner_classes[0].name == "Inner"
        assert outer.inner_classes[0].full_name == "Outer::Inner"

    def test_derived_from(self):
        tree = compile_source(
            "class A {}; class B : public A {}; class C : public B {};"
        )
        assert tree.find_class("C").derived_from(tree.find_class("A"))
        assert not tree.find_class("A").derived_from(tree.find_class("C"))

    def test_class_positions(self):
        tree = compile_source("class Foo {\n  int x;\n};\n")
        c = tree.find_class("Foo")
        assert c.position.header is not None
        assert c.position.body.begin.line == 1
        assert c.position.body.end.line == 3

    def test_static_member(self):
        tree = compile_source("class C { public: static int count; };")
        f = tree.find_class("C").fields[0]
        assert f.is_static and f.member_kind == "svar"

    def test_mutable_member(self):
        tree = compile_source("class C { mutable int cache; };")
        assert tree.find_class("C").fields[0].is_mutable


class TestMemberFunctions:
    def test_declaration_only(self):
        tree = compile_source("class C { public: void f(); };")
        r = tree.find_class("C").routines[0]
        assert r.name == "f" and not r.defined

    def test_inline_definition(self):
        tree = compile_source("class C { public: int f() { return 1; } };")
        assert tree.find_class("C").routines[0].defined

    def test_out_of_line_definition(self):
        tree = compile_source("class C { public: int f(); };\nint C::f() { return 1; }")
        r = tree.find_class("C").routines[0]
        assert r.defined
        assert r.location.line == 2  # definition site wins

    def test_constructor(self):
        tree = compile_source("class C { public: C(int x); };")
        ctor = tree.find_class("C").constructors()[0]
        assert ctor.kind is RoutineKind.CONSTRUCTOR

    def test_destructor(self):
        tree = compile_source("class C { public: ~C(); };")
        d = tree.find_class("C").destructor()
        assert d is not None and d.kind is RoutineKind.DESTRUCTOR
        assert d.name == "~C"

    def test_out_of_line_ctor_dtor(self):
        tree = compile_source(
            "class C { public: C(); ~C(); };\nC::C() { }\nC::~C() { }"
        )
        c = tree.find_class("C")
        assert c.constructors()[0].defined
        assert c.destructor().defined

    def test_virtual(self):
        tree = compile_source("class C { public: virtual void f(); };")
        assert tree.find_class("C").routines[0].virtuality is Virtuality.VIRTUAL

    def test_pure_virtual(self):
        tree = compile_source("class C { public: virtual void f() = 0; };")
        c = tree.find_class("C")
        assert c.routines[0].virtuality is Virtuality.PURE
        assert c.is_abstract

    def test_override_inherits_virtuality(self):
        tree = compile_source(
            "class A { public: virtual void f(); };\n"
            "class B : public A { public: void f(); };"
        )
        b = tree.find_class("B")
        assert b.routines[0].virtuality is Virtuality.VIRTUAL

    def test_const_member(self):
        tree = compile_source("class C { public: int f() const; };")
        r = tree.find_class("C").routines[0]
        assert r.is_const and r.signature.const

    def test_static_member_function(self):
        tree = compile_source("class C { public: static int f(); };")
        assert tree.find_class("C").routines[0].is_static_member

    def test_operator_overload(self):
        tree = compile_source("class C { public: C& operator=(const C& o); };")
        r = tree.find_class("C").routines[0]
        assert r.name == "operator=" and r.kind is RoutineKind.OPERATOR

    def test_subscript_and_call_operators(self):
        tree = compile_source(
            "class C { public: int operator[](int i); int operator()(int i); };"
        )
        names = [r.name for r in tree.find_class("C").routines]
        assert names == ["operator[]", "operator()"]

    def test_conversion_operator(self):
        tree = compile_source("class C { public: operator bool() const; };")
        r = tree.find_class("C").routines[0]
        assert r.kind is RoutineKind.CONVERSION
        assert "bool" in r.name

    def test_overloads_coexist(self):
        tree = compile_source("class C { public: void f(int); void f(double); };")
        assert len(tree.find_class("C").find_routines("f")) == 2

    def test_default_argument_recorded(self):
        tree = compile_source("class C { public: void f(int x = 10); };")
        p = tree.find_class("C").routines[0].parameters[0]
        assert p.default_text == "10"

    def test_throw_spec(self):
        tree = compile_source(
            "class E {}; class C { public: void f() throw(E); };"
        )
        r = tree.find_class("C").routines[0]
        assert r.signature.has_throw_spec
        assert len(r.signature.exceptions) == 1

    def test_explicit_ctor(self):
        tree = compile_source("class C { public: explicit C(int x); };")
        assert tree.find_class("C").constructors()[0].is_explicit


class TestFriends:
    def test_friend_class(self):
        tree = compile_source("class B {}; class A { friend class B; };")
        a = tree.find_class("A")
        assert a.friend_classes[0].name == "B"

    def test_friend_function(self):
        tree = compile_source(
            "class A { friend int helper(const A& a); public: int x; };"
        )
        a = tree.find_class("A")
        assert a.friend_routines[0].name == "helper"
        # friend declaration introduces a namespace-scope function
        assert tree.find_routine("helper") is not None


class TestNamespaces:
    def test_namespace_members(self):
        tree = compile_source("namespace ns { class C {}; int f(); }")
        ns = tree.global_namespace.namespaces[0]
        assert ns.name == "ns"
        assert tree.find_class("ns::C") is not None
        assert tree.find_routine("ns::f") is not None

    def test_nested_namespaces(self):
        tree = compile_source("namespace a { namespace b { class C {}; } }")
        assert tree.find_class("a::b::C") is not None

    def test_namespace_reopened(self):
        tree = compile_source("namespace n { class A {}; } namespace n { class B {}; }")
        assert len(tree.all_namespaces) == 1
        ns = tree.all_namespaces[0]
        assert {c.name for c in ns.classes} == {"A", "B"}

    def test_using_directive(self):
        tree = compile_source(
            "namespace n { class C {}; }\nusing namespace n;\nC c;"
        )
        v = tree.all_variables[0]
        assert v.type.spelling() == "n::C"

    def test_using_declaration(self):
        tree = compile_source(
            "namespace n { int f() { return 0; } }\nusing n::f;\nint g() { return f(); }"
        )
        g = tree.find_routine("g")
        assert g.calls[0].callee.full_name == "n::f"

    def test_namespace_alias(self):
        tree = compile_source(
            "namespace longname { class C {}; }\nnamespace ln = longname;\nln::C c;"
        )
        assert tree.all_variables[0].type.spelling() == "longname::C"

    def test_anonymous_namespace_visible(self):
        tree = compile_source("namespace { class Hidden {}; }\nHidden h;")
        assert tree.all_variables[0].type.spelling().endswith("Hidden")

    def test_qualified_lookup(self):
        tree = compile_source(
            "namespace n { class C { public: void m(); }; }\n"
            "void caller() { n::C x; x.m(); }"
        )
        caller = tree.find_routine("caller")
        assert any(c.callee.name == "m" for c in caller.calls)


class TestEnumsTypedefs:
    def test_enum(self):
        tree = compile_source("enum Color { RED, GREEN, BLUE };")
        e = tree.all_enums[0]
        assert e.name == "Color"
        assert e.enumerators == [("RED", 0), ("GREEN", 1), ("BLUE", 2)]

    def test_enum_explicit_values(self):
        tree = compile_source("enum E { A = 5, B, C = 10 };")
        assert tree.all_enums[0].enumerators == [("A", 5), ("B", 6), ("C", 10)]

    def test_class_scoped_enum(self):
        tree = compile_source("class C { public: enum Mode { ON, OFF }; };")
        c = tree.find_class("C")
        assert c.inner_enums[0].name == "Mode"
        assert c.inner_enums[0].full_name == "C::Mode"

    def test_typedef(self):
        tree = compile_source("typedef unsigned long size_type;")
        td = tree.all_typedefs[0]
        assert td.name == "size_type"
        assert td.underlying.spelling() == "unsigned long"

    def test_typedef_of_class(self):
        tree = compile_source("class C {}; typedef C Alias; Alias a;")
        assert tree.all_variables[0].type.strip().spelling() == "C"

    def test_typedef_in_class(self):
        tree = compile_source("class C { public: typedef int* iterator; };")
        td = tree.find_class("C").inner_typedefs[0]
        assert td.name == "iterator"
        assert td.underlying.spelling() == "int *"

    def test_function_pointer_typedef(self):
        tree = compile_source("typedef int (*callback)(double);")
        td = tree.all_typedefs[0]
        assert td.name == "callback"
        assert "int (double)" in td.underlying.spelling()


class TestFunctionsAndVariables:
    def test_free_function(self):
        tree = compile_source("int add(int a, int b) { return a + b; }")
        r = tree.find_routine("add")
        assert r.defined
        assert r.signature.spelling() == "int (int, int)"
        assert [p.name for p in r.parameters] == ["a", "b"]

    def test_function_declaration(self):
        tree = compile_source("double f(double x);")
        assert not tree.find_routine("f").defined

    def test_overloaded_free_functions(self):
        tree = compile_source("void f(int) { }\nvoid f(double) { }")
        assert len([r for r in tree.all_routines if r.name == "f"]) == 2

    def test_extern_c_linkage(self):
        tree = compile_source('extern "C" { int c_func(); }\nint cpp_func();')
        assert tree.find_routine("c_func").linkage == "C"
        assert tree.find_routine("cpp_func").linkage == "C++"

    def test_extern_c_single_decl(self):
        tree = compile_source('extern "C" int lone();')
        assert tree.find_routine("lone").linkage == "C"

    def test_static_storage(self):
        tree = compile_source("static int helper() { return 1; }")
        assert tree.find_routine("helper").storage == "static"

    def test_global_variable(self):
        tree = compile_source("int counter;")
        assert tree.all_variables[0].name == "counter"

    def test_ellipsis(self):
        tree = compile_source("int printf_like(const char* fmt, ...);")
        assert tree.find_routine("printf_like").signature.ellipsis

    def test_void_param_list(self):
        tree = compile_source("int f(void);")
        assert tree.find_routine("f").signature.parameters == ()

    def test_rpos_recorded(self):
        tree = compile_source("int f()\n{\n  return 0;\n}\n")
        r = tree.find_routine("f")
        assert r.position.body.begin.line == 2
        assert r.position.body.end.line == 4

    def test_inline(self):
        tree = compile_source("inline int f() { return 1; }")
        assert tree.find_routine("f").is_inline


class TestOutOfLineEdgeCases:
    def test_static_data_member_definition(self):
        tree = compile_source(
            "class C { public: static int count; };\nint C::count = 0;\n"
            "int f() { return C::count; }\n"
        )
        c = tree.find_class("C")
        field = c.fields[0]
        assert getattr(field, "flags", {}).get("defined")
        assert tree.find_routine("f").defined

    def test_nested_class_out_of_line_member(self):
        tree = compile_source(
            "class Outer {\n"
            "public:\n"
            "    class Inner { public: int m(); };\n"
            "};\n"
            "int Outer::Inner::m() { return 7; }\n"
        )
        inner = tree.find_class("Outer::Inner")
        m = inner.routines[0]
        assert m.defined
        assert m.location.line == 5

    def test_namespace_qualified_out_of_line_member(self):
        tree = compile_source(
            "namespace ns { class C { public: void go(); }; }\n"
            "void ns::C::go() { }\n"
        )
        go = tree.find_routine("ns::C::go")
        assert go is not None and go.defined

    def test_out_of_line_member_of_instantiation(self):
        # explicit specialization members defined out of line
        tree = compile_source(
            "template <class T> class B { public: T g(); };\n"
            "template <> class B<int> { public: int g(); };\n"
            "int B<int>::g() { return 3; }\n"
            "int f() { B<int> b; return b.g(); }\n"
        )
        spec = tree.find_class("B<int>")
        g = spec.routines[0]
        assert g.defined
