"""TAU tests: selection (Figure 6), instrumentation, runtime, simulation."""

import pytest

from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.tau.instrumentor import TAU_H, instrument_file, instrument_sources
from repro.tau.machine import CostModel, linear_skew, uniform_model
from repro.tau.profile import exclusive_ranking, format_mean_profile, format_profile
from repro.tau.runtime import Profiler, ThreadProfile
from repro.tau.selector import select_instrumentation
from repro.tau.simulate import ExecutionSimulator, TauNaming, WorkloadSpec
from repro.tau.tracing import TraceBuffer, format_trace, merge_traces
from repro.workloads.stack import compile_stack
from tests.util import compile_source


@pytest.fixture(scope="module")
def stack_pdb():
    return PDB(analyze(compile_stack()))


class TestSelector:
    """Figure 6's selection logic."""

    SRC = (
        "template <class T> class Holder {\n"
        "public:\n"
        "    T fetch() const;\n"
        "    static int census();\n"
        "};\n"
        "template <class T> T Holder<T>::fetch() const { return 0; }\n"
        "template <class T> int Holder<T>::census() { return 0; }\n"
        "template <class T> T clamp(T v) { return v; }\n"
        "int plain() { return 1; }\n"
        "int main() { Holder<int> h; h.fetch(); Holder<int>::census(); clamp(2); return plain(); }\n"
    )

    def pdb(self):
        return PDB(analyze(compile_source(self.SRC)))

    def test_memfunc_template_gets_ct(self):
        points = select_instrumentation(self.pdb())
        fetch = next(p for p in points if "fetch" in p.timer_name())
        assert fetch.needs_ct
        assert fetch.type_argument() == "CT(*this)"

    def test_statmem_template_no_ct(self):
        points = select_instrumentation(self.pdb())
        census = next(p for p in points if "census" in p.timer_name())
        assert not census.needs_ct

    def test_func_template_no_ct(self):
        points = select_instrumentation(self.pdb())
        clamp = next(p for p in points if "clamp" in p.timer_name())
        assert not clamp.needs_ct

    def test_plain_routine_static_name(self):
        points = select_instrumentation(self.pdb())
        plain = next(p for p in points if "plain" in p.timer_name())
        assert not plain.needs_ct

    def test_class_template_itself_not_selected(self):
        points = select_instrumentation(self.pdb())
        from repro.ductape.items import PdbTemplate

        for p in points:
            if isinstance(p.item, PdbTemplate):
                assert p.item.kind() != PdbTemplate.TE_CLASS

    def test_sorted_by_location(self):
        points = select_instrumentation(self.pdb())
        keys = [(p.file_name, p.line, p.column) for p in points]
        assert keys == sorted(keys)

    def test_one_point_per_source_location(self, stack_pdb):
        points = select_instrumentation(stack_pdb)
        keys = [(p.file_name, p.line, p.column) for p in points]
        assert len(keys) == len(set(keys))

    def test_file_filter(self, stack_pdb):
        points = select_instrumentation(stack_pdb, file="StackAr.cpp")
        assert points
        assert all(p.file_name == "StackAr.cpp" for p in points)

    def test_inline_class_template_members_get_ct(self, stack_pdb):
        points = select_instrumentation(stack_pdb, file="/pdt/include/kai/vector.h")
        sizes = [p for p in points if p.timer_name().startswith("vector::size")]
        assert sizes and sizes[0].needs_ct


class TestInstrumentor:
    def test_macro_inserted_after_brace(self, stack_pdb):
        from repro.workloads.stack import STACKAR_CPP

        points = select_instrumentation(stack_pdb, file="StackAr.cpp")
        res = instrument_file("StackAr.cpp", STACKAR_CPP, points)
        assert res.insertions
        for line in res.text.splitlines():
            if "TAU_PROFILE(" in line and "define" not in line:
                brace = line.index("{")
                macro = line.index("TAU_PROFILE(")
                assert macro > brace

    def test_ct_only_on_members(self, stack_pdb):
        from repro.workloads.stack import STACKAR_CPP

        points = select_instrumentation(stack_pdb, file="StackAr.cpp")
        res = instrument_file("StackAr.cpp", STACKAR_CPP, points)
        assert 'CT(*this)' in res.text

    def test_include_added_once(self, stack_pdb):
        from repro.workloads.stack import STACKAR_CPP

        points = select_instrumentation(stack_pdb, file="StackAr.cpp")
        res = instrument_file("StackAr.cpp", STACKAR_CPP, points)
        assert res.text.count('#include "TAU.h"') == 1

    def test_untouched_file_without_points(self, stack_pdb):
        res = instrument_file("nofile.cpp", "int x;\n", [])
        assert res.text == "int x;\n"

    def test_instrumented_sources_reparse(self):
        """E5's round trip: the rewritten corpus compiles again."""
        from repro.workloads.stack import stack_files
        from repro.workloads.stl import KAI_INCLUDE_DIR

        tree = compile_stack()
        pdb = PDB(analyze(tree))
        sources = dict(stack_files())
        results = instrument_sources(pdb, sources)
        rewritten = {name: r.text for name, r in results.items()}
        rewritten["TAU.h"] = TAU_H
        fe = Frontend(FrontendOptions(include_paths=[KAI_INCLUDE_DIR]))
        fe.register_files(rewritten)
        tree2 = fe.compile("TestStackAr.cpp")
        assert tree2.find_routine("main") is not None
        # instrumentation must not change the extracted call graph
        main1 = {c.callee.full_name for c in tree.find_routine("main").calls}
        main2 = {c.callee.full_name for c in tree2.find_routine("main").calls}
        assert main1 == main2

    def test_ctor_initialiser_insertion_lands_in_body(self, stack_pdb):
        from repro.workloads.stack import STACKAR_CPP

        points = select_instrumentation(stack_pdb, file="StackAr.cpp")
        res = instrument_file("StackAr.cpp", STACKAR_CPP, points)
        ctor_line = next(
            l for l in res.text.splitlines() if "Stack<Object>::Stack" in l
        )
        assert ctor_line.index(":") < ctor_line.index("TAU_PROFILE")


class TestRuntime:
    def test_basic_timer(self):
        p = ThreadProfile()
        p.start("a")
        p.advance(10)
        p.stop("a")
        t = p.timers["a"]
        assert t.calls == 1
        assert t.inclusive == 10 and t.exclusive == 10

    def test_nested_exclusive(self):
        p = ThreadProfile()
        p.start("outer")
        p.advance(5)
        p.start("inner")
        p.advance(7)
        p.stop("inner")
        p.advance(3)
        p.stop("outer")
        assert p.timers["outer"].inclusive == 15
        assert p.timers["outer"].exclusive == 8
        assert p.timers["inner"].exclusive == 7
        assert p.timers["outer"].subrs == 1

    def test_recursion_same_timer(self):
        p = ThreadProfile()
        p.start("f")
        p.advance(1)
        p.start("f")
        p.advance(1)
        p.stop("f")
        p.stop("f")
        t = p.timers["f"]
        assert t.calls == 2
        assert t.exclusive == 2

    def test_stop_mismatch_raises(self):
        p = ThreadProfile()
        p.start("a")
        with pytest.raises(RuntimeError, match="mismatch"):
            p.stop("b")

    def test_underflow_raises(self):
        with pytest.raises(RuntimeError, match="underflow"):
            ThreadProfile().stop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ThreadProfile().advance(-1)

    def test_consistency_check(self):
        p = ThreadProfile()
        p.start("a")
        p.advance(2)
        p.stop()
        p.check_consistency()

    def test_profiler_nct(self):
        prof = Profiler()
        prof.profile(node=0).advance(1)
        prof.profile(node=3).advance(2)
        assert prof.nodes() == [0, 3]

    def test_mean_stats(self):
        prof = Profiler()
        for node, cost in ((0, 10), (1, 30)):
            p = prof.profile(node=node)
            p.start("k")
            p.advance(cost)
            p.stop()
        mean = prof.mean_stats()["k"]
        assert mean.inclusive == 20
        assert mean.calls == 1

    def test_total_stats(self):
        prof = Profiler()
        for node in (0, 1):
            p = prof.profile(node=node)
            p.start("k")
            p.advance(5)
            p.stop()
        assert prof.total_stats()["k"].inclusive == 10

    def test_mean_calls_fractional(self):
        # one call on node 0, none on node 1: the mean over 2 profiles
        # is 0.5 calls, not 0 (the old integer division dropped it)
        prof = Profiler()
        p = prof.profile(node=0)
        p.start("rare")
        p.advance(4)
        p.stop()
        prof.profile(node=1).advance(4)
        mean = prof.mean_stats()["rare"]
        assert mean.calls == pytest.approx(0.5)
        assert mean.inclusive == pytest.approx(2.0)

    def test_mean_subrs_fractional(self):
        prof = Profiler()
        p = prof.profile(node=0)
        p.start("outer")
        p.start("inner")
        p.stop()
        p.stop()
        prof.profile(node=1).advance(0)
        assert prof.mean_stats()["outer"].subrs == pytest.approx(0.5)

    def test_mean_and_total_group_first_seen(self):
        # nodes disagree on a timer's group (e.g. re-instrumented build):
        # the aggregate must deterministically keep the first-seen
        # (lowest node) group, not whichever profile iterated last
        prof = Profiler()
        for node, group in ((1, "TAU_USER"), (0, "CT"), (2, "TAU_DEFAULT")):
            p = prof.profile(node=node)
            p.start("f", group)
            p.advance(1)
            p.stop()
        assert prof.mean_stats()["f"].group == "CT"
        assert prof.total_stats()["f"].group == "CT"

    def test_stop_all_unwinds_dangling(self):
        p = ThreadProfile()
        p.start("main")
        p.advance(5)
        p.start("leaf")
        p.advance(3)
        p.stop_all()
        assert p.depth == 0
        assert p.timers["main"].inclusive == 8
        assert p.timers["main"].exclusive == 5
        assert p.timers["leaf"].inclusive == 3
        p.check_consistency()

    def test_profiler_stop_all(self):
        prof = Profiler()
        for node in (0, 1):
            p = prof.profile(node=node)
            p.start("k")
            p.advance(2)
        prof.stop_all()
        assert all(p.depth == 0 for p in prof.profiles.values())
        assert prof.total_stats()["k"].inclusive == 4

    def test_snapshot_timers_counts_running(self):
        p = ThreadProfile()
        p.start("outer")
        p.advance(5)
        p.start("inner")
        p.advance(3)
        snap = p.snapshot_timers()
        assert snap["outer"].inclusive == 8
        assert snap["outer"].exclusive == 5
        assert snap["inner"].inclusive == 3
        # non-mutating: the live table still shows no completed time
        assert p.timers["outer"].inclusive == 0
        assert p.depth == 2
        # and matches what stop_all would have recorded
        p.stop_all()
        assert p.timers["outer"].inclusive == snap["outer"].inclusive
        assert p.timers["inner"].exclusive == snap["inner"].exclusive

    def test_snapshot_timers_recursive_outermost(self):
        # only the outermost activation of a recursive timer may add
        # inclusive time in the snapshot
        p = ThreadProfile()
        p.start("f")
        p.advance(2)
        p.start("f")
        p.advance(3)
        snap = p.snapshot_timers()
        assert snap["f"].inclusive == 5
        assert snap["f"].exclusive == 5
        p.check_consistency()


class TestCostModel:
    def test_rule_matching(self):
        cm = CostModel(default_cycles=1.0)
        cm.add(r"apply", 100.0).add(r"dot", 40.0)
        assert cm.cost("StencilMatrix<double>::apply") == 100.0
        assert cm.cost("pooma::dot") == 40.0
        assert cm.cost("other") == 1.0

    def test_first_rule_wins(self):
        cm = CostModel().add("f", 5.0).add("foo", 9.0)
        assert cm.cost("foo") == 5.0

    def test_node_skew(self):
        cm = CostModel(default_cycles=10.0, node_skew=[1.0, 2.0])
        assert cm.cost("x", node=0) == 10.0
        assert cm.cost("x", node=1) == 20.0

    def test_linear_skew_bounds(self):
        skew = linear_skew(5, spread=0.2)
        assert len(skew) == 5
        assert abs(min(skew) - 0.9) < 1e-9
        assert abs(max(skew) - 1.1) < 1e-9


class TestSimulator:
    SRC = (
        "int leaf() { return 1; }\n"
        "int mid() { return leaf() + leaf(); }\n"
        "int main() { return mid(); }\n"
    )

    def pdb(self):
        return PDB(analyze(compile_source(self.SRC)))

    def test_call_counts(self):
        sim = ExecutionSimulator(self.pdb(), WorkloadSpec(cost=uniform_model(1.0)))
        prof = sim.run().profile(0)
        by_name = {k.split(" ")[0]: v for k, v in prof.timers.items()}
        assert by_name["main"].calls == 1
        assert by_name["mid"].calls == 1
        assert by_name["leaf"].calls == 2

    def test_multiplicities(self):
        spec = WorkloadSpec(
            cost=uniform_model(1.0), pair_counts={("main", "mid"): 10}
        )
        prof = ExecutionSimulator(self.pdb(), spec).run().profile(0)
        by_name = {k.split(" ")[0]: v for k, v in prof.timers.items()}
        assert by_name["mid"].calls == 10
        assert by_name["leaf"].calls == 20

    def test_inclusive_exclusive(self):
        prof = (
            ExecutionSimulator(self.pdb(), WorkloadSpec(cost=uniform_model(1.0)))
            .run()
            .profile(0)
        )
        by_name = {k.split(" ")[0]: v for k, v in prof.timers.items()}
        assert by_name["main"].inclusive == 4  # 1 + 1 + 2*1
        assert by_name["main"].exclusive == 1
        assert by_name["mid"].inclusive == 3

    def test_engines_agree(self):
        pdb = self.pdb()
        spec = WorkloadSpec(
            cost=uniform_model(3.0), pair_counts={("mid", "leaf"): 4}
        )
        sim = ExecutionSimulator(pdb, spec)
        fast = sim.run().profile(0)
        traced = sim.run_traced().profile(0)
        assert set(fast.timers) == set(traced.timers)
        for name in fast.timers:
            f, t = fast.timers[name], traced.timers[name]
            assert f.calls == t.calls
            assert abs(f.inclusive - t.inclusive) < 1e-9
            assert abs(f.exclusive - t.exclusive) < 1e-9
            assert f.subrs == t.subrs

    def test_engines_agree_on_recursion(self):
        src = (
            "int rec(int n) { return rec(n - 1); }\n"
            "int main() { return rec(5); }\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        sim = ExecutionSimulator(pdb, WorkloadSpec(cost=uniform_model(1.0)))
        fast = sim.run().profile(0)
        traced = sim.run_traced().profile(0)
        for name in fast.timers:
            assert fast.timers[name].calls == traced.timers[name].calls
            assert abs(fast.timers[name].inclusive - traced.timers[name].inclusive) < 1e-9

    def test_multi_node(self):
        spec = WorkloadSpec(
            nodes=3,
            cost=CostModel(default_cycles=10.0, node_skew=[1.0, 2.0, 3.0]),
        )
        profiler = ExecutionSimulator(self.pdb(), spec).run()
        times = [profiler.profile(n).total_time() for n in range(3)]
        assert times[0] < times[1] < times[2]

    def test_missing_entry_raises(self):
        with pytest.raises(ValueError, match="entry routine"):
            ExecutionSimulator(self.pdb(), WorkloadSpec(entry="nonexistent"))

    def test_consistency_invariants(self):
        prof = ExecutionSimulator(self.pdb(), WorkloadSpec()).run().profile(0)
        prof.check_consistency()

    def test_untimed_routines_fold_into_caller(self):
        pdb = self.pdb()

        def namer(r):
            if r.name() == "mid":
                return None  # mid is uninstrumented
            return r.name()

        prof = ExecutionSimulator(
            pdb, WorkloadSpec(cost=uniform_model(1.0)), namer=namer
        ).run().profile(0)
        assert "mid" not in prof.timers
        # mid's own cost lands in main's exclusive
        assert prof.timers["main"].exclusive == 2
        assert prof.timers["leaf"].calls == 2

    def test_tau_naming_ct_uniqueness(self):
        """Section 4.1: unique per-instantiation timer names via CT."""
        src = (
            "template <class T> class Box { public: T get() { return 0; } };\n"
            "int main() { Box<int> a; Box<double> b; a.get(); b.get(); return 0; }\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        points = select_instrumentation(pdb)
        naming = TauNaming(points)
        gets = [r for r in pdb.getRoutineVec() if r.name() == "get"]
        names = {naming.timer_for(r) for r in gets}
        assert len(names) == 2
        assert any("[CT = Box<int>]" in n for n in names)
        assert any("[CT = Box<double>]" in n for n in names)


class TestTracing:
    def make_trace(self):
        src = "int leaf() { return 1; }\nint main() { return leaf(); }\n"
        pdb = PDB(analyze(compile_source(src)))
        sim = ExecutionSimulator(pdb, WorkloadSpec(cost=uniform_model(2.0), nodes=2))
        tb = TraceBuffer()
        sim.run_traced(tb)
        return tb

    def test_events_emitted(self):
        tb = self.make_trace()
        assert len(tb) == 8  # 2 nodes * 2 routines * enter+exit

    def test_nesting_validates(self):
        self.make_trace().validate_nesting()

    def test_merged_order_monotone(self):
        tb = self.make_trace()
        merged = list(merge_traces(tb))
        stamps = [e.timestamp for e in merged]
        assert stamps == sorted(stamps)

    def test_format(self):
        out = format_trace(self.make_trace())
        assert "enter" in out and "exit" in out

    def test_event_cap(self):
        tb = TraceBuffer(max_events=2)
        tb.enter(0, "a", 0.0)
        tb.enter(0, "b", 1.0)
        tb.exit(0, "b", 2.0)
        assert len(tb) == 2 and tb.dropped == 1


class TestProfileDisplay:
    def test_format_profile(self):
        src = "int leaf() { return 1; }\nint main() { return leaf(); }\n"
        pdb = PDB(analyze(compile_source(src)))
        prof = ExecutionSimulator(pdb, WorkloadSpec(cost=uniform_model(1000.0))).run()
        out = format_profile(prof, node=0)
        assert "%Time" in out and "Exclusive" in out and "#Call" in out
        assert "main" in out and "leaf" in out
        assert "NODE 0;CONTEXT 0;THREAD 0:" in out

    def test_mean_profile_header(self):
        src = "int main() { return 0; }\n"
        pdb = PDB(analyze(compile_source(src)))
        prof = ExecutionSimulator(pdb, WorkloadSpec(nodes=4)).run()
        out = format_mean_profile(prof)
        assert "mean over 4 nodes" in out

    def test_exclusive_ranking(self):
        src = (
            "int hot() { return 1; }\nint cold() { return 2; }\n"
            "int main() { return hot() + cold(); }\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        cm = CostModel(default_cycles=1.0).add("hot", 500.0)
        prof = ExecutionSimulator(pdb, WorkloadSpec(cost=cm)).run()
        ranking = exclusive_ranking(prof)
        assert ranking[0][0].startswith("hot")


class TestCallpathProfiling:
    """TAU callpath mode: timers keyed by the trailing call-stack window."""

    SRC = (
        "int leaf() { return 1; }\n"
        "int left() { return leaf(); }\n"
        "int right() { return leaf(); }\n"
        "int main() { return left() + right(); }\n"
    )

    def profiler(self, depth):
        pdb = PDB(analyze(compile_source(self.SRC)))
        sim = ExecutionSimulator(pdb, WorkloadSpec(cost=uniform_model(4.0)))
        return sim.run_traced(callpath_depth=depth)

    def test_flat_mode_merges_paths(self):
        prof = self.profiler(1).profile(0)
        leaf = next(t for n, t in prof.timers.items() if n.startswith("leaf"))
        assert leaf.calls == 2

    def test_callpath_separates_paths(self):
        prof = self.profiler(2).profile(0)
        paths = sorted(n for n in prof.timers if "leaf" in n)
        assert len(paths) == 2
        assert any("left" in p and "=>" in p for p in paths)
        assert any("right" in p and "=>" in p for p in paths)
        for p in paths:
            assert prof.timers[p].calls == 1

    def test_callpath_times_sum_to_flat(self):
        flat = self.profiler(1).profile(0)
        deep = self.profiler(2).profile(0)
        flat_leaf = next(t for n, t in flat.timers.items() if n.startswith("leaf"))
        deep_leaf_total = sum(
            t.exclusive for n, t in deep.timers.items() if "leaf" in n
        )
        assert abs(flat_leaf.exclusive - deep_leaf_total) < 1e-9

    def test_callpath_consistency(self):
        prof = self.profiler(3).profile(0)
        prof.check_consistency()

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            self.profiler(0)


class TestProfileFiles:
    """TAU's on-disk profile.n.c.t format round trip."""

    def make_profiler(self):
        src = (
            "int leaf() { return 1; }\nint mid() { return leaf(); }\n"
            "int main() { return mid(); }\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        spec = WorkloadSpec(nodes=3, cost=uniform_model(7.0))
        return ExecutionSimulator(pdb, spec).run()

    def test_write_one_file_per_node(self, tmp_path):
        from repro.tau.profiledata import write_profiles

        profiler = self.make_profiler()
        written = write_profiles(profiler, str(tmp_path))
        assert written == ["profile.0.0.0", "profile.1.0.0", "profile.2.0.0"]

    def test_file_format_shape(self, tmp_path):
        from repro.tau.profiledata import write_profiles

        profiler = self.make_profiler()
        write_profiles(profiler, str(tmp_path))
        text = (tmp_path / "profile.0.0.0").read_text()
        lines = text.splitlines()
        assert lines[0] == "3 templated_functions"
        assert lines[1].startswith("# Name Calls Subrs")
        assert lines[-1] == "0 aggregates"
        assert 'GROUP="TAU_DEFAULT"' in lines[2]

    def test_round_trip(self, tmp_path):
        from repro.tau.profiledata import read_profiles, write_profiles

        profiler = self.make_profiler()
        write_profiles(profiler, str(tmp_path))
        loaded = read_profiles(str(tmp_path))
        assert set(loaded.profiles) == set(profiler.profiles)
        for key, orig in profiler.profiles.items():
            back = loaded.profiles[key].timers
            for name, t in orig.timers.items():
                assert back[name].calls == t.calls
                assert abs(back[name].inclusive - t.inclusive) < 1e-6
                assert abs(back[name].exclusive - t.exclusive) < 1e-6

    def test_loaded_profiles_display(self, tmp_path):
        from repro.tau.profiledata import read_profiles, write_profiles

        write_profiles(self.make_profiler(), str(tmp_path))
        loaded = read_profiles(str(tmp_path))
        out = format_mean_profile(loaded)
        assert "main" in out and "mean over 3 nodes" in out

    def test_dangling_timers_written(self, tmp_path):
        # a profile written mid-run (timers still on the stack) must
        # not lose the accumulated time: the writer snapshots as-if
        # stopped now, without mutating the live profile
        from repro.tau.profiledata import read_profiles, write_profiles
        from repro.tau.runtime import Profiler

        profiler = Profiler()
        p = profiler.profile(0)
        p.start("main")
        p.advance(10)
        p.start("leaf")
        p.advance(4)
        write_profiles(profiler, str(tmp_path))
        loaded = read_profiles(str(tmp_path)).profile(0)
        assert loaded.timers["main"].inclusive == pytest.approx(14)
        assert loaded.timers["main"].exclusive == pytest.approx(10)
        assert loaded.timers["leaf"].inclusive == pytest.approx(4)
        # the live profile is untouched: timers still running
        assert p.depth == 2

    def test_quoted_names_survive(self, tmp_path):
        from repro.tau.profiledata import read_profiles, write_profiles
        from repro.tau.runtime import Profiler

        profiler = Profiler()
        p = profiler.profile(0)
        p.start('odd "name" with quotes')
        p.advance(5)
        p.stop()
        write_profiles(profiler, str(tmp_path))
        loaded = read_profiles(str(tmp_path))
        assert 'odd "name" with quotes' in loaded.profile(0).timers

    def test_malformed_file_rejected(self, tmp_path):
        from repro.tau.profiledata import read_profiles

        (tmp_path / "profile.0.0.0").write_text("not a profile\n")
        with pytest.raises(ValueError, match="malformed header"):
            read_profiles(str(tmp_path))

    def test_count_mismatch_rejected(self, tmp_path):
        from repro.tau.profiledata import read_profiles

        (tmp_path / "profile.0.0.0").write_text(
            '5 templated_functions\n"a" 1 0 1 1 0 GROUP="G"\n0 aggregates\n'
        )
        with pytest.raises(ValueError, match="header says 5"):
            read_profiles(str(tmp_path))


class TestCallgraphDisplay:
    SRC = (
        "int leaf() { return 1; }\n"
        "int left() { return leaf(); }\n"
        "int right() { return leaf() + leaf(); }\n"
        "int main() { return left() + right(); }\n"
    )

    def test_callgraph_from_callpath_profile(self):
        from repro.tau.profile import format_callgraph

        pdb = PDB(analyze(compile_source(self.SRC)))
        sim = ExecutionSimulator(pdb, WorkloadSpec(cost=uniform_model(5.0)))
        profiler = sim.run_traced(callpath_depth=2)
        out = format_callgraph(profiler)
        assert "CALLGRAPH" in out
        # main's children with percentage split
        main_block = out.split("main", 1)[1]
        assert "left" in main_block and "right" in main_block
        # right calls leaf twice per invocation
        right_lines = [l for l in out.splitlines() if "leaf" in l and "calls" in l]
        assert any(" 2 calls" in l.replace("     ", " ") or l.split("calls")[0].strip().endswith("2") for l in right_lines)

    def test_flat_profile_rejected(self):
        from repro.tau.profile import format_callgraph

        pdb = PDB(analyze(compile_source(self.SRC)))
        profiler = ExecutionSimulator(pdb, WorkloadSpec()).run()
        with pytest.raises(ValueError, match="callpath"):
            format_callgraph(profiler)
