"""Front-end tests on the mini-POOMA corpus (the paper's Figure 7 app)."""

import pytest

from repro.workloads.pooma import compile_pooma

CG = "CGSolver<double, pooma::StencilMatrix<double>, pooma::DiagonalPreconditioner<double>>"


@pytest.fixture(scope="module")
def tree():
    return compile_pooma()


class TestCorpusCompiles:
    def test_main(self, tree):
        assert tree.find_routine("main").defined

    def test_namespace(self, tree):
        names = [n.name for n in tree.all_namespaces]
        assert "pooma" in names

    def test_solver_instantiations(self, tree):
        assert tree.find_class(f"pooma::{CG}") is not None

    def test_multi_level_template_args(self, tree):
        cls = tree.find_class(f"pooma::{CG}")
        args = [a.spelling() for a in cls.template_args]
        assert args[0] == "double"
        assert args[1] == "pooma::StencilMatrix<double>"

    def test_expression_template_nesting(self, tree):
        names = {c.full_name for c in tree.all_classes if c.is_instantiation}
        assert "pooma::ScaleExpr<pooma::VectorView>" in names
        assert "pooma::AddExpr<pooma::VectorView, pooma::ScaleExpr<pooma::VectorView>>" in names


class TestSolverCallGraph:
    def test_solve_instantiated(self, tree):
        solve = tree.find_routine(f"pooma::{CG}::solve")
        assert solve is not None and solve.defined

    def test_solve_calls_kernels(self, tree):
        solve = tree.find_routine(f"pooma::{CG}::solve")
        callees = {c.callee.name for c in solve.calls}
        assert {"apply", "dot", "axpy", "copy", "norm2", "xpay"} <= callees

    def test_dependent_member_calls_resolved(self, tree):
        """A.apply(x, r) where A's type is a template parameter."""
        solve = tree.find_routine(f"pooma::{CG}::solve")
        applies = [c.callee for c in solve.calls if c.callee.name == "apply"]
        parents = {r.parent.full_name for r in applies}
        assert "pooma::StencilMatrix<double>" in parents
        assert "pooma::DiagonalPreconditioner<double>" in parents

    def test_function_template_deduction(self, tree):
        dots = [
            r for r in tree.all_routines
            if r.name == "dot" and r.is_instantiation
        ]
        assert dots and dots[0].template_args[0].spelling() == "double"

    def test_local_vector_lifetimes(self, tree):
        from repro.cpp.il import RoutineKind

        solve = tree.find_routine(f"pooma::{CG}::solve")
        ctors = [c for c in solve.calls if c.callee.kind is RoutineKind.CONSTRUCTOR]
        dtors = [c for c in solve.calls if c.callee.kind is RoutineKind.DESTRUCTOR]
        assert len(ctors) >= 4  # r, z, p, q
        assert len(dtors) >= 4

    def test_norm2_calls_dot_and_sqroot(self, tree):
        norm2 = next(
            r for r in tree.all_routines if r.name == "norm2" and r.is_instantiation
        )
        callees = {c.callee.name for c in norm2.calls}
        assert "dot" in callees and "sqroot" in callees

    def test_bicgstab_also_instantiated(self, tree):
        bi = [r for r in tree.all_routines if r.name == "solve" and "BiCGSTAB" in r.full_name]
        assert bi and bi[0].defined


class TestTemplatesInPdb:
    def test_te_items(self, tree):
        from repro.analyzer import analyze

        doc = analyze(tree)
        te_names = {i.name for i in doc.by_prefix("te")}
        assert {"Vector", "StencilMatrix", "CGSolver", "dot", "axpy"} <= te_names

    def test_solver_members_match_class_template(self, tree):
        from repro.analyzer import analyze

        doc = analyze(tree)
        solves = [i for i in doc.by_prefix("ro") if i.name == "solve"]
        for s in solves:
            te_ref = s.get_ref("rtempl")
            assert te_ref is not None
            te = doc.find(te_ref)
            assert te.name in ("CGSolver", "BiCGSTABSolver")
