"""Fortran 90 front end tests (the paper's Section 6 extension)."""

import pytest

from repro.analyzer import analyze
from repro.cpp.il import ClassKind
from repro.ductape.pdb import PDB
from repro.fortran.frontend import FortranFrontend
from repro.fortran.lexer import split_statements
from repro.cpp.source import SourceFile
from repro.workloads.fortran90 import compile_heat, fortran_files


def compile_f90(text: str, name: str = "test.f90"):
    fe = FortranFrontend()
    fe.register_files({name: text})
    return fe.compile([name])


class TestStatementScanner:
    def lex(self, text):
        return split_statements(SourceFile(name="t.f90", text=text))

    def test_basic_statements(self):
        stmts = self.lex("x = 1\ny = 2\n")
        assert [s.text for s in stmts] == ["x = 1", "y = 2"]

    def test_comments_stripped(self):
        stmts = self.lex("x = 1 ! set x\n! whole-line comment\ny = 2\n")
        assert [s.text for s in stmts] == ["x = 1", "y = 2"]

    def test_bang_in_string_kept(self):
        stmts = self.lex("print *, 'hello! world'\n")
        assert stmts[0].text == "print *, 'hello! world'"

    def test_continuation(self):
        stmts = self.lex("call foo(a, &\n    b, c)\n")
        assert stmts[0].text == "call foo(a, b, c)"

    def test_continuation_with_leading_amp(self):
        stmts = self.lex("x = 1 + &\n   & 2\n")
        assert stmts[0].text == "x = 1 + 2"

    def test_semicolons(self):
        stmts = self.lex("x = 1; y = 2\n")
        assert [s.text for s in stmts] == ["x = 1", "y = 2"]

    def test_locations(self):
        stmts = self.lex("\n\n  x = 1\n")
        assert stmts[0].location.line == 3
        assert stmts[0].location.column == 3

    def test_whitespace_normalised(self):
        stmts = self.lex("integer   ::    n\n")
        assert stmts[0].text == "integer :: n"


class TestConstructMapping:
    """Section 6: 'Fortran derived types and modules will correspond to
    C++ classes/structs/unions' …"""

    def test_module_becomes_namespace(self):
        tree = compile_f90("module physics\nend module physics\n")
        assert [n.name for n in tree.all_namespaces] == ["physics"]

    def test_derived_type_becomes_struct(self):
        tree = compile_f90(
            "module m\n"
            "  type particle\n"
            "     real :: mass\n"
            "     integer :: charge\n"
            "  end type particle\n"
            "end module m\n"
        )
        cls = tree.find_class("m::particle")
        assert cls is not None
        assert cls.kind is ClassKind.STRUCT
        assert [(f.name, f.type.spelling()) for f in cls.fields] == [
            ("mass", "float"),
            ("charge", "int"),
        ]

    def test_component_attributes(self):
        tree = compile_f90(
            "module m\n"
            "  type grid\n"
            "     real, dimension(:), pointer :: cells\n"
            "     real :: corners(4)\n"
            "  end type grid\n"
            "end module m\n"
        )
        cls = tree.find_class("m::grid")
        types = {f.name: f.type.spelling() for f in cls.fields}
        assert types["cells"] == "float [] *"
        assert types["corners"] == "float []"

    def test_derived_type_component_of_derived_type(self):
        tree = compile_f90(
            "module m\n"
            "  type inner\n"
            "     integer :: i\n"
            "  end type inner\n"
            "  type outer\n"
            "     type(inner) :: nested\n"
            "  end type outer\n"
            "end module m\n"
        )
        outer = tree.find_class("m::outer")
        assert outer.fields[0].type.spelling() == "m::inner"

    def test_subroutine_becomes_routine(self):
        tree = compile_f90(
            "module m\ncontains\n"
            "  subroutine go(n)\n"
            "    integer, intent(in) :: n\n"
            "  end subroutine go\n"
            "end module m\n"
        )
        r = tree.find_routine("m::go")
        assert r is not None
        assert r.linkage == "fortran"
        assert r.signature.return_type.spelling() == "void"
        assert r.parameters[0].type.spelling() == "int"

    def test_function_return_type_from_result(self):
        tree = compile_f90(
            "module m\ncontains\n"
            "  function area(r) result(a)\n"
            "    real, intent(in) :: r\n"
            "    real :: a\n"
            "    a = r * r\n"
            "  end function area\n"
            "end module m\n"
        )
        r = tree.find_routine("m::area")
        assert r.signature.return_type.spelling() == "float"

    def test_typed_function_prefix(self):
        tree = compile_f90(
            "module m\ncontains\n"
            "  integer function count_up(n)\n"
            "    integer, intent(in) :: n\n"
            "    count_up = n + 1\n"
            "  end function count_up\n"
            "end module m\n"
        )
        r = tree.find_routine("m::count_up")
        assert r.signature.return_type.spelling() == "int"

    def test_module_variable(self):
        tree = compile_f90("module m\n  real :: tolerance = 0.5\nend module m\n")
        assert tree.all_variables[0].name == "tolerance"

    def test_interface_aliases(self):
        """'Fortran interfaces will correspond to routines with aliases'."""
        tree = compile_heat()
        scalar = tree.find_routine("heat_mod::residual_scalar")
        fieldr = tree.find_routine("heat_mod::residual_field")
        assert scalar.flags["aliases"] == ["residual"]
        assert fieldr.flags["aliases"] == ["residual"]

    def test_program_unit(self):
        tree = compile_heat()
        prog = tree.find_routine("heat_app")
        assert prog is not None and prog.defined
        assert prog.flags.get("program_unit") is True


class TestCallExtraction:
    def test_call_statement(self):
        tree = compile_heat()
        prog = tree.find_routine("heat_app")
        assert [c.callee.name for c in prog.calls] == [
            "grid_init", "heat_step", "check_convergence"
        ]

    def test_function_reference_in_expression(self):
        tree = compile_heat()
        step = tree.find_routine("heat_mod::heat_step")
        callees = {c.callee.name for c in step.calls}
        assert callees == {"grid_size", "stencil"}

    def test_forward_reference_within_module(self):
        # heat_step calls stencil, defined after it
        tree = compile_heat()
        step = tree.find_routine("heat_mod::heat_step")
        assert any(c.callee.name == "stencil" for c in step.calls)

    def test_cross_module_calls(self):
        tree = compile_heat()
        stencil = tree.find_routine("heat_mod::stencil")
        parents = {c.callee.parent.name for c in stencil.calls}
        assert parents == {"grid_mod"}

    def test_generic_interface_call_resolves(self):
        tree = compile_heat()
        check = tree.find_routine("heat_mod::check_convergence")
        assert any(c.callee.name.startswith("residual") for c in check.calls)

    def test_intrinsics_not_called(self):
        tree = compile_heat()
        rs = tree.find_routine("heat_mod::residual_scalar")
        assert rs.calls == []  # abs() is an intrinsic

    def test_array_reference_not_a_call(self):
        tree = compile_f90(
            "module m\ncontains\n"
            "  subroutine s()\n"
            "    real :: buffer(10)\n"
            "    buffer(1) = 2.0\n"
            "  end subroutine s\n"
            "end module m\n"
        )
        assert tree.find_routine("m::s").calls == []

    def test_call_location(self):
        tree = compile_heat()
        prog = tree.find_routine("heat_app")
        first = prog.calls[0]
        assert first.location.file.name == "heat_app.f90"


class TestEntryExit:
    def test_exit_points_recorded(self):
        tree = compile_heat()
        check = tree.find_routine("heat_mod::check_convergence")
        assert len(check.flags["exits"]) == 2  # return + end subroutine

    def test_first_exec_after_declarations(self):
        tree = compile_heat()
        step = tree.find_routine("heat_mod::heat_step")
        first = step.flags["first_exec"]
        assert first is not None
        # the first executable statement is "n = grid_size(g)"
        assert "grid_size" in step.calls[0].location.file.text.splitlines()[first.line - 1]


class TestUniformPdb:
    """Section 6's thesis: a uniform parse tree means uniform tools."""

    @pytest.fixture(scope="class")
    def pdb(self):
        return PDB(analyze(compile_heat()))

    def test_pdb_items(self, pdb):
        assert pdb.findClass("grid_mod::grid") is not None
        assert pdb.findRoutine("heat_mod::heat_step") is not None
        names = {n.name() for n in pdb.getNamespaceVec()}
        assert names == {"grid_mod", "heat_mod"}

    def test_rlink_fortran(self, pdb):
        r = pdb.findRoutine("heat_mod::stencil")
        assert r.linkage() == "fortran"

    def test_ralias_emitted(self, pdb):
        r = pdb.findRoutine("heat_mod::residual_scalar")
        assert r.raw.get("ralias").words == ["residual"]

    def test_rexit_emitted(self, pdb):
        r = pdb.findRoutine("heat_mod::check_convergence")
        assert len(r.raw.get_all("rexit")) == 2

    def test_pdbtree_works_unchanged(self, pdb):
        from repro.tools.pdbtree import render_call_tree

        out = render_call_tree(pdb, "heat_app")
        assert "`--> heat_mod::heat_step" in out
        assert "heat_mod::stencil" in out

    def test_pdbconv_works_unchanged(self, pdb):
        from repro.tools.pdbconv import check_pdb, convert_pdb

        assert check_pdb(pdb) == []
        assert "grid_mod::grid" in convert_pdb(pdb)

    def test_merge_works_unchanged(self, pdb):
        other = PDB.from_text(pdb.to_text())
        stats = PDB.from_text(pdb.to_text()).merge(other)
        assert stats.items_added == 0

    def test_round_trip(self, pdb):
        from repro.pdbfmt import parse_pdb, write_pdb

        text = pdb.to_text()
        assert write_pdb(parse_pdb(text)) == text


class TestFortranInstrumentation:
    def test_entry_exit_insertion(self):
        from repro.tau.fortran_instrumentor import instrument_fortran_file
        from repro.workloads.fortran90 import HEAT_MOD_F90

        pdb = PDB(analyze(compile_heat()))
        res = instrument_fortran_file("heat_mod.f90", HEAT_MOD_F90, pdb)
        assert "heat_mod::heat_step" in res.routines_instrumented
        text = res.text
        assert "call TAU_PROFILE_TIMER(tau_profiler, 'heat_mod::heat_step')" in text
        assert text.count("call TAU_PROFILE_START") == len(res.routines_instrumented)
        # stops at every exit: each routine has >= 1
        assert text.count("call TAU_PROFILE_STOP") >= len(res.routines_instrumented)

    def test_stop_before_return(self):
        from repro.tau.fortran_instrumentor import instrument_fortran_file
        from repro.workloads.fortran90 import HEAT_MOD_F90

        pdb = PDB(analyze(compile_heat()))
        res = instrument_fortran_file("heat_mod.f90", HEAT_MOD_F90, pdb)
        lines = res.text.splitlines()
        for i, line in enumerate(lines):
            if line.strip() == "return":
                assert "TAU_PROFILE_STOP" in lines[i - 1]

    def test_start_before_first_executable(self):
        from repro.tau.fortran_instrumentor import instrument_fortran_file
        from repro.workloads.fortran90 import GRID_MOD_F90

        pdb = PDB(analyze(compile_heat()))
        res = instrument_fortran_file("grid_mod.f90", GRID_MOD_F90, pdb)
        lines = res.text.splitlines()
        start_idx = next(
            i for i, l in enumerate(lines) if "TAU_PROFILE_START" in l and "grid_init" in lines[i - 1]
        )
        # the next original statement is the first executable one
        assert "g%nx = nx" in lines[start_idx + 1]

    def test_instrumented_source_reparses(self):
        """The rewritten Fortran still parses (TAU_PROFILE_* are calls)."""
        from repro.tau.fortran_instrumentor import instrument_fortran_sources
        from repro.workloads.fortran90 import fortran_files

        pdb = PDB(analyze(compile_heat()))
        results = instrument_fortran_sources(pdb, fortran_files())
        fe = FortranFrontend()
        fe.register_files({n: r.text for n, r in results.items()})
        tree2 = fe.compile(["grid_mod.f90", "heat_mod.f90", "heat_app.f90"])
        prog = tree2.find_routine("heat_app")
        assert prog is not None
        user_calls = [c.callee.name for c in prog.calls if not c.callee.name.startswith("TAU_")]
        assert user_calls == ["grid_init", "heat_step", "check_convergence"]


class TestSimulatedFortranProfile:
    def test_tau_simulator_runs_fortran_pdb(self):
        """Dynamic analysis works across languages too: the simulator
        profiles the Fortran heat solver through the same machinery."""
        from repro.tau.machine import CostModel
        from repro.tau.simulate import ExecutionSimulator, WorkloadSpec

        pdb = PDB(analyze(compile_heat()))
        cm = CostModel(default_cycles=5.0).add("stencil", 100.0)
        spec = WorkloadSpec(
            entry="heat_app",
            cost=cm,
            pair_counts={
                ("heat_app", "heat_mod::heat_step"): 100,
                ("heat_mod::heat_step", "heat_mod::stencil"): 64,
            },
        )
        prof = ExecutionSimulator(pdb, spec).run().profile(0)
        prof.check_consistency()
        stencil = next(t for n, t in prof.timers.items() if "stencil" in n)
        assert stencil.calls == 100 * 64
        ranking = sorted(prof.timers.values(), key=lambda t: -t.exclusive)
        assert "stencil" in ranking[0].name
