"""Differential regression guard for the fast PDB reader.

The partition/slice scanner (``parse_pdb``) and the regex reference
path (``parse_pdb(strict=True)``) share one grammar; this suite holds
them to it.  Over the E12 round-trip fixpoint corpus and a seeded
battery of mutated variants, every input must either parse to the same
document on both paths or raise the same ``PdbParseError`` (message
*and* line number) on both.

Mutations stay within printable ASCII: the one documented divergence
between the paths is that the regex path's ``\\d`` accepts Unicode
digits in item ids, which no real database contains and which this
guard deliberately does not exercise.
"""

import random

import pytest

from repro.analyzer import analyze
from repro.cpp.frontend import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.pdbfmt.reader import PdbParseError, parse_pdb
from repro.pdbfmt.writer import write_pdb
from repro.tools.pdbmerge import merge_pdbs_tree
from repro.workloads.synth import SynthSpec, generate

_GARBAGE_LINES = [
    "not an item line",
    "ro#notanumber stray",
    "zz#12 unknown prefix",
    "<PDB 1.0>",
    "rloc so#1 4 2",
    "   ",
    "#",
    "ro# missing id",
]


@pytest.fixture(scope="module")
def e12_text() -> str:
    """The round-trip fixpoint corpus: a merged multi-TU database from
    the E12 pipeline, which the writer reproduces byte for byte."""
    spec = SynthSpec(
        n_plain_classes=4,
        methods_per_class=3,
        n_templates=3,
        instantiations_per_template=2,
        call_depth=3,
        n_translation_units=4,
    )
    corpus = generate(spec)
    fe = Frontend(FrontendOptions())
    fe.register_files(corpus.files)
    pdbs = [PDB(analyze(t)) for t in fe.compile_many(corpus.main_files)]
    merged, _, _ = merge_pdbs_tree(pdbs)
    return write_pdb(merged.doc)


def _outcome(text: str):
    """Parse on one path, normalising to ('ok', rendered) / ('err', msg)."""

    def run(strict):
        try:
            return ("ok", write_pdb(parse_pdb(text, strict=strict)))
        except PdbParseError as e:
            return ("err", (str(e), e.line_no))

    return run(False), run(True)


def _mutate(lines: list[str], rng: random.Random) -> list[str]:
    out = list(lines)
    op = rng.randrange(8)
    i = rng.randrange(len(out))
    if op == 0:
        del out[i]
    elif op == 1:
        out.insert(i, out[rng.randrange(len(out))])
    elif op == 2:
        j = rng.randrange(len(out))
        out[i], out[j] = out[j], out[i]
    elif op == 3:
        out.insert(i, rng.choice(_GARBAGE_LINES))
    elif op == 4:
        out[i] = out[i] + " \t" * rng.randrange(1, 3)
    elif op == 5 and out[i]:
        k = rng.randrange(len(out[i]))
        ch = chr(rng.randrange(0x20, 0x7F))
        out[i] = out[i][:k] + ch + out[i][k + 1 :]
    elif op == 6:
        out = out[: max(1, i)]
    else:
        out[i] = out[i][: rng.randrange(len(out[i]) + 1)]
    return out


def test_fixpoint_corpus_agrees(e12_text):
    fast, strict = _outcome(e12_text)
    assert fast == strict
    assert fast == ("ok", e12_text)  # the corpus really is a fixpoint


def test_differential_fuzz_over_mutated_corpus(e12_text):
    rng = random.Random(0xE19)
    base = e12_text.splitlines()
    for case in range(300):
        lines = list(base)
        for _ in range(rng.randrange(1, 4)):
            lines = _mutate(lines, rng)
        text = "\n".join(lines)
        fast, strict = _outcome(text)
        assert fast == strict, f"divergence on mutant {case}:\n{text[:400]}"


def test_structural_errors_agree():
    """The canonical error cases: both paths must raise the identical
    PdbParseError (message and line number)."""
    cases = [
        "",
        "\n\n",
        "ro#1 early\n",
        "<PDB 1.0>\n\n<PDB 1.0>\n",
        "<PDB 1.0>\nrloc so#1 1 1\n",
        "junk\n<PDB 1.0>\n",
    ]
    for text in cases:
        fast, strict = _outcome(text)
        assert fast == strict, f"divergence on {text!r}"
        assert fast[0] == "err"
