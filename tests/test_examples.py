"""Every example script must run cleanly (guards against example rot)."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, argv: list[str] | None = None) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    buf = io.StringIO()
    try:
        with redirect_stdout(buf):
            spec.loader.exec_module(module)
            module.main()
    finally:
        sys.argv = old_argv
    return buf.getvalue()


def test_examples_discovered():
    assert len(EXAMPLES) >= 6


def test_quickstart():
    out = run_example("quickstart")
    assert "Circle" in out and "area" in out


def test_stack_analysis():
    out = run_example("stack_analysis")
    assert "Stack<int>" in out
    assert "instantiated" in out
    assert "`--> Stack<int>::push" in out


def test_krylov_profiling():
    out = run_example("krylov_profiling")
    assert "FUNCTION SUMMARY" in out
    assert "StencilMatrix::apply" in out
    assert "trace excerpt" in out


def test_scripting_bindings():
    out = run_example("scripting_bindings")
    assert "registered" in out
    assert "Histogram" in out
    assert "template class Sampler<" in out


def test_merge_workflow(tmp_path):
    out = run_example("merge_workflow", [str(tmp_path)])
    assert "duplicates eliminated" in out
    assert "HTML pages" in out
    assert (tmp_path / "index.html").exists()


def test_fortran_heat():
    out = run_example("fortran_heat")
    assert "module grid_mod" in out
    assert "TAU_PROFILE_TIMER" in out
    assert "fortran" in out


def test_java_nbody():
    out = run_example("java_nbody")
    assert "package" in out
    assert "(VIRTUAL)" in out
    assert "sim::Simulation::step" in out


def test_cxxparse_passes_flag(tmp_path):
    from repro.tools.cxxparse import main

    src = tmp_path / "m.cpp"
    src.write_text("#define A 1\nclass C {};\nint f() { return A; }\n")
    out = tmp_path / "m.pdb"
    assert main([str(src), "-o", str(out), "--passes", "so,ma"]) == 0
    from repro.ductape.pdb import PDB

    pdb = PDB.read(str(out))
    assert pdb.getMacroVec()
    assert not pdb.getRoutineVec()
