"""Type system unit tests: interning, spellings, substitution."""

from repro.cpp.cpptypes import QualifiedType, TypeTable


class TestInterning:
    def test_builtin_identity(self):
        tt = TypeTable()
        assert tt.builtin("int") is tt.builtin("int")

    def test_pointer_identity(self):
        tt = TypeTable()
        assert tt.pointer_to(tt.int_) is tt.pointer_to(tt.int_)

    def test_distinct_pointers(self):
        tt = TypeTable()
        assert tt.pointer_to(tt.int_) is not tt.pointer_to(tt.double)

    def test_function_identity(self):
        tt = TypeTable()
        f1 = tt.function(tt.void, [tt.int_], const=True)
        f2 = tt.function(tt.void, [tt.int_], const=True)
        assert f1 is f2

    def test_function_const_distinguishes(self):
        tt = TypeTable()
        assert tt.function(tt.void, []) is not tt.function(tt.void, [], const=True)

    def test_creation_order_recorded(self):
        tt = TypeTable()
        a = tt.builtin("int")
        b = tt.pointer_to(a)
        assert tt.all_types.index(a) < tt.all_types.index(b)


class TestSpellings:
    def test_const_ref(self):
        tt = TypeTable()
        t = tt.reference_to(tt.qualified(tt.int_, const=True))
        assert t.spelling() == "const int &"

    def test_function_spelling(self):
        tt = TypeTable()
        param = tt.reference_to(tt.qualified(tt.int_, const=True))
        f = tt.function(tt.void, [param])
        assert f.spelling() == "void (const int &)"

    def test_const_member_function_spelling(self):
        tt = TypeTable()
        f = tt.function(tt.bool_, [], const=True)
        assert f.spelling() == "bool () const"

    def test_pointer_spelling(self):
        tt = TypeTable()
        assert tt.pointer_to(tt.int_).spelling() == "int *"

    def test_array_spelling(self):
        tt = TypeTable()
        assert tt.array_of(tt.int_, 10).spelling() == "int [10]"
        assert tt.array_of(tt.int_, None).spelling() == "int []"

    def test_ellipsis_spelling(self):
        tt = TypeTable()
        f = tt.function(tt.int_, [tt.pointer_to(tt.builtin("char"))], ellipsis=True)
        assert "..." in f.spelling()

    def test_unsigned_builtins(self):
        tt = TypeTable()
        assert tt.builtin("unsigned long").spelling() == "unsigned long"
        assert tt.builtin("unsigned long").yikind == "ulong"


class TestQualifiers:
    def test_qualified_noop(self):
        tt = TypeTable()
        assert tt.qualified(tt.int_) is tt.int_

    def test_qualifier_merging(self):
        tt = TypeTable()
        c = tt.qualified(tt.int_, const=True)
        cv = tt.qualified(c, volatile=True)
        assert isinstance(cv, QualifiedType)
        assert cv.const and cv.volatile
        assert cv.base is tt.int_

    def test_reference_collapsing(self):
        tt = TypeTable()
        r = tt.reference_to(tt.int_)
        assert tt.reference_to(r) is r

    def test_strip(self):
        tt = TypeTable()
        t = tt.reference_to(tt.qualified(tt.int_, const=True))
        assert t.strip() is tt.int_

    def test_ykinds(self):
        tt = TypeTable()
        assert tt.qualified(tt.int_, const=True).kind == "tref"
        assert tt.reference_to(tt.int_).kind == "ref"
        assert tt.pointer_to(tt.int_).kind == "ptr"
        assert tt.bool_.kind == "bool"
        assert tt.bool_.yikind == "char"  # EDG convention (paper Figure 3)


class TestDependence:
    def test_tparam_is_dependent(self):
        tt = TypeTable()
        assert tt.template_param("T", 0).is_dependent

    def test_dependence_propagates(self):
        tt = TypeTable()
        t = tt.template_param("T", 0)
        assert tt.pointer_to(t).is_dependent
        assert tt.reference_to(t).is_dependent
        assert tt.function(tt.void, [t]).is_dependent
        assert tt.array_of(t).is_dependent

    def test_concrete_not_dependent(self):
        tt = TypeTable()
        assert not tt.function(tt.void, [tt.int_]).is_dependent


class TestSubstitution:
    def test_substitute_param(self):
        tt = TypeTable()
        t = tt.template_param("T", 0)
        assert tt.substitute(t, {"T": tt.int_}) is tt.int_

    def test_substitute_through_structure(self):
        tt = TypeTable()
        t = tt.template_param("T", 0)
        pattern = tt.reference_to(tt.qualified(t, const=True))
        result = tt.substitute(pattern, {"T": tt.double})
        assert result.spelling() == "const double &"

    def test_substitute_function(self):
        tt = TypeTable()
        t = tt.template_param("T", 0)
        f = tt.function(t, [tt.reference_to(t)], const=True)
        r = tt.substitute(f, {"T": tt.int_})
        assert r.spelling() == "int (int &) const"

    def test_substitute_interns(self):
        tt = TypeTable()
        t = tt.template_param("T", 0)
        a = tt.substitute(tt.pointer_to(t), {"T": tt.int_})
        assert a is tt.pointer_to(tt.int_)

    def test_substitute_concrete_is_identity(self):
        tt = TypeTable()
        f = tt.function(tt.void, [tt.int_])
        assert tt.substitute(f, {"T": tt.double}) is f

    def test_substitute_unbound_param_stays(self):
        tt = TypeTable()
        t = tt.template_param("T", 0)
        assert tt.substitute(t, {}) is t

    def test_nontype_arg_substitution(self):
        tt = TypeTable()
        n = tt.nontype_arg("N", dependent=True)
        bound = tt.substitute(n, {"N": tt.nontype_arg("16")})
        assert bound.spelling() == "16"
