"""pdbcheck tests: the pass framework, every checker against the
seeded-defect corpus (exact ground truth — precision and recall both
1.0), the three reporters (SARIF validated against a vendored subset of
the OASIS 2.1.0 schema), suppressions, and the CLI surface of pdbcheck,
pdbmerge --check, and pdbbuild --check."""

from __future__ import annotations

import json

import pytest

from repro.check import (
    Suppressions,
    all_checks,
    all_rules,
    render_json,
    render_sarif,
    render_text,
    resolve_selection,
    run_checks,
    to_json_dict,
    to_sarif_dict,
)
from repro.check.report import JSON_SCHEMA
from repro.cpp.instantiate import InstantiationMode
from repro.ductape.pdb import PDB
from repro.workloads.defects import (
    DEFECT_SOURCES,
    EXPECTED,
    EXPECTED_ODR_CONFLICTS,
    compile_defects,
    defect_files,
    write_corpus,
)
from repro.workloads.stack import UNUSED_MEMBERS, compile_stack


@pytest.fixture(scope="module")
def defect_report():
    pdb, _stats = compile_defects()
    return run_checks(pdb)


@pytest.fixture(scope="module")
def clean_pdb():
    return PDB.from_il(compile_stack(InstantiationMode.USED))


def by_rule(report) -> dict[str, set[str]]:
    out: dict[str, set[str]] = {}
    for f in report.findings:
        out.setdefault(f.rule.id, set()).add(f.item)
    return out


# ------------------------------------------------------------ framework


class TestFramework:
    def test_registry_is_stable(self):
        checks = all_checks()
        assert [c.name for c in checks] == [
            "bloat", "deadcode", "hierarchy", "includes", "odr"
        ]
        rules = all_rules()
        assert [r.id for r in rules] == [
            "PDT011", "PDT012", "PDT001", "PDT031", "PDT032",
            "PDT041", "PDT042", "PDT021", "PDT022",
        ]
        assert all(r.severity in ("error", "warning", "note") for r in rules)

    def test_resolve_selection_forms(self):
        every = resolve_selection("all")
        assert set(every) == {c.name for c in all_checks()}
        assert resolve_selection("deadcode") == {"deadcode": {"PDT001"}}
        assert resolve_selection("PDT021,PDT022") == {"odr": {"PDT021", "PDT022"}}
        # rule *names* work too
        sel = resolve_selection("dead-routine")
        assert sel == {"deadcode": {"PDT001"}}

    def test_resolve_selection_unknown_raises(self):
        with pytest.raises(ValueError, match="bogus"):
            resolve_selection("deadcode,bogus")

    def test_deterministic(self):
        pdb, _ = compile_defects()
        a = run_checks(pdb)
        b = run_checks(pdb)
        assert [f.render() for f in a.findings] == [f.render() for f in b.findings]
        assert render_json(a).split('"wall_s"')[0] == render_json(b).split('"wall_s"')[0]

    def test_findings_sorted(self, defect_report):
        keys = [f.sort_key() for f in defect_report.findings]
        assert keys == sorted(keys)

    def test_selection_limits_checks_run(self):
        pdb, _ = compile_defects()
        report = run_checks(pdb, select="odr")
        assert report.checks_run == ["odr"]
        assert set(by_rule(report)) == {"PDT021", "PDT022"}


# ------------------------------------------------- seeded-defect corpus


class TestSeededDefects:
    def test_exact_ground_truth(self, defect_report):
        """Every planted defect found, nothing else: precision = recall = 1."""
        assert by_rule(defect_report) == EXPECTED

    def test_severities(self, defect_report):
        assert defect_report.count("error") == 4   # 2x PDT021 + 2x PDT022 sites
        assert defect_report.worst_severity() == "error"
        assert defect_report.fails("error")
        assert not defect_report.fails("error") is None

    def test_odr_findings_carry_related_sites(self, defect_report):
        odr = [f for f in defect_report.findings if f.rule.id == "PDT021"]
        assert len(odr) == 2  # one finding per definition site
        assert all(f.related for f in odr)

    def test_entries_rescue_dead_code(self):
        pdb, _ = compile_defects()
        report = run_checks(pdb, select="deadcode", entries=["ping"])
        assert report.findings == []

    def test_merge_counts_odr_conflicts(self):
        _pdb, merge_stats = compile_defects()
        assert sum(s.odr_conflicts for s in merge_stats) == EXPECTED_ODR_CONFLICTS


# ------------------------------------------------------- clean corpora


class TestCleanCorpora:
    def test_clean_stack_is_clean(self, clean_pdb):
        report = run_checks(clean_pdb)
        assert report.findings == []
        assert report.worst_severity() is None
        assert not report.fails("note")

    def test_all_mode_flags_unused_template_members(self):
        """Paper's E2: ALL-mode instantiation emits top/pop/makeEmpty
        even though nothing calls them — exactly what PDT011 flags."""
        pdb = PDB.from_il(compile_stack(InstantiationMode.ALL))
        report = run_checks(pdb, select="bloat")
        items = {f.item for f in report.findings if f.rule.id == "PDT011"}
        assert {i.rsplit("::", 1)[-1] for i in items} == set(UNUSED_MEMBERS)


# ------------------------------------------------- include-cycle (042)


CYCLE_PDB = """\
<PDB 3.0>

so#1 a.h
sinc so#2

so#2 b.h
sinc so#1
"""


class TestIncludeCycle:
    def test_pdt042_on_handwritten_cycle(self):
        """Real preprocessor runs cannot produce include cycles (guards
        break them), so the fixture is hand-written PDB text."""
        pdb = PDB.from_text(CYCLE_PDB)
        report = run_checks(pdb, select="PDT042")
        (finding,) = report.findings  # one finding per cycle
        assert "include cycle: a.h -> b.h -> a.h" in finding.message


# -------------------------------------------------------- suppressions


class TestSuppressions:
    def test_exclude_by_rule_prefixed_pattern(self):
        pdb, _ = compile_defects()
        sup = Suppressions.from_text(
            "BEGIN_EXCLUDE_LIST\nPDT001:#\nEND_EXCLUDE_LIST\n"
        )
        report = run_checks(pdb, suppressions=sup)
        assert "PDT001" not in by_rule(report)
        assert report.suppressed == len(EXPECTED["PDT001"])

    def test_exclude_by_item_name(self):
        pdb, _ = compile_defects()
        sup = Suppressions.from_text(
            "BEGIN_EXCLUDE_LIST\nhelper\nConfig\nEND_EXCLUDE_LIST\n"
        )
        report = run_checks(pdb, select="odr", suppressions=sup)
        assert report.findings == []
        assert report.suppressed == 4

    def test_file_exclude(self):
        pdb, _ = compile_defects()
        sup = Suppressions.from_text(
            "BEGIN_FILE_EXCLUDE_LIST\nshapes.h\nEND_FILE_EXCLUDE_LIST\n"
        )
        report = run_checks(pdb, select="hierarchy", suppressions=sup)
        assert report.findings == []

    def test_include_list_is_exhaustive(self):
        pdb, _ = compile_defects()
        sup = Suppressions.from_text(
            "BEGIN_INCLUDE_LIST\nPDT021:#\nEND_INCLUDE_LIST\n"
        )
        report = run_checks(pdb, suppressions=sup)
        assert set(by_rule(report)) == {"PDT021"}


# ----------------------------------------------------------- reporters

#: condensed (vendored) subset of the OASIS SARIF 2.1.0 schema — the
#: structural constraints that matter for code-scanning ingestion
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            # absolute paths are not
                                                            # valid relative URIs
                                                            "uri": {
                                                                "type": "string",
                                                                "pattern": "^[^/]",
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestReporters:
    def test_text_summary(self, defect_report):
        text = render_text(defect_report)
        assert "11 findings (4 errors, 7 warnings)" in text
        assert "[PDT001]" in text and "[PDT041]" in text

    def test_text_verbose_timings(self, defect_report):
        text = render_text(defect_report, verbose=True)
        assert " ms" in text

    def test_json_schema_tag_and_shape(self, defect_report):
        doc = json.loads(render_json(defect_report))
        assert doc["schema"] == JSON_SCHEMA == "pdbcheck-findings/1"
        assert doc["summary"]["findings"] == len(defect_report.findings)
        assert doc["summary"]["rules"] == defect_report.rule_counts
        assert {f["rule"] for f in doc["findings"]} == set(EXPECTED)
        for f in doc["findings"]:
            assert set(f) >= {"rule", "severity", "item", "message", "file", "line"}
        assert set(doc["checks"]) == set(defect_report.checks_run)
        assert all(c["wall_s"] >= 0 for c in doc["checks"].values())

    def test_sarif_validates_against_subset_schema(self, defect_report):
        jsonschema = pytest.importorskip("jsonschema")
        doc = json.loads(render_sarif(defect_report))
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)

    def test_sarif_rule_index_cross_references(self, defect_report):
        doc = to_sarif_dict(defect_report)
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == [r.id for r in all_rules()]
        for res in doc["runs"][0]["results"]:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]
        assert len(doc["runs"][0]["results"]) == len(defect_report.findings)

    def test_sarif_empty_report_still_valid(self, clean_pdb):
        jsonschema = pytest.importorskip("jsonschema")
        report = run_checks(clean_pdb)
        doc = json.loads(render_sarif(report))
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)
        assert doc["runs"][0]["results"] == []

    def test_json_dict_roundtrips(self, defect_report):
        assert json.loads(json.dumps(to_json_dict(defect_report))) == to_json_dict(
            defect_report
        )


# -------------------------------------------------------- pdbcheck CLI


@pytest.fixture(scope="module")
def pdb_paths(tmp_path_factory):
    """defects.pdb (merged), a.pdb/b.pdb (per TU), clean.pdb, on disk."""
    root = tmp_path_factory.mktemp("pdbs")
    merged, _ = compile_defects()
    merged.write(str(root / "defects.pdb"))
    from repro.tools.pdbbuild import BuildOptions, build

    for src in DEFECT_SOURCES:
        one, _stats = build([src], BuildOptions(), files=defect_files())
        one.write(str(root / (src.replace(".cpp", ".pdb"))))
    clean = PDB.from_il(compile_stack(InstantiationMode.USED))
    clean.write(str(root / "clean.pdb"))
    return root


class TestPdbcheckCli:
    def test_no_inputs_is_usage_error(self, capsys):
        from repro.tools.pdbcheck import main

        assert main([]) == 2
        assert "no input PDB files" in capsys.readouterr().err

    def test_unknown_selection_is_usage_error(self, pdb_paths, capsys):
        from repro.tools.pdbcheck import main

        assert main(["--checks", "bogus", str(pdb_paths / "clean.pdb")]) == 2

    def test_missing_file_is_usage_error(self, pdb_paths, capsys):
        from repro.tools.pdbcheck import main

        assert main([str(pdb_paths / "nope.pdb")]) == 2

    def test_clean_exits_zero(self, pdb_paths, capsys):
        from repro.tools.pdbcheck import main

        assert main([str(pdb_paths / "clean.pdb")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, pdb_paths, capsys):
        from repro.tools.pdbcheck import main

        assert main([str(pdb_paths / "defects.pdb")]) == 1
        out = capsys.readouterr().out
        for rule in EXPECTED:
            assert f"[{rule}]" in out

    def test_fail_on_error_ignores_warnings(self, pdb_paths, capsys):
        from repro.tools.pdbcheck import main

        # only warning-level checks selected -> exit 0 under --fail-on error
        assert (
            main(
                ["--checks", "deadcode", "--fail-on", "error",
                 str(pdb_paths / "defects.pdb")]
            )
            == 0
        )

    def test_merges_multiple_inputs_for_cross_tu_checks(self, pdb_paths, capsys):
        from repro.tools.pdbcheck import main

        rc = main(
            ["--checks", "odr", str(pdb_paths / "a.pdb"), str(pdb_paths / "b.pdb")]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "[PDT021]" in out and "[PDT022]" in out

    def test_single_tu_has_no_odr_findings(self, pdb_paths, capsys):
        from repro.tools.pdbcheck import main

        assert main(["--checks", "odr", str(pdb_paths / "a.pdb")]) == 0

    def test_list_rules(self, capsys):
        from repro.tools.pdbcheck import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for r in all_rules():
            assert r.id in out

    def test_output_file_json(self, pdb_paths, tmp_path, capsys):
        from repro.tools.pdbcheck import main

        out = tmp_path / "report.json"
        assert main(
            ["-f", "json", "-o", str(out), str(pdb_paths / "defects.pdb")]
        ) == 1
        doc = json.loads(out.read_text())
        assert doc["schema"] == "pdbcheck-findings/1"

    def test_output_file_sarif(self, pdb_paths, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        from repro.tools.pdbcheck import main

        out = tmp_path / "report.sarif"
        assert main(
            ["-f", "sarif", "-o", str(out), str(pdb_paths / "defects.pdb")]
        ) == 1
        jsonschema.validate(json.loads(out.read_text()), SARIF_SUBSET_SCHEMA)

    def test_select_file_suppression(self, pdb_paths, tmp_path, capsys):
        from repro.tools.pdbcheck import main

        sel = tmp_path / "suppress.sel"
        sel.write_text("BEGIN_EXCLUDE_LIST\nPDT001:#\nEND_EXCLUDE_LIST\n")
        assert main(
            ["--checks", "deadcode", "--select", str(sel),
             str(pdb_paths / "defects.pdb")]
        ) == 0
        assert "suppressed" in capsys.readouterr().out

    def test_bad_select_file_is_usage_error(self, pdb_paths, capsys):
        from repro.tools.pdbcheck import main

        assert main(
            ["--select", "/nonexistent.sel", str(pdb_paths / "defects.pdb")]
        ) == 2


# --------------------------------------------------- pdbmerge --check


class TestPdbmergeCheck:
    def test_merge_pdbs_collects_odr_log(self, pdb_paths):
        from repro.tools.pdbmerge import merge_pdbs

        pdbs = [PDB.read(str(pdb_paths / n)) for n in ("a.pdb", "b.pdb")]
        log: list = []
        _merged, stats = merge_pdbs(pdbs, odr_log=log)
        assert sum(s.odr_conflicts for s in stats) == EXPECTED_ODR_CONFLICTS
        assert {e["name"] for e in log} == {"helper", "Config"}

    def test_cli_check_flag(self, pdb_paths, tmp_path, capsys):
        from repro.tools.pdbmerge import main

        out = tmp_path / "merged.pdb"
        rc = main(
            ["--check", "-o", str(out),
             str(pdb_paths / "a.pdb"), str(pdb_paths / "b.pdb")]
        )
        assert rc == 0
        text = capsys.readouterr().out + capsys.readouterr().err
        assert f"ODR conflicts: {EXPECTED_ODR_CONFLICTS}" in text
        assert "helper" in text and "Config" in text


# --------------------------------------------------- pdbbuild --check


class TestPdbbuildCheck:
    def test_build_with_checks_populates_stats(self):
        from repro.tools.pdbbuild import BuildOptions, build

        merged, stats = build(
            list(DEFECT_SOURCES), BuildOptions(), files=defect_files(),
            checks="all", trace=True,
        )
        assert stats.check is not None
        assert stats.check["findings"] == 11
        assert stats.check["errors"] == 4
        # rule_counts count findings: ODR rules emit one per definition site
        assert stats.check["rules"] == {
            "PDT001": 2, "PDT011": 1, "PDT012": 1, "PDT021": 2,
            "PDT022": 2, "PDT031": 1, "PDT032": 1, "PDT041": 1,
        }
        assert set(stats.check["checks"]) == {c.name for c in all_checks()}
        assert all(v["wall_s"] >= 0 for v in stats.check["checks"].values())
        assert stats.check_report is not None and stats.check_report.fails("warning")
        # per-check spans land in the trace
        span_names = {s.name for s in stats.trace_spans}
        assert {f"check.{c.name}" for c in all_checks()} <= span_names

    def test_stats_schema_v5_carries_check_section(self):
        from repro.tools.pdbbuild import STATS_SCHEMA, BuildOptions, build

        assert STATS_SCHEMA == "pdbbuild-stats/5"
        _merged, stats = build(
            list(DEFECT_SOURCES), BuildOptions(), files=defect_files(), checks="odr"
        )
        d = stats.to_dict()
        assert d["schema"] == "pdbbuild-stats/5"
        assert d["check"]["selection"] == "odr"
        assert d["check"]["findings"] == 4
        assert d["merge"]["odr_conflicts"] == EXPECTED_ODR_CONFLICTS
        assert "check_report" not in d
        json.dumps(d)  # must stay serialisable

    def test_build_without_checks_has_no_check_section(self, clean_pdb):
        from repro.tools.pdbbuild import BuildOptions, build

        _m, stats = build(["a.cpp"], BuildOptions(), files={"a.cpp": "int main( ) { return 0; }\n"})
        assert stats.check is None
        assert "check" not in stats.to_dict()
