"""Preprocessor unit tests: macros, conditionals, includes."""

import pytest

from repro.cpp.diagnostics import CppError, DiagnosticSink
from tests.util import preprocess, texts


class TestObjectMacros:
    def test_simple_expansion(self):
        toks, _ = preprocess("#define N 10\nint x = N;")
        assert texts(toks) == ["int", "x", "=", "10", ";"]

    def test_multi_token_body(self):
        toks, _ = preprocess("#define PAIR 1 , 2\nf(PAIR);")
        assert texts(toks) == ["f", "(", "1", ",", "2", ")", ";"]

    def test_undef(self):
        toks, _ = preprocess("#define N 10\n#undef N\nN")
        assert texts(toks) == ["N"]

    def test_redefinition_takes_effect(self):
        toks, _ = preprocess("#define N 1\n#define N 2\nN")
        assert texts(toks) == ["2"]

    def test_nested_expansion(self):
        toks, _ = preprocess("#define A B\n#define B 42\nA")
        assert texts(toks) == ["42"]

    def test_self_reference_no_infinite_loop(self):
        toks, _ = preprocess("#define X X\nX")
        assert texts(toks) == ["X"]

    def test_mutual_recursion_stops(self):
        toks, _ = preprocess("#define A B\n#define B A\nA")
        assert texts(toks) == ["A"]

    def test_expanded_token_location_is_use_site(self):
        toks, _ = preprocess("#define N 10\n\n\nN")
        assert toks[0].location.line == 4
        assert toks[0].expanded_from == "N"


class TestFunctionMacros:
    def test_simple(self):
        toks, _ = preprocess("#define SQ(x) ((x)*(x))\nSQ(3)")
        assert "".join(texts(toks)) == "((3)*(3))"

    def test_two_params(self):
        toks, _ = preprocess("#define ADD(a,b) a+b\nADD(1, 2)")
        assert texts(toks) == ["1", "+", "2"]

    def test_nested_parens_in_args(self):
        toks, _ = preprocess("#define ID(x) x\nID(f(a, b))")
        assert texts(toks) == ["f", "(", "a", ",", "b", ")"]

    def test_name_without_parens_not_invoked(self):
        toks, _ = preprocess("#define F(x) x\nF;")
        assert texts(toks) == ["F", ";"]

    def test_empty_argument_list(self):
        toks, _ = preprocess("#define F() 7\nF()")
        assert texts(toks) == ["7"]

    def test_argument_expansion(self):
        toks, _ = preprocess("#define N 5\n#define ID(x) x\nID(N)")
        assert texts(toks) == ["5"]

    def test_stringize(self):
        toks, _ = preprocess("#define S(x) #x\nS(a b)")
        assert texts(toks) == ['"a b"']

    def test_paste(self):
        toks, _ = preprocess("#define GLUE(a,b) a##b\nGLUE(foo, bar)")
        assert texts(toks) == ["foobar"]

    def test_paste_makes_number(self):
        toks, _ = preprocess("#define GLUE(a,b) a##b\nGLUE(1, 2)")
        assert texts(toks) == ["12"]

    def test_variadic(self):
        toks, _ = preprocess("#define V(...) f(__VA_ARGS__)\nV(1, 2, 3)")
        assert "".join(texts(toks)) == "f(1,2,3)"

    def test_wrong_arity_raises(self):
        with pytest.raises(CppError, match="expects 2"):
            preprocess("#define ADD(a,b) a+b\nADD(1)")

    def test_macro_define_with_space_before_paren_is_object(self):
        toks, _ = preprocess("#define F (x)\nF")
        assert texts(toks) == ["(", "x", ")"]


class TestConditionals:
    def test_ifdef_taken(self):
        toks, _ = preprocess("#define A\n#ifdef A\nyes\n#endif")
        assert texts(toks) == ["yes"]

    def test_ifdef_not_taken(self):
        toks, _ = preprocess("#ifdef A\nno\n#endif\nafter")
        assert texts(toks) == ["after"]

    def test_ifndef_guard(self):
        src = "#ifndef G\n#define G\nbody\n#endif"
        toks, _ = preprocess(src)
        assert texts(toks) == ["body"]

    def test_else(self):
        toks, _ = preprocess("#ifdef A\nx\n#else\ny\n#endif")
        assert texts(toks) == ["y"]

    def test_elif_chain(self):
        src = "#define B 1\n#if defined(A)\na\n#elif defined(B)\nb\n#else\nc\n#endif"
        toks, _ = preprocess(src)
        assert texts(toks) == ["b"]

    def test_nested_conditionals(self):
        src = "#define A\n#ifdef A\n#ifdef B\nx\n#else\ny\n#endif\n#endif"
        toks, _ = preprocess(src)
        assert texts(toks) == ["y"]

    def test_inactive_region_skips_directives(self):
        src = "#ifdef A\n#define X 1\n#endif\nX"
        toks, _ = preprocess(src)
        assert texts(toks) == ["X"]

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1", True),
            ("0", False),
            ("1 + 1 == 2", True),
            ("2 * 3 > 5", True),
            ("(1 || 0) && 1", True),
            ("!1", False),
            ("5 % 2", True),
            ("1 << 3 == 8", True),
            ("0x10 == 16", True),
            ("UNKNOWN_NAME", False),
            ("1 ? 1 : 0", True),
            ("'a' == 97", True),
        ],
    )
    def test_if_expressions(self, expr, expected):
        toks, _ = preprocess(f"#if {expr}\nyes\n#endif")
        assert (texts(toks) == ["yes"]) is expected

    def test_if_with_macro(self):
        toks, _ = preprocess("#define V 3\n#if V >= 2\nyes\n#endif")
        assert texts(toks) == ["yes"]

    def test_defined_without_parens(self):
        toks, _ = preprocess("#define A\n#if defined A\nyes\n#endif")
        assert texts(toks) == ["yes"]

    def test_unterminated_conditional_reports(self):
        with pytest.raises(CppError):
            preprocess("#ifdef A\nx")

    def test_endif_without_if_reports(self):
        with pytest.raises(CppError):
            preprocess("#endif")


class TestIncludes:
    def test_quoted_include(self):
        toks, _ = preprocess('#include "a.h"\nmain_tok', files={"a.h": "included_tok"})
        assert texts(toks) == ["included_tok", "main_tok"]

    def test_include_records_edge(self):
        _, pp = preprocess('#include "a.h"', files={"a.h": ""})
        main = pp.manager.get("main.cpp")
        assert [f.name for f in main.includes] == ["a.h"]

    def test_nested_includes(self):
        files = {"a.h": '#include "b.h"\na_tok', "b.h": "b_tok"}
        toks, _ = preprocess('#include "a.h"', files=files)
        assert texts(toks) == ["b_tok", "a_tok"]

    def test_missing_include_reports(self):
        with pytest.raises(CppError, match="not found"):
            preprocess('#include "missing.h"')

    def test_circular_include_with_guards_ok(self):
        files = {
            "a.h": '#ifndef A_H\n#define A_H\n#include "b.h"\na_tok\n#endif',
            "b.h": '#ifndef B_H\n#define B_H\n#include "a.h"\nb_tok\n#endif',
        }
        toks, _ = preprocess('#include "a.h"', files=files)
        assert texts(toks) == ["b_tok", "a_tok"]

    def test_include_depth_guard_without_guards(self):
        files = {"a.h": '#include "b.h"', "b.h": '#include "a.h"'}
        # re-inclusion of an in-progress file is cut (edge recorded only)
        toks, _ = preprocess('#include "a.h"', files=files)
        assert toks == []


class TestBuiltinsAndRecords:
    def test_file_macro(self):
        toks, _ = preprocess("__FILE__")
        assert texts(toks) == ['"main.cpp"']

    def test_line_macro(self):
        toks, _ = preprocess("\n\n__LINE__")
        assert texts(toks) == ["3"]

    def test_macro_records_for_pdb(self):
        _, pp = preprocess("#define A 1\n#define B(x) x\n#undef A")
        recs = [(r.name, r.kind) for r in pp.macro_records]
        assert recs == [("A", "def"), ("B", "def"), ("A", "undef")]

    def test_macro_record_text(self):
        _, pp = preprocess("#define MAX(a,b) ((a) > (b) ? (a) : (b))")
        assert pp.macro_records[0].text.startswith("#define MAX")
        assert "? (a) : (b)" in pp.macro_records[0].text

    def test_error_directive(self):
        with pytest.raises(CppError, match="#error"):
            preprocess("#error something broke")

    def test_warning_directive_collects(self):
        sink = DiagnosticSink(fatal_errors=False)
        _, pp = preprocess("#warning heads up\nx", sink=sink)
        assert sink.warning_count == 1

    def test_pragma_ignored(self):
        toks, _ = preprocess("#pragma once\nx")
        assert texts(toks) == ["x"]
