"""End-to-end front-end tests on the paper's Stack corpus (Figure 1/3)."""

import pytest

from repro.cpp.il import RoutineKind, TemplateKind
from repro.cpp.instantiate import InstantiationMode
from repro.workloads.stack import UNUSED_MEMBERS, USED_MEMBERS, compile_stack


@pytest.fixture(scope="module")
def tree():
    return compile_stack()


class TestCompiles:
    def test_main_found(self, tree):
        main = tree.find_routine("main")
        assert main is not None and main.defined

    def test_files_discovered(self, tree):
        names = [f.name for f in tree.files]
        assert "TestStackAr.cpp" in names
        assert "StackAr.h" in names
        assert "StackAr.cpp" in names
        assert any(n.endswith("vector.h") for n in names)

    def test_inclusion_edges(self, tree):
        header = next(f for f in tree.files if f.name == "StackAr.h")
        inc_names = [f.name for f in header.includes]
        assert "StackAr.cpp" in inc_names  # the paper's idiom
        assert any(n.endswith("vector.h") for n in inc_names)
        assert "dsexceptions.h" in inc_names


class TestTemplates:
    def test_class_template_registered(self, tree):
        te = tree.find_template("Stack")
        assert te is not None
        assert te.kind is TemplateKind.CLASS
        assert te.param_names() == ["Object"]
        assert "template" in te.text and "Stack" in te.text

    def test_member_function_templates(self, tree):
        names = {
            t.name
            for t in tree.all_templates
            if t.kind is TemplateKind.MEMBER_FUNCTION
        }
        assert {"push", "isEmpty", "isFull", "top", "pop", "makeEmpty", "topAndPop"} <= names

    def test_memfunc_templates_linked_to_class_template(self, tree):
        stack_te = tree.find_template("Stack")
        push_te = next(t for t in tree.all_templates if t.name == "push")
        assert push_te.owner_class_template is stack_te


class TestInstantiation:
    def test_stack_int_instantiated(self, tree):
        cls = tree.find_class("Stack<int>")
        assert cls is not None
        assert cls.is_instantiation
        assert cls.template_of is tree.find_template("Stack")
        assert [a.spelling() for a in cls.template_args] == ["int"]

    def test_members_declared(self, tree):
        cls = tree.find_class("Stack<int>")
        member_names = {r.name for r in cls.routines}
        assert {"push", "isEmpty", "isFull", "top", "pop", "makeEmpty", "topAndPop"} <= member_names
        field_names = [f.name for f in cls.fields]
        assert field_names == ["theArray", "topOfStack"]

    def test_field_types_substituted(self, tree):
        cls = tree.find_class("Stack<int>")
        the_array = cls.fields[0]
        assert the_array.type.spelling() == "vector<int>"
        assert cls.fields[1].type.spelling() == "int"

    def test_vector_int_instantiated(self, tree):
        assert tree.find_class("vector<int>") is not None

    def test_used_members_have_bodies(self, tree):
        cls = tree.find_class("Stack<int>")
        for name in USED_MEMBERS:
            r = next(r for r in cls.routines if r.name == name)
            assert r.defined, f"{name} should be instantiated (used)"

    def test_unused_members_have_no_bodies(self, tree):
        cls = tree.find_class("Stack<int>")
        for name in UNUSED_MEMBERS:
            r = next(r for r in cls.routines if r.name == name)
            assert not r.defined, f"{name} must stay uninstantiated (unused)"

    def test_instantiated_member_links_to_memfunc_template(self, tree):
        cls = tree.find_class("Stack<int>")
        push = next(r for r in cls.routines if r.name == "push")
        assert push.is_instantiation
        assert push.template_of is not None
        assert push.template_of.name == "push"

    def test_instantiated_member_positions_point_into_template(self, tree):
        cls = tree.find_class("Stack<int>")
        push = next(r for r in cls.routines if r.name == "push")
        assert push.location.file.name == "StackAr.cpp"
        assert push.position.body is not None
        assert push.position.body.begin.file.name == "StackAr.cpp"


class TestCallGraph:
    def test_main_calls(self, tree):
        main = tree.find_routine("main")
        callees = {c.callee.name for c in main.calls}
        assert "push" in callees
        assert "isEmpty" in callees
        assert "topAndPop" in callees
        # the local Stack<int> s triggers the constructor
        assert any(c.callee.kind is RoutineKind.CONSTRUCTOR for c in main.calls)

    def test_push_calls_isfull_and_overflow_ctor(self, tree):
        cls = tree.find_class("Stack<int>")
        push = next(r for r in cls.routines if r.name == "push")
        callees = {c.callee.name for c in push.calls}
        assert "isFull" in callees
        assert "Overflow" in callees  # throw Overflow() constructor
        assert "operator[]" in callees

    def test_isfull_calls_vector_size(self, tree):
        cls = tree.find_class("Stack<int>")
        isfull = next(r for r in cls.routines if r.name == "isFull")
        callees = {c.callee.full_name for c in isfull.calls}
        assert any("size" in c for c in callees)

    def test_ctor_initialiser_calls_vector_ctor(self, tree):
        cls = tree.find_class("Stack<int>")
        ctor = cls.constructors()[0]
        assert ctor.defined
        callee_parents = {
            c.callee.parent.full_name
            for c in ctor.calls
            if c.callee.parent is not None
        }
        assert "vector<int>" in callee_parents

    def test_operator_shift_call_from_main(self, tree):
        main = tree.find_routine("main")
        assert any(c.callee.name == "operator<<" for c in main.calls)


class TestModes:
    def test_all_mode_instantiates_everything(self):
        tree = compile_stack(InstantiationMode.ALL)
        cls = tree.find_class("Stack<int>")
        for name in USED_MEMBERS + UNUSED_MEMBERS:
            r = next(r for r in cls.routines if r.name.split("<")[0] == name.split("<")[0])
            assert r.defined, f"ALL mode must define {name}"

    def test_used_strictly_smaller_than_all(self):
        used = compile_stack(InstantiationMode.USED)
        full = compile_stack(InstantiationMode.ALL)
        assert used.node_count() < full.node_count()
        used_defined = sum(1 for r in used.all_routines if r.defined)
        all_defined = sum(1 for r in full.all_routines if r.defined)
        assert used_defined < all_defined
