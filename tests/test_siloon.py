"""SILOON tests: mangling, generation, bridge dispatch (Section 4.2)."""

import pytest

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.siloon.bridge import Bridge, ObjectHandle, SiloonError
from repro.siloon.generator import generate_bindings, propose_instantiations
from repro.siloon.mangler import demangle_hint, mangle_routine, mangle_text
from repro.workloads.stack import compile_stack
from tests.util import compile_source


@pytest.fixture(scope="module")
def stack_pdb():
    return PDB(analyze(compile_stack()))


class TestMangler:
    @pytest.mark.parametrize(
        "name",
        [
            "push",
            "Stack<int>::push",
            "operator<<",
            "operator[]",
            "~Stack",
            "vector<Stack<int> >::size",
            "f(const int &, double *)",
            "a_b__c",
            "ns::f",
        ],
    )
    def test_round_trip(self, name):
        assert demangle_hint(mangle_text(name)) == name

    def test_identifier_safe(self):
        m = mangle_text("Stack<int>::operator[](unsigned long) const")
        assert m.isidentifier()

    def test_distinct_names_distinct(self):
        assert mangle_text("f(int)") != mangle_text("f(double)")

    def test_underscore_escaped(self):
        # "_" must not collide with text that spells an escape sequence
        assert mangle_text("a_") != mangle_text("a_x5f")
        assert demangle_hint(mangle_text("a_")) == "a_"
        assert demangle_hint(mangle_text("a_x5f")) == "a_x5f"

    def test_routine_mangling_includes_signature(self, stack_pdb):
        pushes = [r for r in stack_pdb.getRoutineVec() if r.name() == "push"]
        isEmpties = [r for r in stack_pdb.getRoutineVec() if r.name() == "isEmpty"]
        assert mangle_routine(pushes[0]) != mangle_routine(isEmpties[0])

    def test_overloads_mangle_distinct(self):
        pdb = PDB(analyze(compile_source("void f(int);\nvoid f(double);\n")))
        fs = [r for r in pdb.getRoutineVec() if r.name() == "f"]
        assert mangle_routine(fs[0]) != mangle_routine(fs[1])


class TestGenerator:
    def test_classes_bound(self, stack_pdb):
        bs = generate_bindings(stack_pdb, skip_files=("/pdt/include/",))
        names = {c.python_name for c in bs.classes}
        assert "Stack_int" in names

    def test_skip_files(self, stack_pdb):
        bs = generate_bindings(stack_pdb, skip_files=("/pdt/include/",))
        assert not any("vector" in c.python_name for c in bs.classes)

    def test_private_members_excluded(self):
        pdb = PDB(
            analyze(
                compile_source(
                    "class C { public: void pub(); private: void priv(); };"
                )
            )
        )
        bs = generate_bindings(pdb)
        cb = next(c for c in bs.classes if c.python_name == "C")
        names = {m.python_name for m in cb.methods}
        assert "pub" in names and "priv" not in names

    def test_destructors_excluded(self, stack_pdb):
        bs = generate_bindings(stack_pdb)
        for cb in bs.classes:
            assert all("~" not in m.routine.name() for m in cb.methods)

    def test_operator_mapping(self):
        pdb = PDB(
            analyze(
                compile_source(
                    "class A { public: int operator[](int i); bool operator==(const A& o); };"
                )
            )
        )
        bs = generate_bindings(pdb)
        cb = next(c for c in bs.classes if c.python_name == "A")
        names = {m.python_name for m in cb.methods}
        assert "__getitem__" in names and "__eq__" in names

    def test_overload_suffixing(self):
        pdb = PDB(
            analyze(compile_source("class C { public: void f(int); void f(double); };"))
        )
        bs = generate_bindings(pdb)
        cb = next(c for c in bs.classes if c.python_name == "C")
        names = sorted(m.python_name for m in cb.methods)
        assert names == ["f", "f_2"]

    def test_wrapper_source_is_valid_python(self, stack_pdb):
        bs = generate_bindings(stack_pdb)
        compile(bs.wrapper_source, "<wrapper>", "exec")

    def test_bridging_source_registers_everything(self, stack_pdb):
        bs = generate_bindings(stack_pdb, skip_files=("/pdt/include/",))
        for rb in bs.all_routine_bindings():
            assert rb.mangled in bs.bridging_source
        assert "siloon_register_all" in bs.bridging_source

    def test_class_selection(self, stack_pdb):
        bs = generate_bindings(stack_pdb, class_names=["Stack<int>"])
        assert len(bs.classes) == 1
        assert not bs.functions


class TestPaperFeatureList:
    """Section 4.2's list of C++ complexities SILOON handles via PDT."""

    def test_templated_classes_and_functions(self, stack_pdb):
        bs = generate_bindings(stack_pdb)
        assert any("<" in c.cls.name() for c in bs.classes)

    def test_virtual_and_static_members(self):
        src = (
            "class C { public: virtual void v(); static int s(); };\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        bs = generate_bindings(pdb)
        cb = next(c for c in bs.classes if c.python_name == "C")
        statics = [m for m in cb.methods if m.routine.isStatic()]
        virtuals = [m for m in cb.methods if m.routine.isVirtual()]
        assert statics and virtuals
        assert "@staticmethod" in bs.wrapper_source

    def test_constructors(self, stack_pdb):
        bs = generate_bindings(stack_pdb, class_names=["Stack<int>"])
        assert bs.classes[0].constructors

    def test_overloaded_operators_and_functions(self):
        src = (
            "class A { public: int operator+(const A& o); };\n"
            "void f(int);\nvoid f(double);\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        bs = generate_bindings(pdb)
        assert any(m.python_name == "__add__" for c in bs.classes for m in c.methods)
        f_names = {fn.python_name for fn in bs.functions if fn.routine.name() == "f"}
        assert len(f_names) == 2

    def test_default_arguments(self):
        src = "class C { public: void f(int a, int b = 1); };"
        pdb = PDB(analyze(compile_source(src)))
        bs = generate_bindings(pdb)
        bridge = Bridge(pdb)
        bs.register_all(bridge)
        rb = bs.classes[0].methods[0]
        assert bridge.lookup(rb.mangled).required_params == 1

    def test_references_and_enums_and_typedefs(self):
        src = (
            "enum Mode { FAST, SLOW };\n"
            "typedef unsigned long size_type;\n"
            "class C { public: void setRef(const int& v); size_type size() const; };\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        bs = generate_bindings(pdb)
        cb = next(c for c in bs.classes if c.python_name == "C")
        assert {m.python_name for m in cb.methods} == {"setRef", "size"}

    def test_stl_containers(self, stack_pdb):
        bs = generate_bindings(stack_pdb)  # includes mini-STL classes
        assert any(c.cls.name() == "vector<int>" for c in bs.classes)


class TestBridge:
    def make(self, stack_pdb):
        bs = generate_bindings(stack_pdb, skip_files=("/pdt/include/",))
        bridge = Bridge(stack_pdb)
        bs.register_all(bridge)
        return bs, bridge

    def test_end_to_end_script_call(self, stack_pdb):
        bs, bridge = self.make(stack_pdb)
        mod = bs.make_module(bridge)
        s = mod["Stack_int"](16)
        assert isinstance(s._handle, ObjectHandle)
        s.push(1)
        assert s.isEmpty() is False  # synthesised bool default
        assert s.topAndPop() == 0  # synthesised int default
        counts = bridge.call_counts()
        assert sum(counts.values()) == 4

    def test_engine_time_accumulates(self, stack_pdb):
        bs, bridge = self.make(stack_pdb)
        mod = bs.make_module(bridge)
        s = mod["Stack_int"]()
        t0 = bridge.total_engine_time()
        s.push(1)
        assert bridge.total_engine_time() > t0

    def test_unknown_routine_raises(self, stack_pdb):
        _, bridge = self.make(stack_pdb)
        with pytest.raises(SiloonError, match="not registered"):
            bridge.call("siloon_nope")

    def test_too_many_args_raises(self, stack_pdb):
        bs, bridge = self.make(stack_pdb)
        mod = bs.make_module(bridge)
        s = mod["Stack_int"]()
        with pytest.raises(SiloonError, match="too many"):
            s.push(1, 2, 3)

    def test_handle_repr_names_class(self, stack_pdb):
        bs, bridge = self.make(stack_pdb)
        mod = bs.make_module(bridge)
        s = mod["Stack_int"]()
        assert "Stack<int>" in repr(s._handle)


class TestTemplateListExtension:
    """The paper's future-work extension: propose instantiations for
    uninstantiated templates."""

    def test_uninstantiated_template_proposed(self):
        src = (
            "template <class T> class Unused { public: T g(); };\n"
            "template <class T> class Used { public: T g() { return 0; } };\n"
            "Used<int> u;\n"
        )
        pdb = PDB(analyze(compile_source(src)))
        proposals = propose_instantiations(pdb)
        names = {te.name() for te, _ in proposals}
        assert "Unused" in names and "Used" not in names

    def test_directive_is_parseable(self):
        src = "template <class T> class Unused { public: T g() { return 0; } };\n"
        pdb = PDB(analyze(compile_source(src)))
        ((te, directive),) = propose_instantiations(pdb)
        assert directive.startswith("template class Unused<")
        # the generated explicit instantiation actually compiles
        tree = compile_source(src + directive + "\n")
        inst = [c for c in tree.all_classes if c.is_instantiation]
        assert inst and all(r.defined for r in inst[0].routines)
