"""Fault-tolerance tests: frontend error recovery, keep-going parallel
builds, hung/crashed workers, and cache self-healing.

Driven by the fault-injection harness in :mod:`tests.faults`; the
headline scenario is the 10-TU build with 2 broken TUs whose keep-going
output must be byte-identical to a build that never listed the broken
TUs."""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.buildcache import BuildCache
from repro.cpp import CppError, DiagnosticSink, Frontend, FrontendOptions, TooManyErrors
from repro.cpp.preprocessor import Preprocessor
from repro.cpp.source import SourceLocation, SourceManager
from repro.tools.pdbbuild import (
    BuildOptions,
    TUCompileError,
    build,
    main as pdbbuild_main,
)
from repro.workloads.synth import SynthSpec, generate

from tests import faults


@pytest.fixture()
def corpus10(tmp_path):
    """A 10-TU synthetic corpus on disk; returns (root, main paths)."""
    corpus = generate(SynthSpec(n_translation_units=10))
    root = tmp_path / "src"
    faults.write_corpus(root, corpus.files)
    mains = [str(root / m) for m in corpus.main_files]
    return root, mains


# -- diagnostics sink: cascade bound (satellite a) ----------------------


class TestCascadeBound:
    def test_soft_errors_hit_the_bound(self):
        sink = DiagnosticSink(fatal_errors=False, max_errors=5)
        for _ in range(4):
            sink.soft_error("bad")
        with pytest.raises(TooManyErrors):
            sink.soft_error("bad")
        assert sink.error_count == 5

    def test_hard_errors_hit_the_bound_before_escalating(self):
        sink = DiagnosticSink(fatal_errors=True, max_errors=1)
        with pytest.raises(TooManyErrors):
            sink.error("bad")

    def test_too_many_errors_is_a_cpperror(self):
        # recovery handlers catch CppError; TooManyErrors must pass
        # through them only via explicit re-raise guards
        assert issubclass(TooManyErrors, CppError)

    def test_compile_stops_at_bound_not_at_input_size(self):
        fe = Frontend(FrontendOptions(fatal_errors=False, max_errors=7))
        src = "".join(f"int broken{i}( {{ ;;;\n" for i in range(500))
        fe.manager.register("cascade.cpp", src)
        fe.compile("cascade.cpp")
        assert fe.last_error_overflow
        assert 7 <= fe.last_sink.error_count <= 9


# -- include-graph errors carry locations (satellite b) -----------------


class TestIncludeErrorLocations:
    def test_depth_limit_error_has_location(self):
        files = {f"h{i}.h": f'#include "h{i + 1}.h"\n' for i in range(210)}
        files["h210.h"] = ""
        mgr = SourceManager()
        mgr.register_many(files)
        main = mgr.register("main.cpp", '#include "h0.h"\n')
        pp = Preprocessor(mgr)
        with pytest.raises(CppError) as ei:
            pp.preprocess(main)
        assert "depth limit" in ei.value.message
        assert ei.value.location is not None
        assert ei.value.location.file.name.startswith("h")

    def test_circular_include_error_has_location(self):
        mgr = SourceManager()
        a = mgr.register("a.h", "")
        pp = Preprocessor(mgr)
        pp._include_stack.append(a)
        loc = SourceLocation(a, 3, 1)
        with pytest.raises(CppError) as ei:
            pp._process_file(a, loc)
        assert "circular include" in ei.value.message
        assert ei.value.location is loc

    def test_depth_limit_recovers_in_keep_going_mode(self):
        files = {f"h{i}.h": f'#include "h{i + 1}.h"\n' for i in range(210)}
        files["h210.h"] = ""
        files["deep.cpp"] = '#include "h0.h"\nint survivor() { return 1; }\n'
        fe = Frontend(FrontendOptions(fatal_errors=False))
        fe.register_files(files)
        tree = fe.compile("deep.cpp")
        assert fe.last_sink.error_count >= 1
        assert tree.find_routine("survivor") is not None


# -- frontend recovery contributes partial IL + ferr records ------------


class TestPartialTU:
    def test_recovered_tu_contributes_other_entities(self, tmp_path):
        p = tmp_path / "recov.cpp"
        p.write_text(faults.PARTIAL_TU)
        merged, stats = build([str(p)], BuildOptions(keep_going_errors=25))
        names = [r.name() for r in merged.getRoutineVec()]
        assert "alpha" in names and "beta" in names
        assert merged.findClass("Keep") is not None
        ferrs = merged.getErrorVec()
        assert len(ferrs) == 1
        assert ferrs[0].name().endswith("recov.cpp")
        assert "error" in ferrs[0].render()
        assert stats.tus[0].errors == 1 and stats.errors == 1

    def test_ferr_records_survive_merge_and_cache(self, tmp_path):
        p = tmp_path / "recov.cpp"
        p.write_text(faults.PARTIAL_TU)
        q = tmp_path / "clean.cpp"
        q.write_text("int gamma() { return 3; }\n")
        cache = str(tmp_path / "cache")
        opts = BuildOptions(keep_going_errors=25)
        m1, s1 = build([str(p), str(q)], opts, cache_dir=cache)
        m2, s2 = build([str(p), str(q)], opts, cache_dir=cache)
        assert s2.cache_hits == 2
        assert m1.to_text() == m2.to_text()
        assert len(m2.getErrorVec()) == 1
        assert s2.tus[0].errors == 1  # replayed from the cache entry

    def test_truncated_source_recovers(self, tmp_path):
        p = tmp_path / "trunc.cpp"
        p.write_text("int whole() { return 1; }\nint casualty() { retur")
        merged, stats = build([str(p)], BuildOptions(keep_going_errors=25))
        names = [r.name() for r in merged.getRoutineVec()]
        assert "whole" in names
        assert merged.getErrorVec()

    def test_hopeless_tu_is_quarantined_not_merged(self, tmp_path):
        p = tmp_path / "hopeless.cpp"
        p.write_text("".join(f"int broken{i}( {{ ;;;\n" for i in range(100)))
        _, stats = build(
            [str(p)], BuildOptions(keep_going_errors=5), keep_going=True
        )
        assert len(stats.failures) == 1
        assert stats.failures[0].phase == "frontend"
        assert "too many errors" in stats.failures[0].error


# -- keep-going builds (the acceptance scenario) ------------------------


class TestKeepGoing:
    def test_two_broken_tus_quarantined_merge_byte_identical(
        self, corpus10, tmp_path, capsys
    ):
        root, mains = corpus10
        faults.break_tu(Path(mains[2]))
        faults.truncate_file(Path(mains[7]))
        stats_file = tmp_path / "stats.json"
        out_all = tmp_path / "all.pdb"
        rc = pdbbuild_main(
            mains
            + ["-j", "4", "-o", str(out_all), "--no-cache",
               "--stats-json", str(stats_file), "-k"]
        )
        assert rc == 1
        stats = json.loads(stats_file.read_text())
        failed = {f["source"] for f in stats["failures"]}
        assert failed == {mains[2], mains[7]}
        for f in stats["failures"]:
            assert f["phase"] == "frontend"
            assert f["diagnostics"], "failure must carry rendered diagnostics"
            assert "error:" in f["diagnostics"][0]
        err = capsys.readouterr().err
        assert "2 of 10 TU(s) failed" in err

        good = [m for i, m in enumerate(mains) if i not in (2, 7)]
        out_good = tmp_path / "good.pdb"
        assert pdbbuild_main(good + ["-o", str(out_good), "--no-cache", "-j", "4"]) == 0
        assert out_all.read_bytes() == out_good.read_bytes()

    def test_without_keep_going_first_failure_raises(self, corpus10):
        _, mains = corpus10
        faults.break_tu(Path(mains[2]))
        with pytest.raises(TUCompileError) as ei:
            build(mains, BuildOptions(), jobs=4)
        assert ei.value.source == mains[2]
        assert ei.value.diagnostics

    def test_failed_tus_are_not_cached(self, corpus10, tmp_path):
        _, mains = corpus10
        faults.break_tu(Path(mains[2]))
        cache = str(tmp_path / "cache")
        _, s1 = build(mains, BuildOptions(), jobs=2, cache_dir=cache, keep_going=True)
        assert len(s1.failures) == 1
        # fix the TU: it must be a miss (recompiled), not a stale hit
        Path(mains[2]).write_text("int repaired() { return 0; }\n")
        _, s2 = build(mains, BuildOptions(), jobs=2, cache_dir=cache, keep_going=True)
        assert s2.failures == []
        assert s2.cache_hits == 9 and s2.cache_misses == 1


# -- hung and crashed workers -------------------------------------------


class TestWorkerFaults:
    def test_hung_worker_times_out_rest_of_build_survives(self, corpus10):
        _, mains = corpus10
        victim = Path(mains[1]).name
        with faults.slow_tu(victim, 6.0):
            _, stats = build(
                mains, BuildOptions(), jobs=4, keep_going=True, timeout=1.5
            )
        assert [f.phase for f in stats.failures] == ["timeout"]
        assert stats.failures[0].source == mains[1]
        assert len(stats.tus) == 9

    def test_crash_once_recovers_via_retry(self, corpus10, tmp_path):
        _, mains = corpus10
        marker = tmp_path / "crash-once"
        with faults.crashing_tu(Path(mains[3]).name, once_marker=marker):
            _, stats = build(mains, BuildOptions(), jobs=4, keep_going=True)
        assert stats.failures == []
        assert len(stats.tus) == 10
        assert marker.exists(), "the injected crash never fired"

    def test_deterministic_crasher_fails_alone(self, corpus10):
        _, mains = corpus10
        with faults.crashing_tu(Path(mains[3]).name):
            _, stats = build(mains, BuildOptions(), jobs=4, keep_going=True)
        assert [(f.phase, f.retries) for f in stats.failures] == [("worker", 1)]
        assert stats.failures[0].source == mains[3]
        # every innocent bystander of the poisoned pool was retried home
        assert len(stats.tus) == 9


# -- cache self-healing (satellite c) -----------------------------------


class TestCacheSelfHealing:
    def _seed(self, tmp_path, n=2):
        corpus = generate(SynthSpec(n_translation_units=n))
        root = tmp_path / "src"
        faults.write_corpus(root, corpus.files)
        mains = [str(root / m) for m in corpus.main_files]
        cache = tmp_path / "cache"
        ref, _ = build(mains, BuildOptions(), cache_dir=str(cache))
        return mains, cache, ref

    def test_flipped_byte_evicts_and_recompiles(self, tmp_path):
        mains, cache, ref = self._seed(tmp_path)
        faults.corrupt_cache_object(cache, n=1)
        merged, stats = build(mains, BuildOptions(), cache_dir=str(cache))
        assert stats.cache_evictions == 1
        assert stats.cache_misses == 1 and stats.cache_hits == 1
        assert merged.to_text() == ref.to_text()
        # healed: the rerun is all hits again
        _, s3 = build(mains, BuildOptions(), cache_dir=str(cache))
        assert s3.cache_hits == 2 and s3.cache_evictions == 0

    def test_truncated_object_evicts_and_recompiles(self, tmp_path):
        mains, cache, ref = self._seed(tmp_path)
        faults.truncate_cache_object(cache, n=1)
        merged, stats = build(mains, BuildOptions(), cache_dir=str(cache))
        assert stats.cache_evictions == 1
        assert merged.to_text() == ref.to_text()

    def test_corrupt_manifest_evicts_and_recompiles(self, tmp_path):
        mains, cache, ref = self._seed(tmp_path)
        faults.corrupt_cache_manifest(cache, n=1)
        merged, stats = build(mains, BuildOptions(), cache_dir=str(cache))
        assert stats.cache_evictions == 1
        assert merged.to_text() == ref.to_text()

    def test_missing_object_evicts_manifest_too(self, tmp_path):
        mains, cache, _ = self._seed(tmp_path, n=1)
        for p in (cache / "objects").glob("*.pdb"):
            p.unlink()
        bc = BuildCache(str(cache))
        entry = bc.lookup(
            BuildOptions().fingerprint(), mains[0], lambda n: Path(n).read_text()
        )
        assert entry is None
        assert bc.stats.evictions == 1 and bc.stats.misses == 1
        # the stale manifest was dropped with it
        assert not list((cache / "manifests").glob("*.json"))

    def test_permission_denied_is_a_counted_miss(self, tmp_path, monkeypatch):
        # running as root makes chmod-based denial a no-op, so inject
        # the PermissionError at the read itself
        mains, cache, _ = self._seed(tmp_path, n=1)
        real = Path.read_text

        def denied(self, *a, **kw):
            if self.suffix == ".pdb" and "objects" in str(self):
                raise PermissionError(13, "Permission denied", str(self))
            return real(self, *a, **kw)

        monkeypatch.setattr(Path, "read_text", denied)
        bc = BuildCache(str(cache))
        entry = bc.lookup(
            BuildOptions().fingerprint(), mains[0], lambda n: Path(n).read_text()
        )
        assert entry is None
        assert bc.stats.evictions == 1 and bc.stats.misses == 1

    def test_absent_entry_is_a_plain_miss_not_an_eviction(self, tmp_path):
        bc = BuildCache(str(tmp_path / "cache"))
        entry = bc.lookup("fp", "never-built.cpp", lambda n: None)
        assert entry is None
        assert bc.stats.misses == 1 and bc.stats.evictions == 0

    def test_old_meta_without_sha_is_still_served(self, tmp_path):
        # pre-/2 entries lack the sha256 field; they must not be evicted
        mains, cache, ref = self._seed(tmp_path, n=1)
        for p in (cache / "objects").glob("*.json"):
            meta = json.loads(p.read_text())
            meta.pop("sha256")
            p.write_text(json.dumps(meta))
        _, stats = build(mains, BuildOptions(), cache_dir=str(cache))
        assert stats.cache_hits == 1 and stats.cache_evictions == 0


# -- fault hooks are inert by default -----------------------------------


class TestFaultHooksInert:
    def test_no_env_no_effect(self, corpus10):
        _, mains = corpus10
        assert "PDBBUILD_FAULT_SLEEP" not in os.environ
        assert "PDBBUILD_FAULT_EXIT" not in os.environ
        _, stats = build(mains[:2], BuildOptions(), jobs=2)
        assert stats.failures == [] and len(stats.tus) == 2
