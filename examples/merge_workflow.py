#!/usr/bin/env python
"""Multi-TU workflow: separate compilations, pdbmerge, pdbhtml.

Compiles three translation units that share a templated container
header, merges their PDBs (eliminating duplicate template
instantiations, paper Table 2), and generates the HTML documentation
tree for the merged database.

Run:  python examples/merge_workflow.py [output-dir]
"""

import sys
import tempfile

from repro import Frontend, FrontendOptions
from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.tools.pdbhtml import generate_html
from repro.tools.pdbmerge import merge_pdbs

RING_H = """\
#ifndef RING_H
#define RING_H

template <class T>
class Ring {
public:
    Ring() : head_(0), size_(0) { }
    void put(const T& x) { size_ = size_ + 1; }
    T take() { size_ = size_ - 1; return 0; }
    int size() const { return size_; }
private:
    int head_;
    int size_;
};

#endif
"""

TUS = {
    "producer.cpp": (
        '#include "ring.h"\n'
        "int produce() { Ring<int> r; r.put(1); r.put(2); return r.size(); }\n"
    ),
    "consumer.cpp": (
        '#include "ring.h"\n'
        "int consume() { Ring<int> r; return r.take(); }\n"
    ),
    "metrics.cpp": (
        '#include "ring.h"\n'
        "double observe() { Ring<double> r; r.put(1.5); return r.take(); }\n"
    ),
}


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="pdbhtml-")

    fe = Frontend(FrontendOptions())
    fe.register_files({"ring.h": RING_H, **TUS})

    pdbs = []
    for tu in TUS:
        pdb = PDB(analyze(fe.compile(tu)))
        print(f"compiled {tu}: {len(pdb.items())} PDB items")
        pdbs.append(pdb)

    merged, stats = merge_pdbs(pdbs)
    for tu, st in zip(list(TUS)[1:], stats):
        print(
            f"merged {tu}: +{st.items_added} items, "
            f"{st.duplicates_eliminated} duplicates eliminated "
            f"({st.duplicate_instantiations} template instantiations)"
        )
    print(f"merged database: {len(merged.items())} items")

    rings = [c.fullName() for c in merged.getClassVec() if c.name().startswith("Ring")]
    print(f"Ring instantiations after merge: {sorted(set(rings))} "
          f"({len(rings)} class items — duplicates collapsed)")

    pages = generate_html(merged, out_dir)
    print(f"\nwrote {len(pages)} HTML pages to {out_dir}/ (open index.html)")


if __name__ == "__main__":
    main()
