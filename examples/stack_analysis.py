#!/usr/bin/env python
"""The paper's Stack walkthrough (Figures 1, 3, and 5).

Compiles the templated Stack corpus of paper Figure 1 with used-mode
instantiation, prints the PDB excerpts Figure 3 shows, and renders the
pdbtree displays (inclusion tree + Figure 5's call graph).

Run:  python examples/stack_analysis.py
"""

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.tools.pdbtree import render_call_tree, render_inclusion_tree
from repro.workloads.stack import compile_stack


def main() -> None:
    tree = compile_stack()
    pdb = PDB(analyze(tree))

    print("=== templates (te items) ===")
    for te in pdb.getTemplateVec():
        loc = te.location()
        print(f"  te#{te.id():<3} {te.fullName():<12} kind={te.kind():<8} at {loc}")

    print("\n=== Stack<int>: the instantiated class (Figure 3's cl#8) ===")
    cls = pdb.findClass("Stack<int>")
    origin = cls.template()
    print(f"  instantiated from template: {origin.fullName()} (te#{origin.id()})")
    for r in cls.memberFunctions():
        body = "instantiated" if r.bodyBegin().known else "declared only"
        print(f"  {r.name():<12} {body:<15} rloc {r.location()}")
    for m in cls.dataMembers():
        print(f"  member {m.name():<12} {m.access():<5} {m.kind():<5} "
              f"type={m.type().name() if m.type() else '?'}")

    print("\n=== used-mode economy ===")
    declared = len(cls.memberFunctions())
    instantiated = sum(1 for r in cls.memberFunctions() if r.bodyBegin().known)
    print(f"  {declared} members declared, {instantiated} bodies instantiated "
          f"(top/pop/makeEmpty stay uninstantiated — nothing calls them)")

    print("\n=== file inclusion tree ===")
    print(render_inclusion_tree(pdb))

    print("\n=== static call graph (pdbtree, Figure 5) ===")
    print(render_call_tree(pdb, "main"))


if __name__ == "__main__":
    main()
