#!/usr/bin/env python
"""The SILOON workflow of paper Section 4.2 / Figure 8.

PDT parses a templated C++ numeric library (no interface definition
language needed), SILOON generates Python wrapper functions and
C++-side bridging code, and a user "script" drives the library through
the bridge into the computational engine.

Run:  python examples/scripting_bindings.py
"""

from repro import Frontend, FrontendOptions
from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.siloon.bridge import Bridge
from repro.siloon.generator import generate_bindings, propose_instantiations


def compile_source(text: str):
    fe = Frontend(FrontendOptions())
    fe.register_files({"library.cpp": text})
    return fe.compile("library.cpp")

LIBRARY = """\
template <class T>
class Histogram {
public:
    Histogram() : bins_(0), count_(0) { }
    explicit Histogram(int bins) : bins_(bins), count_(0) { }
    ~Histogram() { }

    void add(const T& sample) { count_ = count_ + 1; }
    int count() const { return count_; }
    int bins() const { return bins_; }
    T& operator[](int i) { return data_[i]; }

private:
    T* data_;
    int bins_;
    int count_;
};

template <class T>
T midpoint(const T& a, const T& b) { return (a + b) / 2; }

// the user explicitly instantiates what scripts should see (4.2)
template class Histogram<double>;

int main() {
    Histogram<double> h(10);
    h.add(1.5);
    midpoint(1.0, 3.0);
    return h.count();
}
"""


def main() -> None:
    pdb = PDB(analyze(compile_source(LIBRARY)))

    # 1. Generate the bindings.
    bindings = generate_bindings(pdb)
    print("=== generated Python wrapper (excerpt) ===")
    print("\n".join(bindings.wrapper_source.splitlines()[:24]))
    print("\n=== generated bridging code (excerpt) ===")
    print("\n".join(bindings.bridging_source.splitlines()[:10]))

    # 2. Register with the routine management structures.
    bridge = Bridge(pdb)
    n = bindings.register_all(bridge)
    print(f"\nregistered {n} routines with the bridge")

    # 3. The user's "script".
    module = bindings.make_module(bridge)
    Histogram = module["Histogram_double"]
    h = Histogram(16)
    h.add(2.5)
    h.add(3.5)
    print(f"\nscript ran: h = {h._handle!r}, h.count() -> {h.count()}")
    print(f"midpoint(1.0, 3.0) -> {module['midpoint'](1.0, 3.0)}")
    print(f"engine time consumed: {bridge.total_engine_time():.0f} cycles")
    print("call counts:")
    for mangled, count in bridge.call_counts().items():
        print(f"  {bridge.lookup(mangled).full_name:<28} x{count}")

    # 4. The paper's future-work extension: the template list.
    extra = LIBRARY + "template <class T> class Sampler { public: T draw() { return 0; } };\n"
    pdb2 = PDB(analyze(compile_source(extra)))
    print("\n=== uninstantiated templates (proposed instantiations) ===")
    for te, directive in propose_instantiations(pdb2):
        print(f"  {te.fullName():<12} -> {directive}")


if __name__ == "__main__":
    main()
