#!/usr/bin/env python
"""Quickstart: compile C++ source to a PDB and navigate it with DUCTAPE.

Run:  python examples/quickstart.py
"""

from repro import PDB, Frontend, FrontendOptions, analyze

SOURCE = """\
#include "shapes.h"

int main() {
    Circle c(2.0);
    Square s(3.0);
    Shape* shapes[2];
    shapes[0] = &c;
    shapes[1] = &s;
    double total = c.area() + s.area();
    report(total);
    return 0;
}
"""

SHAPES_H = """\
#ifndef SHAPES_H
#define SHAPES_H

class Shape {
public:
    virtual ~Shape() { }
    virtual double area() const = 0;
};

class Circle : public Shape {
public:
    explicit Circle(double r) : radius_(r) { }
    double area() const { return 3.14159 * radius_ * radius_; }
private:
    double radius_;
};

class Square : public Shape {
public:
    explicit Square(double side) : side_(side) { }
    double area() const { return side_ * side_; }
private:
    double side_;
};

void report(double value);

#endif
"""


def main() -> None:
    # 1. Compile: the front end produces the IL, the analyzer the PDB.
    frontend = Frontend(FrontendOptions())
    frontend.register_files({"main.cpp": SOURCE, "shapes.h": SHAPES_H})
    tree = frontend.compile("main.cpp")
    pdb = PDB(analyze(tree))

    # 2. The compact PDB format (paper Figure 3's format).
    print("=== PDB text (first 25 lines) ===")
    print("\n".join(pdb.to_text().splitlines()[:25]))

    # 3. Navigate with DUCTAPE.
    print("\n=== classes ===")
    for cls in pdb.getClassVec():
        bases = ", ".join(b.name() for _, _, b in cls.baseClasses()) or "-"
        print(f"  {cls.fullName():<10} kind={cls.kind():<7} bases: {bases}")

    print("\n=== main's static calls ===")
    main_r = pdb.findRoutine("main")
    for call in main_r.callees():
        tag = " (VIRTUAL)" if call.isVirtual() else ""
        print(f"  {call.call().fullName()}{tag}  at {call.location()}")

    print("\n=== class hierarchy ===")
    print(pdb.getClassHierarchy().render())


if __name__ == "__main__":
    main()
