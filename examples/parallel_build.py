#!/usr/bin/env python
"""Parallel, incrementally-cached multi-TU build with pdbbuild.

Generates a synthetic multi-TU corpus, builds it three ways — serial,
parallel (-j), and a warm-cache rerun — and shows the stats report the
driver emits.  The warm rerun recompiles nothing: every TU is served
from the content-hash cache.

Run:  python examples/parallel_build.py
"""

import os
import tempfile
import time

from repro.tools.pdbbuild import build
from repro.workloads.synth import SynthSpec, generate


def main() -> None:
    spec = SynthSpec(
        n_plain_classes=4,
        n_templates=3,
        instantiations_per_template=3,
        n_translation_units=5,
    )
    corpus = generate(spec)
    jobs = max(2, min(4, os.cpu_count() or 2))
    print(f"corpus: {len(corpus.main_files)} TUs, {corpus.total_lines} lines")

    with tempfile.TemporaryDirectory() as cache_dir:
        t0 = time.perf_counter()
        serial, _ = build(corpus.main_files, files=corpus.files)
        t_serial = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel, cold = build(
            corpus.main_files, files=corpus.files, jobs=jobs, cache_dir=cache_dir
        )
        t_parallel = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm, warm_stats = build(
            corpus.main_files, files=corpus.files, jobs=jobs, cache_dir=cache_dir
        )
        t_warm = time.perf_counter() - t0

    assert serial.to_text() == parallel.to_text() == warm.to_text()
    print(f"serial    : {t_serial:.3f}s")
    print(f"parallel  : {t_parallel:.3f}s  (-j {jobs}, cold cache: "
          f"{cold.cache_misses} misses)")
    print(f"warm cache: {t_warm:.3f}s  ({warm_stats.cache_hits} hits, "
          f"{warm_stats.cache_misses} misses — zero recompiles)")
    print(f"merged database: {warm_stats.output_items} items, "
          f"{warm_stats.merge.duplicates_eliminated} duplicates eliminated "
          f"({warm_stats.merge.duplicate_instantiations} template instantiations)")

    report = warm_stats.to_dict()
    print("\nper-TU rows from the --stats-json report:")
    for tu in report["tus"]:
        tag = "hit " if tu["cache_hit"] else "miss"
        print(f"  [{tag}] {tu['source']}: {tu['items']} items")


if __name__ == "__main__":
    main()
