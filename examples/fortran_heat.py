#!/usr/bin/env python
"""The Section 6 extension: Fortran 90 through the same pipeline.

Compiles a Fortran 90 heat-diffusion solver with the Fortran front end,
runs the *unchanged* IL Analyzer / DUCTAPE / pdbtree on it, inserts TAU
entry/exit instrumentation, and merges the Fortran PDB with a C++ one
into a single multi-language program database.

Run:  python examples/fortran_heat.py
"""

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.tau.fortran_instrumentor import instrument_fortran_sources
from repro.tools.pdbtree import render_call_tree
from repro.workloads.fortran90 import compile_heat, fortran_files
from repro.workloads.stack import compile_stack


def main() -> None:
    tree = compile_heat()
    pdb = PDB(analyze(tree))

    print("=== Section 6 construct mapping ===")
    for ns in pdb.getNamespaceVec():
        print(f"  module {ns.name():<10} -> namespace na#{ns.id()}")
    for cls in pdb.getClassVec():
        comps = ", ".join(m.name() for m in cls.dataMembers())
        print(f"  type {cls.name():<12} -> class cl#{cls.id()} ({comps})")
    for r in pdb.getRoutineVec():
        alias = r.raw.get("ralias")
        tag = f"  alias: {alias.words[0]}" if alias else ""
        print(f"  {r.fullName():<30} -> ro#{r.id()}{tag}")

    print("\n=== static call graph (unchanged pdbtree) ===")
    print(render_call_tree(pdb, "heat_app"))

    print("\n=== TAU Fortran instrumentation (entry/exit points) ===")
    results = instrument_fortran_sources(pdb, fortran_files())
    excerpt = results["heat_mod.f90"].text.splitlines()
    for i, line in enumerate(excerpt):
        if "TAU_PROFILE" in line or "subroutine heat_step" in line:
            print(f"  {i + 1:>3}: {line}")

    print("\n=== merged C++ + Fortran program database ===")
    merged = PDB(analyze(compile_stack()))
    stats = merged.merge(PDB.from_text(pdb.to_text()))
    langs = {}
    for r in merged.getRoutineVec():
        langs[r.linkage()] = langs.get(r.linkage(), 0) + 1
    print(f"  merged: +{stats.items_added} items; routines by language: {langs}")


if __name__ == "__main__":
    main()
