#!/usr/bin/env python
"""The Section 6 extension, part two: Java through the same pipeline.

Compiles a Java N-body simulation with the Java front end, shows the
construct mapping (packages, interfaces, virtual dispatch), runs the
unchanged pdbtree on it, and simulates a profiled run.

Run:  python examples/java_nbody.py
"""

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.tau.machine import CostModel
from repro.tau.profile import format_profile
from repro.tau.simulate import ExecutionSimulator, WorkloadSpec
from repro.tools.pdbtree import render_call_tree
from repro.workloads.javasim import compile_nbody


def main() -> None:
    tree = compile_nbody()
    pdb = PDB(analyze(tree))

    print("=== Java construct mapping ===")
    for ns in pdb.getNamespaceVec():
        print(f"  package {ns.name():<6} -> namespace na#{ns.id()}")
    for cls in pdb.getClassVec():
        kind = "interface" if all(
            m.isPureVirtual() for m in cls.memberFunctions()
        ) and cls.memberFunctions() else "class"
        bases = ", ".join(b.name() for _, _, b in cls.baseClasses()) or "-"
        print(f"  {kind:<9} {cls.fullName():<16} bases: {bases}")

    print("\n=== static call graph (unchanged pdbtree; note the VIRTUAL")
    print("    tags on interface dispatch) ===")
    print(render_call_tree(pdb, "main"))

    print("\n=== simulated profile of 100 timesteps ===")
    cm = CostModel(default_cycles=5.0).add("kick|drift", 40.0).add(
        r"Vector3::(add|scale|dot)", 12.0
    )
    spec = WorkloadSpec(
        entry="sim::Simulation::main",
        cost=cm,
        pair_counts={("sim::Simulation::main", "sim::Simulation::step"): 100},
    )
    profiler = ExecutionSimulator(pdb, spec).run()
    print(format_profile(profiler, node=0, top=10))


if __name__ == "__main__":
    main()
