#!/usr/bin/env python
"""The TAU workflow of paper Section 4.1 / Figure 7.

Instruments the mini-POOMA Krylov solver through the PDT pipeline,
"runs" a preconditioned CG solve on the execution simulator across four
nodes, and prints the TAU profile displays plus a trace excerpt.

Run:  python examples/krylov_profiling.py
"""

from repro.analyzer import analyze
from repro.ductape.pdb import PDB
from repro.tau.instrumentor import instrument_sources
from repro.tau.machine import CostModel, linear_skew
from repro.tau.profile import format_mean_profile, format_profile
from repro.tau.selector import select_instrumentation
from repro.tau.simulate import ExecutionSimulator, TauNaming, WorkloadSpec
from repro.tau.tracing import TraceBuffer, format_trace
from repro.workloads.pooma import KRYLOV_H, compile_pooma, pooma_files

GRID, ITERS, NODES = 32, 25, 4
N = GRID * GRID
CG_SOLVE = (
    "pooma::CGSolver<double, pooma::StencilMatrix<double>, "
    "pooma::DiagonalPreconditioner<double>>::solve"
)


def cost_model() -> CostModel:
    cm = CostModel(default_cycles=5.0, node_skew=linear_skew(NODES, 0.25))
    cm.add(r"StencilMatrix<double>::apply", 10.0 * N)
    cm.add(r"DiagonalPreconditioner<double>::apply", 1.0 * N)
    cm.add(r"pooma::(dot|axpy|xpay)", 2.0 * N)
    cm.add(r"pooma::copy", 1.0 * N)
    cm.add(r"Vector<double>::(Vector|~Vector|fill)", 1.0 * N)
    return cm


def workload() -> WorkloadSpec:
    lines = KRYLOV_H.splitlines()
    start = next(i for i, l in enumerate(lines, 1) if "for ( iterations_" in l)
    end = next(i for i, l in enumerate(lines, 1) if i > start and "return iterations_" in l)
    sites = {(CG_SOLVE, "Krylov.h", ln): ITERS for ln in range(start + 1, end)}
    return WorkloadSpec(
        entry="main",
        nodes=NODES,
        cost=cost_model(),
        site_counts=sites,
        pair_counts={("main", "run_bicgstab"): 0, ("main", "run_expressions"): 0},
    )


def main() -> None:
    tree = compile_pooma()
    pdb = PDB(analyze(tree))

    # 1. Automatic instrumentation (what tau-instr does).
    points = select_instrumentation(pdb)
    results = instrument_sources(pdb, dict(pooma_files()))
    inserted = sum(len(r.insertions) for r in results.values())
    ct_points = sum(1 for p in points if p.needs_ct)
    print(f"instrumented {inserted} routine bodies "
          f"({ct_points} with CT(*this) run-time type names)\n")
    print("sample of rewritten Krylov.h:")
    for line in results["Krylov.h"].text.splitlines():
        if "TAU_PROFILE" in line and "solve" in line:
            print("   ", line.strip()[:100])
    print()

    # 2. "Run" the instrumented program.
    sim = ExecutionSimulator(pdb, workload(), namer=TauNaming(points).timer_for)
    profiler = sim.run()

    # 3. The Figure 7 displays.
    print(format_mean_profile(profiler, top=10))
    print()
    print(format_profile(profiler, node=0, top=10))

    # 4. A trace excerpt (single node, few iterations, traced engine).
    small = workload()
    small.nodes = 1
    for key in small.site_counts:
        small.site_counts[key] = 2
    tb = TraceBuffer()
    ExecutionSimulator(pdb, small, namer=TauNaming(points).timer_for).run_traced(tb)
    print("\n=== trace excerpt (merged, first 15 events) ===")
    print(format_trace(tb, limit=15))


if __name__ == "__main__":
    main()
