"""On-disk content-hash cache for per-TU program databases.

Layout under the cache root::

    manifests/<mkey>.json   dependency list of one (options, main-TU) pair
    objects/<ckey>.pdb      cached per-TU PDB text
    objects/<ckey>.json     metadata (item count, warning count, deps)

``mkey`` identifies *what is being built* — a hash of the options
fingerprint and the main file name.  The manifest records which files
the preprocessor consumed the last time this TU was compiled.  ``ckey``
identifies *the exact inputs* — a hash over the fingerprint, the main
file name, and the (name, content-hash) pair of every consumed file, in
consumption order.

A lookup reads the manifest, hashes the *current* content of every
recorded dependency, and probes ``objects/`` with the resulting key.
This is the classic ccache/depfile argument: if the include structure
changed (a header gained or lost an ``#include``), some already-recorded
file's text must have changed, so the probe misses and the manifest is
rewritten on store.  Changing the instantiation mode, the ``-I`` list,
predefined macros, or the analyzer pass selection changes the
fingerprint, which changes both keys — a guaranteed miss.

Writes go through a temp file + ``os.replace`` so concurrent builds
sharing one cache directory never observe a torn entry.

The cache is additionally *self-healing*: entry metadata records a
sha256 of the stored PDB text, lookups verify it, and any entry that is
corrupt, truncated, or unreadable (other than plainly absent) is evicted
on the spot and recompiled — counted in :attr:`CacheStats.evictions`.  A
damaged cache therefore costs one rebuild, never a wrong or failed
build.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional


def content_hash(text: str) -> str:
    """Content hash of one source file's text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class CacheEntry:
    """One cached per-TU compilation.

    ``errors`` holds the rendered diagnostics of a TU that compiled in
    error-recovery mode; replaying the entry reproduces the build output
    a fresh compile would have printed."""

    pdb_text: str
    items: int = 0
    warnings: int = 0
    deps: list[tuple[str, str]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one build.

    ``evictions`` counts entries dropped by the self-healing checks:
    corrupt manifests, missing or truncated objects, hash mismatches,
    unreadable files."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0


class BuildCache:
    """Content-addressed store of per-TU PDBs (see module docstring)."""

    def __init__(self, root: str):
        self.root = Path(root)
        self.manifests = self.root / "manifests"
        self.objects = self.root / "objects"
        self.manifests.mkdir(parents=True, exist_ok=True)
        self.objects.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    # -- keys ---------------------------------------------------------

    @staticmethod
    def manifest_key(fingerprint: str, main: str) -> str:
        return _digest("manifest", fingerprint, main)

    @staticmethod
    def object_key(
        fingerprint: str, main: str, dep_hashes: list[tuple[str, str]]
    ) -> str:
        parts = ["object", fingerprint, main]
        for name, h in dep_hashes:
            parts.append(name)
            parts.append(h)
        return _digest(*parts)

    # -- lookup -------------------------------------------------------

    def lookup(
        self,
        fingerprint: str,
        main: str,
        read_content: Callable[[str], Optional[str]],
    ) -> Optional[CacheEntry]:
        """Probe the cache for ``main`` compiled under ``fingerprint``.

        ``read_content`` maps a dependency name to its *current* text
        (or None if it no longer resolves).  Returns a :class:`CacheEntry`
        on a hit, None on a miss; counts either way in :attr:`stats`.
        """
        entry = self._lookup(fingerprint, main, read_content)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def _lookup(
        self,
        fingerprint: str,
        main: str,
        read_content: Callable[[str], Optional[str]],
    ) -> Optional[CacheEntry]:
        mpath = self.manifests / (self.manifest_key(fingerprint, main) + ".json")
        try:
            manifest = json.loads(mpath.read_text())
        except FileNotFoundError:
            return None  # never built: a plain miss, nothing to heal
        except (OSError, ValueError):
            # unreadable or corrupt manifest: evict so the re-store
            # rewrites it from scratch instead of tripping forever
            self._evict(mpath)
            return None
        if not isinstance(manifest, dict) or not isinstance(manifest.get("deps"), list):
            self._evict(mpath)
            return None
        dep_hashes: list[tuple[str, str]] = []
        for name in manifest["deps"]:
            text = read_content(name)
            if text is None:
                return None
            dep_hashes.append((name, content_hash(text)))
        ckey = self.object_key(fingerprint, main, dep_hashes)
        opath = self.objects / (ckey + ".pdb")
        meta_path = self.objects / (ckey + ".json")
        try:
            pdb_text = opath.read_text()
            meta = json.loads(meta_path.read_text())
        except FileNotFoundError:
            # the manifest promised this object; a half-deleted entry is
            # damage, not a routine miss
            self._evict(mpath, opath, meta_path)
            return None
        except (OSError, ValueError):
            self._evict(opath, meta_path)
            return None
        if not isinstance(meta, dict):
            self._evict(opath, meta_path)
            return None
        expected = meta.get("sha256")
        if expected is not None and content_hash(pdb_text) != expected:
            # truncated write or bit flip: drop the entry and recompile
            self._evict(opath, meta_path)
            return None
        return CacheEntry(
            pdb_text=pdb_text,
            items=int(meta.get("items", 0)),
            warnings=int(meta.get("warnings", 0)),
            deps=dep_hashes,
            errors=[str(e) for e in meta.get("errors", [])],
        )

    # -- store --------------------------------------------------------

    def store(
        self,
        fingerprint: str,
        main: str,
        dep_hashes: list[tuple[str, str]],
        pdb_text: str,
        items: int = 0,
        warnings: int = 0,
        errors: Optional[list[str]] = None,
    ) -> str:
        """Record a finished compilation; returns the object key."""
        mpath = self.manifests / (self.manifest_key(fingerprint, main) + ".json")
        manifest = {"main": main, "deps": [name for name, _ in dep_hashes]}
        _atomic_write(mpath, json.dumps(manifest, indent=1))
        ckey = self.object_key(fingerprint, main, dep_hashes)
        meta = {
            "main": main,
            "items": items,
            "warnings": warnings,
            "deps": dep_hashes,
            "sha256": content_hash(pdb_text),
            "errors": errors or [],
        }
        _atomic_write(self.objects / (ckey + ".pdb"), pdb_text)
        _atomic_write(self.objects / (ckey + ".json"), json.dumps(meta, indent=1))
        return ckey

    # -- self-healing -------------------------------------------------

    def _evict(self, *paths: Path) -> None:
        """Remove the files of one damaged entry; count a single eviction.

        Best-effort: an entry we cannot unlink (e.g. permissions) still
        counts — the lookup already treats it as a miss, so the build
        proceeds by recompiling either way."""
        for p in paths:
            try:
                p.unlink()
            except OSError:
                pass
        self.stats.evictions += 1

    # -- maintenance --------------------------------------------------

    def entry_count(self) -> int:
        """Number of cached per-TU PDBs."""
        return sum(1 for _ in self.objects.glob("*.pdb"))

    def clear(self) -> None:
        """Drop every entry (the directories survive)."""
        for d in (self.manifests, self.objects):
            for p in d.iterdir():
                p.unlink()


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)
