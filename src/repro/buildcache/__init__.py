"""Incremental build cache for the pdbbuild driver.

Caches the per-TU program database keyed by a content hash of everything
that went into the compilation: the preprocessed translation unit's full
dependency closure (main file plus every header the preprocessor
consumed, wherever the ``-I`` search found it) and the frontend options
(instantiation mode, include paths, predefined macros, analyzer passes).
Unchanged TUs are reused without re-parsing; any edit to any consumed
file, or any change to the options, changes the key and forces a
recompile.
"""

from repro.buildcache.cache import BuildCache, CacheEntry, CacheStats, content_hash

__all__ = ["BuildCache", "CacheEntry", "CacheStats", "content_hash"]
