"""Diagnostics: errors and warnings with source positions.

The front end never raises bare exceptions for user-source problems; it
reports :class:`Diagnostic` records through a :class:`DiagnosticSink` so a
driving tool can decide whether to abort.  Hard errors (malformed input the
parser cannot recover from) raise :class:`CppError`, which also carries a
location.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpp.source import SourceLocation


class Severity(enum.Enum):
    """Diagnostic severity levels, ordered."""

    NOTE = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Diagnostic:
    """One reported problem: severity, message, optional location."""

    severity: Severity
    message: str
    location: Optional["SourceLocation"] = None

    def render(self) -> str:
        """Format like ``file:line:col: error: message``."""
        prefix = ""
        if self.location is not None:
            prefix = f"{self.location}: "
        return f"{prefix}{self.severity.name.lower()}: {self.message}"


class CppError(Exception):
    """Unrecoverable front-end error, carrying a source location."""

    def __init__(self, message: str, location: Optional["SourceLocation"] = None):
        self.location = location
        self.message = message
        super().__init__(Diagnostic(Severity.ERROR, message, location).render())


class TooManyErrors(CppError):
    """The ``max_errors`` cascade bound was hit; compilation must stop.

    Recovery handlers (backtracking parses, instantiation fallbacks) catch
    plain :class:`CppError` and continue; they must re-raise this subclass
    so a runaway cascade actually terminates the translation unit.
    """


@dataclass
class DiagnosticSink:
    """Collects diagnostics; optionally escalates errors to exceptions.

    ``max_errors`` bounds how many errors accumulate — through
    :meth:`error` *and* :meth:`soft_error` — before the sink raises
    :class:`TooManyErrors` regardless of ``fatal_errors``: runaway
    cascades in a broken input should not silently fill memory.
    """

    fatal_errors: bool = True
    max_errors: int = 50
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def note(self, message: str, location: Optional["SourceLocation"] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.NOTE, message, location))

    def warn(self, message: str, location: Optional["SourceLocation"] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.WARNING, message, location))

    def error(self, message: str, location: Optional["SourceLocation"] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.ERROR, message, location))
        if self.error_count >= self.max_errors:
            raise TooManyErrors(
                f"too many errors ({self.error_count}); giving up", location
            )
        if self.fatal_errors:
            raise CppError(message, location)

    def soft_error(self, message: str, location: Optional["SourceLocation"] = None) -> None:
        """Record an error without escalating (parser error recovery).

        Still subject to the ``max_errors`` cascade bound."""
        self.diagnostics.append(Diagnostic(Severity.ERROR, message, location))
        if self.error_count >= self.max_errors:
            raise TooManyErrors(
                f"too many errors ({self.error_count}); giving up", location
            )

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    def render_all(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)

    def render_errors(self) -> list[str]:
        """Rendered error diagnostics only (build-failure reports)."""
        return [d.render() for d in self.diagnostics if d.severity is Severity.ERROR]
