"""Parser plumbing: token navigation, backtracking, error reporting.

All parser mixins (:mod:`typeparse`, :mod:`exprparse`, :mod:`stmtparse`,
:mod:`declparse`) operate on this shared state.  The token list is the
*whole* preprocessed translation unit; template definitions remember
``(start, end)`` index slices into it and are re-parsed through the same
machinery at instantiation time, which is how original source positions
survive into instantiated entities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cpp.diagnostics import CppError, DiagnosticSink
from repro.cpp.scope import Binder
from repro.cpp.source import SourceLocation
from repro.cpp.tokens import KEYWORDS, Token, TokenKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpp.il import ILTree
    from repro.cpp.instantiate import InstantiationEngine

#: Keywords that can begin a decl-specifier sequence.
TYPE_KEYWORDS = frozenset(
    """
    void bool char wchar_t short int long float double signed unsigned
    const volatile class struct union enum typename
    """.split()
)

#: Storage/function specifiers that can precede a type.
DECL_SPECIFIERS = frozenset(
    "static extern inline virtual explicit mutable friend typedef register auto".split()
)


class ParserBase:
    """Token-cursor mechanics shared by the parser mixins."""

    def __init__(
        self,
        tokens: list[Token],
        tree: "ILTree",
        binder: Binder,
        sink: DiagnosticSink,
        engine: Optional["InstantiationEngine"] = None,
    ):
        self.tokens = tokens
        self.pos = 0
        self.tree = tree
        self.binder = binder
        self.sink = sink
        self.engine = engine
        self.types = tree.types

    # -- cursor -----------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        i = self.pos + ahead
        if i < len(self.tokens):
            return self.tokens[i]
        return self.tokens[-1]  # EOF

    @property
    def cur(self) -> Token:
        return self.peek(0)

    def loc(self) -> SourceLocation:
        return self.cur.location

    def advance(self) -> Token:
        tok = self.cur
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in (
            TokenKind.PUNCT,
            TokenKind.IDENT,
        )

    def at_any(self, *texts: str) -> bool:
        return any(self.at(t) for t in texts)

    def accept(self, text: str) -> Optional[Token]:
        if self.at(text):
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        if not self.at(text):
            raise CppError(
                f"expected {text!r}, found {self.cur.text!r}", self.cur.location
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.cur.kind is not TokenKind.IDENT or self.cur.text in KEYWORDS:
            raise CppError(
                f"expected identifier, found {self.cur.text!r}", self.cur.location
            )
        return self.advance()

    @property
    def at_eof(self) -> bool:
        return self.cur.kind is TokenKind.EOF

    def at_ident(self, text: Optional[str] = None) -> bool:
        return self.cur.kind is TokenKind.IDENT and (text is None or self.cur.text == text)

    def at_plain_ident(self) -> bool:
        return self.cur.kind is TokenKind.IDENT and self.cur.text not in KEYWORDS

    # -- backtracking -------------------------------------------------------

    def mark(self) -> int:
        return self.pos

    def rewind(self, mark: int) -> None:
        self.pos = mark

    # -- bracket skipping -----------------------------------------------------

    _CLOSERS = {"(": ")", "[": "]", "{": "}"}

    def skip_balanced(self, open_text: str) -> int:
        """With cursor on ``open_text``, skip to just past its matching
        closer; returns index of the closer token."""
        close = self._CLOSERS[open_text]
        start_loc = self.cur.location
        self.expect(open_text)
        depth = 1
        while depth > 0:
            if self.at_eof:
                raise CppError(f"unbalanced {open_text!r}", start_loc)
            t = self.advance()
            if t.is_punct(open_text):
                depth += 1
            elif t.is_punct(close):
                depth -= 1
        return self.pos - 1

    def skip_angle(self) -> int:
        """With cursor on ``<``, skip past the matching ``>`` (template
        headers and argument lists only — no expression ambiguity there);
        returns the index of the closer."""
        start_loc = self.cur.location
        self.expect("<")
        depth = 1
        while depth > 0:
            if self.at_eof:
                raise CppError("unbalanced '<'", start_loc)
            t = self.advance()
            if t.is_punct("<"):
                depth += 1
            elif t.is_punct(">"):
                depth -= 1
            elif t.is_punct(">>"):
                depth -= 2
        return self.pos - 1

    def skip_to_semicolon(self) -> None:
        """Error recovery: skip to just past the next ``;`` at depth 0."""
        depth = 0
        while not self.at_eof:
            t = self.cur
            if t.is_punct(";") and depth == 0:
                self.advance()
                return
            if t.text in self._CLOSERS:
                depth += 1
            elif t.text in (")", "]", "}"):
                if depth == 0:
                    return
                depth -= 1
            self.advance()

    def collect_balanced_text(self, open_text: str) -> str:
        """Collect the raw text between balanced brackets (for default
        argument values and non-type template arguments)."""
        from repro.cpp.tokens import tokens_to_text

        start = self.pos
        self.skip_balanced(open_text)
        return tokens_to_text(self.tokens[start + 1 : self.pos - 1])

    # -- classification ---------------------------------------------------------

    def starts_decl_specifier(self) -> bool:
        """Token-level check: could the current token begin a type?"""
        t = self.cur
        if t.kind is not TokenKind.IDENT:
            return t.is_punct("::")
        return t.text in TYPE_KEYWORDS or t.text in DECL_SPECIFIERS
