"""C++ lexer with exact source-position tracking.

Produces the raw token stream the preprocessor consumes.  Comments are
skipped (they only affect ``leading_space``); line continuations
(backslash-newline) are honoured, including inside ``#define`` bodies.

When constructed with a non-fatal :class:`DiagnosticSink`, lexical
errors are reported as soft errors and the lexer recovers instead of
raising: an unterminated block comment swallows the rest of the file, an
unterminated literal ends at the line break, and an unexpected character
is skipped.  Truncated or corrupted sources then still yield a usable
token stream for the rest of the translation unit.
"""

from __future__ import annotations

from typing import Optional

from repro.cpp.diagnostics import CppError, DiagnosticSink
from repro.cpp.source import SourceFile, SourceLocation
from repro.cpp.tokens import PUNCTUATORS, Token, TokenKind

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


class Lexer:
    """Lexes one :class:`SourceFile` into a token list."""

    def __init__(self, file: SourceFile, sink: Optional[DiagnosticSink] = None):
        self.file = file
        self.text = file.text
        self.pos = 0
        self.line = 1
        self.col = 1
        self.at_line_start = True
        self.leading_space = False
        self.sink = sink
        #: recover from lexical errors instead of raising
        self.recover = sink is not None and not sink.fatal_errors

    def _lex_error(self, message: str, loc: SourceLocation) -> None:
        """Report a lexical error; raises unless in recovery mode."""
        if self.recover and self.sink is not None:
            self.sink.soft_error(message, loc)
        else:
            raise CppError(message, loc)

    # -- character helpers --------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.file, self.line, self.col)

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        # NUL sentinel at EOF: unlike "", it is never `in` a charset string
        return self.text[i] if i < len(self.text) else "\0"

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos >= len(self.text):
                return
            ch = self.text[self.pos]
            self.pos += 1
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace, comments, and line continuations."""
        while self.pos < len(self.text):
            ch = self._peek()
            if ch == "\\" and self._peek(1) == "\n":
                self._advance(2)
                self.leading_space = True
            elif ch == "\n":
                self._advance()
                self.at_line_start = True
                self.leading_space = False
            elif ch in " \t\r\f\v":
                self._advance()
                self.leading_space = True
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
                self.leading_space = True
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    # recovery: the truncated comment swallows the rest
                    self._lex_error("unterminated block comment", start)
                self.leading_space = True
            else:
                return

    # -- token scanners ------------------------------------------------

    def _scan_ident(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self._peek() in _IDENT_CONT:
            self._advance()
        return self.text[start : self.pos]

    def _scan_number(self) -> str:
        start = self.pos
        # Hex
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == "." and self._peek(1) in _DIGITS:
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            elif self._peek() == ".":
                self._advance()
            if self._peek() in "eE" and (
                self._peek(1) in _DIGITS
                or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
            ):
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
        # Suffixes (u, l, f combinations)
        while self._peek() in "uUlLfF":
            self._advance()
        return self.text[start : self.pos]

    def _scan_quoted(self, quote: str) -> str:
        start = self.pos
        start_loc = self._loc()
        self._advance()  # opening quote
        while self.pos < len(self.text):
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
            elif ch == quote:
                self._advance()
                return self.text[start : self.pos]
            elif ch == "\n":
                break
            else:
                self._advance()
        kind = "string" if quote == '"' else "character"
        # recovery: the literal ends at the line break (or EOF)
        self._lex_error(f"unterminated {kind} literal", start_loc)
        return self.text[start : self.pos] + quote

    def next_token(self) -> Token:
        self._skip_trivia()
        loc = self._loc()
        at_start, space = self.at_line_start, self.leading_space
        self.at_line_start = False
        self.leading_space = False
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", loc, at_start, space)
        ch = self._peek()
        if ch in _IDENT_START:
            return Token(TokenKind.IDENT, self._scan_ident(), loc, at_start, space)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return Token(TokenKind.NUMBER, self._scan_number(), loc, at_start, space)
        if ch == '"':
            return Token(TokenKind.STRING, self._scan_quoted('"'), loc, at_start, space)
        if ch == "'":
            return Token(TokenKind.CHAR, self._scan_quoted("'"), loc, at_start, space)
        for punct in PUNCTUATORS:
            if self.text.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, loc, at_start, space)
        # recovery: skip the offending character and lex what follows
        self._lex_error(f"unexpected character {ch!r}", loc)
        self._advance()
        return self.next_token()

    def tokenize(self) -> list[Token]:
        """Lex the whole file, EOF token included."""
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out


def tokenize(file: SourceFile, sink: Optional[DiagnosticSink] = None) -> list[Token]:
    """Convenience wrapper: lex ``file`` into a token list.

    With a non-fatal ``sink``, lexical errors are recorded there and the
    lexer recovers (see class docstring) instead of raising."""
    return Lexer(file, sink).tokenize()
