"""Name binding and lookup.

The :class:`Binder` tracks the parser's lexical position — namespace
stack, class stack, function block scopes, and template parameter
bindings — and answers name lookups against it.  Lookup order follows
C++'s unqualified lookup closely enough for the supported subset:

1. function-local block scopes (innermost first),
2. the enclosing class(es), including base classes,
3. enclosing namespaces outward, honouring ``using namespace``,
4. the global namespace.

Template parameter bindings are consulted before class members, which is
what makes the same parser code serve both template *definition* parsing
(parameters bound to dependent :class:`TemplateParamType`) and
*instantiation* re-parsing (parameters bound to concrete types).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cpp.cpptypes import Type, TypeTable
from repro.cpp.il import (
    Class,
    Enum,
    Field,
    ILTree,
    Namespace,
    Routine,
    Template,
    Typedef,
    Variable,
)
from repro.cpp.source import SourceLocation


@dataclass
class LocalVar:
    """A function-local variable or parameter binding."""

    name: str
    type: Type
    location: SourceLocation


@dataclass
class EnumeratorRef:
    """A reference to one enumerator of an enum."""

    enum: Enum
    name: str
    value: int


#: What a lookup can produce.
Binding = Union[
    LocalVar,
    Field,
    Variable,
    Typedef,
    Enum,
    Class,
    Namespace,
    Template,
    Type,  # template parameter binding
    list,  # overload set: list[Routine] or list[Template]
]


class Binder:
    """Lexical context + name lookup for the parser."""

    def __init__(self, tree: ILTree):
        self.tree = tree
        self.types: TypeTable = tree.types
        self.namespace_stack: list[Namespace] = [tree.global_namespace]
        self.class_stack: list[Class] = []
        self.block_scopes: list[dict[str, LocalVar]] = []
        self.tparam_stack: list[dict[str, Type]] = []
        self.current_routine: Optional[Routine] = None

    # -- scope management ----------------------------------------------

    @property
    def current_namespace(self) -> Namespace:
        return self.namespace_stack[-1]

    @property
    def current_class(self) -> Optional[Class]:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def current_scope(self):
        return self.current_class or self.current_namespace

    def enter_namespace(self, ns: Namespace) -> None:
        self.namespace_stack.append(ns)

    def exit_namespace(self) -> None:
        self.namespace_stack.pop()

    def enter_class(self, c: Class) -> None:
        self.class_stack.append(c)

    def exit_class(self) -> None:
        self.class_stack.pop()

    def push_block(self) -> None:
        self.block_scopes.append({})

    def pop_block(self) -> dict[str, LocalVar]:
        return self.block_scopes.pop()

    def declare_local(self, name: str, type: Type, location: SourceLocation) -> LocalVar:
        var = LocalVar(name, type, location)
        if self.block_scopes:
            self.block_scopes[-1][name] = var
        return var

    def push_tparams(self, bindings: dict[str, Type]) -> None:
        self.tparam_stack.append(bindings)

    def pop_tparams(self) -> None:
        self.tparam_stack.pop()

    @property
    def in_dependent_context(self) -> bool:
        """True while parsing inside a template definition (any bound
        parameter is still a dependent type)."""
        return any(
            any(t.is_dependent for t in frame.values()) for frame in self.tparam_stack
        )

    # -- namespace member search -----------------------------------------

    @staticmethod
    def find_in_namespace(ns: Namespace, name: str) -> Optional[Binding]:
        for c in ns.classes:
            if c.name == name:
                return c
        for t in ns.typedefs:
            if t.name == name:
                return t
        for e in ns.enums:
            if e.name == name:
                return e
        for v in ns.variables:
            if v.name == name:
                return v
        # functions and function templates with the same name form one
        # overload set (a non-template overload must not be shadowed)
        routines = [r for r in ns.routines if r.name == name]
        templates = [t for t in ns.templates if t.name == name]
        if routines or templates:
            return routines + templates
        for sub in ns.namespaces:
            if sub.name == name:
                return sub
        alias = ns.aliases.get(name)
        if alias is not None:
            return alias
        for e in ns.enums:
            for ename, value in e.enumerators:
                if ename == name:
                    return EnumeratorRef(e, ename, value)
        imported = ns.using_decls.get(name)
        if imported is not None:
            return imported  # type: ignore[return-value]
        return None

    @staticmethod
    def find_in_class(cls: Class, name: str) -> Optional[Binding]:
        if cls.name == name or _strip_targs(cls.name) == name:
            # injected-class-name: Stack inside Stack<int> names the class
            return cls
        m = cls.find_member(name)
        if m is not None:
            return m
        routines = cls.find_routines(name)
        if routines:
            return routines
        for e in cls.inner_enums:
            for ename, value in e.enumerators:
                if ename == name:
                    return EnumeratorRef(e, ename, value)
        return None

    # -- unqualified lookup -----------------------------------------------

    def lookup(self, name: str) -> Optional[Binding]:
        # 1. locals
        for scope in reversed(self.block_scopes):
            if name in scope:
                return scope[name]
        # 2. template parameters
        for frame in reversed(self.tparam_stack):
            if name in frame:
                return frame[name]
        # 3. enclosing classes (and their bases)
        for cls in reversed(self.class_stack):
            found = self.find_in_class(cls, name)
            if found is not None:
                return found
        # the class a member routine belongs to, when parsing out-of-line
        if self.current_routine is not None and not self.class_stack:
            owner = self.current_routine.parent_class
            if owner is not None:
                found = self.find_in_class(owner, name)
                if found is not None:
                    return found
        # 4. namespaces outward, with using-directives
        seen: set[int] = set()
        for ns in reversed(self.namespace_stack):
            found = self.find_in_namespace(ns, name)
            if found is not None:
                return found
            for used in ns.using_namespaces:
                if id(used) in seen:
                    continue
                seen.add(id(used))
                found = self.find_in_namespace(used, name)
                if found is not None:
                    return found
        return None

    # -- qualified lookup ---------------------------------------------------

    def resolve_scope_path(self, parts: list[str]) -> Optional[Union[Namespace, Class]]:
        """Resolve ``A::B`` to the namespace or class it names."""
        if not parts:
            return self.current_namespace
        first = self.lookup(parts[0])
        node: Optional[Union[Namespace, Class]]
        if isinstance(first, (Namespace, Class)):
            node = first
        elif isinstance(first, Typedef):
            node = first.underlying.class_decl()
        else:
            return None
        for part in parts[1:]:
            nxt: Optional[Binding] = None
            if isinstance(node, Namespace):
                nxt = self.find_in_namespace(node, part)
            elif isinstance(node, Class):
                nxt = self.find_in_class(node, part)
            if isinstance(nxt, (Namespace, Class)):
                node = nxt
            elif isinstance(nxt, Typedef):
                node = nxt.underlying.class_decl()
            else:
                return None
        return node

    def lookup_qualified(self, parts: list[str], name: str) -> Optional[Binding]:
        """Lookup ``parts::name`` (e.g. ``std::vector``)."""
        scope = self.resolve_scope_path(parts)
        if scope is None:
            return None
        if isinstance(scope, Namespace):
            return self.find_in_namespace(scope, name)
        return self.find_in_class(scope, name)

    # -- convenience ---------------------------------------------------------

    def global_ns(self) -> Namespace:
        return self.tree.global_namespace


def _strip_targs(name: str) -> str:
    """``Stack<int>`` -> ``Stack``."""
    i = name.find("<")
    return name if i < 0 else name[:i]
