"""High-level intermediate language (IL) nodes.

The front end produces an :class:`ILTree` — the analog of the EDG IL the
paper's IL Analyzer walks.  Like EDG's IL, it "preserves the information
available in source code, including original names and locations"
(paper Section 2), and records template instantiations as first-class
subtrees alongside the templates they came from.

Entities deliberately carry *both* pieces of template provenance:

* ``is_instantiation`` — the flag EDG's IL exposes ("an entity has been
  instantiated, not the template from which it is derived"), and
* ``template_of`` — ground truth the instantiation engine knows.

The IL Analyzer is required (paper Section 3.1) to reconstruct the link by
location matching without reading ``template_of``; the ground-truth field
exists so tests can check the reconstruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Union

from repro.cpp.cpptypes import FunctionType, Type, TypeTable
from repro.cpp.source import SourceFile, SourceLocation

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpp.preprocessor import MacroRecord


class Access(enum.Enum):
    """Member access mode; NA for non-members (PDB ``racs``/``cmacs``)."""

    NA = "NA"
    PUBLIC = "pub"
    PROTECTED = "prot"
    PRIVATE = "priv"


class Virtuality(enum.Enum):
    """PDB ``rvirt``: no / virtual / pure virtual."""

    NO = "no"
    VIRTUAL = "virt"
    PURE = "pure"


class RoutineKind(enum.Enum):
    """Routine kinds (PDB ``rkind``)."""
    FUNCTION = "func"
    MEMBER = "memfunc"
    CONSTRUCTOR = "ctor"
    DESTRUCTOR = "dtor"
    OPERATOR = "op"
    CONVERSION = "conv"


class ClassKind(enum.Enum):
    """Class keys (PDB ``ckind``)."""
    CLASS = "class"
    STRUCT = "struct"
    UNION = "union"


class TemplateKind(enum.Enum):
    """PDB ``tkind`` — matches the pdbItem::templ_t constants the TAU
    instrumentor switches on (paper Figure 6)."""

    CLASS = "class"
    FUNCTION = "func"
    MEMBER_FUNCTION = "memfunc"
    STATIC_MEMBER = "statmem"
    MEMBER_CLASS = "memclass"


@dataclass(frozen=True)
class SourceRange:
    """Begin/end location pair (PDB positions come in such pairs)."""

    begin: SourceLocation
    end: SourceLocation


@dataclass
class ItemPosition:
    """Header and body extents of a "fat" item (PDB ``rpos``/``cpos``/``tpos``)."""

    header: Optional[SourceRange] = None
    body: Optional[SourceRange] = None


Scope = Union["Namespace", "Class"]


class Declaration:
    """Base for named IL entities with a source location and a parent scope."""

    def __init__(self, name: str, location: SourceLocation, parent: Optional[Scope]):
        self.name = name
        self.location = location
        self.parent = parent
        self.access: Access = Access.NA

    @property
    def full_name(self) -> str:
        """Qualified name, e.g. ``PETE::Stack<int>::push``."""
        parts: list[str] = [self.name]
        p = self.parent
        while p is not None and getattr(p, "name", "") not in ("", "<global>"):
            parts.append(p.name)
            p = p.parent
        return "::".join(reversed(parts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.full_name} @{self.location}>"


@dataclass
class TemplateParameter:
    """One template parameter: a type (``class T``) or non-type (``int N``)."""

    kind: str  # "type" | "nontype" | "template"
    name: str
    default_text: Optional[str] = None
    nontype_type: Optional[Type] = None


@dataclass
class Parameter:
    """One routine parameter."""

    name: str
    type: Type
    default_text: Optional[str] = None
    location: Optional[SourceLocation] = None


@dataclass
class CallSite:
    """One static call reference (PDB ``rcall``): callee, virtual flag,
    and the source location of the call expression."""

    callee: "Routine"
    is_virtual: bool
    location: SourceLocation


class Routine(Declaration):
    """A function: free, member, constructor, destructor, or operator."""

    def __init__(
        self,
        name: str,
        location: SourceLocation,
        parent: Optional[Scope],
        signature: FunctionType,
        kind: RoutineKind = RoutineKind.FUNCTION,
    ):
        super().__init__(name, location, parent)
        self.signature = signature
        self.kind = kind
        self.parameters: list[Parameter] = []
        self.linkage: str = "C++"
        self.storage: str = "NA"  # NA | static | extern
        self.virtuality: Virtuality = Virtuality.NO
        self.is_static_member = False
        self.is_inline = False
        self.is_explicit = False
        self.is_const = False
        self.defined = False  # has a body been seen
        self.calls: list[CallSite] = []
        self.position = ItemPosition()
        self.template_of: Optional["Template"] = None
        self.template_args: list[Type] = []
        self.is_instantiation = False
        self.is_specialization = False
        self.used = False  # referenced from executed code (used-mode driver)
        self.body_tokens: Optional[tuple[int, int]] = None  # deferred-parse slice
        self.flags: dict[str, object] = {}

    @property
    def parent_class(self) -> Optional["Class"]:
        return self.parent if isinstance(self.parent, Class) else None

    def add_call(self, callee: "Routine", is_virtual: bool, location: SourceLocation) -> None:
        self.calls.append(CallSite(callee, is_virtual, location))

    def callees(self) -> list[CallSite]:
        return list(self.calls)


class Field(Declaration):
    """A data member (PDB ``cmem`` rows)."""

    def __init__(
        self,
        name: str,
        location: SourceLocation,
        parent: "Class",
        type: Type,
        is_static: bool = False,
        is_mutable: bool = False,
    ):
        super().__init__(name, location, parent)
        self.type = type
        self.is_static = is_static
        self.is_mutable = is_mutable

    @property
    def member_kind(self) -> str:
        return "svar" if self.is_static else "var"


class Class(Declaration):
    """A class, struct, or union."""

    def __init__(
        self,
        name: str,
        location: SourceLocation,
        parent: Optional[Scope],
        kind: ClassKind = ClassKind.CLASS,
    ):
        super().__init__(name, location, parent)
        self.kind = kind
        self.bases: list[tuple["Class", Access, bool]] = []  # (base, access, virtual)
        self.fields: list[Field] = []
        self.routines: list[Routine] = []
        self.inner_classes: list["Class"] = []
        self.inner_enums: list["Enum"] = []
        self.inner_typedefs: list["Typedef"] = []
        self.friend_classes: list["Class"] = []
        self.friend_routines: list[Routine] = []
        self.position = ItemPosition()
        self.template_of: Optional["Template"] = None
        self.template_args: list[Type] = []
        self.is_instantiation = False
        self.is_specialization = False
        self.defined = False  # body seen (vs forward declaration)
        self.is_abstract = False
        self.flags: dict[str, object] = {}

    def add_base(self, base: "Class", access: Access, virtual: bool = False) -> None:
        self.bases.append((base, access, virtual))

    def derived_from(self, other: "Class") -> bool:
        """True when ``other`` is this class or a (transitive) base."""
        if other is self:
            return True
        return any(b.derived_from(other) for b, _, _ in self.bases)

    def find_member(self, name: str) -> Optional[Union[Field, "Typedef", "Enum", "Class"]]:
        """Find a non-function member by name, searching bases."""
        for f in self.fields:
            if f.name == name:
                return f
        for t in self.inner_typedefs:
            if t.name == name:
                return t
        for e in self.inner_enums:
            if e.name == name:
                return e
        for c in self.inner_classes:
            if c.name == name:
                return c
        for base, _, _ in self.bases:
            m = base.find_member(name)
            if m is not None:
                return m
        return None

    def find_routines(self, name: str) -> list[Routine]:
        """All member functions named ``name`` (overload set), bases last."""
        out = [r for r in self.routines if r.name == name]
        for base, _, _ in self.bases:
            if not out:
                out.extend(base.find_routines(name))
        return out

    def constructors(self) -> list[Routine]:
        return [r for r in self.routines if r.kind is RoutineKind.CONSTRUCTOR]

    def destructor(self) -> Optional[Routine]:
        for r in self.routines:
            if r.kind is RoutineKind.DESTRUCTOR:
                return r
        return None

    def all_members(self) -> Iterator[Declaration]:
        yield from self.fields
        yield from self.routines
        yield from self.inner_classes
        yield from self.inner_enums
        yield from self.inner_typedefs


class Enum(Declaration):
    """An enumeration with (name, value) enumerators."""
    def __init__(self, name: str, location: SourceLocation, parent: Optional[Scope]):
        super().__init__(name, location, parent)
        self.enumerators: list[tuple[str, int]] = []


class Typedef(Declaration):
    """A named type alias."""
    def __init__(
        self, name: str, location: SourceLocation, parent: Optional[Scope], underlying: Type
    ):
        super().__init__(name, location, parent)
        self.underlying = underlying


class Variable(Declaration):
    """A namespace-scope variable (e.g. ``std::cout``)."""

    def __init__(
        self, name: str, location: SourceLocation, parent: Optional[Scope], type: Type
    ):
        super().__init__(name, location, parent)
        self.type = type
        self.storage: str = "NA"


class Template(Declaration):
    """A template definition (class, function, member function, or static
    member), holding its body as a deferred token range for instantiation.

    ``text`` is the reconstructed source text (PDB ``ttext``).
    """

    def __init__(
        self,
        name: str,
        location: SourceLocation,
        parent: Optional[Scope],
        kind: TemplateKind,
    ):
        super().__init__(name, location, parent)
        self.kind = kind
        self.parameters: list[TemplateParameter] = []
        self.text: str = ""
        self.position = ItemPosition()
        # Token slice (start, end) into the TU token stream, and the scope
        # snapshot needed to re-parse at instantiation time.
        self.decl_tokens: Optional[tuple[int, int]] = None
        self.instantiations: list[Declaration] = []
        self.specializations: list["Template"] = []
        self.primary: Optional["Template"] = None  # set on specializations
        self.spec_args: list[Type] = []  # pattern args of a specialization
        self.owner_class_template: Optional["Template"] = None  # memfunc -> class templ

    @property
    def is_specialization(self) -> bool:
        return self.primary is not None

    def param_names(self) -> list[str]:
        return [p.name for p in self.parameters]


class Namespace(Declaration):
    """A namespace; the global scope is the namespace named ``<global>``."""

    def __init__(
        self,
        name: str,
        location: SourceLocation,
        parent: Optional["Namespace"] = None,
    ):
        super().__init__(name, location, parent)
        self.namespaces: list["Namespace"] = []
        self.classes: list[Class] = []
        self.routines: list[Routine] = []
        self.enums: list[Enum] = []
        self.typedefs: list[Typedef] = []
        self.variables: list[Variable] = []
        self.templates: list[Template] = []
        self.aliases: dict[str, "Namespace"] = {}
        self.using_namespaces: list["Namespace"] = []
        #: ``using std::cout;`` — name -> binding imported from elsewhere
        self.using_decls: dict[str, object] = {}
        self.position = ItemPosition()

    @property
    def is_global(self) -> bool:
        return self.name == "<global>"

    def member_names(self) -> list[str]:
        out: list[str] = []
        for group in (
            self.namespaces, self.classes, self.routines,
            self.enums, self.typedefs, self.variables, self.templates,
        ):
            out.extend(d.name for d in group)  # type: ignore[attr-defined]
        return out


class ILTree:
    """The complete IL for one translation unit (or a merged set).

    Creation-order registries (``all_*``) give the IL Analyzer stable,
    deterministic traversal order, which in turn keeps PDB ids stable.
    """

    def __init__(self, types: Optional[TypeTable] = None):
        self.types = types or TypeTable()
        # The global namespace anchors the scope tree.
        dummy = SourceFile(name="<builtin>", text="")
        self.global_namespace = Namespace("<global>", SourceLocation(dummy, 1, 1))
        self.files: list[SourceFile] = []
        self.main_file: Optional[SourceFile] = None
        self.all_classes: list[Class] = []
        self.all_routines: list[Routine] = []
        self.all_templates: list[Template] = []
        self.all_namespaces: list[Namespace] = []
        self.all_enums: list[Enum] = []
        self.all_typedefs: list[Typedef] = []
        self.all_variables: list[Variable] = []
        self.macros: list["MacroRecord"] = []

    # -- registration (keeps creation order) ---------------------------

    def register_class(self, c: Class) -> Class:
        self.all_classes.append(c)
        return c

    def register_routine(self, r: Routine) -> Routine:
        self.all_routines.append(r)
        return r

    def register_template(self, t: Template) -> Template:
        self.all_templates.append(t)
        return t

    def register_namespace(self, n: Namespace) -> Namespace:
        self.all_namespaces.append(n)
        return n

    def register_enum(self, e: Enum) -> Enum:
        self.all_enums.append(e)
        return e

    def register_typedef(self, t: Typedef) -> Typedef:
        self.all_typedefs.append(t)
        return t

    def register_variable(self, v: Variable) -> Variable:
        self.all_variables.append(v)
        return v

    # -- queries --------------------------------------------------------

    def instantiated_entities(self) -> list[Declaration]:
        """All template instantiations present in the IL (used-mode result)."""
        out: list[Declaration] = []
        out.extend(c for c in self.all_classes if c.is_instantiation)
        out.extend(r for r in self.all_routines if r.is_instantiation)
        return out

    def defined_routines(self) -> list[Routine]:
        return [r for r in self.all_routines if r.defined]

    def find_routine(self, full_name: str) -> Optional[Routine]:
        for r in self.all_routines:
            if r.full_name == full_name:
                return r
        return None

    def find_class(self, full_name: str) -> Optional[Class]:
        for c in self.all_classes:
            if c.full_name == full_name:
                return c
        return None

    def find_template(self, name: str) -> Optional[Template]:
        for t in self.all_templates:
            if t.name == name or t.full_name == name:
                return t
        return None

    def node_count(self) -> int:
        """Rough IL size metric (bench E10: used vs all mode)."""
        n = len(self.all_namespaces) + len(self.all_enums) + len(self.all_typedefs)
        n += len(self.all_variables) + len(self.all_templates)
        for c in self.all_classes:
            n += 1 + len(c.fields) + len(c.inner_typedefs) + len(c.inner_enums)
        for r in self.all_routines:
            n += 1 + len(r.parameters) + len(r.calls)
        return n
