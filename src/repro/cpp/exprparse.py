"""Expression parsing with call extraction and light type inference.

The front end does not build expression ASTs; it computes just enough
typing to resolve *which routine a call refers to* and records a
:class:`~repro.cpp.il.CallSite` on the routine being parsed.  That is
exactly the information the paper's PDB carries (``rcall`` rows) and what
pdbtree/TAU consume.

Resolution the paper calls out explicitly and we implement:

* member calls through objects/references/pointers (virtuality flagged),
* overloaded operators (member and free, e.g. ``cout << x`` chains),
* constructor calls for temporaries (``throw Overflow()``), ``new``,
  and (in :mod:`stmtparse`) object declarations and scope-end destructors
  — EDG's "lifetime" handling,
* function template calls with argument deduction, triggering used-mode
  instantiation,
* member calls on instantiated class templates, triggering lazy body
  instantiation of just the members actually used.

Inside a *template definition*, dependent expressions resolve to nothing
and record no calls — calls materialise when the body is re-parsed at
instantiation, faithfully to how EDG's used mode populates the IL.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Optional

from repro.cpp.cpptypes import (
    ArrayType,
    FunctionType,
    PointerType,
    Type,
)
from repro.cpp.diagnostics import CppError
from repro.cpp.il import (
    Class,
    Enum,
    Namespace,
    Routine,
    Template,
    TemplateKind,
    Typedef,
    Variable,
    Virtuality,
)
from repro.cpp.scope import EnumeratorRef, LocalVar
from repro.cpp.source import SourceLocation
from repro.cpp.tokens import KEYWORDS, TokenKind
from repro.cpp.typeparse import TypeParserMixin


@dataclass
class ExprInfo:
    """Everything later parse stages need to know about an expression."""

    type: Type
    #: unresolved overload set (the expression names functions)
    routines: list[Routine] = dc_field(default_factory=list)
    #: function templates the name may refer to
    templates: list[Template] = dc_field(default_factory=list)
    #: explicit template args given at the name (``max<int>``)
    explicit_args: Optional[list[Type]] = None
    #: the expression names a type (enables ``T(args)`` construction)
    is_type: bool = False
    #: member access went through a pointer/reference (virtual dispatch)
    via_indirection: bool = False
    name: str = ""

    @property
    def callable(self) -> bool:
        return bool(self.routines or self.templates)


#: binary operators by precedence level, loosest first.
_BINARY_LEVELS: list[list[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
    [".*", "->*"],
]

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])


class ExprParserMixin(TypeParserMixin):
    """Expression grammar; mixed into the full Parser."""

    # -- entry points --------------------------------------------------------

    def parse_expression(self) -> ExprInfo:
        """assignment-expression (no top-level comma)."""
        return self._parse_assignment()

    def parse_comma_expression(self) -> ExprInfo:
        e = self._parse_assignment()
        while self.at(","):
            self.advance()
            e = self._parse_assignment()
        return e

    def _unknown(self, hint: str = "") -> ExprInfo:
        return ExprInfo(self.types.unknown(hint))

    # -- assignment / ternary ---------------------------------------------------

    def _parse_assignment(self) -> ExprInfo:
        if self.at("throw"):
            return self._parse_throw()
        lhs = self._parse_ternary()
        if self.cur.kind is TokenKind.PUNCT and self.cur.text in _ASSIGN_OPS:
            op = self.advance()
            rhs = self._parse_assignment()
            self._maybe_operator_call(op.text, lhs, [rhs], op.location)
            return ExprInfo(lhs.type)
        return lhs

    def _parse_throw(self) -> ExprInfo:
        self.expect("throw")
        if not self.at_any(";", ")", ","):
            self._parse_assignment()
        return ExprInfo(self.types.void)

    def _parse_ternary(self) -> ExprInfo:
        cond = self._parse_binary(0)
        if self.at("?"):
            self.advance()
            then = self.parse_comma_expression()
            self.expect(":")
            self._parse_assignment()
            return ExprInfo(then.type)
        return cond

    # -- binary operators ----------------------------------------------------------

    def _parse_binary(self, level: int) -> ExprInfo:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        lhs = self._parse_binary(level + 1)
        while self.cur.kind is TokenKind.PUNCT and self.cur.text in ops:
            # ">" can end a template argument list; the template-arg parser
            # never descends here, so a ">" in expression context is an op.
            op = self.advance()
            rhs = self._parse_binary(level + 1)
            result = self._maybe_operator_call(op.text, lhs, [rhs], op.location)
            lhs = result if result is not None else ExprInfo(
                self._builtin_binary_type(op.text, lhs, rhs)
            )
        return lhs

    def _builtin_binary_type(self, op: str, lhs: ExprInfo, rhs: ExprInfo) -> Type:
        if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return self.types.bool_
        for e in (lhs, rhs):
            s = e.type.strip()
            if s is self.types.builtins["double"] or s is self.types.builtins["float"]:
                return s
        s = lhs.type.strip()
        if isinstance(s, (PointerType, ArrayType)):
            return lhs.type
        return self.types.int_

    def _maybe_operator_call(
        self, op: str, lhs: ExprInfo, rhs_args: list[ExprInfo], loc: SourceLocation
    ) -> Optional[ExprInfo]:
        """If ``lhs`` is of class type and ``operator<op>`` is declared
        (member or free), record the call and return its result."""
        cls = lhs.type.class_decl()
        opname = f"operator{op}"
        if cls is not None:
            members = cls.find_routines(opname)
            if members:
                r = self._pick_overload(members, rhs_args)
                if r is not None:
                    self._record_call(r, loc, via_object=True)
                    return ExprInfo(self._return_type_of(r))
            # free operator: operator<<(ostream&, T) style
            free = self.binder.lookup(opname)
            if isinstance(free, list):
                cands = [
                    r for r in free
                    if isinstance(r, Routine) and len(r.parameters) == 1 + len(rhs_args)
                ]
                for r in cands:
                    p0 = r.parameters[0].type.class_decl()
                    if p0 is not None and cls.derived_from(p0):
                        self._record_call(r, loc, via_object=False)
                        return ExprInfo(self._return_type_of(r))
                templs = [t for t in free if isinstance(t, Template)]
                inst = self._try_template_call(
                    templs, [lhs] + rhs_args, None, loc
                )
                if inst is not None:
                    return inst
        if lhs.type.is_dependent:
            return ExprInfo(self.types.unknown("dependent"))
        return None

    # -- unary ------------------------------------------------------------------------

    def _parse_unary(self) -> ExprInfo:
        t = self.cur
        if t.is_punct("!"):
            self.advance()
            self._parse_unary()
            return ExprInfo(self.types.bool_)
        if t.is_punct("-") or t.is_punct("+") or t.is_punct("~"):
            self.advance()
            e = self._parse_unary()
            return ExprInfo(e.type)
        if t.is_punct("++") or t.is_punct("--"):
            op = self.advance()
            e = self._parse_unary()
            self._maybe_operator_call(op.text, e, [], op.location)
            return ExprInfo(e.type)
        if t.is_punct("*"):
            op = self.advance()
            e = self._parse_unary()
            s = e.type.strip()
            if isinstance(s, PointerType):
                return ExprInfo(s.pointee)
            if isinstance(s, ArrayType):
                return ExprInfo(s.element)
            r = self._maybe_operator_call("*", e, [], op.location)
            return r if r is not None else self._unknown("deref")
        if t.is_punct("&"):
            self.advance()
            e = self._parse_unary()
            return ExprInfo(self.types.pointer_to(e.type))
        if t.is_ident("sizeof"):
            self.advance()
            if self.at("("):
                mark = self.mark()
                self.advance()
                ty = self.try_parse_type()
                if ty is not None:
                    ty = self.parse_ptr_operators(ty)
                    if self.at(")"):
                        self.advance()
                        return ExprInfo(self.types.builtin("unsigned long"))
                self.rewind(mark)
            self._parse_unary()
            return ExprInfo(self.types.builtin("unsigned long"))
        if t.is_ident("new"):
            return self._parse_new()
        if t.is_ident("delete"):
            return self._parse_delete()
        if t.kind is TokenKind.IDENT and t.text in (
            "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast"
        ):
            self.advance()
            self.expect("<")
            ty = self.parse_full_type()
            self.expect(">")
            self.expect("(")
            self.parse_comma_expression()
            self.expect(")")
            return ExprInfo(ty)
        return self._parse_postfix()

    def _parse_new(self) -> ExprInfo:
        new_tok = self.expect("new")
        self.accept("(") and self._skip_placement()  # placement new (rare)
        base = self.parse_type_specifier()
        base = self.parse_ptr_operators(base)
        if self.at("["):
            self.advance()
            if not self.at("]"):
                self.parse_comma_expression()
            self.expect("]")
            self._record_ctor(base, [], new_tok.location)
            return ExprInfo(self.types.pointer_to(base))
        args: list[ExprInfo] = []
        if self.at("("):
            args = self._parse_call_args()
        self._record_ctor(base, args, new_tok.location)
        return ExprInfo(self.types.pointer_to(base))

    def _skip_placement(self) -> bool:
        # called with "(" already consumed by accept()
        depth = 1
        while depth > 0 and not self.at_eof:
            tok = self.advance()
            if tok.is_punct("("):
                depth += 1
            elif tok.is_punct(")"):
                depth -= 1
        return True

    def _parse_delete(self) -> ExprInfo:
        del_tok = self.expect("delete")
        if self.at("["):
            self.advance()
            self.expect("]")
        e = self._parse_unary()
        s = e.type.strip()
        if isinstance(s, PointerType):
            cls = s.pointee.class_decl()
            if cls is not None:
                dtor = self._ensure_destructor(cls)
                if dtor is not None:
                    self._record_call(dtor, del_tok.location, via_object=True)
        return ExprInfo(self.types.void)

    # -- postfix ----------------------------------------------------------------------

    def _parse_postfix(self) -> ExprInfo:
        e = self._parse_primary()
        while True:
            if self.at("("):
                loc = self.loc()
                args = self._parse_call_args()
                e = self._resolve_call(e, args, loc)
            elif self.at(".") or self.at("->"):
                arrow = self.advance()
                e = self._parse_member_access(e, indirection=arrow.text == "->")
            elif self.at("["):
                open_tok = self.advance()
                idx = self.parse_comma_expression()
                self.expect("]")
                r = self._maybe_operator_call("[]", e, [idx], open_tok.location)
                if r is not None:
                    e = r
                else:
                    s = e.type.strip()
                    if isinstance(s, ArrayType):
                        e = ExprInfo(s.element)
                    elif isinstance(s, PointerType):
                        e = ExprInfo(s.pointee)
                    else:
                        e = self._unknown("subscript")
            elif self.at("++") or self.at("--"):
                op = self.advance()
                self._maybe_operator_call(op.text, e, [], op.location)
                e = ExprInfo(e.type)
            else:
                return e

    def _parse_call_args(self) -> list[ExprInfo]:
        self.expect("(")
        args: list[ExprInfo] = []
        if self.accept(")"):
            return args
        while True:
            args.append(self._parse_assignment())
            if not self.accept(","):
                break
        self.expect(")")
        return args

    def _parse_member_access(self, obj: ExprInfo, indirection: bool) -> ExprInfo:
        if self.at("~"):
            self.advance()
            nm = self.expect_ident()
            cls = self._object_class(obj, indirection)
            if cls is not None:
                d = self._ensure_destructor(cls)
                if d is not None:
                    return ExprInfo(self.types.void, routines=[d], via_indirection=indirection)
            return self._unknown("dtor-call")
        nm = self.expect_ident()
        explicit_args: Optional[list[Type]] = None
        if self.at("<"):
            explicit_args = self.try_parse_template_args()
        cls = self._object_class(obj, indirection)
        if cls is None:
            # dependent or unmodeled object type: swallow silently; calls
            # materialise at instantiation re-parse.
            return self._unknown("member:" + nm.text)
        found = None
        from repro.cpp.scope import Binder

        found = Binder.find_in_class(cls, nm.text)
        if found is None:
            self.sink.note(f"no member {nm.text!r} in {cls.full_name}", nm.location)
            return self._unknown(nm.text)
        return self._binding_to_expr(found, nm.text, explicit_args, indirection)

    def _object_class(self, obj: ExprInfo, indirection: bool) -> Optional[Class]:
        t = obj.type
        if indirection:
            s = t.strip()
            if isinstance(s, PointerType):
                t = s.pointee
            else:
                # operator-> chain on smart pointers
                r = self._maybe_operator_call("->", obj, [], self.loc())
                if r is not None:
                    s2 = r.type.strip()
                    if isinstance(s2, PointerType):
                        t = s2.pointee
                    else:
                        t = r.type
                else:
                    return None
        return t.class_decl()

    # -- primary -------------------------------------------------------------------------

    def _parse_primary(self) -> ExprInfo:
        t = self.cur
        if t.kind is TokenKind.NUMBER:
            self.advance()
            txt = t.text.lower()
            if ("." in txt or "e" in txt) and not txt.startswith("0x"):
                return ExprInfo(self.types.double)
            return ExprInfo(self.types.int_)
        if t.kind is TokenKind.STRING:
            self.advance()
            return ExprInfo(
                self.types.pointer_to(self.types.qualified(self.types.builtin("char"), const=True))
            )
        if t.kind is TokenKind.CHAR:
            self.advance()
            return ExprInfo(self.types.builtin("char"))
        if t.is_ident("true") or t.is_ident("false"):
            self.advance()
            return ExprInfo(self.types.bool_)
        if t.is_ident("this"):
            self.advance()
            cls = self._this_class()
            if cls is not None:
                return ExprInfo(self.types.pointer_to(self.types.class_type(cls)))
            return self._unknown("this")
        if t.is_punct("("):
            # cast or parenthesised expression
            mark = self.mark()
            self.advance()
            ty = self.try_parse_type()
            if ty is not None:
                ty = self.parse_ptr_operators(ty)
                if self.at(")"):
                    self.advance()
                    # C-style cast only when an operand follows
                    if not self.at_any(")", ",", ";", "]", "}"):
                        self._parse_unary()
                        return ExprInfo(ty)
            self.rewind(mark)
            self.advance()
            e = self.parse_comma_expression()
            self.expect(")")
            return e
        if t.kind is TokenKind.IDENT and (t.text not in KEYWORDS or t.text in (
            "operator",
        )):
            return self._parse_id_expression()
        # builtin function-style cast: int(x), double(y)
        if t.kind is TokenKind.IDENT and t.text in (
            "int", "bool", "char", "double", "float", "long", "short", "unsigned", "void"
        ):
            ty = self.parse_type_specifier()
            if self.at("("):
                self._parse_call_args()
            return ExprInfo(ty)
        raise CppError(f"unexpected token {t.text!r} in expression", t.location)

    def _this_class(self) -> Optional[Class]:
        if self.binder.current_class is not None:
            return self.binder.current_class
        r = self.binder.current_routine
        if r is not None:
            return r.parent_class
        return None

    def _parse_id_expression(self) -> ExprInfo:
        """A (possibly qualified, possibly templated) name in expression
        position."""
        self.accept("::")
        parts: list[str] = []
        explicit_args: Optional[list[Type]] = None
        while True:
            if self.at_ident("operator"):
                # address/call of an operator function by name
                from repro.cpp.typeparse import Declarator

                d = Declarator()
                self.advance()
                name = "operator" + self._parse_operator_name(d)
                loc = self.loc()
                break
            nm = self.expect_ident()
            name, loc = nm.text, nm.location
            if self.at("<"):
                saved = self.mark()
                args = self.try_parse_template_args()
                if args is not None and self._plausible_template_name(parts, name):
                    explicit_args = args
                else:
                    self.rewind(saved)
            if self.at("::"):
                self.advance()
                parts.append(name + _render_args(explicit_args))
                explicit_args = None
                continue
            break
        if parts:
            binding = self.binder.lookup_qualified(
                [p.split("<")[0] for p in parts], name
            )
            # fall back to scanning class instantiations for A<x>::member
            if binding is None:
                binding = self._qualified_fallback(parts, name)
        else:
            binding = self.binder.lookup(name)
        if binding is None:
            self.sink.note(f"unresolved name {name!r}", loc)
            return self._unknown(name)
        return self._binding_to_expr(binding, name, explicit_args, indirection=False)

    def _plausible_template_name(self, parts: list[str], name: str) -> bool:
        """Heuristic for ``name<`` in expression context: only treat as a
        template-id when the name visibly binds to templates or a type."""
        if parts:
            return True
        b = self.binder.lookup(name)
        if isinstance(b, list):
            return any(isinstance(x, Template) for x in b)
        return isinstance(b, (Class, Typedef)) or isinstance(b, Type)

    def _qualified_fallback(self, parts: list[str], name: str):
        """Resolve ``Stack<int>::member`` where the qualifier is a
        template-id the scope-path walker does not track."""
        qual = "::".join(parts)
        cls = self.tree.find_class(qual)
        if cls is None and len(parts) == 1:
            for c in self.tree.all_classes:
                if c.name == parts[0]:
                    cls = c
                    break
        if cls is not None:
            from repro.cpp.scope import Binder

            return Binder.find_in_class(cls, name)
        return None

    def _binding_to_expr(
        self,
        binding,
        name: str,
        explicit_args: Optional[list[Type]],
        indirection: bool,
    ) -> ExprInfo:
        if isinstance(binding, LocalVar):
            return ExprInfo(binding.type, name=name)
        if isinstance(binding, Variable):
            return ExprInfo(binding.type, name=name)
        if isinstance(binding, EnumeratorRef):
            return ExprInfo(self.types.enum_type(binding.enum), name=name)
        if isinstance(binding, Type):
            return ExprInfo(binding, is_type=True, name=name)
        if isinstance(binding, Class):
            return ExprInfo(self.types.class_type(binding), is_type=True, name=name)
        if isinstance(binding, Typedef):
            return ExprInfo(self.types.typedef_type(binding), is_type=True, name=name)
        if isinstance(binding, Enum):
            return ExprInfo(self.types.enum_type(binding), is_type=True, name=name)
        if isinstance(binding, Namespace):
            return self._unknown(name)
        from repro.cpp.il import Field

        if isinstance(binding, Field):
            return ExprInfo(binding.type, name=name)
        if isinstance(binding, Routine):
            binding = [binding]
        if isinstance(binding, list):
            routines = [r for r in binding if isinstance(r, Routine)]
            templates = [
                t for t in binding
                if isinstance(t, Template)
                and t.kind in (TemplateKind.FUNCTION, TemplateKind.STATIC_MEMBER)
            ]
            class_templates = [
                t for t in binding
                if isinstance(t, Template) and t.kind is TemplateKind.CLASS
            ]
            if class_templates and explicit_args is not None:
                # Stack<int>(...) — construction of a template instantiation
                if any(a.is_dependent for a in explicit_args):
                    return ExprInfo(
                        self.types.template_id(class_templates[0], explicit_args),
                        is_type=True,
                        name=name,
                    )
                assert self.engine is not None
                cls = self.engine.instantiate_class(
                    class_templates[0], explicit_args, self.loc()
                )
                return ExprInfo(self.types.class_type(cls), is_type=True, name=name)
            if routines or templates:
                rtype = (
                    self._return_type_of(routines[0])
                    if routines
                    else self.types.unknown(name)
                )
                return ExprInfo(
                    rtype,
                    routines=routines,
                    templates=templates,
                    explicit_args=explicit_args,
                    via_indirection=indirection,
                    name=name,
                )
        return self._unknown(name)

    # -- call resolution --------------------------------------------------------------

    def _resolve_call(
        self, callee: ExprInfo, args: list[ExprInfo], loc: SourceLocation
    ) -> ExprInfo:
        # T(args): construction of a temporary
        if callee.is_type:
            self._record_ctor(callee.type, args, loc)
            return ExprInfo(callee.type)
        best: Optional[Routine] = None
        if callee.routines:
            best = self._pick_overload(callee.routines, args)
        if callee.templates:
            # deduction may beat an existing (e.g. previously
            # instantiated) overload whose parameter types only convert;
            # ties go to the non-template (the C++ preference)
            best_score = self._overload_score(best, args) if best is not None else -1
            if best_score < 10 + 5 * len(args):
                assert self.engine is not None
                for t in callee.templates:
                    inst = self.engine.instantiate_function_template(
                        t, [a.type for a in args], callee.explicit_args, loc
                    )
                    if inst is None:
                        continue
                    if self._overload_score(inst, args) > best_score:
                        best = inst
                    break
        if best is not None:
            self._record_call(best, loc, via_object=True, indirection=callee.via_indirection)
            return ExprInfo(self._return_type_of(best))
        # object with operator()
        cls = callee.type.class_decl()
        if cls is not None:
            ops = cls.find_routines("operator()")
            if ops:
                r = self._pick_overload(ops, args)
                if r is not None:
                    self._record_call(r, loc, via_object=True)
                    return ExprInfo(self._return_type_of(r))
        if not callee.type.is_dependent and callee.name and not callee.callable:
            self.sink.note(f"call target {callee.name!r} not resolved", loc)
        return self._unknown("call")

    def _overload_score(self, r: Routine, args: list[ExprInfo]) -> int:
        """The same viability score _pick_overload uses, for one routine."""
        score = 0
        if len(args) == len(r.parameters):
            score += 10
        for a, p in zip(args, r.parameters):
            score += _type_match_score(a.type, p.type)
        return score

    def _pick_overload(
        self, candidates: list[Routine], args: list[ExprInfo]
    ) -> Optional[Routine]:
        """Arity-first overload selection with a light type-match score."""
        viable: list[tuple[int, Routine]] = []
        for r in candidates:
            params = r.parameters
            required = sum(1 for p in params if p.default_text is None)
            if not (required <= len(args) <= len(params)) and not r.signature.ellipsis:
                continue
            score = 0
            if len(args) == len(params):
                score += 10
            for a, p in zip(args, params):
                score += _type_match_score(a.type, p.type)
            viable.append((score, r))
        if not viable:
            # No candidate admits this arity.  The source presumably
            # compiles (extraction, not validation, is our job), so fall
            # back to the nearest-arity candidate rather than losing the
            # call reference.
            nearest = min(
                candidates, key=lambda r: abs(len(r.parameters) - len(args))
            )
            return nearest
        viable.sort(key=lambda x: -x[0])
        return viable[0][1]

    def _try_template_call(
        self,
        templates: list[Template],
        args: list[ExprInfo],
        explicit_args: Optional[list[Type]],
        loc: SourceLocation,
    ) -> Optional[ExprInfo]:
        assert self.engine is not None
        for t in templates:
            r = self.engine.instantiate_function_template(
                t, [a.type for a in args], explicit_args, loc
            )
            if r is not None:
                self._record_call(r, loc, via_object=False)
                return ExprInfo(self._return_type_of(r))
        return None

    def _return_type_of(self, r: Routine) -> Type:
        if isinstance(r.signature, FunctionType):
            return r.signature.return_type
        return self.types.unknown(r.name)

    # -- call recording -------------------------------------------------------------------

    def _record_call(
        self,
        callee: Routine,
        loc: SourceLocation,
        via_object: bool,
        indirection: bool = False,
    ) -> None:
        """Record a static call reference and mark the callee used.

        Virtuality: a call is flagged virtual when the callee is declared
        virtual (pdbtree's ``(VIRTUAL)`` tag keys off the call site)."""
        caller = self.binder.current_routine
        if caller is not None:
            is_virtual = callee.virtuality is not Virtuality.NO
            caller.add_call(callee, is_virtual, loc)
        if self.engine is not None:
            self.engine.note_routine_used(callee)

    def _record_ctor(self, ty: Type, args: list[ExprInfo], loc: SourceLocation) -> None:
        """Record the constructor call implied by constructing a ``ty``."""
        cls = ty.class_decl()
        if cls is None:
            return
        ctors = cls.constructors()
        if not ctors:
            return  # implicit default ctor: no user routine to reference
        r = self._pick_overload(ctors, args)
        if r is None:
            r = ctors[0]
        self._record_call(r, loc, via_object=True)

    def _ensure_destructor(self, cls: Class) -> Optional[Routine]:
        return cls.destructor()


def _type_match_score(arg: Type, param: Type) -> int:
    """Loose compatibility score between an argument and parameter type."""
    if arg is param:
        return 5
    sa, sp = arg.strip(), param.strip()
    if sa is sp:
        return 4
    ca, cp = sa.class_decl(), sp.class_decl()
    if ca is not None and cp is not None:
        if ca is cp:
            return 4
        if ca.derived_from(cp):
            return 3
        return 0
    if (ca is None) == (cp is None):
        return 1  # both builtin-ish: convertible
    return 0


def _render_args(args: Optional[list[Type]]) -> str:
    if not args:
        return ""
    return "<" + ", ".join(a.spelling() for a in args) + ">"
