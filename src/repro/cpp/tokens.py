"""Token definitions for the C++ lexer.

The lexer produces a flat stream of :class:`Token`.  Keywords are *not* a
separate token kind: the preprocessor must treat every identifier uniformly
(any identifier can name a macro), so keyword classification happens at
parse time via :data:`KEYWORDS`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cpp.source import SourceLocation


class TokenKind(enum.Enum):
    """Lexical token categories."""
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    EOF = "eof"


#: C++ keywords recognised by the parser (C++98 plus the subset we support).
KEYWORDS = frozenset(
    """
    asm auto bool break case catch char class const const_cast continue
    default delete do double dynamic_cast else enum explicit export extern
    false float for friend goto if inline int long mutable namespace new
    operator private protected public register reinterpret_cast return
    short signed sizeof static static_cast struct switch template this
    throw true try typedef typeid typename union unsigned using virtual
    void volatile wchar_t while
    """.split()
)

#: Multi-character punctuators, longest first so the lexer can maximal-munch.
PUNCTUATORS = sorted(
    [
        "<<=", ">>=", "...", "->*", "::", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
        "^=", "->", ".*", "##", "(", ")", "[", "]", "{", "}", "<", ">", ";",
        ":", ",", ".", "?", "+", "-", "*", "/", "%", "&", "|", "^", "~",
        "!", "=", "#",
    ],
    key=len,
    reverse=True,
)

#: Punctuators that can begin a type-id or expression — used by the parser's
#: template-argument disambiguation.
OPEN_BRACKETS = {"(": ")", "[": "]", "{": "}"}


@dataclass
class Token:
    """One lexical token.

    ``at_line_start`` and ``leading_space`` drive preprocessor directive
    detection and faithful macro-text reconstruction.  ``expanded_from``
    names the macro whose expansion produced this token (None for tokens
    straight from a file); the *location* always points at real source —
    for expanded tokens, at the macro invocation site.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    at_line_start: bool = False
    leading_space: bool = False
    expanded_from: str | None = None

    def is_ident(self, text: str | None = None) -> bool:
        return self.kind is TokenKind.IDENT and (text is None or self.text == text)

    def is_keyword(self, text: str | None = None) -> bool:
        return (
            self.kind is TokenKind.IDENT
            and self.text in KEYWORDS
            and (text is None or self.text == text)
        )

    def is_punct(self, text: str | None = None) -> bool:
        return self.kind is TokenKind.PUNCT and (text is None or self.text == text)

    @property
    def is_eof(self) -> bool:
        return self.kind is TokenKind.EOF

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value} {self.text!r} @{self.location})"


def tokens_to_text(tokens: list[Token]) -> str:
    """Reconstruct readable source text from a token list.

    Used for the PDB ``ttext``/``mtext`` attributes (the stored template
    and macro texts) — spacing is normalised from the lexer's
    ``leading_space`` flags, newlines are collapsed.
    """
    parts: list[str] = []
    for i, tok in enumerate(tokens):
        if tok.kind is TokenKind.EOF:
            break
        if i > 0 and (tok.leading_space or tok.at_line_start):
            parts.append(" ")
        parts.append(tok.text)
    return "".join(parts)
