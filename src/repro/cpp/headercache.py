"""Cross-TU header cache: memoized per-header preprocessing.

``compile_many``/shared-``Frontend`` builds preprocess and re-lex every
shared header once per translation unit.  The bulk of that work depends
only on (a) the header's text and (b) the definition state of the
macros the header's expansion actually *consults* — so a subtree of
preprocessing can be replayed into a later TU whenever both match
(cf. ClangJIT's memoization of frontend work across uses).

The cache intercepts the preprocessor at the ``#include`` boundary:

* on a **miss** it processes the subtree normally while recording every
  observable effect — the token stream, macro definitions/undefinitions
  (in order), ``MacroRecord`` events, files consumed, include-graph
  edges — plus the *read-set*: for every macro name whose state the
  subtree consulted (expansion checks, ``#ifdef``, ``defined``), the
  structural signature of the definition seen (or None for undefined);
* on a **lookup** an entry matches only if the header text is unchanged
  and every read-set entry matches the current macro state, so a
  ``#define`` before the ``#include`` that the header actually reads
  creates a separate variant (no false sharing), while unrelated macro
  churn does not;
* on a **hit** the recorded effects are replayed — identical tokens,
  identical macro-state transitions, identical PDB-visible side effects
  (``ma`` records, ``sinc`` edges, consumed-file order).

Include guards fall out naturally: the guarded second inclusion is its
own (empty-token) variant keyed on the guard macro being defined.
Subtrees that emit diagnostics are never cached, so warnings and errors
repeat per TU exactly as without the cache.  Reads are captured by
wrapping the preprocessor's macro table in a tracking dict, so the
expansion machinery itself is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: include-stack depth bound, mirrored from the preprocessor's limit so
#: replay validity can account for a cached subtree's own nesting
MAX_INCLUDE_DEPTH = 200

#: beyond this include depth the preprocessor processes live instead of
#: consulting the cache: the record path costs two Python frames per
#: nesting level, which a pathological near-limit chain (depth 200)
#: cannot afford, and real header graphs are far shallower — an outer
#: recording still tracks live-processed subtrees correctly
CACHE_DEPTH_LIMIT = 16


def _macro_sig(macro) -> Optional[tuple]:
    """Structural signature of a macro definition (None if undefined).

    Two definitions with equal signatures expand identically at any use
    site: parameter list, variadic flag, and the body's token kinds,
    spellings and spacing.  Body token *locations* are excluded — they
    never influence expansion output (expanded tokens take the
    invocation site's location).  Memoized on the macro object, which
    is immutable by convention (redefinition replaces it).
    """
    if macro is None:
        return None
    sig = getattr(macro, "_sig", None)
    if sig is None:
        sig = (
            None if macro.params is None else tuple(macro.params),
            macro.variadic,
            tuple(
                (t.kind, t.text, t.leading_space, t.at_line_start)
                for t in macro.body
            ),
        )
        macro._sig = sig
    return sig


class _TrackingMacros(dict):
    """The preprocessor's macro table, instrumented for read/write
    tracking.  With no recording active every operation is one extra
    attribute load and truth test over a plain dict."""

    __slots__ = ("cache",)

    def __contains__(self, name):
        recs = self.cache._recs
        if recs:
            _note_read(recs, name, dict.get(self, name))
        return dict.__contains__(self, name)

    def __getitem__(self, name):
        recs = self.cache._recs
        if recs:
            _note_read(recs, name, dict.get(self, name))
        return dict.__getitem__(self, name)

    def get(self, name, default=None):
        recs = self.cache._recs
        if recs:
            _note_read(recs, name, dict.get(self, name))
        return dict.get(self, name, default)

    def __setitem__(self, name, macro):
        for rec in self.cache._recs:
            rec.written.add(name)
            rec.macro_events.append(("def", name, macro))
        dict.__setitem__(self, name, macro)

    def pop(self, name, *default):
        for rec in self.cache._recs:
            rec.written.add(name)
            rec.macro_events.append(("undef", name))
        return dict.pop(self, name, *default)


def _note_read(recs: list, name: str, macro) -> None:
    """Record a macro-state consultation into every active recording
    that has not locally (re)defined the name — a locally-written macro
    is not an external dependency of that subtree."""
    sig = _macro_sig(macro)
    for rec in recs:
        if name in rec.written or name in rec.reads:
            continue
        rec.reads[name] = sig


@dataclass
class _Recording:
    """In-progress capture of one ``#include`` subtree."""

    base_depth: int  # include-stack size when the recording started
    records_start: int  # len(pp.macro_records) at start
    diag_start: int  # len(pp.sink.diagnostics) at start
    reads: dict = field(default_factory=dict)  # name -> signature | None
    written: set = field(default_factory=set)
    macro_events: list = field(default_factory=list)
    consumed: list = field(default_factory=list)  # first-use order
    consumed_seen: set = field(default_factory=set)
    edges: list = field(default_factory=list)  # (includer, includee)
    stack_checked: set = field(default_factory=set)
    #: nested resolutions: (spec, angled, includer, target, target_text)
    include_checks: list = field(default_factory=list)
    max_rel_depth: int = 0

    def note_file(self, file, abs_depth: int) -> None:
        if file not in self.consumed_seen:
            self.consumed_seen.add(file)
            self.consumed.append(file)
        rel = abs_depth - self.base_depth
        if rel > self.max_rel_depth:
            self.max_rel_depth = rel


@dataclass
class _Entry:
    """One cached (header text, macro environment) preprocessing variant."""

    src_text: str  # header text at record time (content check)
    reads: dict  # name -> signature the subtree observed
    macro_events: list  # ordered ("def", name, Macro) | ("undef", name)
    records: list  # MacroRecord objects appended by the subtree
    consumed: list  # files consumed, subtree-first-use order
    edges: list  # include-graph edges added
    tokens: list  # the subtree's output token stream
    stack_checked: frozenset  # files whose in-stack state was consulted
    include_checks: list  # nested resolutions to re-verify at lookup
    max_rel_depth: int  # deepest include nesting relative to the entry


class HeaderCache:
    """Frontend-scoped memo of preprocessed ``#include`` subtrees.

    One instance is shared by every ``Preprocessor`` a ``Frontend``
    creates, so headers preprocessed for one TU replay into the next.
    ``hits``/``misses``/``uncacheable`` feed ``repro.obs`` counters and
    the pdbbuild ``--stats-json`` ``header_cache`` section.
    """

    def __init__(self):
        self._entries: dict = {}  # SourceFile -> list[_Entry]
        self._recs: list[_Recording] = []  # active recordings, outermost first
        self.hits = 0
        self.misses = 0
        #: subtrees that emitted diagnostics and were not stored
        self.uncacheable = 0

    def wrap_macro_table(self) -> _TrackingMacros:
        """The macro dict a cache-enabled preprocessor must use."""
        table = _TrackingMacros()
        table.cache = self
        return table

    # -- the #include boundary -------------------------------------------

    def include(self, pp, target, loc) -> list:
        """Produce the token stream for ``#include``-ing ``target``:
        replay a matching cached variant, or process and record one."""
        stack = pp._include_stack
        for e in self._entries.get(target, ()):
            if e.src_text is not target.text and e.src_text != target.text:
                continue  # content changed in place: stale variant
            if len(stack) + e.max_rel_depth - 1 > MAX_INCLUDE_DEPTH:
                continue  # deeper context could trip the depth limit
            if any(f in e.stack_checked for f in stack):
                continue  # re-inclusion skips the subtree observed
            stale = False
            for spec, angled, includer, dep, dep_text in e.include_checks:
                # a re-registered or newly shadowing file changes what a
                # nested #include resolves to; an in-place text change
                # changes what it expands to — both invalidate the entry
                resolved = pp.manager.resolve_include(spec, angled, includer)
                if resolved is not dep or (
                    dep_text is not dep.text and dep_text != dep.text
                ):
                    stale = True
                    break
            if stale:
                continue
            macros = pp.macros
            ok = True
            for name, want in e.reads.items():
                # raw dict.get: the lookup itself must not record reads
                # into an outer recording (a hit propagates the entry's
                # read-set, which covers exactly what was consulted)
                have = _macro_sig(dict.get(macros, name))
                if have is not want and have != want:
                    ok = False
                    break
            if ok:
                return self._replay(pp, e)
        return self._record(pp, target, loc)

    def _replay(self, pp, e: _Entry) -> list:
        self.hits += 1
        macros = pp.macros
        # applied through the tracking table, so any *outer* recording
        # in progress captures the same events it would have seen live
        for ev in e.macro_events:
            if ev[0] == "def":
                macros[ev[1]] = ev[2]
            else:
                macros.pop(ev[1], None)
        pp.macro_records.extend(e.records)
        consumed = pp.consumed_files
        for f in e.consumed:
            if f not in consumed:
                consumed.append(f)
        recs = self._recs
        for a, b in e.edges:
            a.add_include(b)
            for rec in recs:
                rec.edges.append((a, b))
        if recs:
            # the replayed subtree's dependencies are the outer
            # recordings' dependencies too (signatures just validated,
            # so propagating the stored ones is exact)
            for name, sig in e.reads.items():
                for rec in recs:
                    if name in rec.written or name in rec.reads:
                        continue
                    rec.reads[name] = sig
            depth = len(pp._include_stack)
            for rec in recs:
                rec.stack_checked |= e.stack_checked
                rec.include_checks.extend(e.include_checks)
                for f in e.consumed:
                    rec.note_file(f, depth + 1)
                rel = depth + e.max_rel_depth - rec.base_depth
                if rel > rec.max_rel_depth:
                    rec.max_rel_depth = rel
        return e.tokens

    def _record(self, pp, target, loc) -> list:
        self.misses += 1
        rec = _Recording(
            base_depth=len(pp._include_stack),
            records_start=len(pp.macro_records),
            diag_start=len(pp.sink.diagnostics),
        )
        self._recs.append(rec)
        try:
            tokens = pp._process_file(target, loc)
        finally:
            self._recs.pop()
        if len(pp.sink.diagnostics) != rec.diag_start:
            # diagnostics must repeat per TU; never cache such subtrees
            self.uncacheable += 1
            return tokens
        entry = _Entry(
            src_text=target.text,
            reads=rec.reads,
            macro_events=rec.macro_events,
            records=pp.macro_records[rec.records_start :],
            consumed=rec.consumed,
            edges=rec.edges,
            tokens=tokens,
            stack_checked=frozenset(rec.stack_checked),
            include_checks=rec.include_checks,
            max_rel_depth=rec.max_rel_depth,
        )
        self._entries.setdefault(target, []).append(entry)
        return tokens

    # -- introspection ----------------------------------------------------

    @property
    def entry_count(self) -> int:
        return sum(len(v) for v in self._entries.values())
