"""Source files, locations, and include resolution.

The PDB format (paper Figure 3) refers to files by id (``so#66``) and to
positions as ``file line column`` triples; every IL construct must preserve
its original source position even through preprocessing and template
instantiation.  :class:`SourceManager` owns all files, assigns stable
ids in registration order, and resolves ``#include`` paths.

Files can be backed by the real filesystem or registered in memory (the
test corpora are in-memory), so the front end runs hermetically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in a source file (1-based line and column)."""

    file: "SourceFile"
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.file.name}:{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self!s})"


@dataclass
class SourceFile:
    """One source file: name, text, and the files it directly includes.

    ``includes`` records the *direct* textual inclusion relationships the
    preprocessor discovered (the PDB ``sinc`` attribute).  ``system`` marks
    files found via angle-bracket search paths (PDB renders their full
    path, cf. ``/pdt/include/kai/vector.h`` in paper Figure 3).
    """

    name: str
    text: str
    system: bool = False
    includes: list["SourceFile"] = field(default_factory=list)

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    def location(self, line: int, column: int) -> SourceLocation:
        return SourceLocation(self, line, column)

    def add_include(self, other: "SourceFile") -> None:
        if other not in self.includes:
            self.includes.append(other)

    def line_text(self, line: int) -> str:
        """Return the 1-based ``line`` of the file text (for diagnostics)."""
        lines = self.text.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""


class SourceManager:
    """Owns all source files; resolves and caches includes.

    Resolution order follows the traditional model: quoted includes search
    the including file's directory first, then the ``-I`` path list; angle
    includes search only the path list.  In-memory registrations take
    precedence over the filesystem, letting corpora shadow real headers.
    """

    def __init__(self, include_paths: Optional[list[str]] = None):
        self.include_paths: list[str] = list(include_paths or [])
        self._files: list[SourceFile] = []
        self._by_name: dict[str, SourceFile] = {}

    # -- registration ------------------------------------------------

    def register(self, name: str, text: str, system: bool = False) -> SourceFile:
        """Register an in-memory file; re-registering a name replaces it.

        Re-registering *unchanged* content keeps the existing object —
        include edges and header-cache entries are keyed on SourceFile
        identity, so multi-TU drivers may re-register their corpus per
        TU without invalidating either."""
        old = self._by_name.get(name)
        if old is not None and old.text == text and old.system == system:
            return old
        f = SourceFile(name=name, text=text, system=system)
        if old is not None:
            self._files[self._files.index(old)] = f
        else:
            self._files.append(f)
        self._by_name[name] = f
        return f

    def register_many(self, files: dict[str, str]) -> None:
        for name, text in files.items():
            self.register(name, text)

    # -- lookup ------------------------------------------------------

    @property
    def files(self) -> list[SourceFile]:
        return list(self._files)

    def get(self, name: str) -> Optional[SourceFile]:
        return self._by_name.get(name)

    def load(self, name: str) -> SourceFile:
        """Return the file named ``name``, reading from disk if needed."""
        f = self._by_name.get(name)
        if f is not None:
            return f
        path = Path(name)
        if not path.is_file():
            raise FileNotFoundError(name)
        return self.register(name, path.read_text())

    def resolve_include(
        self, spec: str, angled: bool, including: SourceFile
    ) -> Optional[SourceFile]:
        """Resolve an ``#include`` to a SourceFile, or None if not found."""
        candidates: list[tuple[str, bool]] = []
        if not angled:
            base = str(Path(including.name).parent)
            local = spec if base in ("", ".") else f"{base}/{spec}"
            candidates.append((local, False))
            candidates.append((spec, False))
        for inc in self.include_paths:
            candidates.append((f"{inc.rstrip('/')}/{spec}", True))
        if angled:
            candidates.append((spec, True))
        for cand, is_system in candidates:
            f = self._by_name.get(cand)
            if f is not None:
                return f
            path = Path(cand)
            if path.is_file():
                loaded = self.register(cand, path.read_text(), system=is_system)
                return loaded
        return None

    def inclusion_closure(self, roots: list[SourceFile]) -> list[SourceFile]:
        """All files reachable from ``roots`` via direct includes, in
        deterministic discovery order (roots first)."""
        seen: list[SourceFile] = []
        stack = list(roots)
        while stack:
            f = stack.pop(0)
            if f in seen:
                continue
            seen.append(f)
            stack.extend(inc for inc in f.includes if inc not in seen)
        return seen
