"""The front end's type system.

Mirrors the type taxonomy visible in PDB ``ty`` items (paper Figure 3):

========  ===========================================  ==============
ykind     meaning                                      example
========  ===========================================  ==============
bool/int/
float...  builtin types (with integer kind ``yikind``) ``ty#5 int``
ptr       pointer                                      ``int *``
ref       reference (``yref`` -> referenced type)      ``const int &``
tref      qualified reference to another type          ``const int``
array     array (element type, optional size)          ``int [10]``
func      function type (return, params, quals)        ``bool () const``
enum      enumeration
class     class types are referenced as ``cl#`` items
tparam    template type parameter (dependent)
dname     dependent qualified name (``T::iterator``)
========  ===========================================  ==============

Types are immutable and interned in a :class:`TypeTable`, so identity
comparison is structural equality, which keeps PDB type ids stable and
deduplicated across a translation unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpp.il import Class, Enum, Typedef


class Type:
    """Base class for all types. Subclasses are interned — never construct
    directly; go through :class:`TypeTable`."""

    kind: str = "?"

    def spelling(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.spelling()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spelling()!r}>"

    @property
    def is_dependent(self) -> bool:
        """True when the type mentions a template parameter."""
        return False

    def strip(self) -> "Type":
        """Peel typedefs and cv-qualifiers down to the underlying type."""
        return self

    def class_decl(self) -> Optional["Class"]:
        """The class declaration behind this type, if it is (or wraps) a
        class type — used for member lookup on object expressions."""
        return None


#: (name, yikind) for supported builtins. yikind follows EDG's convention
#: of reporting the underlying integer kind (bool is char-sized).
_BUILTINS: dict[str, tuple[str, str]] = {
    "void": ("void", ""),
    "bool": ("bool", "char"),
    "char": ("char", "char"),
    "signed char": ("char", "schar"),
    "unsigned char": ("char", "uchar"),
    "wchar_t": ("wchar", "wchar"),
    "short": ("int", "short"),
    "unsigned short": ("int", "ushort"),
    "int": ("int", "int"),
    "unsigned int": ("int", "uint"),
    "long": ("int", "long"),
    "unsigned long": ("int", "ulong"),
    "long long": ("int", "llong"),
    "unsigned long long": ("int", "ullong"),
    "float": ("float", ""),
    "double": ("double", ""),
    "long double": ("double", "long"),
    # Fortran 90 front end (paper Section 6's planned extension)
    "complex": ("complex", ""),
    "double complex": ("complex", "double"),
    "character(*)": ("fchar", ""),
}


@dataclass(frozen=True)
class BuiltinType(Type):
    name: str
    ykind: str
    yikind: str

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.ykind

    def spelling(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type
    kind = "ptr"

    def spelling(self) -> str:
        return f"{self.pointee.spelling()} *"

    @property
    def is_dependent(self) -> bool:
        return self.pointee.is_dependent


@dataclass(frozen=True)
class ReferenceType(Type):
    referenced: Type
    kind = "ref"

    def spelling(self) -> str:
        return f"{self.referenced.spelling()} &"

    @property
    def is_dependent(self) -> bool:
        return self.referenced.is_dependent

    def strip(self) -> Type:
        return self.referenced.strip()

    def class_decl(self) -> Optional["Class"]:
        return self.referenced.class_decl()


@dataclass(frozen=True)
class QualifiedType(Type):
    """cv-qualified view of another type; PDB renders as ``tref``."""

    base: Type
    const: bool = False
    volatile: bool = False
    kind = "tref"

    def spelling(self) -> str:
        quals = []
        if self.const:
            quals.append("const")
        if self.volatile:
            quals.append("volatile")
        return " ".join(quals + [self.base.spelling()])

    @property
    def is_dependent(self) -> bool:
        return self.base.is_dependent

    def strip(self) -> Type:
        return self.base.strip()

    def class_decl(self) -> Optional["Class"]:
        return self.base.class_decl()


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    size: Optional[int] = None
    kind = "array"

    def spelling(self) -> str:
        n = "" if self.size is None else str(self.size)
        return f"{self.element.spelling()} [{n}]"

    @property
    def is_dependent(self) -> bool:
        return self.element.is_dependent


@dataclass(frozen=True)
class FunctionType(Type):
    """A function signature (the PDB ``rsig`` target)."""

    return_type: Type
    parameters: tuple[Type, ...]
    ellipsis: bool = False
    const: bool = False
    exceptions: tuple[Type, ...] = ()
    has_throw_spec: bool = False
    kind = "func"

    def spelling(self) -> str:
        params = ", ".join(p.spelling() for p in self.parameters)
        if self.ellipsis:
            params = f"{params}, ..." if params else "..."
        s = f"{self.return_type.spelling()} ({params})"
        if self.const:
            s += " const"
        return s

    @property
    def is_dependent(self) -> bool:
        return self.return_type.is_dependent or any(p.is_dependent for p in self.parameters)


class ClassType(Type):
    """A class/struct/union type; PDB references these as ``cl#`` items."""

    kind = "class"

    def __init__(self, decl: "Class"):
        self.decl = decl

    def spelling(self) -> str:
        return self.decl.full_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassType) and other.decl is self.decl

    def __hash__(self) -> int:
        return hash(("class", id(self.decl)))

    def class_decl(self) -> Optional["Class"]:
        return self.decl


class EnumType(Type):
    """An enumeration type (PDB ``ykind enum``)."""

    kind = "enum"

    def __init__(self, decl: "Enum"):
        self.decl = decl

    def spelling(self) -> str:
        return self.decl.full_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EnumType) and other.decl is self.decl

    def __hash__(self) -> int:
        return hash(("enum", id(self.decl)))


class TypedefType(Type):
    """A named alias; ``strip()`` reaches the underlying type."""

    kind = "typedef"

    def __init__(self, decl: "Typedef"):
        self.decl = decl

    def spelling(self) -> str:
        return self.decl.full_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TypedefType) and other.decl is self.decl

    def __hash__(self) -> int:
        return hash(("typedef", id(self.decl)))

    @property
    def is_dependent(self) -> bool:
        return self.decl.underlying.is_dependent

    def strip(self) -> Type:
        return self.decl.underlying.strip()

    def class_decl(self) -> Optional["Class"]:
        return self.decl.underlying.class_decl()


@dataclass(frozen=True)
class TemplateParamType(Type):
    """A template type parameter (``class Object``) — dependent."""

    name: str
    index: int
    kind = "tparam"

    def spelling(self) -> str:
        return self.name

    @property
    def is_dependent(self) -> bool:
        return True


@dataclass(frozen=True)
class DependentNameType(Type):
    """``typename Qualifier::name`` where Qualifier is dependent."""

    qualifier: Type
    name: str
    kind = "dname"

    def spelling(self) -> str:
        return f"{self.qualifier.spelling()}::{self.name}"

    @property
    def is_dependent(self) -> bool:
        return True


@dataclass(frozen=True)
class NonTypeArg(Type):
    """A non-type template argument (``10``, ``N``), preserved as text.

    Participates in template argument lists alongside real types so
    ``Buffer<int, 16>`` and ``Buffer<int, 32>`` intern as distinct
    instantiations; the front end does not evaluate the expression.
    """

    text: str
    dependent: bool = False
    kind = "nontype"

    def spelling(self) -> str:
        return self.text

    @property
    def is_dependent(self) -> bool:
        return self.dependent


class TemplateIdType(Type):
    """A template-id (``Stack<Object>``) naming a class-template
    instantiation that cannot be resolved yet because one or more
    arguments are dependent.  The instantiation engine resolves these to
    :class:`ClassType` once arguments become concrete."""

    kind = "templid"

    def __init__(self, template, args: tuple[Type, ...]):
        self.template = template  # il.Template (class template)
        self.args = args

    def spelling(self) -> str:
        inner = ", ".join(a.spelling() for a in self.args)
        return f"{self.template.name}<{inner}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TemplateIdType)
            and other.template is self.template
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("templid", id(self.template), self.args))

    @property
    def is_dependent(self) -> bool:
        return True


@dataclass(frozen=True)
class UnknownType(Type):
    """Error-recovery placeholder; never matches anything."""

    hint: str = ""
    kind = "unknown"

    def spelling(self) -> str:
        return self.hint or "<unknown>"


class TypeTable:
    """Interns types so structural equality implies identity of records.

    The IL Analyzer walks :attr:`all_types` in creation order to assign
    ``ty#`` ids, so ordering determinism matters.
    """

    def __init__(self) -> None:
        self._cache: dict[object, Type] = {}
        self.all_types: list[Type] = []
        self.builtins: dict[str, BuiltinType] = {}
        for name, (ykind, yikind) in _BUILTINS.items():
            t = BuiltinType(name, ykind, yikind)
            self.builtins[name] = t

    def _intern(self, key: object, make) -> Type:
        t = self._cache.get(key)
        if t is None:
            t = make()
            self._cache[key] = t
            self.all_types.append(t)
        return t

    def builtin(self, name: str) -> BuiltinType:
        t = self.builtins[name]
        return self._intern(("b", name), lambda: t)  # type: ignore[return-value]

    @property
    def void(self) -> BuiltinType:
        return self.builtin("void")

    @property
    def int_(self) -> BuiltinType:
        return self.builtin("int")

    @property
    def bool_(self) -> BuiltinType:
        return self.builtin("bool")

    @property
    def double(self) -> BuiltinType:
        return self.builtin("double")

    def pointer_to(self, t: Type) -> PointerType:
        return self._intern(("p", t), lambda: PointerType(t))  # type: ignore[return-value]

    def reference_to(self, t: Type) -> Type:
        if isinstance(t, ReferenceType):  # reference collapsing
            return t
        return self._intern(("r", t), lambda: ReferenceType(t))

    def qualified(self, t: Type, const: bool = False, volatile: bool = False) -> Type:
        if not const and not volatile:
            return t
        if isinstance(t, QualifiedType):
            const = const or t.const
            volatile = volatile or t.volatile
            t = t.base
        return self._intern(("q", t, const, volatile), lambda: QualifiedType(t, const, volatile))

    def array_of(self, t: Type, size: Optional[int] = None) -> Type:
        return self._intern(("a", t, size), lambda: ArrayType(t, size))

    def function(
        self,
        return_type: Type,
        parameters: list[Type],
        ellipsis: bool = False,
        const: bool = False,
        exceptions: tuple[Type, ...] = (),
        has_throw_spec: bool = False,
    ) -> FunctionType:
        key = ("f", return_type, tuple(parameters), ellipsis, const, exceptions, has_throw_spec)
        return self._intern(
            key,
            lambda: FunctionType(
                return_type, tuple(parameters), ellipsis, const, exceptions, has_throw_spec
            ),
        )  # type: ignore[return-value]

    def class_type(self, decl: "Class") -> ClassType:
        return self._intern(("c", id(decl)), lambda: ClassType(decl))  # type: ignore[return-value]

    def enum_type(self, decl: "Enum") -> EnumType:
        return self._intern(("e", id(decl)), lambda: EnumType(decl))  # type: ignore[return-value]

    def typedef_type(self, decl: "Typedef") -> TypedefType:
        return self._intern(("td", id(decl)), lambda: TypedefType(decl))  # type: ignore[return-value]

    def template_param(self, name: str, index: int) -> TemplateParamType:
        return self._intern(("tp", name, index), lambda: TemplateParamType(name, index))  # type: ignore[return-value]

    def dependent_name(self, qualifier: Type, name: str) -> DependentNameType:
        return self._intern(("dn", qualifier, name), lambda: DependentNameType(qualifier, name))  # type: ignore[return-value]

    def template_id(self, template, args: list[Type]) -> TemplateIdType:
        key = ("ti", id(template), tuple(args))
        return self._intern(key, lambda: TemplateIdType(template, tuple(args)))  # type: ignore[return-value]

    def nontype_arg(self, text: str, dependent: bool = False) -> NonTypeArg:
        return self._intern(("nt", text, dependent), lambda: NonTypeArg(text, dependent))  # type: ignore[return-value]

    def unknown(self, hint: str = "") -> UnknownType:
        return self._intern(("u", hint), lambda: UnknownType(hint))  # type: ignore[return-value]

    # -- substitution ----------------------------------------------------

    def substitute(self, t: Type, bindings: dict[str, Type]) -> Type:
        """Replace template parameters in ``t`` per ``bindings``.

        The workhorse of template instantiation: rebuilds the type
        bottom-up through the table so results stay interned.
        """
        if not t.is_dependent:
            return t
        if isinstance(t, TemplateParamType):
            return bindings.get(t.name, t)
        if isinstance(t, PointerType):
            return self.pointer_to(self.substitute(t.pointee, bindings))
        if isinstance(t, ReferenceType):
            return self.reference_to(self.substitute(t.referenced, bindings))
        if isinstance(t, QualifiedType):
            return self.qualified(self.substitute(t.base, bindings), t.const, t.volatile)
        if isinstance(t, ArrayType):
            return self.array_of(self.substitute(t.element, bindings), t.size)
        if isinstance(t, FunctionType):
            return self.function(
                self.substitute(t.return_type, bindings),
                [self.substitute(p, bindings) for p in t.parameters],
                t.ellipsis,
                t.const,
                tuple(self.substitute(e, bindings) for e in t.exceptions),
                t.has_throw_spec,
            )
        if isinstance(t, DependentNameType):
            # Member-name resolution of a now-concrete qualifier happens in
            # the instantiation engine, which has scope access; keep the
            # structural form here.
            return self.dependent_name(self.substitute(t.qualifier, bindings), t.name)
        if isinstance(t, TemplateIdType):
            # Arguments may become concrete; the instantiation engine turns
            # fully-concrete template-ids into ClassTypes.
            return self.template_id(
                t.template, [self.substitute(a, bindings) for a in t.args]
            )
        if isinstance(t, NonTypeArg):
            bound = bindings.get(t.text)
            if bound is not None:
                return bound
            return self.nontype_arg(t.text, dependent=False)
        return t
