"""EDG-substitute C++ front end.

This subpackage is the substrate the paper depends on: a C++-subset front
end producing a high-level intermediate language (IL) tree that preserves
original names and source locations, with an EDG-style template
instantiation engine supporting the "used" instantiation mode the paper
relies on (Section 2 of the paper).

Public entry point::

    from repro.cpp import Frontend, FrontendOptions
    fe = Frontend(FrontendOptions(include_paths=[...]))
    tree = fe.compile(["TestStackAr.cpp"])

The resulting :class:`repro.cpp.il.ILTree` is the input to the IL Analyzer
(:mod:`repro.analyzer`).
"""

from repro.cpp.diagnostics import CppError, Diagnostic, DiagnosticSink, TooManyErrors
from repro.cpp.frontend import Frontend, FrontendOptions, InstantiationMode
from repro.cpp.source import SourceFile, SourceLocation, SourceManager

__all__ = [
    "CppError",
    "Diagnostic",
    "DiagnosticSink",
    "TooManyErrors",
    "Frontend",
    "FrontendOptions",
    "InstantiationMode",
    "SourceFile",
    "SourceLocation",
    "SourceManager",
]
