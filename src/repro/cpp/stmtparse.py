"""Statement parsing for function bodies.

Bodies are parsed for one purpose: populating the routine's static call
references (PDB ``rcall``).  Beyond plain calls (handled in
:mod:`exprparse`), the statement level contributes the *lifetime* calls
the paper singles out (Section 3.1): a local object declaration records a
constructor call at the declaration site, and a destructor call at the
end of its enclosing scope — "PDT must process all contexts in which the
lifetimes are handled in order to determine the calling locations."

Declaration-vs-expression disambiguation is resolution-driven: a
statement is a declaration iff its leading tokens parse as a type *and*
the named entity actually denotes a type in the current scope.
"""

from __future__ import annotations


from repro.cpp.cpptypes import (
    ClassType,
    PointerType,
    QualifiedType,
    ReferenceType,
    Type,
    TypedefType,
)
from repro.cpp.diagnostics import CppError, TooManyErrors
from repro.cpp.exprparse import ExprInfo, ExprParserMixin
from repro.cpp.scope import LocalVar
from repro.cpp.source import SourceLocation
from repro.cpp.tokens import TokenKind

def _owned_class(t: Type):
    """The class whose object a variable of type ``t`` *owns* — None for
    references and pointers (no lifetime begins or ends with them)."""
    while isinstance(t, (QualifiedType, TypedefType)):
        t = t.base if isinstance(t, QualifiedType) else t.decl.underlying
    if isinstance(t, (ReferenceType, PointerType)):
        return None
    if isinstance(t, ClassType):
        return t.decl
    return None


#: keywords that begin a statement we dispatch on directly.
_STMT_KEYWORDS = frozenset(
    "if while do for return break continue switch case default try goto".split()
)


class StmtParserMixin(ExprParserMixin):
    """Statement grammar; mixed into the full Parser."""

    # -- blocks ------------------------------------------------------------

    def parse_compound_statement(self) -> None:
        """Parse ``{ ... }`` with its own scope; destructor calls for
        class-typed locals are recorded at the closing brace."""
        open_tok = self.expect("{")
        self.binder.push_block()
        try:
            while not self.at("}"):
                if self.at_eof:
                    raise CppError("unterminated block", open_tok.location)
                self.parse_statement()
        finally:
            close_loc = self.cur.location
            scope = self.binder.pop_block()
            self._record_scope_destructors(scope, close_loc)
        self.expect("}")

    def _record_scope_destructors(
        self, scope: dict[str, LocalVar], loc: SourceLocation
    ) -> None:
        """Locals die in reverse declaration order at scope end.

        Only *objects* die: locals of reference or pointer type do not
        end any lifetime."""
        for var in reversed(list(scope.values())):
            cls = _owned_class(var.type)
            if cls is None:
                continue
            dtor = cls.destructor()
            if dtor is not None:
                self._record_call(dtor, loc, via_object=True)

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> None:
        t = self.cur
        if t.is_punct("{"):
            self.parse_compound_statement()
            return
        if t.is_punct(";"):
            self.advance()
            return
        if t.kind is TokenKind.IDENT and t.text in _STMT_KEYWORDS:
            getattr(self, f"_parse_{t.text}_statement")()
            return
        if t.is_ident("throw"):
            self._parse_throw()
            self.expect(";")
            return
        if self._statement_is_declaration():
            self._parse_declaration_statement()
            return
        self.parse_comma_expression()
        self.expect(";")

    # -- control flow ------------------------------------------------------------

    def _parse_if_statement(self) -> None:
        self.expect("if")
        self.expect("(")
        self._parse_condition()
        self.expect(")")
        self.parse_statement()
        if self.accept("else"):
            self.parse_statement()

    def _parse_while_statement(self) -> None:
        self.expect("while")
        self.expect("(")
        self._parse_condition()
        self.expect(")")
        self.parse_statement()

    def _parse_do_statement(self) -> None:
        self.expect("do")
        self.parse_statement()
        self.expect("while")
        self.expect("(")
        self.parse_comma_expression()
        self.expect(")")
        self.expect(";")

    def _parse_for_statement(self) -> None:
        self.expect("for")
        self.expect("(")
        self.binder.push_block()  # for-init declarations scope to the loop
        try:
            if not self.at(";"):
                if self._statement_is_declaration():
                    self._parse_declaration_statement(terminator=";")
                else:
                    self.parse_comma_expression()
                    self.expect(";")
            else:
                self.advance()
            if not self.at(";"):
                self._parse_condition()
            self.expect(";")
            if not self.at(")"):
                self.parse_comma_expression()
            self.expect(")")
            self.parse_statement()
        finally:
            scope = self.binder.pop_block()
            self._record_scope_destructors(scope, self.cur.location)

    def _parse_switch_statement(self) -> None:
        self.expect("switch")
        self.expect("(")
        self._parse_condition()
        self.expect(")")
        self.parse_statement()

    def _parse_case_statement(self) -> None:
        self.expect("case")
        # constant-expression up to ":"
        depth = 0
        while not self.at_eof:
            if self.at(":") and depth == 0:
                break
            if self.cur.text in ("(", "[", "?"):
                depth += 1
            elif self.cur.text in (")", "]", ":") and depth > 0:
                depth -= 1
            self.advance()
        self.expect(":")

    def _parse_default_statement(self) -> None:
        self.expect("default")
        self.expect(":")

    def _parse_return_statement(self) -> None:
        self.expect("return")
        if not self.at(";"):
            self.parse_comma_expression()
        self.expect(";")

    def _parse_break_statement(self) -> None:
        self.expect("break")
        self.expect(";")

    def _parse_continue_statement(self) -> None:
        self.expect("continue")
        self.expect(";")

    def _parse_goto_statement(self) -> None:
        self.expect("goto")
        self.expect_ident()
        self.expect(";")

    def _parse_try_statement(self) -> None:
        self.expect("try")
        self.parse_compound_statement()
        while self.at("catch"):
            self.advance()
            self.expect("(")
            self.binder.push_block()
            try:
                if self.at("..."):
                    self.advance()
                else:
                    base = self.parse_type_specifier()
                    d = self.parse_declarator(base, abstract=True)
                    if d.name:
                        self.binder.declare_local(
                            d.name, d.type or base, d.name_location or self.loc()
                        )
                self.expect(")")
                self.parse_compound_statement()
            finally:
                self.binder.pop_block()

    def _parse_condition(self) -> None:
        """A condition: expression, or a declaration (``if (T* p = ...)``)."""
        if self._statement_is_declaration(condition=True):
            base = self.parse_type_specifier()
            d = self.parse_declarator(base)
            if d.name:
                self.binder.declare_local(
                    d.name, d.type or base, d.name_location or self.loc()
                )
            if self.accept("="):
                self._parse_assignment()
        else:
            self.parse_comma_expression()

    # -- declaration statements -------------------------------------------------------

    def _statement_is_declaration(self, condition: bool = False) -> bool:
        """Resolution-driven disambiguation: the statement is a
        declaration iff a type parses *and* a declarator plausibly follows."""
        if self.starts_decl_specifier():
            return True
        if self.cur.kind is not TokenKind.IDENT:
            return False
        mark = self.mark()
        try:
            self.parse_type_specifier()
        except TooManyErrors:
            raise
        except CppError:
            self.rewind(mark)
            return False
        ok = (
            self.at_plain_ident()
            or self.at("*")
            or self.at("&")
            or self.at("~")  # unlikely; defensive
        )
        # "x * y;" where x is a variable already failed type parse; here the
        # type parsed, so ident/*/& means a declarator follows.
        self.rewind(mark)
        return ok

    def _parse_declaration_statement(self, terminator: str = ";") -> None:
        # consume storage-class specifiers valid at block scope
        while self.at_any("static", "const", "register", "extern"):
            if self.at("const"):
                break  # const binds to the type; let the type parser see it
            self.advance()
        base = self.parse_type_specifier()
        while True:
            d = self.parse_declarator(base, init_paren_ok=True)
            loc = d.name_location or self.loc()
            var_type = d.type or base
            args: list[ExprInfo] = []
            ctor_known = False
            if self.at("("):
                # T x(args): direct initialisation
                args = self._parse_call_args()
                ctor_known = True
            elif self.accept("="):
                init = self._parse_assignment()
                args = [init]
                ctor_known = True
            if d.name:
                self.binder.declare_local(d.name, var_type, loc)
                self._record_local_construction(var_type, args, ctor_known, loc)
            if self.accept(","):
                continue
            break
        self.expect(terminator)

    def _record_local_construction(
        self,
        var_type: Type,
        args: list[ExprInfo],
        ctor_known: bool,
        loc: SourceLocation,
    ) -> None:
        """A class-typed local begins its lifetime here: record the
        constructor call (default ctor when no initialiser)."""
        cls = _owned_class(var_type)
        if cls is None:
            return
        self._record_ctor(var_type, args if ctor_known else [], loc)
