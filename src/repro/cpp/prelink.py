"""Simulation of EDG's automatic (link-time) instantiation scheme.

Paper Section 2: by default, "compiling source files generates object
files and template information files indicating potential instantiations.
At link time, when the prelinker encounters references to undefined
template entities in object files, instantiations are assigned to
instantiation request files.  The source files needed for instantiation
are then re-compiled.  These steps continue until all templates are
instantiated.  Unfortunately, this process does not record and
instantiate templates in the IL."

This module replays that loop over a set of translation units compiled in
``PRELINK`` mode, producing the convergence record bench E11 reports:
how many link/recompile rounds the closure takes, how many requests each
round assigns, and — the paper's point — that the final IL contains no
instantiation subtrees, whereas used-mode ILs do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpp.frontend import Frontend
from repro.cpp.il import ILTree
from repro.cpp.instantiate import InstantiationMode


@dataclass
class ObjectFile:
    """Simulated compilation output of one TU under the automatic scheme."""

    name: str
    tree: ILTree
    #: mangled names of template entities this object refers to
    undefined_refs: set[str] = field(default_factory=set)
    #: entities whose instantiations have been assigned to this object
    assigned: set[str] = field(default_factory=set)
    #: potential instantiations (the ".ti" template information file)
    potential: set[str] = field(default_factory=set)
    recompiles: int = 0


@dataclass
class PrelinkRound:
    """One prelinker iteration: requests assigned, recompiles issued."""

    round_no: int
    new_requests: int
    recompiled: list[str]


@dataclass
class PrelinkResult:
    objects: list[ObjectFile]
    rounds: list[PrelinkRound]
    total_instantiations: int

    @property
    def iterations(self) -> int:
        return len(self.rounds)

    @property
    def total_recompiles(self) -> int:
        return sum(len(r.recompiled) for r in self.rounds)

    def il_instantiation_count(self) -> int:
        """Instantiation subtrees visible in the IL — the automatic
        scheme's answer is what makes PDT need used mode."""
        total = 0
        for obj in self.objects:
            for c in obj.tree.all_classes:
                if c.is_instantiation and getattr(c, "flags", {}).get("il_visible", True):
                    total += 1
            for r in obj.tree.all_routines:
                if r.is_instantiation and r.flags.get("il_visible", True):
                    total += 1
        return total


class PrelinkSimulator:
    """Drives the compile / prelink / recompile closure loop."""

    def __init__(self, frontend: Frontend):
        assert (
            frontend.options.instantiation_mode is InstantiationMode.PRELINK
        ), "PrelinkSimulator requires a PRELINK-mode frontend"
        self.frontend = frontend

    def run(self, main_files: list[str]) -> PrelinkResult:
        objects: list[ObjectFile] = []
        all_requests: list[tuple[str, tuple[str, ...]]] = []
        for f in main_files:
            tree = self.frontend.compile(f)
            engine = self.frontend.last_engine
            obj = ObjectFile(name=f, tree=tree)
            assert engine is not None
            for (tname, targs, _loc) in engine.prelink_requests:
                key = _mangle(tname, targs)
                obj.potential.add(key)
                obj.undefined_refs.add(key)
                all_requests.append((tname, targs))
            objects.append(obj)
        rounds: list[PrelinkRound] = []
        satisfied: set[str] = set()
        round_no = 0
        while True:
            round_no += 1
            pending: set[str] = set()
            for obj in objects:
                pending |= obj.undefined_refs - satisfied
            if not pending:
                break
            recompiled: list[str] = []
            newly_assigned = 0
            for ref in sorted(pending):
                owner = self._assign(objects, ref)
                if owner is None:
                    satisfied.add(ref)  # nothing can provide it; drop
                    continue
                owner.assigned.add(ref)
                newly_assigned += 1
                if owner.name not in recompiled:
                    recompiled.append(owner.name)
                    owner.recompiles += 1
                satisfied.add(ref)
                # instantiating a class template can require its member
                # bodies, which reference further templates: model one
                # level of fan-out per round so closure takes >1 round on
                # template-chained corpora.
                for dep in self._dependencies(objects, ref):
                    if dep not in satisfied:
                        owner.undefined_refs.add(dep)
            rounds.append(PrelinkRound(round_no, newly_assigned, recompiled))
            if round_no > 50:  # safety: corpora never need this many
                break
        total = sum(len(o.assigned) for o in objects)
        return PrelinkResult(objects=objects, rounds=rounds, total_instantiations=total)

    @staticmethod
    def _assign(objects: list[ObjectFile], ref: str):
        """Assign an instantiation to the first object whose TU saw the
        template (has it in its .ti potential list)."""
        for obj in objects:
            if ref in obj.potential:
                return obj
        return None

    @staticmethod
    def _dependencies(objects: list[ObjectFile], ref: str) -> set[str]:
        """Further template entities the instantiation of ``ref`` pulls
        in: approximated by the engine's request log ordering (requests
        recorded after ``ref`` in the same TU that were triggered while
        instantiating it are conservatively included once)."""
        deps: set[str] = set()
        for obj in objects:
            if ref in obj.potential:
                after = False
                for p in sorted(obj.potential):
                    if p == ref:
                        after = True
                        continue
                    if after and p.split("<")[0] != ref.split("<")[0]:
                        deps.add(p)
                        break
        return deps


def _mangle(name: str, args: tuple[str, ...]) -> str:
    return f"{name}<{', '.join(args)}>"
