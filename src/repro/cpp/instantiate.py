"""EDG-style template instantiation engine.

Implements the three instantiation schemes the paper discusses (Section 2):

``USED``
    The mode PDT relies on: every template entity *used* in the
    compilation is instantiated and represented in the IL; unused member
    functions and static data members are not.  Class instantiation
    creates the class subtree (members declared, fields typed); member
    function *bodies* are instantiated lazily when a call or explicit
    request marks them used.

``ALL``
    Full instantiation of every member at class-instantiation time —
    the comparison point for bench E10 (IL size / front-end time).

``PRELINK``
    EDG's default automatic scheme: templates are instantiated for code
    generation by a link-time closure loop, but the instantiations are
    *not recorded in the IL* where an analysis tool could see them.  We
    instantiate (type-checking still needs it) but mark the entities
    IL-invisible and log the would-be prelinker requests, which
    :mod:`repro.cpp.prelink` replays (bench E11).

Instantiation re-parses the template's captured token slice with the
template parameters bound to concrete types.  Because tokens carry their
original source locations, every instantiated entity reports positions
inside its template's definition — exactly the property the paper's IL
Analyzer exploits to match instantiations back to templates by location.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Optional

from repro.cpp.cpptypes import (
    ArrayType,
    ClassType,
    FunctionType,
    NonTypeArg,
    PointerType,
    QualifiedType,
    ReferenceType,
    TemplateIdType,
    TemplateParamType,
    Type,
    TypedefType,
)
from repro.cpp.diagnostics import CppError, DiagnosticSink, TooManyErrors
from repro.cpp.il import (
    Class,
    ILTree,
    Namespace,
    Routine,
    RoutineKind,
    SourceRange,
    Template,
)
from repro.cpp.scope import Binder
from repro.cpp.source import SourceLocation
from repro.cpp.tokens import Token


class InstantiationMode(enum.Enum):
    """EDG-style instantiation schemes (paper Section 2)."""
    USED = "used"
    ALL = "all"
    PRELINK = "prelink"


class InstantiationEngine:
    """Caches and performs template instantiations for one TU."""

    def __init__(
        self,
        tree: ILTree,
        tokens: list[Token],
        sink: DiagnosticSink,
        mode: InstantiationMode = InstantiationMode.USED,
    ):
        self.tree = tree
        self.tokens = tokens
        self.sink = sink
        self.mode = mode
        self._class_cache: dict[tuple, Class] = {}
        self._func_cache: dict[tuple, Routine] = {}
        self._explicit_specs: dict[tuple, Class] = {}
        #: members whose inline bodies await used-mode instantiation
        self._inline_deferred: dict[int, tuple[Class, int]] = {}
        #: class-instantiation parameter bindings, for body instantiation
        self._class_bindings: dict[int, dict[str, Type]] = {}
        self._worklist: deque[Routine] = deque()
        self._in_worklist: set[int] = set()
        #: prelinker request log: (template name, arg spellings, location)
        self.prelink_requests: list[tuple[str, tuple[str, ...], SourceLocation]] = []
        #: counters for the E10/E11 benches
        self.stats = {
            "class_instantiations": 0,
            "routine_bodies_instantiated": 0,
            "function_template_instantiations": 0,
            "members_declared": 0,
        }

    # -- class instantiation ------------------------------------------------------

    def instantiate_class(
        self, template: Template, args: list[Type], loc: SourceLocation
    ) -> Class:
        """Instantiate ``template<args>`` (declarations only in USED mode)."""
        args = self._normalise_args(template, args, loc)
        key = (id(template), tuple(args))
        cached = self._class_cache.get(key)
        if cached is not None:
            return cached
        spec_cls = self._explicit_specs.get(key)
        if spec_cls is not None:
            self._class_cache[key] = spec_cls
            return spec_cls
        chosen, bindings = self._select_template(template, args)
        name = template.name + "<" + ", ".join(a.spelling() for a in args) + ">"
        cls = Class(name, chosen.location, chosen.parent)
        cls.is_instantiation = True
        cls.template_of = chosen
        cls.template_args = list(args)
        cls.access = chosen.access
        self._class_cache[key] = cls  # before parsing: breaks recursive types
        self._class_bindings[id(cls)] = bindings
        self.tree.register_class(cls)
        self._attach_to_parent(cls, chosen)
        chosen.instantiations.append(cls)
        self.stats["class_instantiations"] += 1
        if chosen.decl_tokens is None:
            self.sink.warn(f"template {template.name!r} has no definition", loc)
            return cls
        parser = self._make_parser(chosen.parent, bindings)
        parser.pos = chosen.decl_tokens[0]
        try:
            parser.parse_class_definition(existing=cls, attach_to_scope=False)
        except TooManyErrors:
            raise
        except CppError as exc:
            self.sink.warn(f"instantiation of {name} failed: {exc.message}", loc)
        for r in cls.routines:
            # member declarations are part of the instantiated subtree
            r.is_instantiation = True
        self.stats["members_declared"] += len(cls.routines) + len(cls.fields)
        if self.mode is InstantiationMode.ALL:
            self.instantiate_all_members(cls)
        if self.mode is InstantiationMode.PRELINK:
            self._hide_from_il(cls)
            self.prelink_requests.append(
                (template.name, tuple(a.spelling() for a in args), loc)
            )
        return cls

    def _normalise_args(
        self, template: Template, args: list[Type], loc: SourceLocation
    ) -> list[Type]:
        """Append default template arguments for missing trailing params."""
        params = template.parameters
        if len(args) >= len(params):
            return list(args[: len(params)]) if params else list(args)
        out = list(args)
        for p in params[len(args) :]:
            if p.default_text is None:
                break
            bindings = {
                q.name: out[i] for i, q in enumerate(params[: len(out)])
            }
            t = self._parse_type_text(p.default_text, template.parent, bindings)
            if t is None:
                break
            out.append(t)
        return out

    def _parse_type_text(
        self, text: str, parent, bindings: dict[str, Type]
    ) -> Optional[Type]:
        """Parse a type from loose text (default template arguments)."""
        from repro.cpp.lexer import tokenize
        from repro.cpp.source import SourceFile

        f = SourceFile(name="<default-arg>", text=text)
        toks = tokenize(f)
        parser = self._make_parser(parent, bindings, tokens=toks)
        try:
            return parser.parse_full_type()
        except TooManyErrors:
            raise
        except CppError:
            return None

    def _select_template(
        self, primary: Template, args: list[Type]
    ) -> tuple[Template, dict[str, Type]]:
        """Pick the best partial specialization, defaulting to the primary."""
        best: Optional[tuple[Template, dict[str, Type]]] = None
        for spec in primary.specializations:
            if len(spec.spec_args) != len(args):
                continue
            bindings: dict[str, Type] = {}
            if all(unify(p, a, bindings, self.tree.types) for p, a in zip(spec.spec_args, args)):
                # most-specialized = most pattern structure; approximate by
                # fewest bound parameters
                if best is None or len(bindings) < len(best[1]):
                    best = (spec, bindings)
        if best is not None:
            return best
        bindings = {}
        for i, p in enumerate(primary.parameters):
            if i < len(args):
                bindings[p.name] = args[i]
        return primary, bindings

    def _attach_to_parent(self, cls: Class, template: Template) -> None:
        parent = template.parent
        if isinstance(parent, Namespace):
            parent.classes.append(cls)
        elif isinstance(parent, Class):
            parent.inner_classes.append(cls)

    def _make_parser(self, parent, bindings: dict[str, Type], tokens=None):
        from repro.cpp.declparse import Parser

        binder = Binder(self.tree)
        chain: list[Namespace] = []
        p = parent
        while p is not None:
            if isinstance(p, Namespace) and not p.is_global:
                chain.append(p)
            p = getattr(p, "parent", None)
        for ns in reversed(chain):
            binder.namespace_stack.append(ns)
        if bindings:
            binder.push_tparams(bindings)
        return Parser(tokens or self.tokens, self.tree, binder, self.sink, self)

    # -- used-mode body machinery ------------------------------------------------------

    def defer_inline_body(self, routine: Routine, cls: Class) -> None:
        """An inline member body of an instantiated class: record the
        token slice; instantiate only when used."""
        if routine.body_tokens is None:
            return
        self._inline_deferred[id(routine)] = (cls, routine.body_tokens[0])
        if self.mode is InstantiationMode.ALL:
            self.note_routine_used(routine)

    def note_routine_used(self, routine: Routine) -> None:
        """Mark used; queue body instantiation if one is pending."""
        routine.used = True
        if routine.defined or id(routine) in self._in_worklist:
            return
        if self._has_pending_body(routine):
            self._worklist.append(routine)
            self._in_worklist.add(id(routine))

    def _has_pending_body(self, routine: Routine) -> bool:
        if id(routine) in self._inline_deferred:
            return True
        cls = routine.parent_class
        if cls is not None and cls.is_instantiation and cls.template_of is not None:
            return self._find_member_template(cls.template_of, routine) is not None
        return False

    def drain(self) -> None:
        """Process pending body instantiations to a fixed point."""
        while self._worklist:
            r = self._worklist.popleft()
            self._in_worklist.discard(id(r))
            if not r.defined:
                self._instantiate_body(r)

    def instantiate_all_members(self, cls: Class) -> None:
        """Explicit instantiation / ALL mode: every member body."""
        for r in list(cls.routines):
            self.note_routine_used(r)
        self.drain()

    # -- body instantiation ---------------------------------------------------------------

    def _instantiate_body(self, routine: Routine) -> None:
        inline = self._inline_deferred.pop(id(routine), None)
        if inline is not None:
            cls, start = inline
            bindings = self._class_bindings.get(id(cls), {})
            parser = self._make_parser(cls.parent, bindings)
            parser.binder.class_stack.append(cls)
            parser.parse_function_body_at(routine, start)
            routine.is_instantiation = True
            if routine.template_of is None and cls.template_of is not None:
                routine.template_of = cls.template_of
            self.stats["routine_bodies_instantiated"] += 1
            if self.mode is InstantiationMode.PRELINK:
                routine.flags["il_visible"] = False
            return
        cls = routine.parent_class
        if cls is None or cls.template_of is None:
            return
        te = self._find_member_template(cls.template_of, routine)
        if te is None or te.decl_tokens is None:
            return
        class_bindings = self._class_bindings.get(id(cls), {})
        parser = self._make_parser(te.parent, class_bindings)
        parser.pos = te.decl_tokens[0]
        try:
            self._parse_member_definition(parser, te, routine, cls)
        except TooManyErrors:
            raise
        except CppError as exc:
            self.sink.warn(
                f"body instantiation of {routine.full_name} failed: {exc.message}",
                routine.location,
            )
            return
        routine.is_instantiation = True
        routine.template_of = te
        te.instantiations.append(routine)
        self.stats["routine_bodies_instantiated"] += 1
        if self.mode is InstantiationMode.PRELINK:
            routine.flags["il_visible"] = False

    def _find_member_template(self, ct: Template, routine: Routine) -> Optional[Template]:
        raw = routine.name.split("<")[0]
        if routine.kind is RoutineKind.CONSTRUCTOR:
            raw = ct.name
        candidates = [
            t
            for t in self.tree.all_templates
            if t.owner_class_template is ct and t.name == raw
        ]
        exact = [
            t
            for t in candidates
            if len(getattr(t, "sig_declarator").parameters) == len(routine.parameters)
            and getattr(t, "sig_declarator").const == routine.is_const
        ]
        if exact:
            return exact[0]
        loose = [
            t
            for t in candidates
            if len(getattr(t, "sig_declarator").parameters) == len(routine.parameters)
        ]
        if loose:
            return loose[0]
        return candidates[0] if candidates else None

    def _parse_member_definition(
        self, parser, te: Template, routine: Routine, cls: Class
    ) -> None:
        """Re-parse an out-of-line member template definition with the
        class's bindings, attaching the body to ``routine``."""
        specs = parser._parse_decl_spec_flags()  # noqa: F841 — consumed for position
        if parser._at_out_of_line_ctor_like():
            base = self.tree.types.void
        else:
            base = parser.parse_type_specifier()
        d = parser.parse_declarator(base)
        routine.location = d.name_location or routine.location
        routine.parameters = d.parameters or routine.parameters
        if isinstance(d.type, FunctionType):
            routine.signature = d.type
        header_end = parser.peek(-1).location if parser.pos > 0 else routine.location
        start_tok = parser.tokens[te.decl_tokens[0]]
        routine.position.header = SourceRange(start_tok.location, header_end)
        if parser.at(":") or parser.at("{"):
            body_start = parser.pos
            while not parser.at("{"):
                if parser.at("("):
                    parser.skip_balanced("(")
                else:
                    parser.advance()
            close_idx = parser.skip_balanced("{")
            routine.position.body = SourceRange(
                parser.tokens[body_start].location, parser.tokens[close_idx].location
            )
            parser.binder.class_stack.append(cls)
            parser.parse_function_body_at(routine, body_start)
        else:
            routine.defined = True  # declaration-only member template

    # -- function templates --------------------------------------------------------------------

    def instantiate_function_template(
        self,
        template: Template,
        arg_types: list[Type],
        explicit_args: Optional[list[Type]],
        loc: SourceLocation,
    ) -> Optional[Routine]:
        """Deduce arguments and instantiate a free function template."""
        d = getattr(template, "sig_declarator", None)
        if d is None or template.decl_tokens is None:
            return None
        bindings: dict[str, Type] = {}
        params = template.parameters
        if explicit_args:
            for p, a in zip(params, explicit_args):
                bindings[p.name] = a
        patterns = [p.type for p in d.parameters]
        for pat, actual in zip(patterns, arg_types):
            unify(pat, actual, bindings, self.tree.types)
        for p in params:
            if p.name not in bindings and p.default_text is not None:
                t = self._parse_type_text(p.default_text, template.parent, bindings)
                if t is not None:
                    bindings[p.name] = t
        if any(p.name not in bindings for p in params):
            return None
        ordered = tuple(bindings[p.name] for p in params)
        key = (id(template), ordered)
        cached = self._func_cache.get(key)
        if cached is not None:
            return cached
        parser = self._make_parser(template.parent, dict(bindings))
        parser.pos = template.decl_tokens[0]
        try:
            specs = parser._parse_decl_spec_flags()
            base = parser.parse_type_specifier()
            decl = parser.parse_declarator(base)
        except TooManyErrors:
            raise
        except CppError as exc:
            self.sink.warn(
                f"instantiation of {template.name} failed: {exc.message}", loc
            )
            return None
        r = Routine(
            decl.name,
            decl.name_location or template.location,
            template.parent,
            decl.type if isinstance(decl.type, FunctionType) else self.tree.types.function(
                base, [p.type for p in decl.parameters]
            ),
            RoutineKind.OPERATOR if decl.is_operator else RoutineKind.FUNCTION,
        )
        r.parameters = decl.parameters
        r.is_instantiation = True
        r.template_of = template
        r.template_args = list(ordered)
        r.is_inline = specs.is_inline
        start_tok = parser.tokens[template.decl_tokens[0]]
        r.position.header = SourceRange(start_tok.location, parser.peek(-1).location)
        self._func_cache[key] = r
        self.tree.register_routine(r)
        if isinstance(template.parent, Namespace):
            template.parent.routines.append(r)
        template.instantiations.append(r)
        self.stats["function_template_instantiations"] += 1
        if parser.at("{"):
            body_start = parser.pos
            close_idx = parser.skip_balanced("{")
            r.position.body = SourceRange(
                parser.tokens[body_start].location, parser.tokens[close_idx].location
            )
            parser.parse_function_body_at(r, body_start)
        if self.mode is InstantiationMode.PRELINK:
            r.flags["il_visible"] = False
            self.prelink_requests.append(
                (template.name, tuple(t.spelling() for t in ordered), loc)
            )
        return r

    # -- specializations / prelink ----------------------------------------------------------------

    def register_explicit_specialization(
        self, primary: Template, args: list[Type], cls: Class
    ) -> None:
        key = (id(primary), tuple(args))
        self._explicit_specs[key] = cls
        self._class_cache[key] = cls

    def _hide_from_il(self, cls: Class) -> None:
        cls.flags = getattr(cls, "flags", {})
        cls.flags["il_visible"] = False  # type: ignore[attr-defined]
        for r in cls.routines:
            r.flags["il_visible"] = False


def unify(pattern: Type, actual: Type, bindings: dict[str, Type], types) -> bool:
    """Template argument deduction: match ``actual`` against ``pattern``,
    extending ``bindings``.  Loose by design — the front end needs call
    resolution, not full overload semantics."""
    if isinstance(pattern, TemplateParamType):
        target = _decay(actual)
        prior = bindings.get(pattern.name)
        if prior is not None:
            return _decay(prior) is _decay(target) or prior.spelling() == target.spelling()
        bindings[pattern.name] = target
        return True
    if isinstance(pattern, QualifiedType):
        return unify(pattern.base, _unqual(actual), bindings, types)
    if isinstance(pattern, ReferenceType):
        return unify(pattern.referenced, _unref(actual), bindings, types)
    if isinstance(pattern, PointerType):
        s = _decay(actual)
        if isinstance(s, PointerType):
            return unify(pattern.pointee, s.pointee, bindings, types)
        if isinstance(s, ArrayType):
            return unify(pattern.pointee, s.element, bindings, types)
        return False
    if isinstance(pattern, TemplateIdType):
        s = _decay(actual)
        if isinstance(s, ClassType):
            decl = s.decl
            src = decl.template_of
            primary = src.primary if (src is not None and src.primary is not None) else src
            if primary is template_primary(pattern.template):
                if len(pattern.args) == len(decl.template_args):
                    return all(
                        unify(p, a, bindings, types)
                        for p, a in zip(pattern.args, decl.template_args)
                    )
        return False
    if isinstance(pattern, NonTypeArg):
        if pattern.dependent:
            prior = bindings.get(pattern.text)
            if prior is not None:
                return prior.spelling() == actual.spelling()
            bindings[pattern.text] = actual
            return True
        return pattern.spelling() == actual.spelling()
    # concrete pattern: loose compatibility
    if pattern is actual or pattern.strip() is actual.strip():
        return True
    pa, aa = pattern.strip(), actual.strip()
    return pa.class_decl() is None and aa.class_decl() is None and not isinstance(
        pa, (PointerType, ArrayType)
    ) and not isinstance(aa, (PointerType, ArrayType))


def template_primary(t: Template) -> Template:
    """The primary template behind ``t`` (itself unless a specialization)."""
    return t.primary if t.primary is not None else t


def _decay(t: Type) -> Type:
    """Strip references, cv, and typedefs for deduction binding."""
    while True:
        if isinstance(t, ReferenceType):
            t = t.referenced
        elif isinstance(t, QualifiedType):
            t = t.base
        elif isinstance(t, TypedefType):
            t = t.decl.underlying
        else:
            return t


def _unref(t: Type) -> Type:
    return t.referenced if isinstance(t, ReferenceType) else t


def _unqual(t: Type) -> Type:
    while isinstance(t, (QualifiedType, ReferenceType)):
        t = t.base if isinstance(t, QualifiedType) else t.referenced
    return t
