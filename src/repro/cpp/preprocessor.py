"""C preprocessor: includes, macros, conditionals.

Implements the subset the corpora need, with standard semantics:

* ``#include "..."`` / ``#include <...>`` via :class:`SourceManager`
  resolution; direct inclusions are recorded on the including
  :class:`SourceFile` (the PDB ``sinc`` attribute),
* object- and function-like macros with ``#`` stringize and ``##`` paste,
  recursion blocked by an expansion stack,
* ``#define/#undef/#ifdef/#ifndef/#if/#elif/#else/#endif`` with a constant
  expression evaluator (``defined``, integer arithmetic, comparisons,
  logical operators, ternary),
* ``__FILE__`` and ``__LINE__`` builtins,
* ``#pragma`` / ``#error`` passthrough/report.

Every macro definition produces a :class:`MacroRecord` so the IL Analyzer
can emit PDB ``ma`` items (paper Table 1).

Expanded tokens keep the *invocation site* location, so downstream PDB
positions always point at real user source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.cpp.diagnostics import CppError, DiagnosticSink, TooManyErrors
from repro.cpp.headercache import CACHE_DEPTH_LIMIT, HeaderCache
from repro.cpp.lexer import tokenize
from repro.cpp.source import SourceFile, SourceLocation, SourceManager
from repro.cpp.tokens import Token, TokenKind, tokens_to_text

#: Directive names the preprocessor understands.
_DIRECTIVES = frozenset(
    "include define undef ifdef ifndef if elif else endif pragma error warning".split()
)


@dataclass
class Macro:
    """A macro definition.

    ``params`` is None for object-like macros; a (possibly empty) name list
    for function-like macros.  ``variadic`` marks a trailing ``...``.
    """

    name: str
    params: Optional[list[str]]
    body: list[Token]
    location: SourceLocation
    variadic: bool = False

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


@dataclass
class MacroRecord:
    """Definition/undefinition event, for the PDB ``ma`` item stream."""

    name: str
    kind: str  # "def" | "undef"
    text: str  # the full directive text, e.g. "#define MAX(a,b) ..."
    location: SourceLocation


@dataclass
class _CondState:
    """State of one #if/#elif/#else/#endif nest level."""

    taken: bool  # a branch at this level has been taken
    active: bool  # current branch is live
    seen_else: bool = False


class Preprocessor:
    """Preprocesses one translation unit into a flat token list."""

    def __init__(
        self,
        manager: SourceManager,
        sink: Optional[DiagnosticSink] = None,
        predefined: Optional[dict[str, str]] = None,
        header_cache: Optional[HeaderCache] = None,
    ):
        self.manager = manager
        self.sink = sink or DiagnosticSink()
        #: cross-TU header memo, shared by every preprocessor a Frontend
        #: creates; when set, the macro table tracks reads so cached
        #: subtrees key on the macro state they actually consulted
        self.header_cache = header_cache
        self.macros: dict[str, Macro] = (
            {} if header_cache is None else header_cache.wrap_macro_table()
        )
        self.macro_records: list[MacroRecord] = []
        #: every file whose tokens this preprocessor consumed, in first-use
        #: order — the dependency set a build cache must hash (pdbbuild)
        self.consumed_files: list[SourceFile] = []
        self._include_stack: list[SourceFile] = []
        self._expansion_stack: list[str] = []
        for name in ("__FILE__", "__LINE__"):
            self._predefine(name, "")  # bodies synthesised per use site
        for name, value in (predefined or {}).items():
            self._predefine(name, value)

    def _predefine(self, name: str, value: str) -> None:
        tmp = SourceFile(name="<predefined>", text=value)
        body = [t for t in tokenize(tmp) if t.kind is not TokenKind.EOF]
        loc = SourceLocation(tmp, 1, 1)
        self.macros[name] = Macro(name, None, body, loc)

    # -- top-level driver ----------------------------------------------

    def preprocess(self, file: SourceFile) -> list[Token]:
        """Preprocess ``file`` and everything it includes; returns the
        token stream for the whole translation unit (single EOF at end)."""
        out = self._process_file(file)
        eof_loc = SourceLocation(file, file.text.count("\n") + 1, 1)
        out.append(Token(TokenKind.EOF, "", eof_loc))
        return out

    @property
    def _recover(self) -> bool:
        """Whether user-source errors should be reported and skipped."""
        return not self.sink.fatal_errors

    def _process_file(
        self, file: SourceFile, loc: Optional[SourceLocation] = None
    ) -> list[Token]:
        """Process one file; ``loc`` is the including ``#include`` line
        (None for the main file), attached to include-graph errors so the
        rendered diagnostic points at the offending directive."""
        if file in self._include_stack:
            cycle = " -> ".join(f.name for f in self._include_stack + [file])
            raise CppError(f"circular include: {cycle}", loc)
        if len(self._include_stack) > 200:
            raise CppError(f"include depth limit exceeded at {file.name}", loc)
        if file not in self.consumed_files:
            self.consumed_files.append(file)
        hc = self.header_cache
        if hc is not None and hc._recs:
            depth = len(self._include_stack) + 1
            for rec in hc._recs:
                rec.note_file(file, depth)
        self._include_stack.append(file)
        try:
            with obs.observe("frontend.lex", cat="frontend", file=file.name):
                toks = tokenize(file, self.sink)
            return self._process_tokens(toks, file)
        finally:
            self._include_stack.pop()

    def _process_tokens(self, toks: list[Token], file: SourceFile) -> list[Token]:
        out: list[Token] = []
        conds: list[_CondState] = []
        i = 0
        n = len(toks)
        while i < n:
            tok = toks[i]
            if tok.kind is TokenKind.EOF:
                break
            if tok.is_punct("#") and tok.at_line_start:
                line, i = self._grab_line(toks, i + 1)
                try:
                    self._directive(line, tok.location, file, conds, out)
                except TooManyErrors:
                    raise
                except CppError as exc:
                    # recovery: report the directive's failure, skip it
                    if not self._recover:
                        raise
                    self.sink.soft_error(exc.message, exc.location or tok.location)
                continue
            active = all(c.active for c in conds)
            if not active:
                i += 1
                continue
            if tok.kind is TokenKind.IDENT and tok.text in self.macros:
                try:
                    expanded, i = self._maybe_expand(toks, i)
                except TooManyErrors:
                    raise
                except CppError as exc:
                    # recovery: emit the name unexpanded and move on
                    if not self._recover:
                        raise
                    self.sink.soft_error(exc.message, exc.location or tok.location)
                    out.append(tok)
                    i += 1
                    continue
                out.extend(expanded)
                continue
            out.append(tok)
            i += 1
        if conds:
            self.sink.error("unterminated conditional directive", toks[0].location)
        return out

    @staticmethod
    def _grab_line(toks: list[Token], i: int) -> tuple[list[Token], int]:
        """Collect tokens up to (not including) the next line start."""
        line: list[Token] = []
        while i < len(toks) and not toks[i].at_line_start and toks[i].kind is not TokenKind.EOF:
            line.append(toks[i])
            i += 1
        return line, i

    # -- directives ------------------------------------------------------

    def _directive(
        self,
        line: list[Token],
        hash_loc: SourceLocation,
        file: SourceFile,
        conds: list[_CondState],
        out: list[Token],
    ) -> None:
        if not line:  # null directive "#"
            return
        name = line[0].text
        rest = line[1:]
        active = all(c.active for c in conds)
        # Conditional structure is tracked even in inactive regions.
        if name == "ifdef" or name == "ifndef":
            if active and rest:
                defined = rest[0].text in self.macros
                live = defined if name == "ifdef" else not defined
            else:
                live = False
            conds.append(_CondState(taken=live, active=live))
            return
        if name == "if":
            live = bool(self._eval_condition(rest, hash_loc)) if active else False
            conds.append(_CondState(taken=live, active=live))
            return
        if name == "elif":
            if not conds:
                self.sink.error("#elif without #if", hash_loc)
                return
            st = conds[-1]
            if st.seen_else:
                self.sink.error("#elif after #else", hash_loc)
                return
            outer_active = all(c.active for c in conds[:-1])
            if st.taken or not outer_active:
                st.active = False
            else:
                st.active = bool(self._eval_condition(rest, hash_loc))
                st.taken = st.taken or st.active
            return
        if name == "else":
            if not conds:
                self.sink.error("#else without #if", hash_loc)
                return
            st = conds[-1]
            if st.seen_else:
                self.sink.error("duplicate #else", hash_loc)
                return
            st.seen_else = True
            outer_active = all(c.active for c in conds[:-1])
            st.active = (not st.taken) and outer_active
            st.taken = True
            return
        if name == "endif":
            if not conds:
                self.sink.error("#endif without #if", hash_loc)
                return
            conds.pop()
            return
        if not active:
            return
        if name == "include":
            self._do_include(rest, hash_loc, file, out)
        elif name == "define":
            self._do_define(rest, hash_loc)
        elif name == "undef":
            if rest:
                self.macros.pop(rest[0].text, None)
                self.macro_records.append(
                    MacroRecord(rest[0].text, "undef", "#undef " + rest[0].text, hash_loc)
                )
        elif name == "pragma":
            pass  # pragmas are accepted and ignored
        elif name in ("error", "warning"):
            msg = tokens_to_text(rest)
            if name == "error":
                self.sink.error(f"#error {msg}", hash_loc)
            else:
                self.sink.warn(f"#warning {msg}", hash_loc)
        else:
            self.sink.warn(f"unknown directive #{name}", hash_loc)

    def _do_include(
        self,
        rest: list[Token],
        loc: SourceLocation,
        file: SourceFile,
        out: list[Token],
    ) -> None:
        if not rest:
            self.sink.error("#include expects a file name", loc)
            return
        if rest[0].kind is TokenKind.STRING:
            spec, angled = rest[0].text[1:-1], False
        elif rest[0].is_punct("<"):
            # Reconstruct the <...> spec from tokens until ">".
            parts: list[str] = []
            for t in rest[1:]:
                if t.is_punct(">"):
                    break
                parts.append(t.text)
            spec, angled = "".join(parts), True
        else:
            self.sink.error("malformed #include", loc)
            return
        target = self.manager.resolve_include(spec, angled, file)
        if target is None:
            self.sink.error(f"include file not found: {spec}", loc)
            return
        file.add_include(target)
        hc = self.header_cache
        if hc is not None and hc._recs:
            # an enclosing subtree is being recorded: its replay must
            # re-add this edge, re-resolve this spec (a re-registered or
            # shadowing file changes the subtree), and stays valid only
            # while ``target`` is not in the include stack (the branch
            # below consults it either way)
            for rec in hc._recs:
                rec.edges.append((file, target))
                rec.stack_checked.add(target)
                rec.include_checks.append((spec, angled, file, target, target.text))
        if target in self._include_stack:
            # Re-inclusion of an in-progress file: record edge, skip body.
            return
        if hc is None or len(self._include_stack) > CACHE_DEPTH_LIMIT:
            out.extend(self._process_file(target, loc))
        else:
            out.extend(hc.include(self, target, loc))

    def _do_define(self, rest: list[Token], loc: SourceLocation) -> None:
        if not rest or rest[0].kind is not TokenKind.IDENT:
            self.sink.error("#define expects a macro name", loc)
            return
        name_tok = rest[0]
        params: Optional[list[str]] = None
        variadic = False
        body_start = 1
        # Function-like only when "(" immediately follows the name.
        if (
            len(rest) > 1
            and rest[1].is_punct("(")
            and not rest[1].leading_space
        ):
            params = []
            i = 2
            while i < len(rest) and not rest[i].is_punct(")"):
                if rest[i].is_punct(","):
                    i += 1
                    continue
                if rest[i].is_punct("..."):
                    variadic = True
                elif rest[i].kind is TokenKind.IDENT:
                    params.append(rest[i].text)
                i += 1
            body_start = i + 1
        body = rest[body_start:]
        macro = Macro(name_tok.text, params, body, name_tok.location, variadic)
        self.macros[name_tok.text] = macro
        text = "#define " + tokens_to_text(rest)
        self.macro_records.append(MacroRecord(name_tok.text, "def", text, name_tok.location))

    # -- macro expansion ---------------------------------------------------

    def _maybe_expand(self, toks: list[Token], i: int) -> tuple[list[Token], int]:
        """Expand the macro reference at ``toks[i]``; returns (tokens, new_i).

        If a function-like macro name is not followed by ``(``, it is not
        an invocation and passes through unchanged.
        """
        tok = toks[i]
        macro = self.macros[tok.text]
        if tok.text in self._expansion_stack:
            return [tok], i + 1
        if macro.is_function_like:
            j = i + 1
            if j >= len(toks) or not toks[j].is_punct("("):
                return [tok], i + 1
            args, j = self._collect_args(toks, j, tok.location)
            replaced = self._substitute(macro, args, tok)
            result = self._rescan(replaced, tok)
            return result, j
        body = self._builtin_or_body(macro, tok)
        replaced = [self._retarget(t, tok) for t in body]
        result = self._rescan(replaced, tok)
        return result, i + 1

    def _builtin_or_body(self, macro: Macro, use: Token) -> list[Token]:
        if macro.name == "__FILE__":
            return [Token(TokenKind.STRING, f'"{use.location.file.name}"', use.location)]
        if macro.name == "__LINE__":
            return [Token(TokenKind.NUMBER, str(use.location.line), use.location)]
        return macro.body

    @staticmethod
    def _retarget(t: Token, use: Token) -> Token:
        """Clone a body token so it reports the invocation-site location."""
        return Token(
            t.kind, t.text, use.location,
            at_line_start=False, leading_space=t.leading_space,
            expanded_from=use.text,
        )

    def _collect_args(
        self, toks: list[Token], i: int, loc: SourceLocation
    ) -> tuple[list[list[Token]], int]:
        """Collect macro arguments; ``toks[i]`` is the opening paren."""
        assert toks[i].is_punct("(")
        depth = 0
        args: list[list[Token]] = [[]]
        j = i
        while j < len(toks):
            t = toks[j]
            if t.kind is TokenKind.EOF:
                break
            if t.is_punct("(") or t.is_punct("[") or t.is_punct("{"):
                depth += 1
                if depth > 1:
                    args[-1].append(t)
            elif t.is_punct(")") or t.is_punct("]") or t.is_punct("}"):
                depth -= 1
                if depth == 0:
                    return args, j + 1
                args[-1].append(t)
            elif t.is_punct(",") and depth == 1:
                args.append([])
            else:
                if depth >= 1:
                    args[-1].append(t)
            j += 1
        raise CppError("unterminated macro argument list", loc)

    def _substitute(self, macro: Macro, args: list[list[Token]], use: Token) -> list[Token]:
        params = macro.params or []
        if args == [[]] and not params:
            args = []
        if macro.variadic:
            fixed, rest = args[: len(params)], args[len(params) :]
            va: list[Token] = []
            for k, a in enumerate(rest):
                if k:
                    va.append(Token(TokenKind.PUNCT, ",", use.location))
                va.extend(a)
            bindings = dict(zip(params, fixed))
            bindings["__VA_ARGS__"] = va
        else:
            if len(args) != len(params):
                raise CppError(
                    f"macro {macro.name} expects {len(params)} argument(s), got {len(args)}",
                    use.location,
                )
            bindings = dict(zip(params, args))
        out: list[Token] = []
        body = macro.body
        i = 0
        while i < len(body):
            t = body[i]
            # Stringize: # param
            if t.is_punct("#") and i + 1 < len(body) and body[i + 1].text in bindings:
                arg = bindings[body[i + 1].text]
                text = tokens_to_text(arg).replace("\\", "\\\\").replace('"', '\\"')
                out.append(Token(TokenKind.STRING, f'"{text}"', use.location))
                i += 2
                continue
            # Paste: lhs ## rhs
            if i + 1 < len(body) and body[i + 1].is_punct("##"):
                lhs = self._expand_binding(t, bindings, use, expand=False)
                rhs_tok = body[i + 2] if i + 2 < len(body) else None
                rhs = (
                    self._expand_binding(rhs_tok, bindings, use, expand=False)
                    if rhs_tok is not None
                    else []
                )
                glue = (lhs[-1].text if lhs else "") + (rhs[0].text if rhs else "")
                out.extend(self._retarget(x, use) for x in lhs[:-1])
                if glue:
                    pasted_file = SourceFile(name="<paste>", text=glue)
                    pasted = [
                        self._retarget(x, use)
                        for x in tokenize(pasted_file)
                        if x.kind is not TokenKind.EOF
                    ]
                    out.extend(pasted)
                out.extend(self._retarget(x, use) for x in rhs[1:])
                i += 3
                continue
            out.extend(
                self._retarget(x, use)
                for x in self._expand_binding(t, bindings, use, expand=True)
            )
            i += 1
        return out

    def _expand_binding(
        self,
        t: Optional[Token],
        bindings: dict[str, list[Token]],
        use: Token,
        expand: bool,
    ) -> list[Token]:
        if t is None:
            return []
        if t.kind is TokenKind.IDENT and t.text in bindings:
            arg = bindings[t.text]
            if expand:
                return self._rescan(list(arg), use)
            return list(arg)
        return [t]

    def _rescan(self, tokens: list[Token], use: Token) -> list[Token]:
        """Re-scan replaced tokens for further macro invocations."""
        self._expansion_stack.append(use.text)
        try:
            out: list[Token] = []
            i = 0
            while i < len(tokens):
                t = tokens[i]
                if t.kind is TokenKind.IDENT and t.text in self.macros and (
                    t.text not in self._expansion_stack
                ):
                    expanded, i = self._maybe_expand(tokens, i)
                    out.extend(expanded)
                else:
                    out.append(t)
                    i += 1
            return out
        finally:
            self._expansion_stack.pop()

    # -- #if expression evaluation ------------------------------------------

    def _eval_condition(self, line: list[Token], loc: SourceLocation) -> int:
        """Evaluate a ``#if`` condition line to an integer."""
        # Phase 1: resolve `defined` before macro expansion.
        resolved: list[Token] = []
        i = 0
        while i < len(line):
            t = line[i]
            if t.is_ident("defined"):
                if i + 1 < len(line) and line[i + 1].is_punct("("):
                    name = line[i + 2].text if i + 2 < len(line) else ""
                    i += 4  # defined ( name )
                else:
                    name = line[i + 1].text if i + 1 < len(line) else ""
                    i += 2
                val = "1" if name in self.macros else "0"
                resolved.append(Token(TokenKind.NUMBER, val, t.location))
                continue
            resolved.append(t)
            i += 1
        # Phase 2: macro-expand.
        expanded = self._rescan(resolved, Token(TokenKind.IDENT, "<#if>", loc))
        # Phase 3: remaining identifiers become 0 (incl. true/false).
        final: list[Token] = []
        for t in expanded:
            if t.kind is TokenKind.IDENT:
                val = "1" if t.text == "true" else "0"
                final.append(Token(TokenKind.NUMBER, val, t.location))
            else:
                final.append(t)
        return _PPExprEvaluator(final, loc, self.sink).evaluate()


class _PPExprEvaluator:
    """Recursive-descent evaluator for preprocessor constant expressions."""

    def __init__(self, toks: list[Token], loc: SourceLocation, sink: DiagnosticSink):
        self.toks = toks
        self.pos = 0
        self.loc = loc
        self.sink = sink

    def evaluate(self) -> int:
        if not self.toks:
            self.sink.error("empty #if condition", self.loc)
            return 0
        val = self._ternary()
        return val

    def _peek(self) -> Optional[Token]:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def _eat(self, text: Optional[str] = None) -> Token:
        t = self._peek()
        if t is None or (text is not None and t.text != text):
            raise CppError(f"malformed #if expression (expected {text!r})", self.loc)
        self.pos += 1
        return t

    def _ternary(self) -> int:
        cond = self._binary(0)
        t = self._peek()
        if t is not None and t.is_punct("?"):
            self._eat("?")
            a = self._ternary()
            self._eat(":")
            b = self._ternary()
            return a if cond else b
        return cond

    _LEVELS = [
        ["||"], ["&&"], ["|"], ["^"], ["&"], ["==", "!="],
        ["<", ">", "<=", ">="], ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
    ]

    def _binary(self, level: int) -> int:
        if level >= len(self._LEVELS):
            return self._unary()
        lhs = self._binary(level + 1)
        while True:
            t = self._peek()
            if t is None or t.kind is not TokenKind.PUNCT or t.text not in self._LEVELS[level]:
                return lhs
            op = self._eat().text
            rhs = self._binary(level + 1)
            lhs = self._apply(op, lhs, rhs)

    def _apply(self, op: str, a: int, b: int) -> int:
        if op == "||":
            return int(bool(a) or bool(b))
        if op == "&&":
            return int(bool(a) and bool(b))
        if op in ("/", "%") and b == 0:
            self.sink.error("division by zero in #if", self.loc)
            return 0
        table = {
            "|": a | b, "^": a ^ b, "&": a & b,
            "==": int(a == b), "!=": int(a != b),
            "<": int(a < b), ">": int(a > b),
            "<=": int(a <= b), ">=": int(a >= b),
            "<<": a << b, ">>": a >> b,
            "+": a + b, "-": a - b, "*": a * b,
            "/": int(a / b) if b else 0, "%": a % b if b else 0,
        }
        return table[op]

    def _unary(self) -> int:
        t = self._peek()
        if t is None:
            raise CppError("malformed #if expression", self.loc)
        if t.is_punct("!"):
            self._eat()
            return int(not self._unary())
        if t.is_punct("-"):
            self._eat()
            return -self._unary()
        if t.is_punct("+"):
            self._eat()
            return self._unary()
        if t.is_punct("~"):
            self._eat()
            return ~self._unary()
        if t.is_punct("("):
            self._eat()
            v = self._ternary()
            self._eat(")")
            return v
        if t.kind is TokenKind.NUMBER:
            self._eat()
            return _parse_pp_number(t.text)
        if t.kind is TokenKind.CHAR:
            self._eat()
            body = t.text[1:-1]
            if body.startswith("\\"):
                esc = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39}
                return esc.get(body[1:2], 0)
            return ord(body[0]) if body else 0
        raise CppError(f"unexpected token {t.text!r} in #if expression", self.loc)


def _parse_pp_number(text: str) -> int:
    t = text.rstrip("uUlL")
    try:
        if t.lower().startswith("0x"):
            return int(t, 16)
        if t.startswith("0") and len(t) > 1 and t.isdigit():
            return int(t, 8)
        return int(float(t)) if ("." in t or "e" in t.lower()) else int(t)
    except ValueError:
        return 0
