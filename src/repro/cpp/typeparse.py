"""Type and declarator parsing.

Covers decl-specifier sequences (builtin combinations, cv-qualifiers,
named types, elaborated ``class X``, ``typename T::member``), template
argument lists (with backtracking disambiguation against less-than), and
declarators (pointers, references, arrays, function signatures with
default arguments and throw-specs, qualified out-of-line member names,
operator and conversion names).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpp.cpptypes import Type
from repro.cpp.diagnostics import CppError, TooManyErrors
from repro.cpp.il import Class, Enum, Parameter, Template, TemplateKind, Typedef
from repro.cpp.parserbase import ParserBase
from repro.cpp.source import SourceLocation
from repro.cpp.tokens import KEYWORDS, TokenKind, tokens_to_text

#: builtin type keyword combos; parsed greedily then canonicalised.
_BUILTIN_WORDS = frozenset(
    "void bool char wchar_t short int long float double signed unsigned".split()
)


@dataclass
class DeclSpecs:
    """Non-type decl-specifiers gathered alongside the type."""

    storage: str = "NA"  # NA | static | extern
    is_typedef: bool = False
    is_virtual: bool = False
    is_inline: bool = False
    is_explicit: bool = False
    is_friend: bool = False
    is_mutable: bool = False


@dataclass
class Declarator:
    """One parsed declarator."""

    name: str = ""
    name_location: Optional[SourceLocation] = None
    #: Qualifier path for out-of-line members: [("Stack", [Object]), ...]
    qualifier: list[tuple[str, Optional[list[Type]]]] = field(default_factory=list)
    type: Optional[Type] = None
    is_function: bool = False
    parameters: list[Parameter] = field(default_factory=list)
    ellipsis: bool = False
    const: bool = False
    exceptions: list[Type] = field(default_factory=list)
    has_throw_spec: bool = False
    is_destructor: bool = False
    is_operator: bool = False
    is_conversion: bool = False
    initializer_text: Optional[str] = None
    #: call-style init args were present: ``T x(a, b);``
    paren_init: bool = False
    array_sizes: list[Optional[int]] = field(default_factory=list)


class TypeParserMixin(ParserBase):
    """Type/declarator grammar; mixed into the full Parser."""

    # -- entry points ------------------------------------------------------

    def try_parse_type(self) -> Optional[Type]:
        """Attempt to parse a type; rewinds and returns None on failure."""
        mark = self.mark()
        try:
            return self.parse_type_specifier()
        except TooManyErrors:
            raise
        except CppError:
            self.rewind(mark)
            return None

    def parse_type_specifier(self) -> Type:
        """Parse ``cv* simple-type cv*`` with pointer/ref suffixes handled
        by declarators, not here."""
        const = volatile = False
        while True:
            if self.accept("const"):
                const = True
            elif self.accept("volatile"):
                volatile = True
            else:
                break
        base = self._parse_simple_type()
        while True:
            if self.accept("const"):
                const = True
            elif self.accept("volatile"):
                volatile = True
            else:
                break
        return self.types.qualified(base, const, volatile)

    def parse_ptr_operators(self, t: Type) -> Type:
        """Apply any ``*``/``&`` (with cv) decorations to ``t``."""
        while True:
            if self.at("*"):
                self.advance()
                t = self.types.pointer_to(t)
                while True:
                    if self.accept("const"):
                        t = self.types.qualified(t, const=True)
                    elif self.accept("volatile"):
                        t = self.types.qualified(t, volatile=True)
                    else:
                        break
            elif self.at("&"):
                self.advance()
                t = self.types.reference_to(t)
            else:
                return t

    def parse_full_type(self) -> Type:
        """A complete abstract type: specifier + ptr/ref ops + arrays.
        Used for casts, template type arguments, and sizeof."""
        t = self.parse_type_specifier()
        t = self.parse_ptr_operators(t)
        while self.at("["):
            self.advance()
            size = self._parse_array_size()
            self.expect("]")
            t = self.types.array_of(t, size)
        return t

    # -- simple types -----------------------------------------------------------

    def _parse_simple_type(self) -> Type:
        tok = self.cur
        if tok.kind is not TokenKind.IDENT and not tok.is_punct("::"):
            raise CppError(f"expected type, found {tok.text!r}", tok.location)
        if tok.text in _BUILTIN_WORDS:
            return self._parse_builtin_combo()
        if tok.text in ("class", "struct", "union", "enum"):
            # elaborated-type-specifier: "class X" names X
            self.advance()
            return self._parse_named_type()
        if tok.text == "typename":
            self.advance()
            return self._parse_named_type(allow_dependent_member=True)
        if tok.text in KEYWORDS:
            raise CppError(f"keyword {tok.text!r} does not name a type", tok.location)
        return self._parse_named_type()

    def _parse_builtin_combo(self) -> Type:
        words: list[str] = []
        while self.cur.kind is TokenKind.IDENT and self.cur.text in _BUILTIN_WORDS:
            words.append(self.advance().text)
        return self.types.builtin(_canonical_builtin(words, self))

    def _parse_named_type(self, allow_dependent_member: bool = False) -> Type:
        """Parse a (possibly qualified, possibly templated) named type."""
        self.accept("::")  # global qualification — lookup is absolute anyway
        parts: list[tuple[str, Optional[list[Type]]]] = []
        while True:
            name_tok = self.expect_ident()
            args: Optional[list[Type]] = None
            if self.at("<"):
                args = self.try_parse_template_args()
            parts.append((name_tok.text, args))
            if self.at("::") and self.peek(1).kind is TokenKind.IDENT and (
                self.peek(1).text not in KEYWORDS or self.peek(1).text in _BUILTIN_WORDS
            ):
                self.advance()
                continue
            break
        return self._resolve_named_type(parts, name_tok.location, allow_dependent_member)

    def _resolve_named_type(
        self,
        parts: list[tuple[str, Optional[list[Type]]]],
        loc: SourceLocation,
        allow_dependent_member: bool,
    ) -> Type:
        """Turn a qualified-id into a Type, requesting class-template
        instantiation when arguments are concrete (used-mode trigger)."""
        # Resolve leading qualifier path step by step.
        scope_types: list[Type] = []
        binding = None
        for i, (name, args) in enumerate(parts):
            is_last = i == len(parts) - 1
            if i == 0:
                binding = self.binder.lookup(name)
            else:
                binding = self._member_of(scope_types[-1] if scope_types else None, binding, name)
            binding = self._apply_template_args(binding, name, args, loc)
            if binding is None:
                if allow_dependent_member and scope_types and scope_types[-1].is_dependent:
                    qual = scope_types[-1]
                    for (nm, _a) in parts[i:]:
                        qual = self.types.dependent_name(qual, nm)
                    return qual
                raise CppError(f"unknown type name {name!r}", loc)
            t = self._binding_as_type(binding)
            if t is None:
                if is_last:
                    raise CppError(f"{name!r} does not name a type", loc)
                scope_types.append(self.types.unknown(name))
                continue
            scope_types.append(t)
            if is_last:
                return t
        raise CppError("malformed type name", loc)

    def _member_of(self, scope_type: Optional[Type], binding, name: str):
        """Lookup ``name`` inside the scope named by the previous part."""
        from repro.cpp.il import Namespace
        from repro.cpp.scope import Binder

        if isinstance(binding, Namespace):
            return Binder.find_in_namespace(binding, name)
        if isinstance(binding, Class):
            return Binder.find_in_class(binding, name)
        if scope_type is not None:
            decl = scope_type.class_decl()
            if decl is not None:
                return Binder.find_in_class(decl, name)
            if scope_type.is_dependent:
                return None
        return None

    def _apply_template_args(self, binding, name: str, args: Optional[list[Type]], loc):
        """If ``binding`` is a (list of) class template and args were
        parsed, resolve to an instantiation (or dependent template-id)."""
        if args is None:
            return binding
        templates: list[Template] = []
        if isinstance(binding, list):
            templates = [t for t in binding if isinstance(t, Template)]
        elif isinstance(binding, Template):
            templates = [binding]
        elif isinstance(binding, Class) and binding.template_of is not None:
            # injected-class-name with arguments (Node<T> inside Node<int>)
            primary = binding.template_of
            while primary.primary is not None:
                primary = primary.primary
            templates = [primary]
        templates = [t for t in templates if t.kind is TemplateKind.CLASS and not t.is_specialization]
        if not templates:
            raise CppError(f"{name!r} is not a class template", loc)
        template = templates[0]
        if any(a.is_dependent for a in args):
            return self.types.template_id(template, args)
        assert self.engine is not None
        cls = self.engine.instantiate_class(template, args, loc)
        return cls

    def _binding_as_type(self, binding) -> Optional[Type]:
        from repro.cpp.il import Namespace

        if binding is None:
            return None
        if isinstance(binding, Type):
            return binding
        if isinstance(binding, Class):
            return self.types.class_type(binding)
        if isinstance(binding, Typedef):
            return self.types.typedef_type(binding)
        if isinstance(binding, Enum):
            return self.types.enum_type(binding)
        if isinstance(binding, Namespace):
            return None
        return None

    # -- template argument lists ----------------------------------------------

    def try_parse_template_args(self) -> Optional[list[Type]]:
        """Parse ``< ... >`` if it forms a valid template argument list;
        rewinds and returns None otherwise (it was a less-than)."""
        mark = self.mark()
        try:
            return self.parse_template_args()
        except TooManyErrors:
            raise
        except CppError:
            self.rewind(mark)
            return None

    def parse_template_args(self) -> list[Type]:
        self.expect("<")
        args: list[Type] = []
        if self.accept(">"):
            return args
        while True:
            args.append(self._parse_template_arg())
            if self.accept(">"):
                return args
            self.expect(",")

    def _parse_template_arg(self) -> Type:
        mark = self.mark()
        try:
            t = self.parse_full_type()
        except TooManyErrors:
            raise
        except CppError:
            t = None
            self.rewind(mark)
        if t is not None and self.at_any(">", ","):
            return t
        self.rewind(mark)
        # Non-type argument: collect constant-expression tokens verbatim.
        depth = 0
        toks = []
        while not self.at_eof:
            c = self.cur
            if depth == 0 and (c.is_punct(">") or c.is_punct(",")):
                break
            if c.text in ("(", "[", "<"):
                depth += 1
            elif c.text in (")", "]"):
                depth -= 1
            elif c.is_punct(">") and depth > 0:
                depth -= 1
            toks.append(self.advance())
        if not toks:
            raise CppError("empty template argument", self.loc())
        text = tokens_to_text(toks)
        dependent = any(
            tok.kind is TokenKind.IDENT
            and isinstance(self.binder.lookup(tok.text), Type)
            for tok in toks
        ) or any(
            tok.kind is TokenKind.IDENT
            and any(tok.text in frame for frame in self.binder.tparam_stack)
            for tok in toks
        )
        return self.types.nontype_arg(text, dependent)

    # -- declarators ----------------------------------------------------------------

    def parse_declarator(
        self, base: Type, abstract: bool = False, init_paren_ok: bool = False
    ) -> Declarator:
        """Parse one declarator applied to ``base``.

        ``init_paren_ok`` enables declaration-statement disambiguation:
        a ``(`` that does not parse as a parameter list is left for the
        caller as direct-initialisation arguments (``T x(n);``)."""
        d = Declarator()
        t = self.parse_ptr_operators(base)
        self._parse_declarator_name(d, abstract)
        # function-pointer form: ( * name )
        if d.name == "" and self.at("(") and (
            self.peek(1).is_punct("*") or self.peek(1).is_punct("&")
        ):
            self.advance()
            inner_ref = self.advance().text
            if self.at_plain_ident():
                nm = self.advance()
                d.name = nm.text
                d.name_location = nm.location
            self.expect(")")
            params, ellipsis = self.parse_parameter_list()
            ft = self.types.function(t, [p.type for p in params], ellipsis)
            t = self.types.pointer_to(ft) if inner_ref == "*" else self.types.reference_to(ft)
            d.type = t
            return d
        if self.at("("):
            if init_paren_ok:
                mark = self.mark()
                try:
                    params, ellipsis = self.parse_parameter_list()
                except TooManyErrors:
                    raise
                except CppError:
                    # direct-initialisation arguments, not a parameter list
                    self.rewind(mark)
                    d.paren_init = True
                    d.type = t
                    return d
                d.is_function = True
                d.parameters, d.ellipsis = params, ellipsis
            else:
                d.is_function = True
                d.parameters, d.ellipsis = self.parse_parameter_list()
            if self.accept("const"):
                d.const = True
            self.accept("volatile")
            if self.at("throw"):
                self.advance()
                self.expect("(")
                d.has_throw_spec = True
                while not self.at(")"):
                    d.exceptions.append(self.parse_full_type())
                    if not self.accept(","):
                        break
                self.expect(")")
            t = self.types.function(
                t,
                [p.type for p in d.parameters],
                d.ellipsis,
                d.const,
                tuple(d.exceptions),
                d.has_throw_spec,
            )
        else:
            while self.at("["):
                self.advance()
                size = self._parse_array_size()
                self.expect("]")
                d.array_sizes.append(size)
                t = self.types.array_of(t, size)
        d.type = t
        return d

    def _parse_declarator_name(self, d: Declarator, abstract: bool) -> None:
        """Parse the (possibly qualified) declarator name."""
        while True:
            if self.at("~"):
                self.advance()
                nm = self.expect_ident()
                d.name = "~" + nm.text
                d.name_location = nm.location
                d.is_destructor = True
                return
            if self.at_ident("operator"):
                op_tok = self.advance()
                d.name_location = op_tok.location
                d.is_operator = True
                d.name = "operator" + self._parse_operator_name(d)
                return
            if self.at_plain_ident():
                nm_tok = self.cur
                # Qualified name? look ahead for <args>:: or ::
                mark = self.mark()
                self.advance()
                args: Optional[list[Type]] = None
                if self.at("<"):
                    args = self.try_parse_template_args()
                    if args is None:
                        self.rewind(mark)
                        self.advance()
                if self.at("::"):
                    self.advance()
                    d.qualifier.append((nm_tok.text, args))
                    continue
                if args is not None:
                    # declarator name with explicit template args
                    # (explicit specialization of a function template)
                    d.name = nm_tok.text
                    d.name_location = nm_tok.location
                    d.qualifier_args = args  # type: ignore[attr-defined]
                    return
                d.name = nm_tok.text
                d.name_location = nm_tok.location
                return
            if abstract:
                return
            if self.at("(") and (self.peek(1).is_punct("*") or self.peek(1).is_punct("&")):
                return  # function-pointer declarator: handled by the caller
            raise CppError(
                f"expected declarator name, found {self.cur.text!r}", self.cur.location
            )

    def _parse_operator_name(self, d: Declarator) -> str:
        """After the ``operator`` keyword: the operator symbol or a
        conversion type."""
        t = self.cur
        if t.is_punct("("):
            self.advance()
            self.expect(")")
            return "()"
        if t.is_punct("["):
            self.advance()
            self.expect("]")
            return "[]"
        if t.kind is TokenKind.PUNCT:
            op = self.advance().text
            # new[]/delete[] handled below; composite "->*" etc. lexed whole
            return op
        if t.text in ("new", "delete"):
            word = self.advance().text
            if self.at("["):
                self.advance()
                self.expect("]")
                return f" {word}[]"
            return f" {word}"
        # conversion operator: operator bool(), operator T*()
        d.is_conversion = True
        conv = self.parse_type_specifier()
        conv = self.parse_ptr_operators(conv)
        return " " + conv.spelling()

    def _parse_array_size(self) -> Optional[int]:
        """Array extent: literal integer, or None for anything else
        (dependent or computed sizes are preserved structurally only)."""
        if self.at("]"):
            return None
        toks = []
        depth = 0
        while not self.at_eof:
            if self.at("]") and depth == 0:
                break
            if self.cur.text in ("(", "["):
                depth += 1
            elif self.cur.text in (")", "]"):
                depth -= 1
            toks.append(self.advance())
        if len(toks) == 1 and toks[0].kind is TokenKind.NUMBER:
            try:
                return int(toks[0].text.rstrip("uUlL"), 0)
            except ValueError:
                return None
        return None

    # -- parameter lists -----------------------------------------------------------

    def parse_parameter_list(self) -> tuple[list[Parameter], bool]:
        """Parse ``( params )``; returns (parameters, ellipsis)."""
        self.expect("(")
        params: list[Parameter] = []
        ellipsis = False
        if self.accept(")"):
            return params, ellipsis
        # "(void)" is an empty parameter list
        if self.at("void") and self.peek(1).is_punct(")"):
            self.advance()
            self.advance()
            return params, ellipsis
        while True:
            if self.at("..."):
                self.advance()
                ellipsis = True
                break
            base = self.parse_type_specifier()
            d = self.parse_declarator(base, abstract=True)
            default_text: Optional[str] = None
            if self.accept("="):
                default_text = self._collect_default_arg()
            params.append(
                Parameter(
                    name=d.name,
                    type=d.type or base,
                    default_text=default_text,
                    location=d.name_location,
                )
            )
            if not self.accept(","):
                break
        self.expect(")")
        return params, ellipsis

    def _collect_default_arg(self) -> str:
        toks = []
        depth = 0
        while not self.at_eof:
            c = self.cur
            if depth == 0 and (c.is_punct(",") or c.is_punct(")")):
                break
            if c.text in ("(", "[", "{"):
                depth += 1
            elif c.text in (")", "]", "}"):
                depth -= 1
            toks.append(self.advance())
        return tokens_to_text(toks)


def _canonical_builtin(words: list[str], parser: TypeParserMixin) -> str:
    """Canonicalise a builtin keyword combo to a TypeTable builtin name."""
    if not words:
        raise CppError("expected builtin type", parser.loc())
    unsigned = "unsigned" in words
    signed = "signed" in words
    core = [w for w in words if w not in ("unsigned", "signed")]
    longs = core.count("long")
    core = [w for w in core if w != "long"]
    shorts = "short" in words
    core = [w for w in core if w != "short"]
    base = core[0] if core else "int"
    if base in ("void", "bool", "wchar_t"):
        return base
    if base == "char":
        if unsigned:
            return "unsigned char"
        if signed:
            return "signed char"
        return "char"
    if base in ("float",):
        return "float"
    if base == "double":
        return "long double" if longs else "double"
    # integer family
    if shorts:
        return "unsigned short" if unsigned else "short"
    if longs >= 2:
        return "unsigned long long" if unsigned else "long long"
    if longs == 1:
        return "unsigned long" if unsigned else "long"
    return "unsigned int" if unsigned else "int"
