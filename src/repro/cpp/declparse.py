"""Declaration parsing: the top of the grammar, and the full Parser.

Handles namespaces, using-directives/declarations, classes (with bases,
access sections, friends, nested types), enums, typedefs, variables,
functions (declarations, definitions, out-of-line members, constructor
initialiser lists), linkage blocks, and the template grammar:

* class templates — body captured as a token slice *and* parsed once in
  dependent mode to build the "pattern" class (member shapes, needed for
  TE_STATMEM classification and tooling),
* function templates — signature parsed in dependent mode (deduction
  patterns), body captured,
* out-of-line member function / static data member templates,
* explicit and partial specializations,
* explicit instantiation directives (``template class Stack<int>;``),
  which instantiate *all* members (the SILOON workflow).

Instantiation itself lives in :mod:`repro.cpp.instantiate`; this parser
exposes the re-entry points the engine uses (``parse_class_definition``
with a pre-made target class, ``parse_function_body``).
"""

from __future__ import annotations

from typing import Optional

from repro.cpp.cpptypes import FunctionType, Type
from repro.cpp.diagnostics import CppError, DiagnosticSink, TooManyErrors
from repro.cpp.il import (
    Access,
    Class,
    ClassKind,
    Enum,
    Field,
    Namespace,
    Parameter,
    Routine,
    RoutineKind,
    SourceRange,
    Template,
    TemplateKind,
    TemplateParameter,
    Typedef,
    Variable,
    Virtuality,
)
from repro.cpp.scope import Binder
from repro.cpp.source import SourceLocation
from repro.cpp.stmtparse import StmtParserMixin
from repro.cpp.tokens import Token, TokenKind, tokens_to_text
from repro.cpp.typeparse import Declarator, DeclSpecs

_CLASS_KEYS = {"class": ClassKind.CLASS, "struct": ClassKind.STRUCT, "union": ClassKind.UNION}


class Parser(StmtParserMixin):
    """The complete C++-subset parser (decl + stmt + expr + type mixins)."""

    def __init__(self, tokens, tree, binder, sink, engine=None, register: bool = True):
        super().__init__(tokens, tree, binder, sink, engine)
        #: when False, created entities are linked into their parent scope
        #: but not recorded in the ILTree registries (pattern parses).
        self.register = register
        self.linkage = "C++"

    # -- registration helpers -------------------------------------------------

    def _reg_class(self, c: Class) -> Class:
        if self.register:
            self.tree.register_class(c)
        return c

    def _reg_routine(self, r: Routine) -> Routine:
        if self.register:
            self.tree.register_routine(r)
        return r

    # -- translation unit -------------------------------------------------------

    def parse_translation_unit(self) -> None:
        while not self.at_eof:
            start = self.pos
            try:
                self.parse_declaration()
            except TooManyErrors:
                raise
            except CppError as exc:
                if self.sink.fatal_errors:
                    raise
                # error recovery: record, resynchronise at the next ";"
                # (or, failing progress, the next token), keep going;
                # soft_error raises TooManyErrors once the cascade bound
                # is hit, which terminates the unit
                self.sink.soft_error(exc.message, exc.location)
                self._recover_to_next_declaration(start)
            if self.engine is not None:
                self.engine.drain()

    def _recover_to_next_declaration(self, error_start: int) -> None:
        """Error recovery resync: move to the next plausible declaration
        start — a line-initial decl keyword — or past the next top-level
        semicolon, whichever comes first.  Always makes progress."""
        from repro.cpp.parserbase import DECL_SPECIFIERS, TYPE_KEYWORDS

        starters = TYPE_KEYWORDS | DECL_SPECIFIERS | {
            "template", "namespace", "using", "class", "struct", "union", "enum"
        }
        if not self.at_eof:
            self.advance()
        while not self.at_eof:
            t = self.cur
            if t.is_punct(";"):
                self.advance()
                return
            if t.at_line_start and t.kind is TokenKind.IDENT and t.text in starters:
                return
            self.advance()
        if self.pos == error_start and not self.at_eof:  # paranoia
            self.advance()

    # -- declarations ------------------------------------------------------------

    def parse_declaration(self) -> None:
        t = self.cur
        if t.is_punct(";"):
            self.advance()
            return
        if t.is_ident("namespace"):
            self._parse_namespace()
            return
        if t.is_ident("using"):
            self._parse_using()
            return
        if t.is_ident("template"):
            self.parse_template_declaration()
            return
        if t.is_ident("extern") and self.peek(1).kind is TokenKind.STRING:
            self._parse_linkage_block()
            return
        if t.is_ident("typedef"):
            self._parse_typedef()
            return
        if t.is_ident("enum"):
            self._parse_enum()
            return
        if t.kind is TokenKind.IDENT and t.text in _CLASS_KEYS and self._is_class_definition():
            cls = self.parse_class_definition()
            self._parse_post_class_declarators(cls)
            return
        self._parse_simple_declaration()

    def _is_class_definition(self) -> bool:
        """class-key [name] followed by ``{`` or ``: bases {`` or ``;``
        (forward declaration) — as opposed to an elaborated type in a
        variable declaration (``class X x;``)."""
        i = 1
        if self.peek(i).kind is TokenKind.IDENT:
            i += 1
            # skip a template-id in the name (specializations handled in
            # the template grammar; defensive here)
            if self.peek(i).is_punct("<"):
                depth = 0
                while True:
                    tk = self.peek(i)
                    if tk.is_eof:
                        return False
                    if tk.is_punct("<"):
                        depth += 1
                    elif tk.is_punct(">"):
                        depth -= 1
                        if depth == 0:
                            i += 1
                            break
                    i += 1
        return self.peek(i).is_punct("{") or self.peek(i).is_punct(":") or self.peek(i).is_punct(";")

    # -- namespaces ------------------------------------------------------------------

    def _parse_namespace(self) -> None:
        kw = self.expect("namespace")
        if self.at_plain_ident() and self.peek(1).is_punct("="):
            # namespace alias: namespace A = B::C;
            alias = self.expect_ident()
            self.expect("=")
            parts: list[str] = []
            self.accept("::")
            parts.append(self.expect_ident().text)
            while self.accept("::"):
                parts.append(self.expect_ident().text)
            target = self.binder.resolve_scope_path(parts[:-1])
            resolved = None
            if isinstance(target, Namespace):
                resolved = Binder.find_in_namespace(target, parts[-1])
            elif len(parts) == 1:
                resolved = self.binder.lookup(parts[0])
            if isinstance(resolved, Namespace):
                self.binder.current_namespace.aliases[alias.text] = resolved
            else:
                self.sink.warn(f"namespace alias target not found: {'::'.join(parts)}", kw.location)
            self.expect(";")
            return
        name_tok = self.expect_ident() if self.at_plain_ident() else None
        name = name_tok.text if name_tok else "<anon>"
        loc = name_tok.location if name_tok else kw.location
        parent = self.binder.current_namespace
        ns = next((n for n in parent.namespaces if n.name == name), None)
        if ns is None:
            ns = Namespace(name, loc, parent)
            parent.namespaces.append(ns)
            if self.register:
                self.tree.register_namespace(ns)
            ns.position.header = SourceRange(kw.location, loc)
        open_tok = self.expect("{")
        body_begin = open_tok.location
        self.binder.enter_namespace(ns)
        try:
            while not self.at("}"):
                if self.at_eof:
                    raise CppError("unterminated namespace", kw.location)
                self.parse_declaration()
        finally:
            self.binder.exit_namespace()
        close = self.expect("}")
        ns.position.body = SourceRange(body_begin, close.location)
        if name == "<anon>":
            # anonymous namespace members are visible in the parent
            parent.using_namespaces.append(ns)

    def _parse_using(self) -> None:
        self.expect("using")
        if self.accept("namespace"):
            parts = [self.expect_ident().text]
            while self.accept("::"):
                parts.append(self.expect_ident().text)
            ns = self.binder.resolve_scope_path(parts)
            if isinstance(ns, Namespace):
                self.binder.current_namespace.using_namespaces.append(ns)
            else:
                self.sink.warn(f"using namespace target not found: {'::'.join(parts)}")
            self.expect(";")
            return
        # using-declaration: using std::cout;
        self.accept("::")
        parts = [self.expect_ident().text]
        while self.accept("::"):
            parts.append(self.expect_ident().text)
        self.expect(";")
        if len(parts) < 2:
            return
        binding = self.binder.lookup_qualified(parts[:-1], parts[-1])
        if binding is not None:
            self.binder.current_namespace.using_decls[parts[-1]] = binding

    def _parse_linkage_block(self) -> None:
        self.expect("extern")
        lang_tok = self.advance()  # the string literal
        lang = lang_tok.text.strip('"')
        saved = self.linkage
        self.linkage = lang
        try:
            if self.at("{"):
                self.advance()
                while not self.at("}"):
                    if self.at_eof:
                        raise CppError("unterminated linkage block", lang_tok.location)
                    self.parse_declaration()
                self.expect("}")
            else:
                self.parse_declaration()
        finally:
            self.linkage = saved

    # -- typedefs / enums ------------------------------------------------------------

    def _parse_typedef(self) -> None:
        self.expect("typedef")
        base = self.parse_type_specifier()
        while True:
            d = self.parse_declarator(base)
            td = Typedef(d.name, d.name_location or self.loc(), self.binder.current_scope, d.type or base)
            self._attach_typedef(td)
            if not self.accept(","):
                break
        self.expect(";")

    def _attach_typedef(self, td: Typedef) -> None:
        scope = self.binder.current_scope
        if isinstance(scope, Class):
            scope.inner_typedefs.append(td)
        else:
            scope.typedefs.append(td)
        if self.register:
            self.tree.register_typedef(td)

    def _parse_enum(self, access: Access = Access.NA) -> Enum:
        kw = self.expect("enum")
        name = self.expect_ident().text if self.at_plain_ident() else "<anon>"
        loc = self.loc()
        e = Enum(name, kw.location, self.binder.current_scope)
        e.access = access
        self.expect("{")
        next_value = 0
        while not self.at("}"):
            en = self.expect_ident()
            value = next_value
            if self.accept("="):
                toks: list[Token] = []
                while not self.at_any(",", "}"):
                    toks.append(self.advance())
                try:
                    value = int(tokens_to_text(toks), 0)
                except ValueError:
                    value = next_value
            e.enumerators.append((en.text, value))
            next_value = value + 1
            if not self.accept(","):
                break
        self.expect("}")
        # optional declarators after the enum body (rare) — skip to ";"
        if not self.at(";"):
            self.skip_to_semicolon()
        else:
            self.expect(";")
        scope = self.binder.current_scope
        if isinstance(scope, Class):
            scope.inner_enums.append(e)
        else:
            scope.enums.append(e)
        if self.register:
            self.tree.register_enum(e)
        return e

    # -- classes ------------------------------------------------------------------------

    def parse_class_definition(
        self,
        existing: Optional[Class] = None,
        attach_to_scope: bool = True,
    ) -> Class:
        """Parse ``class-key name [: bases] { members } ``.

        ``existing`` redirects the parse into a pre-created class — how
        the instantiation engine fills in ``Stack<int>`` from the class
        template's token slice (the class keeps its instantiation name).
        """
        key_tok = self.advance()
        kind = _CLASS_KEYS[key_tok.text]
        name_tok = self.expect_ident() if self.at_plain_ident() else None
        name = name_tok.text if name_tok else "<anon>"
        loc = name_tok.location if name_tok else key_tok.location
        # skip a template-id suffix on the name (specialization headers)
        if self.at("<"):
            self.try_parse_template_args()
        if self.at(";") and existing is None:
            # forward declaration (the ";" stays for the caller)
            prior = self._find_class_in_scope(name)
            if prior is not None:
                return prior
            cls = Class(name, loc, self.binder.current_scope, kind)
            self._attach_class(cls, attach_to_scope)
            return cls
        if existing is not None:
            cls = existing
            cls.kind = kind
        else:
            prior = self._find_class_in_scope(name)
            if prior is not None and not prior.defined:
                cls = prior
                cls.location = loc
            else:
                cls = Class(name, loc, self.binder.current_scope, kind)
                self._attach_class(cls, attach_to_scope)
        cls.position.header = SourceRange(key_tok.location, loc)
        if self.at(":"):
            self.advance()
            self._parse_base_clause(cls)
        open_tok = self.expect("{")
        cls.defined = True
        default_access = Access.PRIVATE if kind is ClassKind.CLASS else Access.PUBLIC
        self.binder.enter_class(cls)
        pending_bodies: list[tuple[Routine, int]] = []
        try:
            self._parse_member_list(cls, default_access, pending_bodies)
        finally:
            self.binder.exit_class()
        close = self.expect("}")
        cls.position.body = SourceRange(open_tok.location, close.location)
        cls.is_abstract = any(r.virtuality is Virtuality.PURE for r in cls.routines)
        # Delayed member body parsing (members may reference later members).
        self._handle_pending_bodies(cls, pending_bodies)
        return cls

    def _find_class_in_scope(self, name: str) -> Optional[Class]:
        scope = self.binder.current_scope
        if isinstance(scope, Class):
            return next((c for c in scope.inner_classes if c.name == name), None)
        return next((c for c in scope.classes if c.name == name), None)

    def _attach_class(self, cls: Class, attach_to_scope: bool) -> None:
        if attach_to_scope:
            scope = self.binder.current_scope
            if isinstance(scope, Class):
                scope.inner_classes.append(cls)
            else:
                scope.classes.append(cls)
        self._reg_class(cls)

    def _parse_base_clause(self, cls: Class) -> None:
        while True:
            access = Access.PRIVATE if cls.kind is ClassKind.CLASS else Access.PUBLIC
            virtual = False
            while True:
                if self.accept("virtual"):
                    virtual = True
                elif self.at_any("public", "protected", "private"):
                    access = Access(
                        {"public": "pub", "protected": "prot", "private": "priv"}[self.advance().text]
                    )
                else:
                    break
            base_type = self.parse_type_specifier()
            base_cls = base_type.class_decl()
            if base_cls is not None:
                cls.add_base(base_cls, access, virtual)
            elif base_type.is_dependent:
                pass  # dependent base in a template pattern: resolved at instantiation
            else:
                self.sink.warn(f"unknown base class {base_type.spelling()!r}", self.loc())
            if not self.accept(","):
                break

    def _parse_member_list(
        self, cls: Class, access: Access, pending_bodies: list[tuple[Routine, int]]
    ) -> None:
        current = access
        while not self.at("}"):
            if self.at_eof:
                raise CppError("unterminated class body", cls.location)
            if self.at_any("public", "protected", "private"):
                word = self.advance().text
                self.expect(":")
                current = Access({"public": "pub", "protected": "prot", "private": "priv"}[word])
                continue
            start = self.pos
            try:
                self._parse_member_declaration(cls, current, pending_bodies)
            except TooManyErrors:
                raise
            except CppError as exc:
                if self.sink.fatal_errors:
                    raise
                # member-level recovery: record, resynchronise at the next
                # ";" inside the class (balanced bodies skipped), so one
                # broken member does not take out the rest of the class
                self.sink.soft_error(exc.message, exc.location)
                if self.pos == start and not self.at_eof:
                    self.advance()
                self.skip_to_semicolon()

    def _parse_member_declaration(
        self, cls: Class, access: Access, pending_bodies: list[tuple[Routine, int]]
    ) -> None:
        t = self.cur
        if t.is_punct(";"):
            self.advance()
            return
        if t.is_ident("friend"):
            self._parse_friend(cls)
            return
        if t.is_ident("typedef"):
            mark_len = len(cls.inner_typedefs)
            self._parse_typedef()
            for td in cls.inner_typedefs[mark_len:]:
                td.access = access
            return
        if t.is_ident("enum"):
            self._parse_enum(access)
            return
        if t.is_ident("using"):
            self.skip_to_semicolon()
            return
        if t.is_ident("template"):
            self.parse_template_declaration(member_access=access)
            return
        if t.kind is TokenKind.IDENT and t.text in _CLASS_KEYS and self._is_class_definition():
            inner = self.parse_class_definition()
            inner.access = access
            self._parse_post_class_declarators(inner, access)
            return
        self._parse_member_func_or_field(cls, access, pending_bodies)

    def _parse_member_func_or_field(
        self, cls: Class, access: Access, pending_bodies: list[tuple[Routine, int]]
    ) -> None:
        start_tok = self.cur
        specs = self._parse_decl_spec_flags()
        # constructor / destructor / conversion have no decl-specifier type
        if self._at_ctor_name(cls) or self.at("~") or self.at_ident("operator"):
            base: Type = self.types.void
            d = self.parse_declarator(base)
            if not d.is_function and not d.is_destructor:
                raise CppError("expected member function declarator", start_tok.location)
            r = self._make_member_routine(cls, d, specs, access, start_tok, ctor_like=True)
            if not self._finish_member_routine(r, d, pending_bodies, start_tok):
                self.expect(";")
            return
        base = self.parse_type_specifier()
        while True:
            d = self.parse_declarator(base)
            if d.is_function:
                r = self._make_member_routine(cls, d, specs, access, start_tok, ctor_like=False)
                done = self._finish_member_routine(r, d, pending_bodies, start_tok)
                if done:
                    return
            else:
                self._make_field(cls, d, specs, access, base)
            if self.accept(","):
                continue
            break
        # bit-field / initialiser tails
        if self.at(":") or self.at("="):
            self.skip_to_semicolon()
            return
        self.expect(";")

    def _at_ctor_name(self, cls: Class) -> bool:
        if not self.at_plain_ident():
            return False
        raw = cls.name.split("<")[0]
        if self.cur.text != raw:
            return False
        j = 1
        if self.peek(j).is_punct("<"):
            depth = 0
            while True:
                tk = self.peek(j)
                if tk.is_eof:
                    return False
                if tk.is_punct("<"):
                    depth += 1
                elif tk.is_punct(">"):
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                j += 1
        return self.peek(j).is_punct("(")

    def _at_out_of_line_ctor_like(self) -> bool:
        """True at ``Name[<...>]::Name(`` or ``Name[<...>]::~Name`` — an
        out-of-line constructor/destructor declarator (no return type)."""
        if not self.at_plain_ident():
            return False
        name = self.cur.text
        i = 1
        if self.peek(i).is_punct("<"):
            depth = 0
            while True:
                tk = self.peek(i)
                if tk.is_eof:
                    return False
                if tk.is_punct("<"):
                    depth += 1
                elif tk.is_punct(">"):
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
        if not self.peek(i).is_punct("::"):
            return False
        i += 1
        if self.peek(i).is_punct("~"):
            return self.peek(i + 1).kind is TokenKind.IDENT and self.peek(i + 1).text == name
        return (
            self.peek(i).kind is TokenKind.IDENT
            and self.peek(i).text == name
            and self.peek(i + 1).is_punct("(")
        )

    def _parse_decl_spec_flags(self) -> DeclSpecs:
        specs = DeclSpecs()
        while True:
            if self.accept("static"):
                specs.storage = "static"
            elif self.accept("extern"):
                specs.storage = "extern"
            elif self.accept("virtual"):
                specs.is_virtual = True
            elif self.accept("inline"):
                specs.is_inline = True
            elif self.accept("explicit"):
                specs.is_explicit = True
            elif self.accept("mutable"):
                specs.is_mutable = True
            elif self.accept("register") or self.accept("auto"):
                pass
            else:
                return specs

    def _make_member_routine(
        self,
        cls: Class,
        d: Declarator,
        specs: DeclSpecs,
        access: Access,
        start_tok: Token,
        ctor_like: bool,
    ) -> Routine:
        raw = cls.name.split("<")[0]
        if d.is_destructor:
            kind = RoutineKind.DESTRUCTOR
            name = "~" + raw
        elif d.is_conversion:
            kind = RoutineKind.CONVERSION
            name = d.name
        elif d.is_operator:
            kind = RoutineKind.OPERATOR
            name = d.name
        elif ctor_like and d.name == raw:
            kind = RoutineKind.CONSTRUCTOR
            name = cls.name  # ctor of Stack<int> is named Stack<int>
        else:
            kind = RoutineKind.MEMBER
            name = d.name
        sig = d.type if isinstance(d.type, FunctionType) else self.types.function(
            self.types.void, [p.type for p in d.parameters], d.ellipsis, d.const
        )
        if kind is RoutineKind.CONSTRUCTOR:
            sig = self.types.function(
                self.types.class_type(cls), [p.type for p in d.parameters], d.ellipsis
            )
        # merge with a prior declaration (definition following decl)
        existing = self._match_declared_routine(cls, name, d)
        if existing is not None:
            r = existing
        else:
            r = Routine(name, d.name_location or start_tok.location, cls, sig, kind)
            cls.routines.append(r)
            self._reg_routine(r)
        r.signature = sig
        r.parameters = _merge_params(r.parameters, d.parameters)
        r.access = access
        r.linkage = self.linkage
        r.is_inline = r.is_inline or specs.is_inline
        r.is_explicit = specs.is_explicit
        r.is_const = d.const
        r.is_static_member = specs.storage == "static"
        r.storage = "NA"
        if specs.is_virtual:
            r.virtuality = Virtuality.VIRTUAL
        else:
            r.virtuality = self._inherited_virtuality(cls, name, r.virtuality)
        r.position.header = SourceRange(start_tok.location, self.peek(-1).location if self.pos > 0 else start_tok.location)
        return r

    def _inherited_virtuality(self, cls: Class, name: str, default: Virtuality) -> Virtuality:
        """An override of a virtual base method is itself virtual."""
        if default is not Virtuality.NO:
            return default
        for base, _, _ in cls.bases:
            for r in base.find_routines(name):
                if r.virtuality is not Virtuality.NO:
                    return Virtuality.VIRTUAL
        return default

    def _match_declared_routine(self, cls: Class, name: str, d: Declarator) -> Optional[Routine]:
        for r in cls.routines:
            if r.name != name:
                continue
            if (
                len(r.parameters) == len(d.parameters)
                and r.is_const == d.const
                and _same_param_types(r.parameters, d.parameters)
            ):
                return r
        return None

    def _finish_member_routine(
        self,
        r: Routine,
        d: Declarator,
        pending_bodies: list[tuple[Routine, int]],
        start_tok: Token,
    ) -> bool:
        """Handle what follows a member function declarator.  Returns True
        when the declaration is fully terminated (body or pure-specifier
        consumed its own ending); False when the caller still owns the
        ``,``/``;`` that follows a plain declaration."""
        if self.accept("="):
            if self.cur.kind is TokenKind.NUMBER and self.cur.text == "0":
                self.advance()
                r.virtuality = Virtuality.PURE
                self.expect(";")
            else:
                self.skip_to_semicolon()
            return True
        if self.at(":") or self.at("{"):
            # inline definition: capture the slice, parse after class end
            body_start = self.pos
            if self.at(":"):
                # ctor initialiser list: skip to the "{"
                while not self.at("{"):
                    if self.at_eof:
                        raise CppError("malformed constructor initialiser", start_tok.location)
                    if self.at("("):
                        self.skip_balanced("(")
                    else:
                        self.advance()
            close_idx = self.skip_balanced("{")
            r.body_tokens = (body_start, close_idx + 1)
            r.position.body = SourceRange(
                self.tokens[body_start].location, self.tokens[close_idx].location
            )
            pending_bodies.append((r, body_start))
            self.accept(";")  # tolerate a stray semicolon after the body
            return True
        return False

    def _handle_pending_bodies(self, cls: Class, pending: list[tuple[Routine, int]]) -> None:
        """Parse the delayed inline member bodies — immediately for
        ordinary classes, deferred to the engine for template patterns
        and used-mode instantiations."""
        if not self.register:
            return  # pattern parse: bodies stay as token slices
        for r, start in pending:
            if self.engine is not None and cls.is_instantiation:
                self.engine.defer_inline_body(r, cls)
            else:
                self.parse_function_body_at(r, start)

    def _make_field(
        self, cls: Class, d: Declarator, specs: DeclSpecs, access: Access, base: Type
    ) -> None:
        f = Field(
            d.name,
            d.name_location or self.loc(),
            cls,
            d.type or base,
            is_static=specs.storage == "static",
            is_mutable=specs.is_mutable,
        )
        f.access = access
        cls.fields.append(f)

    def _parse_friend(self, cls: Class) -> None:
        self.expect("friend")
        if self.cur.text in _CLASS_KEYS:
            self.advance()
            nm = self.expect_ident()
            binding = self.binder.lookup(nm.text)
            if isinstance(binding, Class):
                cls.friend_classes.append(binding)
            else:
                # forward-declares the class at namespace scope
                friend = Class(nm.text, nm.location, self.binder.current_namespace)
                self.binder.current_namespace.classes.append(friend)
                self._reg_class(friend)
                cls.friend_classes.append(friend)
            if self.at("<"):
                self.try_parse_template_args()
            self.expect(";")
            return
        # friend function: declares a namespace-scope function
        base = self.parse_type_specifier()
        d = self.parse_declarator(base)
        ns = self.binder.current_namespace
        existing = [r for r in ns.routines if r.name == d.name and len(r.parameters) == len(d.parameters)]
        if existing:
            r = existing[0]
        else:
            r = self._routine_from_declarator(d, DeclSpecs(), ns)
        cls.friend_routines.append(r)
        if self.at("{"):
            start = self.pos
            self.skip_balanced("{")
            r.position.body = SourceRange(self.tokens[start].location, self.peek(-1).location)
            self.parse_function_body_at(r, start)
        else:
            self.expect(";")

    def _parse_post_class_declarators(self, cls: Class, access: Access = Access.NA) -> None:
        """Variable declarators after a class definition: ``class X {} x;``."""
        if self.accept(";"):
            return
        base = self.types.class_type(cls)
        while True:
            d = self.parse_declarator(base)
            if d.name:
                v = Variable(d.name, d.name_location or self.loc(), self.binder.current_namespace, d.type or base)
                self.binder.current_namespace.variables.append(v)
                if self.register:
                    self.tree.register_variable(v)
            if not self.accept(","):
                break
        self.expect(";")

    # -- simple (non-class) declarations ------------------------------------------------

    def _parse_simple_declaration(self) -> None:
        start_tok = self.cur
        specs = self._parse_decl_spec_flags()
        if self._at_out_of_line_ctor_like():
            d = self.parse_declarator(self.types.void)
            self._out_of_line_member(d, specs, start_tok)
            return
        base = self.parse_type_specifier()
        while True:
            d = self.parse_declarator(base)
            if d.is_function:
                r = self._declare_or_define_function(d, specs, start_tok)
                if r is not None:
                    return  # body consumed; declaration complete
            elif d.qualifier:
                # out-of-line static data member definition: int C::count = 0;
                cls = self._resolve_qualifier_class(d.qualifier)
                if cls is not None:
                    for f in cls.fields:
                        if f.name == d.name:
                            f.flags = getattr(f, "flags", {})
                            f.flags["defined"] = True  # type: ignore[attr-defined]
            else:
                self._declare_variable(d, specs, base)
            if self.accept(","):
                continue
            break
        if self.at("="):
            self.skip_to_semicolon()
            return
        self.expect(";")

    def _declare_variable(self, d: Declarator, specs: DeclSpecs, base: Type) -> None:
        ns = self.binder.current_namespace
        existing = next((v for v in ns.variables if v.name == d.name), None)
        if existing is None and d.name:
            v = Variable(d.name, d.name_location or self.loc(), ns, d.type or base)
            v.storage = specs.storage
            ns.variables.append(v)
            if self.register:
                self.tree.register_variable(v)

    def _routine_from_declarator(
        self, d: Declarator, specs: DeclSpecs, scope
    ) -> Routine:
        kind = RoutineKind.OPERATOR if d.is_operator else RoutineKind.FUNCTION
        sig = d.type if isinstance(d.type, FunctionType) else self.types.function(
            self.types.void, [p.type for p in d.parameters], d.ellipsis
        )
        r = Routine(d.name, d.name_location or self.loc(), scope, sig, kind)
        r.parameters = d.parameters
        r.linkage = self.linkage
        r.storage = specs.storage if specs.storage != "NA" else "NA"
        r.is_inline = specs.is_inline
        if isinstance(scope, Namespace):
            scope.routines.append(r)
        self._reg_routine(r)
        return r

    def _declare_or_define_function(
        self, d: Declarator, specs: DeclSpecs, start_tok: Token
    ) -> Optional[Routine]:
        """Namespace-scope function declarator; returns the routine when a
        body was parsed (terminating the declaration)."""
        if d.qualifier:
            return self._out_of_line_member(d, specs, start_tok)
        ns = self.binder.current_namespace
        existing = [
            r for r in ns.routines
            if r.name == d.name
            and len(r.parameters) == len(d.parameters)
            and _same_param_types(r.parameters, d.parameters)
        ]
        r = existing[0] if existing else self._routine_from_declarator(d, specs, ns)
        r.parameters = d.parameters or r.parameters
        if isinstance(d.type, FunctionType):
            r.signature = d.type
        r.position.header = SourceRange(start_tok.location, self.peek(-1).location)
        if self.at("{"):
            start = self.pos
            close_idx = self.skip_balanced("{")
            r.position.body = SourceRange(
                self.tokens[start].location, self.tokens[close_idx].location
            )
            self.parse_function_body_at(r, start)
            return r
        return None

    def _out_of_line_member(
        self, d: Declarator, specs: DeclSpecs, start_tok: Token
    ) -> Optional[Routine]:
        """``ReturnType Class::member(...) { ... }`` for a non-template
        class (the template case goes through parse_template_declaration)."""
        cls = self._resolve_qualifier_class(d.qualifier)
        if cls is None:
            self.sink.warn(
                f"cannot resolve member qualifier for {d.name!r}", start_tok.location
            )
            if self.at("{"):
                self.skip_balanced("{")
            else:
                self.skip_to_semicolon()
            return None
        target = self._match_declared_routine_loose(cls, d)
        if target is None:
            # definition without in-class declaration: declare it now
            saved = self.binder.class_stack
            self.binder.class_stack = self.binder.class_stack + [cls]
            try:
                target = self._make_member_routine(cls, d, specs, Access.PUBLIC, start_tok, ctor_like=True)
            finally:
                self.binder.class_stack = saved
        target.location = d.name_location or start_tok.location
        target.position.header = SourceRange(start_tok.location, self.peek(-1).location)
        target.parameters = _merge_params(target.parameters, d.parameters) or target.parameters
        if self.at(":") or self.at("{"):
            body_start = self.pos
            while not self.at("{"):
                if self.at("("):
                    self.skip_balanced("(")
                else:
                    self.advance()
            close_idx = self.skip_balanced("{")
            target.position.body = SourceRange(
                self.tokens[body_start].location, self.tokens[close_idx].location
            )
            self.parse_function_body_at(target, body_start)
            return target
        self.expect(";")
        return target

    def _resolve_qualifier_class(
        self, qualifier: list[tuple[str, Optional[list[Type]]]]
    ) -> Optional[Class]:
        node = None
        for i, (name, args) in enumerate(qualifier):
            if i == 0:
                binding = self.binder.lookup(name)
            else:
                if isinstance(node, Namespace):
                    binding = Binder.find_in_namespace(node, name)
                elif isinstance(node, Class):
                    binding = Binder.find_in_class(node, name)
                else:
                    return None
            if isinstance(binding, list):
                templates = [t for t in binding if isinstance(t, Template)]
                if templates and args is not None and not any(a.is_dependent for a in args):
                    assert self.engine is not None
                    binding = self.engine.instantiate_class(templates[0], args, self.loc())
                else:
                    return None
            if isinstance(binding, (Namespace, Class)):
                node = binding
            elif isinstance(binding, Typedef):
                node = binding.underlying.class_decl()
            else:
                return None
        return node if isinstance(node, Class) else None

    def _match_declared_routine_loose(self, cls: Class, d: Declarator) -> Optional[Routine]:
        name = d.name
        if d.is_destructor:
            return cls.destructor()
        if name == cls.name.split("<")[0]:
            cands = cls.constructors()
        else:
            cands = [r for r in cls.routines if r.name == name]
        exact = [
            r for r in cands
            if len(r.parameters) == len(d.parameters) and r.is_const == d.const
        ]
        if exact:
            return exact[0]
        loose = [r for r in cands if len(r.parameters) == len(d.parameters)]
        return loose[0] if loose else (cands[0] if cands else None)

    # -- function bodies --------------------------------------------------------------------

    def parse_function_body_at(self, r: Routine, token_index: int) -> None:
        """Parse the body slice starting at ``token_index`` (at ``:`` for a
        ctor initialiser list, else at ``{``) into routine ``r``."""
        sub = Parser(self.tokens, self.tree, self.binder, self.sink, self.engine, self.register)
        sub.pos = token_index
        sub.linkage = self.linkage
        sub._parse_body_into(r)

    def _parse_body_into(self, r: Routine) -> None:
        saved_routine = self.binder.current_routine
        saved_blocks = self.binder.block_scopes
        self.binder.current_routine = r
        self.binder.block_scopes = []
        self.binder.push_block()
        try:
            for p in r.parameters:
                if p.name:
                    self.binder.declare_local(p.name, p.type, p.location or r.location)
            if r.kind is RoutineKind.CONSTRUCTOR and self.at(":"):
                self._parse_ctor_initialisers(r)
            self.parse_compound_statement()
            r.defined = True
        finally:
            close_loc = self.peek(-1).location if self.pos > 0 else r.location
            scope = self.binder.pop_block()
            # by-value class parameters die at function exit (reference
            # and pointer parameters own nothing — no lifetime ends)
            from repro.cpp.stmtparse import _owned_class

            self._record_scope_destructors(
                {k: v for k, v in scope.items() if _owned_class(v.type) is not None},
                close_loc,
            )
            self.binder.current_routine = saved_routine
            self.binder.block_scopes = saved_blocks

    def _parse_ctor_initialisers(self, r: Routine) -> None:
        """``: member(expr), Base(expr)`` — each initialiser of class type
        records a constructor call (lifetime handling)."""
        self.expect(":")
        cls = r.parent_class
        while True:
            nm = self.expect_ident()
            args: list = []
            if self.at("("):
                args = self._parse_call_args()
            target_type: Optional[Type] = None
            if cls is not None:
                member = cls.find_member(nm.text)
                if isinstance(member, Field):
                    target_type = member.type
                else:
                    for base, _, _ in cls.bases:
                        if base.name.split("<")[0] == nm.text or base.name == nm.text:
                            target_type = self.types.class_type(base)
                            break
            if target_type is not None:
                self._record_ctor(target_type, args, nm.location)
            if not self.accept(","):
                break

    # -- templates -----------------------------------------------------------------------------

    def parse_template_declaration(self, member_access: Access = Access.NA) -> None:
        """Everything starting with the ``template`` keyword."""
        kw_idx = self.pos
        kw = self.expect("template")
        self._template_kw_idx = kw_idx
        if not self.at("<"):
            # explicit instantiation: template class Stack<int>;
            self._parse_explicit_instantiation(kw)
            return
        params, params_end = self._parse_template_params()
        if not params:
            # template<> — explicit specialization
            self._parse_explicit_specialization(kw)
            return
        bindings: dict[str, Type] = {}
        for i, p in enumerate(params):
            if p.kind == "type":
                bindings[p.name] = self.types.template_param(p.name, i)
            else:
                bindings[p.name] = self.types.nontype_arg(p.name, dependent=True)
        if self.cur.text in _CLASS_KEYS and self._is_class_definition():
            self._parse_class_template(kw, params, params_end, bindings, member_access)
            return
        self._parse_function_template(kw, params, params_end, bindings, member_access)

    def _parse_template_params(self) -> tuple[list[TemplateParameter], SourceLocation]:
        self.expect("<")
        params: list[TemplateParameter] = []
        if self.at(">"):
            end = self.advance().location
            return params, end
        while True:
            if self.at_any("class", "typename"):
                self.advance()
                name = self.expect_ident().text if self.at_plain_ident() else f"<T{len(params)}>"
                default = None
                if self.accept("="):
                    default = self._collect_template_default()
                params.append(TemplateParameter("type", name, default))
            elif self.at("template"):
                # template template parameter: template<class> class C
                self.advance()
                self.skip_angle()
                self.accept("class") or self.accept("typename")
                name = self.expect_ident().text if self.at_plain_ident() else f"<TT{len(params)}>"
                params.append(TemplateParameter("template", name))
            else:
                ptype = self.parse_type_specifier()
                ptype = self.parse_ptr_operators(ptype)
                name = self.expect_ident().text if self.at_plain_ident() else f"<N{len(params)}>"
                default = None
                if self.accept("="):
                    default = self._collect_template_default()
                params.append(TemplateParameter("nontype", name, default, ptype))
            if self.accept(","):
                continue
            end = self.expect(">").location
            return params, end

    def _collect_template_default(self) -> str:
        toks: list[Token] = []
        depth = 0
        while not self.at_eof:
            c = self.cur
            if depth == 0 and (c.is_punct(",") or c.is_punct(">")):
                break
            if c.text in ("(", "[", "<"):
                depth += 1
            elif c.text in (")", "]") or (c.is_punct(">") and depth > 0):
                depth -= 1
            toks.append(self.advance())
        return tokens_to_text(toks)

    def _parse_class_template(
        self,
        kw: Token,
        params: list[TemplateParameter],
        params_end: SourceLocation,
        bindings: dict[str, Type],
        member_access: Access,
    ) -> None:
        key_idx = self.pos
        key_tok = self.cur
        # peek the name
        name_tok = self.peek(1)
        name = name_tok.text if name_tok.kind is TokenKind.IDENT else "<anon>"
        # partial specialization? name followed by <
        is_partial = self.peek(2).is_punct("<")
        te = Template(name, name_tok.location, self.binder.current_scope, TemplateKind.CLASS)
        te.parameters = params
        te.access = member_access
        spec_args: list[Type] = []
        if is_partial:
            # parse the pattern args non-destructively
            mark = self.mark()
            self.advance()  # class key
            self.advance()  # name
            self.binder.push_tparams(bindings)
            try:
                spec_args = self.parse_template_args()
            except TooManyErrors:
                raise
            except CppError:
                spec_args = []
            finally:
                self.binder.pop_tparams()
                self.rewind(mark)
        # capture the full slice: class-key .. closing ";"
        end_idx = self._skip_class_definition_tokens()
        te.decl_tokens = (key_idx, end_idx)
        te.position.header = SourceRange(kw.location, params_end)
        body = _find_body_range(self.tokens, key_idx, end_idx)
        if body is not None:
            te.position.body = body
        te.text = _template_text(self.tokens, self._template_kw_idx, end_idx)
        # dependent-mode pattern parse (for member shapes)
        pattern = self._parse_pattern_class(key_idx, bindings)
        te.pattern = pattern  # type: ignore[attr-defined]
        scope = self.binder.current_scope
        if is_partial:
            primary = self._find_primary_template(name)
            te.spec_args = spec_args
            if primary is not None:
                te.primary = primary
                primary.specializations.append(te)
        if isinstance(scope, Namespace):
            scope.templates.append(te)
        else:
            scope_ns = self.binder.current_namespace
            scope_ns.templates.append(te)
        if self.register:
            self.tree.register_template(te)

    def _find_primary_template(self, name: str) -> Optional[Template]:
        b = self.binder.lookup(name)
        if isinstance(b, list):
            for t in b:
                if isinstance(t, Template) and t.kind is TemplateKind.CLASS and not t.is_specialization:
                    return t
        return None

    def _skip_class_definition_tokens(self) -> int:
        """From the class-key, skip the whole definition through ``;``;
        returns the index one past the ``;``."""
        self.advance()  # class-key
        if self.at_plain_ident():
            self.advance()
        if self.at("<"):
            self.skip_angle()
        if self.at(":"):
            while not self.at("{") and not self.at_eof:
                if self.at("<"):
                    self.skip_angle()
                else:
                    self.advance()
        if self.at("{"):
            self.skip_balanced("{")
        self.expect(";")
        return self.pos

    def _parse_pattern_class(self, key_idx: int, bindings: dict[str, Type]) -> Optional[Class]:
        """Parse the class template body in dependent mode to learn member
        shapes.  The pattern is linked nowhere in the IL registries."""
        sub = Parser(self.tokens, self.tree, self.binder, DiagnosticSink(fatal_errors=False), self.engine, register=False)
        sub.pos = key_idx
        sub.linkage = self.linkage
        self.binder.push_tparams(bindings)
        try:
            pattern = sub.parse_class_definition(attach_to_scope=False)
            # remove the pattern from the registries the helper reached
            if pattern in self.tree.all_classes:
                self.tree.all_classes.remove(pattern)
            return pattern
        except TooManyErrors:
            raise
        except CppError:
            return None
        finally:
            self.binder.pop_tparams()

    def _parse_function_template(
        self,
        kw: Token,
        params: list[TemplateParameter],
        params_end: SourceLocation,
        bindings: dict[str, Type],
        member_access: Access,
    ) -> None:
        """A function template, member-function template, or static data
        member template, out-of-line or free."""
        sig_idx = self.pos
        # dependent-mode parse of the signature
        self.binder.push_tparams(bindings)
        try:
            specs = self._parse_decl_spec_flags()
            if self._at_out_of_line_ctor_like():
                base: Type = self.types.void
            else:
                base = self.parse_type_specifier()
            d = self.parse_declarator(base)
        finally:
            self.binder.pop_tparams()
        loc = d.name_location or kw.location
        if d.qualifier:
            owner = self._find_qualifier_class_template(d.qualifier)
        else:
            owner = None
        if d.is_function:
            if owner is not None:
                kind = TemplateKind.MEMBER_FUNCTION
                pattern = getattr(owner, "pattern", None)
                if pattern is not None:
                    for r in pattern.routines:
                        if r.name == d.name and r.is_static_member:
                            kind = TemplateKind.STATIC_MEMBER
                            break
            else:
                kind = TemplateKind.FUNCTION
        else:
            kind = TemplateKind.STATIC_MEMBER if owner is not None else TemplateKind.FUNCTION
        te = Template(d.name, loc, self.binder.current_scope, kind)
        te.parameters = params
        te.access = member_access
        te.owner_class_template = owner
        te.sig_declarator = d  # type: ignore[attr-defined]
        te.sig_specs = specs  # type: ignore[attr-defined]
        te.sig_index = sig_idx  # type: ignore[attr-defined]
        te.position.header = SourceRange(kw.location, params_end)
        # capture through the body / ";"
        if self.at(":"):
            while not self.at("{") and not self.at_eof:
                if self.at("("):
                    self.skip_balanced("(")
                else:
                    self.advance()
        if self.at("{"):
            body_start_tok = self.cur
            close_idx = self.skip_balanced("{")
            te.position.body = SourceRange(body_start_tok.location, self.tokens[close_idx].location)
            te.decl_tokens = (sig_idx, self.pos)
        elif self.at("="):
            # static data member template definition: ... = init;
            self.skip_to_semicolon()
            te.decl_tokens = (sig_idx, self.pos)
        else:
            self.expect(";")
            te.decl_tokens = (sig_idx, self.pos)
        te.text = _template_text(self.tokens, self._template_kw_idx, self.pos)
        scope = self.binder.current_scope
        if isinstance(scope, Namespace):
            scope.templates.append(te)
        else:
            self.binder.current_namespace.templates.append(te)
        if owner is not None:
            owner.specializations  # noqa: B018 — touch to ensure attr exists
        if self.register:
            self.tree.register_template(te)

    def _find_qualifier_class_template(
        self, qualifier: list[tuple[str, Optional[list[Type]]]]
    ) -> Optional[Template]:
        name = qualifier[-1][0]
        b = self.binder.lookup(name)
        if isinstance(b, list):
            for t in b:
                if isinstance(t, Template) and t.kind is TemplateKind.CLASS and not t.is_specialization:
                    return t
        return None

    def _parse_explicit_specialization(self, kw: Token) -> None:
        """``template<> class Stack<char> { ... };`` or a function spec.

        Explicit specializations are ordinary entities, not templates: we
        do *not* register a te item.  Entities they produce therefore have
        no recoverable originating template — the paper's documented
        limitation (Section 3.1)."""
        if self.cur.text in _CLASS_KEYS:
            key_tok = self.cur
            name_tok = self.peek(1)
            # parse the specialization args
            mark = self.mark()
            self.advance()
            self.advance()
            args: list[Type] = []
            if self.at("<"):
                try:
                    args = self.parse_template_args()
                except TooManyErrors:
                    raise
                except CppError:
                    args = []
            self.rewind(mark)
            primary = self._find_primary_template(name_tok.text)
            spec_name = name_tok.text + "<" + ", ".join(a.spelling() for a in args) + ">"
            cls = Class(spec_name, name_tok.location, self.binder.current_scope)
            cls.is_instantiation = True
            cls.is_specialization = True
            cls.template_args = args
            cls.template_of = primary  # ground truth only; analyzer must fail to match
            self._attach_class(cls, attach_to_scope=True)
            self.parse_class_definition(existing=cls)
            if primary is not None and self.engine is not None:
                self.engine.register_explicit_specialization(primary, args, cls)
            self.accept(";")
            return
        # function specialization: template<> void f<int>(...) {...}
        specs = self._parse_decl_spec_flags()
        base = self.parse_type_specifier()
        d = self.parse_declarator(base)
        r = self._routine_from_declarator(d, specs, self.binder.current_namespace)
        r.is_specialization = True
        r.is_instantiation = True
        if self.at("{"):
            start = self.pos
            self.skip_balanced("{")
            r.position.body = SourceRange(self.tokens[start].location, self.peek(-1).location)
            self.parse_function_body_at(r, start)
        else:
            self.expect(";")

    def _parse_explicit_instantiation(self, kw: Token) -> None:
        """``template class Stack<int>;`` — instantiate everything."""
        assert self.engine is not None
        if self.cur.text in _CLASS_KEYS:
            self.advance()
            name_tok = self.expect_ident()
            args = self.parse_template_args() if self.at("<") else []
            b = self.binder.lookup(name_tok.text)
            template = None
            if isinstance(b, list):
                for t in b:
                    if isinstance(t, Template) and t.kind is TemplateKind.CLASS and not t.is_specialization:
                        template = t
                        break
            if template is None:
                self.sink.warn(f"unknown template {name_tok.text!r}", name_tok.location)
            else:
                cls = self.engine.instantiate_class(template, args, name_tok.location)
                self.engine.instantiate_all_members(cls)
            self.expect(";")
            return
        # explicit function instantiation: template void f<int>(...);
        base = self.parse_type_specifier()
        d = self.parse_declarator(base)
        explicit_args = getattr(d, "qualifier_args", None)
        b = self.binder.lookup(d.name)
        if isinstance(b, list):
            for t in b:
                if isinstance(t, Template) and t.kind in (TemplateKind.FUNCTION, TemplateKind.STATIC_MEMBER):
                    self.engine.instantiate_function_template(
                        t, [p.type for p in d.parameters], explicit_args, d.name_location or kw.location
                    )
                    break
        self.expect(";")


def _merge_params(old: list[Parameter], new: list[Parameter]) -> list[Parameter]:
    """A definition's parameter list inherits the declaration's default
    arguments (defaults appear only on the declaration in C++)."""
    if len(old) != len(new):
        return new
    for po, pn in zip(old, new):
        if pn.default_text is None and po.default_text is not None:
            pn.default_text = po.default_text
    return new


def _same_param_types(a, b) -> bool:
    """Parameter lists denote the same overload (by type spelling)."""
    return all(
        pa.type.spelling() == pb.type.spelling() for pa, pb in zip(a, b)
    )


def _find_body_range(tokens: list[Token], start: int, end: int):
    """Locate the outermost { ... } within a token slice."""
    depth = 0
    open_loc = None
    close_loc = None
    for i in range(start, min(end, len(tokens))):
        t = tokens[i]
        if t.is_punct("{"):
            if depth == 0:
                open_loc = t.location
            depth += 1
        elif t.is_punct("}"):
            depth -= 1
            if depth == 0:
                close_loc = t.location
    if open_loc is not None and close_loc is not None:
        return SourceRange(open_loc, close_loc)
    return None


def _template_text(tokens: list[Token], kw_idx: int, end: int, limit: int = 2000) -> str:
    """PDB ``ttext``: the full template declaration text, from the
    ``template`` keyword through the end of the captured slice."""
    text = tokens_to_text(tokens[kw_idx:end]).strip()
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text
