"""Front-end driver: source files -> IL tree.

One :class:`Frontend` owns a :class:`SourceManager` (so in-memory corpora
can be registered once) and compiles translation units:

    fe = Frontend(FrontendOptions(include_paths=["include"]))
    fe.register_files({"a.h": "...", "main.cpp": "..."})
    tree = fe.compile("main.cpp")

``compile_many`` compiles several TUs independently (one ILTree each),
which is the input situation for the paper's ``pdbmerge`` workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.cpp.diagnostics import CppError, DiagnosticSink, TooManyErrors
from repro.cpp.headercache import HeaderCache
from repro.cpp.il import ILTree
from repro.cpp.instantiate import InstantiationEngine, InstantiationMode
from repro.cpp.preprocessor import Preprocessor
from repro.cpp.scope import Binder
from repro.cpp.source import SourceManager


@dataclass
class FrontendOptions:
    """Compilation options.

    ``instantiation_mode`` selects the EDG-style scheme (paper Section 2):
    USED is what PDT needs; ALL and PRELINK exist for benches E10/E11.

    ``fatal_errors=False`` turns on EDG-style error recovery: user-source
    errors are recorded on the sink and the front end resynchronises and
    keeps going, so :meth:`Frontend.compile` returns a *partial* IL tree
    plus the diagnostic list instead of raising.  ``max_errors`` bounds
    the cascade (the ``--keep-going-errors N`` option).
    """

    include_paths: list[str] = field(default_factory=list)
    instantiation_mode: InstantiationMode = InstantiationMode.USED
    predefined_macros: dict[str, str] = field(default_factory=dict)
    fatal_errors: bool = True
    max_errors: int = 50
    #: memoize preprocessed ``#include`` subtrees across the TUs this
    #: Frontend compiles (output is byte-identical either way; see
    #: :mod:`repro.cpp.headercache`)
    header_cache: bool = True


class Frontend:
    """Compiles translation units into IL trees."""

    def __init__(
        self,
        options: Optional[FrontendOptions] = None,
        manager: Optional[SourceManager] = None,
    ):
        self.options = options or FrontendOptions()
        self.manager = manager or SourceManager(self.options.include_paths)
        if manager is not None and self.options.include_paths:
            for p in self.options.include_paths:
                if p not in self.manager.include_paths:
                    self.manager.include_paths.append(p)
        self.last_sink: Optional[DiagnosticSink] = None
        self.last_engine: Optional[InstantiationEngine] = None
        #: True when the last ``compile`` hit the ``max_errors`` cascade
        #: bound and gave up early (its tree is partial at best)
        self.last_error_overflow: bool = False
        #: files the preprocessor consumed for the last ``compile`` call,
        #: in first-use order — the hash set for pdbbuild's incremental cache
        self.last_consumed_files: list = []
        #: per-TU results of the last ``compile_many`` call, parallel to
        #: its input list (``compile`` overwrites the ``last_*`` scalars
        #: per TU, so multi-TU callers read these instead)
        self.last_sinks: list = []
        self.last_engines: list = []
        self.last_consumed_files_per_tu: list = []
        #: shared across every TU this Frontend compiles
        self.header_cache: Optional[HeaderCache] = (
            HeaderCache() if self.options.header_cache else None
        )

    def register_files(self, files: dict[str, str]) -> None:
        """Register in-memory sources (corpora, generated code)."""
        self.manager.register_many(files)

    def compile(self, main_file: str) -> ILTree:
        """Compile one translation unit.

        With ``fatal_errors=False`` the front end recovers from
        user-source errors (lexical, preprocessor, and parse) and this
        returns whatever IL was built, with the error list available on
        :attr:`last_sink` — the paper's EDG behaviour of emitting usable
        IL for broken translation units.  A runaway cascade past
        ``max_errors`` stops the unit early but still returns the
        partial tree."""
        from repro.cpp.declparse import Parser

        sink = DiagnosticSink(
            fatal_errors=self.options.fatal_errors,
            max_errors=self.options.max_errors,
        )
        self.last_sink = sink
        self.last_engine = None
        self.last_error_overflow = False
        hc = self.header_cache
        hc_base = (hc.hits, hc.misses, hc.uncacheable) if hc is not None else None
        predefined = {"__cplusplus": "199711", **self.options.predefined_macros}
        # created before anything can raise, so the finally block below
        # always has a preprocessor (and a source slot) to read from —
        # a missing main file propagates FileNotFoundError cleanly
        # instead of tripping over unbound locals
        pp = Preprocessor(self.manager, sink, predefined, header_cache=hc)
        tree = ILTree()
        src = None
        try:
            src = self.manager.load(main_file)
            tree.main_file = src
            # phase-scoped self-observability (no-ops unless repro.obs
            # has an observer installed); binding is interleaved with
            # parsing, so its time reports under frontend.parse
            with obs.observe("frontend.preprocess", cat="frontend", file=main_file):
                tokens = pp.preprocess(src)
            engine = InstantiationEngine(
                tree, tokens, sink, self.options.instantiation_mode
            )
            self.last_engine = engine
            binder = Binder(tree)
            parser = Parser(tokens, tree, binder, sink, engine)
            with obs.observe("frontend.parse", cat="frontend", file=main_file):
                parser.parse_translation_unit()
            with obs.observe("frontend.instantiate", cat="frontend", file=main_file):
                engine.drain()
        except TooManyErrors:
            # cascade bound hit: the sink already holds every diagnostic;
            # degrade to whatever IL was built before giving up
            if self.options.fatal_errors:
                raise
            self.last_error_overflow = True
        except CppError as exc:
            if self.options.fatal_errors:
                raise
            try:
                sink.soft_error(exc.message, exc.location)
            except TooManyErrors:
                pass
        finally:
            self.last_consumed_files = list(pp.consumed_files)
            tree.files = (
                self.manager.inclusion_closure([src]) if src is not None else []
            )
            tree.macros = list(pp.macro_records)
            if hc is not None:
                obs.counter(
                    "frontend.header_cache",
                    hits=hc.hits - hc_base[0],
                    misses=hc.misses - hc_base[1],
                    uncacheable=hc.uncacheable - hc_base[2],
                )
        return tree

    def compile_many(self, main_files: list[str]) -> list[ILTree]:
        """Compile several TUs independently (pdbmerge's input shape).

        ``compile`` overwrites the ``last_sink``/``last_engine``/
        ``last_consumed_files`` scalars on every call, so this also
        accumulates the per-TU values in ``last_sinks``/``last_engines``/
        ``last_consumed_files_per_tu`` (parallel to ``main_files``) —
        diagnostics from every TU stay reachable, not just the last one's."""
        self.last_sinks = []
        self.last_engines = []
        self.last_consumed_files_per_tu = []
        trees = []
        for f in main_files:
            trees.append(self.compile(f))
            self.last_sinks.append(self.last_sink)
            self.last_engines.append(self.last_engine)
            self.last_consumed_files_per_tu.append(self.last_consumed_files)
        return trees
