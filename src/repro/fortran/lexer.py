"""Fortran 90 free-form statement scanner.

Fortran is line-oriented: the unit of parsing is the *statement*, built
from source lines after handling ``!`` comments (outside character
context), ``&`` continuations, and ``;`` statement separators.  Each
:class:`Stmt` keeps the location of its first token for the PDB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpp.source import SourceFile, SourceLocation


@dataclass
class Stmt:
    """One logical Fortran statement: normalised text + location."""

    text: str  # single-spaced, original case preserved
    location: SourceLocation

    @property
    def lower(self) -> str:
        return self.text.lower()


def split_statements(file: SourceFile) -> list[Stmt]:
    """Split a free-form source file into logical statements."""
    stmts: list[Stmt] = []
    pending: str = ""
    pending_loc: SourceLocation | None = None
    for line_no, raw in enumerate(file.text.splitlines(), start=1):
        code = _strip_comment(raw)
        stripped = code.strip()
        if not stripped:
            continue
        start_col = len(code) - len(code.lstrip()) + 1
        if pending:
            # continuation: drop a leading '&' continuation marker
            if stripped.startswith("&"):
                stripped = stripped[1:].lstrip()
            pending = pending + " " + stripped
        else:
            pending = stripped
            pending_loc = SourceLocation(file, line_no, start_col)
        if pending.endswith("&"):
            pending = pending[:-1].rstrip()
            continue
        for piece in _split_semicolons(pending):
            piece = piece.strip()
            if piece:
                stmts.append(Stmt(_normalise(piece), pending_loc))
        pending = ""
        pending_loc = None
    if pending and pending_loc is not None:
        stmts.append(Stmt(_normalise(pending), pending_loc))
    return stmts


def _strip_comment(line: str) -> str:
    """Remove a trailing ``!`` comment, respecting character literals."""
    out = []
    quote: str | None = None
    for ch in line:
        if quote is not None:
            out.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            out.append(ch)
            continue
        if ch == "!":
            break
        out.append(ch)
    return "".join(out)


def _split_semicolons(text: str) -> list[str]:
    parts: list[str] = []
    quote: str | None = None
    current: list[str] = []
    for ch in text:
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            current.append(ch)
            continue
        if ch == ";":
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    parts.append("".join(current))
    return parts


def _normalise(text: str) -> str:
    """Collapse runs of whitespace outside character literals."""
    out: list[str] = []
    quote: str | None = None
    last_space = False
    for ch in text:
        if quote is not None:
            out.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            out.append(ch)
            last_space = False
            continue
        if ch.isspace():
            if not last_space:
                out.append(" ")
                last_space = True
            continue
        out.append(ch)
        last_space = False
    return "".join(out).strip()
