"""Fortran 90 front end — the paper's Section 6 extension, implemented.

"We plan to extend PDT's scope to support the Fortran 90 and Java
languages. ... A Fortran 90 IL Analyzer is currently being implemented,
and the structure of the program database modified, to handle Fortran
90's constructs.  Fortran derived types and modules will correspond to
C++ classes/structs/unions, while Fortran interfaces will correspond to
routines with aliases. ... In general, if the Program Database Toolkit
can make a language-specific parse tree accessible in a uniform manner,
static analysis tools and other applications can be built that process
different languages in a uniform and consistent way."

This package does exactly that: a Fortran 90 subset front end producing
the *same* :class:`repro.cpp.il.ILTree` the C++ front end produces, with
the paper's mapping:

* ``module``       -> :class:`~repro.cpp.il.Namespace`
* ``type`` (derived type) -> :class:`~repro.cpp.il.Class` (struct kind)
* ``subroutine``/``function`` -> :class:`~repro.cpp.il.Routine`
  (linkage ``fortran``), with ``call``/function-reference extraction
* generic ``interface`` blocks -> routines carrying alias names
* routine **entry and exit points** recorded (what TAU needs to insert
  Fortran instrumentation, per the paper).

The unchanged IL Analyzer, DUCTAPE, tools, and TAU then work on Fortran
programs — bench E13 demonstrates the uniformity claim.
"""

from repro.fortran.frontend import FortranFrontend
from repro.fortran.parser import FortranParseError

__all__ = ["FortranFrontend", "FortranParseError"]
