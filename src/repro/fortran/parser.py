"""Fortran 90 subset parser -> the common IL.

Statement-driven recursive parser over :func:`repro.fortran.lexer.
split_statements`.  Implements the paper's Section 6 construct mapping
(modules -> namespaces, derived types -> classes, interfaces -> routines
with aliases) plus what TAU needs: routine entry/exit locations and a
static call graph (``call`` statements and function references resolved
against the visible symbol table).

Supported subset: free-form source; ``module``/``contains``/``use``;
derived types with typed components (including ``dimension`` and
``pointer`` attributes); ``subroutine``/``function`` (with ``result``),
dummy-argument typing via ``::`` declarations with ``intent``;
generic ``interface`` blocks with ``module procedure``; ``call``;
function references in expressions; ``do``/``if``/``select`` nesting;
``return`` exit points; ``program`` units.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.cpp.cpptypes import Type, TypeTable
from repro.cpp.diagnostics import DiagnosticSink
from repro.cpp.il import (
    Class,
    ClassKind,
    Field,
    ILTree,
    Namespace,
    Parameter,
    Routine,
    RoutineKind,
    SourceRange,
    Variable,
)
from repro.cpp.source import SourceFile, SourceLocation
from repro.fortran.lexer import Stmt, split_statements


class FortranParseError(Exception):
    """Unrecoverable Fortran parse error."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        where = f"{location}: " if location else ""
        super().__init__(f"{where}{message}")


#: intrinsic procedures never treated as user call targets
INTRINSICS = frozenset(
    """
    abs sqrt exp log log10 sin cos tan asin acos atan atan2 sinh cosh tanh
    min max mod modulo sign int nint real dble cmplx aimag conjg floor
    ceiling size shape lbound ubound allocated associated present len
    len_trim trim adjustl adjustr index char ichar achar iachar matmul
    dot_product transpose sum product maxval minval maxloc minloc count
    any all merge pack unpack reshape spread huge tiny epsilon kind
    selected_int_kind selected_real_kind allocate deallocate nullify
    """.split()
)

_TYPE_SPEC = (
    r"(?:integer|real|double\s+precision|logical|complex|"
    r"character(?:\s*\([^)]*\))?|type\s*\(\s*\w+\s*\))"
)

_RE_MODULE = re.compile(r"^module\s+(\w+)$", re.I)
_RE_PROGRAM = re.compile(r"^program\s+(\w+)$", re.I)
_RE_USE = re.compile(r"^use\s+(\w+)", re.I)
_RE_CONTAINS = re.compile(r"^contains$", re.I)
_RE_TYPE_DEF = re.compile(r"^type\s*(?:,\s*(?:public|private)\s*)?(?:::\s*)?(\w+)$", re.I)
_RE_SUBROUTINE = re.compile(
    r"^(?:pure\s+|elemental\s+|recursive\s+)*subroutine\s+(\w+)\s*(?:\(([^)]*)\))?$",
    re.I,
)
_RE_FUNCTION = re.compile(
    r"^(?:pure\s+|elemental\s+|recursive\s+)*(" + _TYPE_SPEC + r"\s+)?"
    r"function\s+(\w+)\s*\(([^)]*)\)\s*(?:result\s*\(\s*(\w+)\s*\))?$",
    re.I,
)
_RE_INTERFACE = re.compile(r"^interface(?:\s+(\w+))?$", re.I)
_RE_MODULE_PROC = re.compile(r"^module\s+procedure\s+(.+)$", re.I)
_RE_CALL = re.compile(r"^call\s+(\w+)\s*(\(.*\))?$", re.I)
_RE_DECL = re.compile(
    r"^(" + _TYPE_SPEC + r")\s*((?:,\s*[\w()=: ]+)*)\s*::\s*(.+)$", re.I
)
_RE_END = re.compile(
    r"^end(?:\s+(module|program|type|subroutine|function|interface|do|if|select|where))?(?:\s+\w+)?$",
    re.I,
)
_RE_BLOCK_START = re.compile(
    r"^(?:\w+\s*:\s*)?(?:do(\s|$)|select\s+case|where\s*\(.*\)$|"
    r"if\s*\(.*\)\s*then$|forall\s*\(.*\)$)",
    re.I,
)
_RE_RETURN = re.compile(r"^return$", re.I)
_RE_FUNC_REF = re.compile(r"\b([a-zA-Z]\w*)\s*\(")
_RE_STRINGS = re.compile(r"'[^']*'|\"[^\"]*\"")


class FortranParser:
    """Parses one Fortran source file into an ILTree."""

    def __init__(self, tree: ILTree, sink: Optional[DiagnosticSink] = None):
        self.tree = tree
        self.types: TypeTable = tree.types
        self.sink = sink or DiagnosticSink(fatal_errors=False)
        self._stmts: list[Stmt] = []
        self._pos = 0
        #: lower-cased routine name -> Routine, per visible scope chain
        self._module_routines: dict[str, dict[str, Routine]] = {}
        #: generic interface name -> specific routine names (per module)
        self._generics: dict[str, dict[str, list[str]]] = {}
        #: forward references awaiting resolution: (caller, name, loc,
        #: registry, uses) — module procedures are mutually visible, so
        #: a call can precede its target's definition
        self._pending_refs: list[tuple] = []

    # -- statement cursor ------------------------------------------------

    def _peek(self) -> Optional[Stmt]:
        return self._stmts[self._pos] if self._pos < len(self._stmts) else None

    def _next(self) -> Stmt:
        s = self._stmts[self._pos]
        self._pos += 1
        return s

    # -- driver ------------------------------------------------------------

    def parse_file(self, file: SourceFile) -> None:
        self._stmts = split_statements(file)
        self._pos = 0
        while self._peek() is not None:
            s = self._peek()
            low = s.lower
            if _RE_MODULE.match(low) and not _RE_MODULE_PROC.match(low):
                self._parse_module()
            elif _RE_PROGRAM.match(low):
                self._parse_program()
            elif _RE_SUBROUTINE.match(s.text) or _RE_FUNCTION.match(s.text):
                self._parse_procedure(self.tree.global_namespace, {}, [])
            else:
                self._next()  # tolerated top-level noise
        self._resolve_pending()

    # -- modules -----------------------------------------------------------------

    def _parse_module(self) -> None:
        head = self._next()
        name = _RE_MODULE.match(head.lower).group(1)
        orig_name = head.text.split()[1]
        ns = Namespace(orig_name, head.location, self.tree.global_namespace)
        self.tree.global_namespace.namespaces.append(ns)
        self.tree.register_namespace(ns)
        ns.position.header = SourceRange(head.location, head.location)
        self._module_routines.setdefault(name.lower(), {})
        self._generics.setdefault(name.lower(), {})
        uses: list[str] = []
        in_contains = False
        body_begin: Optional[SourceLocation] = None
        while self._peek() is not None:
            s = self._peek()
            low = s.lower
            m_end = _RE_END.match(low)
            if m_end and m_end.group(1) in ("module", None) and not in_contains_block(low):
                end = self._next()
                ns.position.body = SourceRange(body_begin or head.location, end.location)
                break
            if body_begin is None:
                body_begin = s.location
            if _RE_USE.match(low):
                uses.append(_RE_USE.match(low).group(1).lower())
                self._next()
            elif _RE_CONTAINS.match(low):
                in_contains = True
                self._next()
            elif _RE_TYPE_DEF.match(s.text) and not low.startswith("type("):
                self._parse_derived_type(ns, uses)
            elif _RE_INTERFACE.match(low):
                self._parse_interface(ns)
            elif in_contains and (
                _RE_SUBROUTINE.match(s.text) or _RE_FUNCTION.match(s.text)
            ):
                self._parse_procedure(ns, self._module_routines[name.lower()], uses)
            elif _RE_DECL.match(s.text):
                self._parse_module_variable(ns, self._next(), uses)
            else:
                self._next()
        self._resolve_generics(ns, name.lower())
        self._resolve_pending()

    def _resolve_generics(self, ns: Namespace, module_key: str) -> None:
        """Attach generic-interface alias names to their specific
        routines — 'Fortran interfaces will correspond to routines with
        aliases' (paper Section 6)."""
        table = self._module_routines.get(module_key, {})
        for generic, specifics in self._generics.get(module_key, {}).items():
            for spec_name in specifics:
                r = table.get(spec_name.lower())
                if r is None:
                    self.sink.warn(
                        f"interface {generic}: unknown module procedure {spec_name}"
                    )
                    continue
                aliases = r.flags.setdefault("aliases", [])
                aliases.append(generic)  # type: ignore[union-attr]

    def _parse_interface(self, ns: Namespace) -> None:
        head = self._next()
        generic = _RE_INTERFACE.match(head.lower).group(1)
        module_key = ns.name.lower()
        while self._peek() is not None:
            s = self._next()
            low = s.lower
            m_end = _RE_END.match(low)
            if m_end and m_end.group(1) in ("interface", None):
                return
            mp = _RE_MODULE_PROC.match(low)
            if mp and generic:
                names = [n.strip() for n in mp.group(1).split(",")]
                self._generics.setdefault(module_key, {}).setdefault(
                    generic, []
                ).extend(names)

    def _parse_module_variable(self, ns: Namespace, s: Stmt, uses: list[str]) -> None:
        m = _RE_DECL.match(s.text)
        if m is None:
            return
        base = self._resolve_type(m.group(1), ns, uses)
        for name, entity_type in self._entities(m.group(3), base, m.group(2) or ""):
            if name is None:
                continue
            v = Variable(name, s.location, ns, entity_type)
            ns.variables.append(v)
            self.tree.register_variable(v)

    # -- derived types -------------------------------------------------------------

    def _parse_derived_type(self, ns: Namespace, uses: list[str]) -> None:
        head = self._next()
        name = _RE_TYPE_DEF.match(head.text).group(1)
        cls = Class(name, head.location, ns, ClassKind.STRUCT)
        cls.defined = True
        cls.position.header = SourceRange(head.location, head.location)
        ns.classes.append(cls)
        self.tree.register_class(cls)
        body_begin: Optional[SourceLocation] = None
        while self._peek() is not None:
            s = self._next()
            low = s.lower
            m_end = _RE_END.match(low)
            if m_end and m_end.group(1) in ("type", None):
                cls.position.body = SourceRange(body_begin or head.location, s.location)
                return
            if body_begin is None:
                body_begin = s.location
            m = _RE_DECL.match(s.text)
            if m is not None:
                base = self._resolve_type(m.group(1), ns, uses)
                for comp_name, comp_type in self._entities(
                    m.group(3), base, m.group(2) or ""
                ):
                    if comp_name is None:
                        continue
                    f = Field(comp_name, s.location, cls, comp_type)
                    from repro.cpp.il import Access

                    f.access = Access.PUBLIC
                    cls.fields.append(f)
        raise FortranParseError(f"unterminated type {name}", head.location)

    # -- procedures ------------------------------------------------------------------

    def _parse_procedure(
        self,
        parent: Namespace,
        registry: dict[str, Routine],
        uses: list[str],
    ) -> None:
        head = self._next()
        msub = _RE_SUBROUTINE.match(head.text)
        mfun = _RE_FUNCTION.match(head.text)
        if msub is not None:
            name = msub.group(1)
            arg_text = msub.group(2) or ""
            result_name = None
            ret: Type = self.types.void
            end_kw = "subroutine"
            ret_spec = None
        else:
            assert mfun is not None
            ret_spec = mfun.group(1)
            name = mfun.group(2)
            arg_text = mfun.group(3) or ""
            result_name = mfun.group(4) or name
            ret = (
                self._resolve_type(ret_spec.strip(), parent, uses)
                if ret_spec
                else self.types.builtin("float")
            )
            end_kw = "function"
        arg_names = [a.strip() for a in arg_text.split(",") if a.strip()]
        params = [
            Parameter(name=a, type=self.types.builtin("float"), location=head.location)
            for a in arg_names
        ]
        sig = self.types.function(ret, [p.type for p in params])
        r = Routine(name, head.location, parent, sig, RoutineKind.FUNCTION)
        r.parameters = params
        r.linkage = "fortran"
        r.defined = True
        r.position.header = SourceRange(head.location, head.location)
        if isinstance(parent, Namespace):
            parent.routines.append(r)
        self.tree.register_routine(r)
        registry[name.lower()] = r
        exits: list[SourceLocation] = []
        #: names declared as arrays/locals — excluded from call extraction
        local_arrays: set[str] = set()
        local_types: dict[str, Type] = {}
        body_begin: Optional[SourceLocation] = None
        first_exec: Optional[SourceLocation] = None
        depth = 0
        while self._peek() is not None:
            s = self._next()
            low = s.lower
            m_end = _RE_END.match(low)
            if m_end is not None:
                kw = m_end.group(1)
                if kw in ("do", "if", "select", "where"):
                    depth = max(0, depth - 1)
                    continue
                if depth == 0 and kw in (end_kw, "program", None):
                    exits.append(s.location)
                    r.position.body = SourceRange(
                        body_begin or head.location, s.location
                    )
                    break
                continue
            if body_begin is None:
                body_begin = s.location
            if _RE_BLOCK_START.match(low):
                depth += 1
                # an if(...)then line has no executable payload beyond the
                # condition; fall through so condition calls are scanned
            if _RE_CONTAINS.match(low):
                # internal procedures: parse them against the same registry
                while self._peek() is not None and (
                    _RE_SUBROUTINE.match(self._peek().text)
                    or _RE_FUNCTION.match(self._peek().text)
                ):
                    self._parse_procedure(parent, registry, uses)
                continue
            if _RE_RETURN.match(low):
                exits.append(s.location)
                continue
            m = _RE_DECL.match(s.text)
            if m is not None:
                base = self._resolve_type(m.group(1), parent, uses)
                for ent_name, ent_type in self._entities(
                    m.group(3), base, m.group(2) or ""
                ):
                    if ent_name is None:
                        continue
                    local_types[ent_name.lower()] = ent_type
                    from repro.cpp.cpptypes import ArrayType

                    if isinstance(ent_type, ArrayType):
                        local_arrays.add(ent_name.lower())
                continue
            if first_exec is None and not low.startswith(("implicit", "use ")):
                first_exec = s.location
            self._extract_calls(r, s, registry, uses, local_arrays)
        # dummy-argument typing from the declarations we saw
        for p in r.parameters:
            t = local_types.get(p.name.lower())
            if t is not None:
                p.type = t
        if result_name is not None:
            t = local_types.get(result_name.lower())
            if t is not None:
                ret = t
        r.signature = self.types.function(ret, [p.type for p in r.parameters])
        r.flags["exits"] = exits
        r.flags["result_name"] = result_name
        r.flags["first_exec"] = first_exec

    # -- call extraction -------------------------------------------------------------

    def _extract_calls(
        self,
        routine: Routine,
        s: Stmt,
        registry: dict[str, Routine],
        uses: list[str],
        local_arrays: set[str],
    ) -> None:
        mcall = _RE_CALL.match(s.text)
        text = _RE_STRINGS.sub("''", s.text)
        if mcall is not None:
            self._reference(routine, mcall.group(1), s.location, registry, uses)
            text = text[len("call ") + len(mcall.group(1)):]
        # function references anywhere in the (remaining) statement
        for m in _RE_FUNC_REF.finditer(text):
            name = m.group(1).lower()
            if name in INTRINSICS or name in local_arrays:
                continue
            if name in ("if", "do", "while", "then", "call", "select", "case", "where", "print", "write", "read", "forall"):
                continue
            self._reference(routine, name, s.location, registry, uses)

    def _reference(
        self, routine: Routine, name: str, loc, registry, uses
    ) -> None:
        """Record a call to ``name``, deferring unresolved names —
        module procedures are visible before their definitions."""
        callee = self._lookup_routine(name, registry, uses)
        if callee is not None:
            if callee is not routine:
                routine.add_call(callee, False, loc)
            return
        self._pending_refs.append((routine, name, loc, registry, list(uses)))

    def _resolve_pending(self) -> None:
        still: list[tuple] = []
        for routine, name, loc, registry, uses in self._pending_refs:
            callee = self._lookup_routine(name, registry, uses)
            if callee is not None and callee is not routine:
                routine.add_call(callee, False, loc)
            elif callee is None:
                still.append((routine, name, loc, registry, uses))
        self._pending_refs = still

    def _lookup_routine(
        self, name: str, registry: dict[str, Routine], uses: list[str]
    ) -> Optional[Routine]:
        key = name.lower()
        r = registry.get(key)
        if r is not None:
            return r
        # generic interface whose specifics live in the current registry
        for _mod, generics in self._generics.items():
            for generic, specifics in generics.items():
                if generic.lower() == key and specifics:
                    r = registry.get(specifics[0].lower())
                    if r is not None:
                        return r
        for mod in uses:
            table = self._module_routines.get(mod, {})
            r = table.get(key)
            if r is not None:
                return r
            # generic interface name: resolve to its first specific
            generics = self._generics.get(mod, {})
            for generic, specifics in generics.items():
                if generic.lower() == key and specifics:
                    return table.get(specifics[0].lower())
        return None

    # -- programs ----------------------------------------------------------------------

    def _parse_program(self) -> None:
        head = self._peek()
        name = _RE_PROGRAM.match(head.lower).group(1)
        # a program unit is a routine in the global namespace; reuse the
        # procedure machinery by rewriting the head statement
        rewritten = Stmt(f"subroutine {head.text.split()[1]}", head.location)
        self._stmts[self._pos] = rewritten
        uses = self._collect_upcoming_uses()
        registry: dict[str, Routine] = {}
        self._parse_procedure(self.tree.global_namespace, registry, uses)
        prog = registry.get(name.lower())
        if prog is not None:
            prog.flags["program_unit"] = True

    def _collect_upcoming_uses(self) -> list[str]:
        uses = []
        for s in self._stmts[self._pos :]:
            m = _RE_USE.match(s.lower)
            if m:
                uses.append(m.group(1).lower())
            if _RE_END.match(s.lower):
                break
        return uses

    # -- types -------------------------------------------------------------------------

    def _resolve_type(self, spec: str, scope, uses: list[str]) -> Type:
        s = re.sub(r"\s+", " ", spec.strip().lower())
        if s.startswith("integer"):
            return self.types.builtin("int")
        if s.startswith("double precision"):
            return self.types.builtin("double")
        if s.startswith("real"):
            return self.types.builtin("float")
        if s.startswith("logical"):
            return self.types.builtin("bool")
        if s.startswith("complex"):
            return self.types.builtin("complex")
        if s.startswith("character"):
            return self.types.builtin("character(*)")
        m = re.match(r"type\s*\(\s*(\w+)\s*\)", s)
        if m is not None:
            name = m.group(1)
            cls = self._find_derived_type(name, scope, uses)
            if cls is not None:
                return self.types.class_type(cls)
            return self.types.unknown(name)
        return self.types.unknown(spec)

    def _find_derived_type(self, name: str, scope, uses: list[str]) -> Optional[Class]:
        key = name.lower()
        search: list[Namespace] = []
        if isinstance(scope, Namespace):
            search.append(scope)
        for ns in self.tree.all_namespaces:
            if ns.name.lower() in uses:
                search.append(ns)
        search.append(self.tree.global_namespace)
        for ns in search:
            for c in ns.classes:
                if c.name.lower() == key:
                    return c
        return None

    def _entities(
        self, entity_text: str, base: Type, attr_text: str
    ) -> list[tuple[Optional[str], Type]]:
        """Split an entity list (``a, b(10), c => null()``) into
        (name, type) pairs, applying dimension/pointer attributes."""
        attrs = attr_text.lower()
        dimensioned = "dimension" in attrs
        pointer = "pointer" in attrs or "allocatable" in attrs
        out: list[tuple[Optional[str], Type]] = []
        for raw in _split_entities(entity_text):
            raw = raw.split("=")[0].strip()
            m = re.match(r"^(\w+)\s*(\(([^)]*)\))?$", raw)
            if m is None:
                out.append((None, base))
                continue
            name = m.group(1)
            t = base
            if m.group(2) is not None or dimensioned:
                t = self.types.array_of(t, None)
            if pointer:
                t = self.types.pointer_to(t)
            out.append((name, t))
        return out


def _split_entities(text: str) -> list[str]:
    """Split on commas not inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    parts.append("".join(current))
    return [p for p in parts if p.strip()]


def in_contains_block(low: str) -> bool:
    """Helper kept trivial: 'end' inside a contains section still closes
    the module when the procedure parser has already consumed its own
    'end subroutine'."""
    return False
