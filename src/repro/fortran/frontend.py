"""Fortran 90 front-end driver: sources -> the common ILTree.

Multiple files compile into one tree (Fortran's module model is
program-wide); compile files defining modules before files using them,
as a Fortran build would.
"""

from __future__ import annotations

from typing import Optional

from repro.cpp.diagnostics import DiagnosticSink
from repro.cpp.il import ILTree
from repro.cpp.source import SourceManager
from repro.fortran.parser import FortranParser


class FortranFrontend:
    """Compiles Fortran 90 sources into an ILTree the (unchanged) IL
    Analyzer, DUCTAPE, and tools consume."""

    def __init__(self, manager: Optional[SourceManager] = None):
        self.manager = manager or SourceManager()
        self.sink = DiagnosticSink(fatal_errors=False)

    def register_files(self, files: dict[str, str]) -> None:
        self.manager.register_many(files)

    def compile(self, file_names: list[str]) -> ILTree:
        """Compile the named files, in order, into one tree."""
        tree = ILTree()
        parser = FortranParser(tree, self.sink)
        for name in file_names:
            src = self.manager.load(name)
            parser.parse_file(src)
            tree.files.append(src)
        if tree.files:
            tree.main_file = tree.files[-1]
        return tree
