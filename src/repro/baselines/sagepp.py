"""Sage++-style baseline extractor.

Sage++ is the toolkit TAU used before PDT (paper Sections 4.1 and 5):
"Using PDT's predecessor (Sage++), automatic instrumentation of POOMA
code had been attempted with TAU, but difficulties were encountered in
parsing POOMA's complicated template entities" — Sage++ "does not
adequately support templates."

This baseline is an honest stand-in for that class of tool: a heuristic,
pattern-driven C++ scanner of the kind that predates full-fidelity
front ends.  It is genuinely useful on plain C++ (it finds classes and
function definitions reliably), and it genuinely degrades on template
code, for the same structural reasons Sage++ did:

* it has no instantiation machinery, so ``Stack<int>`` and the member
  bodies used-mode instantiation would produce simply do not exist in
  its output,
* templated qualifiers (``Stack<Object>::push``) and template argument
  lists confuse its declarator recognition,
* nested template arguments (``AddExpr<VectorView, ScaleExpr<...>>``)
  break its name tokenisation.

Bench E7 sweeps corpora of increasing template density and reports both
tools' extraction accuracy against the front end's ground truth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: function definition: "ret name ( args ) [const] {"
_FUNC_RE = re.compile(
    r"^\s*(?:[A-Za-z_][\w:&*<>,\s]*?[\s&*:])?"  # return type / qualifier prefix
    r"(?P<name>~?[A-Za-z_]\w*)\s*"
    r"\((?P<args>[^;{}()]*)\)\s*"
    r"(?:const\s*)?"
    r"(?::[^{;]*)?"  # ctor initialiser list
    r"\{",
    re.MULTILINE,
)

#: class/struct definition head
_CLASS_RE = re.compile(
    r"^\s*(?:class|struct)\s+(?P<name>[A-Za-z_]\w*)\s*(?::[^{;]*)?\{", re.MULTILINE
)

#: things the heuristic scanner must not mistake for functions
_KEYWORD_NAMES = frozenset(
    "if while for switch return catch sizeof throw else do new delete".split()
)


@dataclass
class SageResult:
    """What the baseline extracted from a source tree."""

    classes: set[str] = field(default_factory=set)
    routines: set[str] = field(default_factory=set)
    #: routine -> number of definitions found (overload-blind)
    routine_counts: dict[str, int] = field(default_factory=dict)
    parse_failures: int = 0


class SageExtractor:
    """Heuristic class/function extractor in the Sage++ mold."""

    def extract(self, files: dict[str, str]) -> SageResult:
        result = SageResult()
        for _name, text in files.items():
            self._extract_file(text, result)
        return result

    def _extract_file(self, text: str, result: SageResult) -> None:
        stripped = _strip_comments(text)
        for m in _CLASS_RE.finditer(stripped):
            result.classes.add(m.group("name"))
        for m in _FUNC_RE.finditer(stripped):
            name = m.group("name")
            if name in _KEYWORD_NAMES:
                continue
            prefix = stripped[max(0, m.start() - 80) : m.start()]
            # The structural template blindness: a definition whose
            # declarator carries template syntax cannot be attributed.
            window = stripped[m.start() : m.end()]
            if "<" in window.split("(")[0]:
                # templated qualifier (Stack<Object>::push) — the name
                # tokenisation loses the owner, and with multiple
                # template parameters the arg-list commas shear the
                # declarator apart: record a parse failure.
                result.parse_failures += 1
                continue
            if re.search(r"template\s*<[^>]*$", prefix):
                # definition directly under a template<> header whose
                # parameter list the line-based scan left open
                result.parse_failures += 1
                continue
            result.routines.add(name)
            result.routine_counts[name] = result.routine_counts.get(name, 0) + 1


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    text = re.sub(r"^\s*#[^\n]*", " ", text, flags=re.MULTILINE)
    return text


@dataclass
class AccuracyReport:
    """Extraction accuracy of one tool against ground truth."""

    found: int
    ground_truth: int
    spurious: int

    @property
    def recall(self) -> float:
        return self.found / self.ground_truth if self.ground_truth else 1.0


def extraction_accuracy(
    result: SageResult, true_routines: set[str]
) -> AccuracyReport:
    """Compare the baseline's routine set against ground-truth names.

    Ground truth uses *raw* names (no qualification, no template args) —
    the most favourable possible comparison for the baseline, since it
    cannot produce qualified or instantiated names at all."""
    raw_truth = {_raw_name(n) for n in true_routines}
    found = len(result.routines & raw_truth)
    spurious = len(result.routines - raw_truth)
    return AccuracyReport(found=found, ground_truth=len(raw_truth), spurious=spurious)


def _raw_name(name: str) -> str:
    return name.split("<")[0].split("::")[-1]
