"""Baselines the paper compares against (Section 4.1 / Section 5)."""

from repro.baselines.sagepp import SageExtractor, SageResult, extraction_accuracy

__all__ = ["SageExtractor", "SageResult", "extraction_accuracy"]
