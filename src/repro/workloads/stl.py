"""Mini-STL headers — the KAI 3.4c standard library substitute.

Paper Section 6 credits "the inclusion of KAI's 3.4c standard library
header files" with improving PDT's parsing robustness; these headers play
that role here.  They are written in the front end's supported C++
subset, pre-std style (global namespace, ``<vector.h>`` spellings), which
matches both the era and paper Figure 3's ``/pdt/include/kai/vector.h``.

All container members carry real inline bodies so used-mode member-body
instantiation has something to chew on.
"""

from __future__ import annotations

#: where the headers pretend to live (paper Figure 3 shows this path)
KAI_INCLUDE_DIR = "/pdt/include/kai"

VECTOR_H = """\
#ifndef KAI_VECTOR_H
#define KAI_VECTOR_H

template <class T>
class vector {
public:
    typedef T* iterator;
    typedef const T* const_iterator;

    vector( ) : data_( 0 ), size_( 0 ), capacity_( 0 ) { }
    explicit vector( unsigned long n ) : data_( new T[ n ] ), size_( n ), capacity_( n ) { }
    ~vector( ) { delete [] data_; }

    unsigned long size( ) const { return size_; }
    unsigned long capacity( ) const { return capacity_; }
    bool empty( ) const { return size_ == 0; }

    T & operator[]( unsigned long i ) { return data_[ i ]; }
    const T & operator[]( unsigned long i ) const { return data_[ i ]; }

    T & front( ) { return data_[ 0 ]; }
    T & back( ) { return data_[ size_ - 1 ]; }

    iterator begin( ) { return data_; }
    iterator end( ) { return data_ + size_; }

    void push_back( const T & x ) {
        if ( size_ == capacity_ )
            reserve( capacity_ == 0 ? 8 : 2 * capacity_ );
        data_[ size_++ ] = x;
    }

    void pop_back( ) { size_--; }
    void clear( ) { size_ = 0; }

    void reserve( unsigned long n ) {
        if ( n <= capacity_ )
            return;
        T * fresh = new T[ n ];
        for ( unsigned long i = 0; i < size_; i++ )
            fresh[ i ] = data_[ i ];
        delete [] data_;
        data_ = fresh;
        capacity_ = n;
    }

    void resize( unsigned long n ) {
        reserve( n );
        size_ = n;
    }

private:
    T * data_;
    unsigned long size_;
    unsigned long capacity_;
};

#endif
"""

LIST_H = """\
#ifndef KAI_LIST_H
#define KAI_LIST_H

template <class T>
class list {
public:
    struct node {
        T value;
        node * next;
        node * prev;
    };

    list( ) : head_( 0 ), tail_( 0 ), size_( 0 ) { }
    ~list( ) { clear( ); }

    unsigned long size( ) const { return size_; }
    bool empty( ) const { return size_ == 0; }

    T & front( ) { return head_->value; }
    T & back( ) { return tail_->value; }

    void push_back( const T & x ) {
        node * n = new node;
        n->value = x;
        n->next = 0;
        n->prev = tail_;
        if ( tail_ )
            tail_->next = n;
        else
            head_ = n;
        tail_ = n;
        size_++;
    }

    void pop_front( ) {
        node * n = head_;
        head_ = head_->next;
        if ( head_ )
            head_->prev = 0;
        else
            tail_ = 0;
        delete n;
        size_--;
    }

    void clear( ) {
        while ( !empty( ) )
            pop_front( );
    }

private:
    node * head_;
    node * tail_;
    unsigned long size_;
};

#endif
"""

PAIR_H = """\
#ifndef KAI_PAIR_H
#define KAI_PAIR_H

template <class A, class B>
struct pair {
    A first;
    B second;
};

template <class A, class B>
pair<A, B> make_pair( const A & a, const B & b ) {
    pair<A, B> p;
    p.first = a;
    p.second = b;
    return p;
}

#endif
"""

ALGORITHM_H = """\
#ifndef KAI_ALGORITHM_H
#define KAI_ALGORITHM_H

template <class T>
const T & max( const T & a, const T & b ) {
    if ( a < b )
        return b;
    return a;
}

template <class T>
const T & min( const T & a, const T & b ) {
    if ( b < a )
        return b;
    return a;
}

template <class T>
void swap( T & a, T & b ) {
    T tmp = a;
    a = b;
    b = tmp;
}

#endif
"""

STRING_H = """\
#ifndef KAI_STRING_H
#define KAI_STRING_H

class string {
public:
    string( ) : data_( 0 ), length_( 0 ) { }
    string( const char * s );
    string( const string & other );
    ~string( );

    unsigned long length( ) const { return length_; }
    unsigned long size( ) const { return length_; }
    bool empty( ) const { return length_ == 0; }
    const char * c_str( ) const { return data_; }
    char operator[]( unsigned long i ) const { return data_[ i ]; }

    string & operator=( const string & other );
    string & operator+=( const string & other );
    bool operator==( const string & other ) const;
    bool operator<( const string & other ) const;

private:
    void assign( const char * s, unsigned long n );
    char * data_;
    unsigned long length_;
};

#endif
"""

STRING_CPP = """\
#include <string.h>

static unsigned long cstr_length( const char * s ) {
    unsigned long n = 0;
    while ( s[ n ] != 0 )
        n++;
    return n;
}

string::string( const char * s ) : data_( 0 ), length_( 0 ) {
    assign( s, cstr_length( s ) );
}

string::string( const string & other ) : data_( 0 ), length_( 0 ) {
    assign( other.c_str( ), other.length( ) );
}

string::~string( ) {
    delete [] data_;
}

void string::assign( const char * s, unsigned long n ) {
    delete [] data_;
    data_ = new char[ n + 1 ];
    for ( unsigned long i = 0; i < n; i++ )
        data_[ i ] = s[ i ];
    data_[ n ] = 0;
    length_ = n;
}

string & string::operator=( const string & other ) {
    assign( other.c_str( ), other.length( ) );
    return *this;
}

string & string::operator+=( const string & other ) {
    return *this;
}

bool string::operator==( const string & other ) const {
    if ( length_ != other.length( ) )
        return false;
    for ( unsigned long i = 0; i < length_; i++ ) {
        if ( data_[ i ] != other.data_[ i ] )
            return false;
    }
    return true;
}

bool string::operator<( const string & other ) const {
    return length_ < other.length( );
}
"""

IOSTREAM_H = """\
#ifndef KAI_IOSTREAM_H
#define KAI_IOSTREAM_H

class ostream {
public:
    ostream & operator<<( bool b ) { return *this; }
    ostream & operator<<( char c ) { return *this; }
    ostream & operator<<( int i ) { return *this; }
    ostream & operator<<( unsigned long u ) { return *this; }
    ostream & operator<<( double d ) { return *this; }
    ostream & operator<<( const char * s ) { return *this; }
    ostream & operator<<( ostream & ( *pf )( ostream & ) );
    void flush( ) { }
};

class istream {
public:
    istream & operator>>( int & i ) { return *this; }
    istream & operator>>( double & d ) { return *this; }
    bool good( ) const { return true; }
};

extern ostream cout;
extern ostream cerr;
extern istream cin;

ostream & endl( ostream & os );
ostream & flush( ostream & os );

#endif
"""


def stl_files() -> dict[str, str]:
    """All mini-STL headers keyed by their registered path."""
    return {
        f"{KAI_INCLUDE_DIR}/vector.h": VECTOR_H,
        f"{KAI_INCLUDE_DIR}/list.h": LIST_H,
        f"{KAI_INCLUDE_DIR}/pair.h": PAIR_H,
        f"{KAI_INCLUDE_DIR}/algorithm.h": ALGORITHM_H,
        f"{KAI_INCLUDE_DIR}/string.h": STRING_H,
        f"{KAI_INCLUDE_DIR}/iostream.h": IOSTREAM_H,
    }
