"""Corpora: C++ source the front end compiles in tests and benches.

* :mod:`repro.workloads.stl` — mini-STL headers (the paper's KAI 3.4c
  standard library substitute),
* :mod:`repro.workloads.stack` — the templated Stack code of paper
  Figure 1, in the paper's file layout (header includes implementation),
* :mod:`repro.workloads.pooma` — a template-heavy mini-POOMA framework
  with Krylov solvers (the paper's Figure 7 application),
* :mod:`repro.workloads.synth` — synthetic corpus generator for scaling
  benches.
"""

from repro.workloads.stack import stack_files, stack_frontend
from repro.workloads.stl import KAI_INCLUDE_DIR, stl_files

__all__ = ["KAI_INCLUDE_DIR", "stl_files", "stack_files", "stack_frontend"]
