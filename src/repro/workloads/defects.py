"""Seeded-defect corpus: one planted finding per pdbcheck rule.

Two translation units whose merged PDB exercises every checker in
:mod:`repro.check`, with machine-readable ground truth
(:data:`EXPECTED`) so the E18 bench can score precision/recall exactly:

* ``ping``/``pong`` — a mutually-recursive cluster nothing calls.
  :class:`CallTree` has no root for it (every member is "called"), so
  only the SCC-condensation reachability of PDT001 can see it.
* ``template double twice<double>( double );`` — an explicit function
  instantiation nothing calls (PDT011).
* ``template class Box<char>;`` — an explicit class instantiation
  nothing uses (PDT012); ``Box<int>`` is used, so the per-template
  count reads "1 of N unused".
* ``helper`` / ``Config`` — defined *differently* in both TUs
  (PDT021 / PDT022, and ``MergeStats.odr_conflicts``).
* ``Shape`` — polymorphic base of ``Circle`` with a non-virtual
  destructor (PDT031); ``Circle::draw( int )`` hides the base's
  virtual ``draw( )`` (PDT032).
* ``empty.h`` — included, contributes no items (PDT041).

(PDT042, include cycles, cannot be produced by a real preprocessor run
— guards break the cycle — so its fixture is a hand-written PDB in the
test suite, not part of this corpus.)

``python -m repro.workloads.defects --write DIR`` materialises this
corpus *and* the clean Stack corpus on disk for the CI ``check`` job.
"""

from __future__ import annotations

UTIL_H = """\
#ifndef UTIL_H
#define UTIL_H

template <class T>
class Box {
public:
    Box( ) : value_( 0 ) { }
    T get( ) const { return value_; }
    void set( const T & v ) { value_ = v; }
private:
    T value_;
};

template <class T>
T twice( const T & x ) { return x + x; }

#endif
"""

SHAPES_H = """\
#ifndef SHAPES_H
#define SHAPES_H

class Shape {
public:
    Shape( ) { }
    ~Shape( ) { }
    virtual int draw( ) { return 0; }
};

class Circle : public Shape {
public:
    Circle( ) { }
    int draw( int scale ) { return scale; }
};

#endif
"""

EMPTY_H = """\
// This header once held configuration macros; everything moved out,
// but the #include survived.
"""

A_CPP = """\
#include "util.h"
#include "shapes.h"
#include "empty.h"

template class Box<char>;
template double twice<double>( double );

class Config {
public:
    int mode;
};

int helper( int x ) { return x + 1; }

void pong( int n );

void ping( int n ) { if( n ) pong( n - 1 ); }
void pong( int n ) { ping( n ); }

int main( ) {
    Box<int> b;
    b.set( helper( 1 ) );
    Circle c;
    Shape s;
    int r = s.draw( ) + c.draw( 2 );
    return r + b.get( ) + twice( r );
}
"""

B_CPP = """\
#include "util.h"

class Config {
public:
    long mode;
};

int helper( int x ) { return x + 2; }

int b_entry( ) {
    Box<int> bl;
    bl.set( helper( 3 ) );
    return bl.get( );
}
"""


def defect_files() -> dict[str, str]:
    """The corpus, name -> text (the shape ``Frontend.register_files`` takes)."""
    return {
        "util.h": UTIL_H,
        "shapes.h": SHAPES_H,
        "empty.h": EMPTY_H,
        "a.cpp": A_CPP,
        "b.cpp": B_CPP,
    }


#: the translation units, in merge order
DEFECT_SOURCES = ("a.cpp", "b.cpp")

#: ground truth: rule id -> the item names pdbcheck must flag (and
#: nothing else) on the merged corpus
EXPECTED: dict[str, set[str]] = {
    "PDT001": {"ping", "pong"},
    # function-template instantiations keep the template's bare name
    # (class instantiations get the <args> spelling, routines do not)
    "PDT011": {"twice"},
    "PDT012": {"Box<char>"},
    "PDT021": {"helper"},
    "PDT022": {"Config"},
    "PDT031": {"Shape"},
    "PDT032": {"Circle::draw"},
    "PDT041": {"empty.h"},
}

#: ODR conflicts PDB.merge must count while folding b.cpp into a.cpp
EXPECTED_ODR_CONFLICTS = 2  # helper (routine) + Config (class)


def compile_defects():
    """Compile both TUs and merge; returns (merged PDB, [MergeStats])."""
    from repro.ductape.pdb import PDB
    from repro.tools.pdbbuild import BuildOptions, build

    merged, stats = build(
        list(DEFECT_SOURCES), BuildOptions(), files=defect_files()
    )
    assert isinstance(merged, PDB)
    return merged, [stats.merge]


def write_corpus(root: str) -> list[str]:
    """Write the defect corpus and the clean Stack corpus under ``root``
    (for CI jobs that drive the real CLIs over real files).

    Layout: ``root/defects/*`` and ``root/clean/*`` — the clean side
    includes the mini-STL headers at their paper path
    (``root/clean/pdt/include/kai/...``), so
    ``-I root/clean/pdt/include/kai`` resolves ``<vector.h>``.
    Returns the written paths.
    """
    import os

    from repro.workloads.stack import stack_files

    written = []
    for sub, files in (("defects", defect_files()), ("clean", stack_files())):
        for name, text in files.items():
            path = os.path.join(root, sub, name.lstrip("/"))
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(text)
            written.append(path)
    return sorted(written)


def main(argv=None) -> int:
    """CLI entry point (``--write DIR``)."""
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.workloads.defects",
        description="materialise the seeded-defect + clean corpora on disk",
    )
    ap.add_argument("--write", required=True, metavar="DIR", help="output directory")
    args = ap.parse_args(argv)
    for path in write_corpus(args.write):
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
