"""Synthetic C++ corpus generator for scaling and sweep benches.

Generates well-formed code in the front end's subset, parameterised by
size and template density, with known ground truth:

* ``n_plain_classes`` plain classes, each with ``methods_per_class``
  member functions calling each other in a chain,
* ``n_templates`` class templates, each instantiated with
  ``instantiations_per_template`` distinct argument types from ``main``,
* free function templates layered ``call_depth`` deep,
* multiple translation units sharing the generated headers (for
  pdbmerge benches).

Sizes are deterministic functions of the parameters, so benches can
assert exact entity counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SynthSpec:
    """Corpus shape parameters."""

    n_plain_classes: int = 4
    methods_per_class: int = 4
    n_templates: int = 2
    instantiations_per_template: int = 2
    call_depth: int = 3
    n_translation_units: int = 1

    #: argument types used for instantiations, cycled
    arg_types: tuple[str, ...] = ("int", "double", "char", "long", "float")


@dataclass
class SynthCorpus:
    """Generated corpus + ground truth."""

    files: dict[str, str] = field(default_factory=dict)
    main_files: list[str] = field(default_factory=list)
    #: raw names of every routine with a definition (ground truth for E7)
    routine_names: set[str] = field(default_factory=set)
    expected_class_instantiations: int = 0
    expected_plain_classes: int = 0
    total_lines: int = 0


def generate(spec: SynthSpec) -> SynthCorpus:
    """Generate the corpus described by ``spec``, with ground truth."""
    corpus = SynthCorpus()
    header_lines: list[str] = ["#ifndef SYNTH_H", "#define SYNTH_H", ""]

    # plain classes: Plain0..PlainN, chained method calls
    for c in range(spec.n_plain_classes):
        header_lines.append(f"class Plain{c} {{")
        header_lines.append("public:")
        header_lines.append(f"    Plain{c}( ) : state_( 0 ) {{ }}")
        corpus.routine_names.add(f"Plain{c}")
        for m in range(spec.methods_per_class):
            name = f"method{m}"
            corpus.routine_names.add(name)
            if m + 1 < spec.methods_per_class:
                body = f"return state_ + method{m + 1}( x );"
            else:
                body = "return state_ + x;"
            header_lines.append(f"    int {name}( int x ) {{ {body} }}")
        header_lines.append("private:")
        header_lines.append("    int state_;")
        header_lines.append("};")
        header_lines.append("")
    corpus.expected_plain_classes = spec.n_plain_classes

    # class templates: Box0<T>..BoxN<T>
    for t in range(spec.n_templates):
        header_lines.append("template <class T>")
        header_lines.append(f"class Box{t} {{")
        header_lines.append("public:")
        header_lines.append(f"    Box{t}( ) : value_( 0 ) {{ }}")
        header_lines.append("    T get( ) const { return value_; }")
        header_lines.append("    void set( const T & v ) { value_ = v; }")
        header_lines.append("    T combine( const T & v ) { set( v ); return get( ); }")
        header_lines.append("private:")
        header_lines.append("    T value_;")
        header_lines.append("};")
        header_lines.append("")
        corpus.routine_names.update({f"Box{t}", "get", "set", "combine"})

    # function template chain: level0 .. levelD
    for d in range(spec.call_depth):
        corpus.routine_names.add(f"level{d}")
        header_lines.append("template <class T>")
        if d + 1 < spec.call_depth:
            header_lines.append(
                f"T level{d}( const T & x ) {{ return level{d + 1}( x ); }}"
            )
        else:
            header_lines.append(f"T level{d}( const T & x ) {{ return x; }}")
        header_lines.append("")
    # reverse so callees are declared before callers
    if spec.call_depth > 1:
        chain_start = len(header_lines) - 3 * spec.call_depth
        chain = header_lines[chain_start:]
        groups = [chain[i : i + 3] for i in range(0, len(chain), 3)]
        header_lines[chain_start:] = [line for g in reversed(groups) for line in g]

    header_lines.append("#endif")
    corpus.files["synth.h"] = "\n".join(header_lines)

    # translation units
    for tu in range(spec.n_translation_units):
        lines = ['#include "synth.h"', ""]
        entry = "main" if tu == 0 else f"tu{tu}_entry"
        corpus.routine_names.add(entry)
        lines.append(f"int {entry}( ) {{")
        lines.append("    int acc = 0;")
        for c in range(spec.n_plain_classes):
            lines.append(f"    Plain{c} p{c};")
            lines.append(f"    acc = acc + p{c}.method0( {c} );")
        for t in range(spec.n_templates):
            for i in range(spec.instantiations_per_template):
                ty = spec.arg_types[i % len(spec.arg_types)]
                var = f"b{t}_{i}"
                lines.append(f"    Box{t}<{ty}> {var};")
                lines.append(f"    {var}.combine( {i} );")
        if spec.call_depth:
            lines.append("    acc = acc + level0( acc );")
        lines.append("    return acc;")
        lines.append("}")
        name = f"tu{tu}.cpp"
        corpus.files[name] = "\n".join(lines)
        corpus.main_files.append(name)

    corpus.expected_class_instantiations = (
        spec.n_templates * spec.instantiations_per_template
    )
    corpus.total_lines = sum(t.count("\n") + 1 for t in corpus.files.values())
    return corpus


def compile_synth(spec: SynthSpec, mode=None):
    """Compile the corpus's first TU; returns (tree, corpus)."""
    from repro.cpp import Frontend, FrontendOptions
    from repro.cpp.instantiate import InstantiationMode

    corpus = generate(spec)
    fe = Frontend(
        FrontendOptions(instantiation_mode=mode or InstantiationMode.USED)
    )
    fe.register_files(corpus.files)
    tree = fe.compile(corpus.main_files[0])
    return tree, corpus
