"""Mini-POOMA: a template-heavy framework with Krylov solvers.

POOMA (Parallel Object-Oriented Methods and Applications) is the LANL
framework the paper's Figure 7 profiles: "POOMA uses templates
extensively to provide array-related algorithms and manage allocation of
system and network resources."  This corpus reproduces the properties
that made POOMA the stress test for PDT:

* class templates with multiple parameters, including parameters that
  are themselves instantiations
  (``CGSolver<double, StencilMatrix<double>, DiagonalPreconditioner<double>>``),
* an expression-template layer (``AddExpr``/``ScaleExpr``) producing
  nested instantiations,
* free function templates with argument deduction (``dot``, ``axpy``),
* everything inside a namespace (``pooma``).

``KrylovApp.cpp`` runs conjugate-gradient and BiCGSTAB solves; the TAU
bench (E6) instruments it and simulates a solve whose profile shape —
matvec-dominated, per-instantiation timer names — is the Figure 7
reproduction target.
"""

from __future__ import annotations

from repro.cpp import Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.workloads.stl import KAI_INCLUDE_DIR, stl_files

VECTOR_H = """\
#ifndef POOMA_VECTOR_H
#define POOMA_VECTOR_H

namespace pooma {

template <class T>
class Vector {
public:
    Vector( ) : data_( 0 ), size_( 0 ) { }
    explicit Vector( int n ) : data_( new T[ n ] ), size_( n ) { }
    ~Vector( ) { delete [] data_; }

    int size( ) const { return size_; }

    T & operator()( int i ) { return data_[ i ]; }
    const T & operator()( int i ) const { return data_[ i ]; }

    void fill( const T & value ) {
        for ( int i = 0; i < size_; i++ )
            data_[ i ] = value;
    }

private:
    T * data_;
    int size_;
};

template <class T>
T dot( const Vector<T> & a, const Vector<T> & b ) {
    T sum = 0;
    for ( int i = 0; i < a.size( ); i++ )
        sum = sum + a( i ) * b( i );
    return sum;
}

template <class T>
void axpy( T alpha, const Vector<T> & x, Vector<T> & y ) {
    for ( int i = 0; i < y.size( ); i++ )
        y( i ) = y( i ) + alpha * x( i );
}

template <class T>
void xpay( const Vector<T> & x, T beta, Vector<T> & y ) {
    for ( int i = 0; i < y.size( ); i++ )
        y( i ) = x( i ) + beta * y( i );
}

template <class T>
void copy( const Vector<T> & src, Vector<T> & dst ) {
    for ( int i = 0; i < dst.size( ); i++ )
        dst( i ) = src( i );
}

template <class T>
void scale( T alpha, Vector<T> & x ) {
    for ( int i = 0; i < x.size( ); i++ )
        x( i ) = alpha * x( i );
}

double sqroot( double x ) {
    double guess = x;
    for ( int i = 0; i < 20; i++ )
        guess = 0.5 * ( guess + x / guess );
    return guess;
}

template <class T>
double norm2( const Vector<T> & x ) {
    return sqroot( dot( x, x ) );
}

}

#endif
"""

EXPRESSION_H = """\
#ifndef POOMA_EXPRESSION_H
#define POOMA_EXPRESSION_H

#include "Vector.h"

namespace pooma {

template <class L, class R>
class AddExpr {
public:
    AddExpr( const L & l, const R & r ) : left_( l ), right_( r ) { }
    double eval( int i ) const { return left_.eval( i ) + right_.eval( i ); }
    int size( ) const { return left_.size( ); }
private:
    const L & left_;
    const R & right_;
};

template <class E>
class ScaleExpr {
public:
    ScaleExpr( double alpha, const E & e ) : alpha_( alpha ), expr_( e ) { }
    double eval( int i ) const { return alpha_ * expr_.eval( i ); }
    int size( ) const { return expr_.size( ); }
private:
    double alpha_;
    const E & expr_;
};

class VectorView {
public:
    explicit VectorView( const Vector<double> & v ) : vec_( v ) { }
    double eval( int i ) const { return vec_( i ); }
    int size( ) const { return vec_.size( ); }
private:
    const Vector<double> & vec_;
};

template <class L, class R>
AddExpr<L, R> add( const L & l, const R & r ) {
    return AddExpr<L, R>( l, r );
}

template <class E>
ScaleExpr<E> scaled( double alpha, const E & e ) {
    return ScaleExpr<E>( alpha, e );
}

template <class E>
void assign( Vector<double> & dst, const E & expr ) {
    for ( int i = 0; i < expr.size( ); i++ )
        dst( i ) = expr.eval( i );
}

}

#endif
"""

STENCIL_H = """\
#ifndef POOMA_STENCIL_H
#define POOMA_STENCIL_H

#include "Vector.h"

namespace pooma {

template <class T>
class StencilMatrix {
public:
    explicit StencilMatrix( int n ) : n_( n ) { }

    int size( ) const { return n_ * n_; }

    void apply( const Vector<T> & x, Vector<T> & y ) const {
        int n = n_;
        for ( int row = 0; row < n; row++ ) {
            for ( int col = 0; col < n; col++ ) {
                int i = row * n + col;
                T v = 4 * x( i );
                if ( col > 0 )
                    v = v - x( i - 1 );
                if ( col < n - 1 )
                    v = v - x( i + 1 );
                if ( row > 0 )
                    v = v - x( i - n );
                if ( row < n - 1 )
                    v = v - x( i + n );
                y( i ) = v;
            }
        }
    }

    T diagonal( int i ) const { return 4; }

private:
    int n_;
};

template <class T>
class DiagonalPreconditioner {
public:
    explicit DiagonalPreconditioner( const StencilMatrix<T> & A ) : size_( A.size( ) ) { }

    void apply( const Vector<T> & r, Vector<T> & z ) const {
        for ( int i = 0; i < size_; i++ )
            z( i ) = r( i ) / 4;
    }

private:
    int size_;
};

}

#endif
"""

KRYLOV_H = """\
#ifndef POOMA_KRYLOV_H
#define POOMA_KRYLOV_H

#include "Vector.h"
#include "Stencil.h"

namespace pooma {

template <class T, class Matrix, class Precond>
class CGSolver {
public:
    CGSolver( int max_iterations, double tolerance )
        : max_iterations_( max_iterations ), tolerance_( tolerance ), iterations_( 0 ) { }

    int iterations( ) const { return iterations_; }

    int solve( const Matrix & A, Vector<T> & x, const Vector<T> & b, const Precond & M ) {
        int n = A.size( );
        Vector<T> r( n );
        Vector<T> z( n );
        Vector<T> p( n );
        Vector<T> q( n );
        A.apply( x, r );
        for ( int i = 0; i < n; i++ )
            r( i ) = b( i ) - r( i );
        M.apply( r, z );
        copy( z, p );
        T rho = dot( r, z );
        for ( iterations_ = 0; iterations_ < max_iterations_; iterations_++ ) {
            A.apply( p, q );
            T alpha = rho / dot( p, q );
            axpy( alpha, p, x );
            axpy( -alpha, q, r );
            if ( norm2( r ) < tolerance_ )
                break;
            M.apply( r, z );
            T rho_new = dot( r, z );
            T beta = rho_new / rho;
            xpay( z, beta, p );
            rho = rho_new;
        }
        return iterations_;
    }

private:
    int max_iterations_;
    double tolerance_;
    int iterations_;
};

template <class T, class Matrix, class Precond>
class BiCGSTABSolver {
public:
    BiCGSTABSolver( int max_iterations, double tolerance )
        : max_iterations_( max_iterations ), tolerance_( tolerance ), iterations_( 0 ) { }

    int iterations( ) const { return iterations_; }

    int solve( const Matrix & A, Vector<T> & x, const Vector<T> & b, const Precond & M ) {
        int n = A.size( );
        Vector<T> r( n );
        Vector<T> rhat( n );
        Vector<T> p( n );
        Vector<T> v( n );
        Vector<T> s( n );
        Vector<T> t( n );
        A.apply( x, r );
        for ( int i = 0; i < n; i++ )
            r( i ) = b( i ) - r( i );
        copy( r, rhat );
        copy( r, p );
        T rho = dot( rhat, r );
        for ( iterations_ = 0; iterations_ < max_iterations_; iterations_++ ) {
            A.apply( p, v );
            T alpha = rho / dot( rhat, v );
            copy( r, s );
            axpy( -alpha, v, s );
            if ( norm2( s ) < tolerance_ ) {
                axpy( alpha, p, x );
                break;
            }
            A.apply( s, t );
            T omega = dot( t, s ) / dot( t, t );
            axpy( alpha, p, x );
            axpy( omega, s, x );
            copy( s, r );
            axpy( -omega, t, r );
            T rho_new = dot( rhat, r );
            T beta = ( rho_new / rho ) * ( alpha / omega );
            xpay( r, beta, p );
            axpy( -beta * omega, v, p );
            rho = rho_new;
        }
        return iterations_;
    }

private:
    int max_iterations_;
    double tolerance_;
    int iterations_;
};

}

#endif
"""

KRYLOV_APP_CPP = """\
#include "Krylov.h"
#include "Expression.h"
#include <iostream.h>

using namespace pooma;

int run_cg( int grid ) {
    StencilMatrix<double> A( grid );
    DiagonalPreconditioner<double> M( A );
    int n = A.size( );
    Vector<double> x( n );
    Vector<double> b( n );
    x.fill( 0.0 );
    b.fill( 1.0 );
    CGSolver<double, StencilMatrix<double>, DiagonalPreconditioner<double> > solver( 100, 1.0e-8 );
    return solver.solve( A, x, b, M );
}

int run_bicgstab( int grid ) {
    StencilMatrix<double> A( grid );
    DiagonalPreconditioner<double> M( A );
    int n = A.size( );
    Vector<double> x( n );
    Vector<double> b( n );
    x.fill( 0.0 );
    b.fill( 1.0 );
    BiCGSTABSolver<double, StencilMatrix<double>, DiagonalPreconditioner<double> > solver( 100, 1.0e-8 );
    return solver.solve( A, x, b, M );
}

double run_expressions( int n ) {
    Vector<double> u( n );
    Vector<double> w( n );
    Vector<double> out( n );
    u.fill( 1.0 );
    w.fill( 2.0 );
    VectorView uv( u );
    VectorView wv( w );
    assign( out, add( uv, scaled( 0.5, wv ) ) );
    return out( 0 );
}

int main( ) {
    int cg_iters = run_cg( 32 );
    int bi_iters = run_bicgstab( 32 );
    double check = run_expressions( 1024 );
    cout << cg_iters << endl;
    cout << bi_iters << endl;
    cout << check << endl;
    return 0;
}
"""


def pooma_files() -> dict[str, str]:
    """The mini-POOMA corpus plus the mini-STL it includes."""
    files = dict(stl_files())
    files["Vector.h"] = VECTOR_H
    files["Expression.h"] = EXPRESSION_H
    files["Stencil.h"] = STENCIL_H
    files["Krylov.h"] = KRYLOV_H
    files["KrylovApp.cpp"] = KRYLOV_APP_CPP
    return files


def pooma_frontend(
    mode: InstantiationMode = InstantiationMode.USED,
) -> Frontend:
    """A frontend pre-loaded with the mini-POOMA corpus."""
    fe = Frontend(
        FrontendOptions(include_paths=[KAI_INCLUDE_DIR], instantiation_mode=mode)
    )
    fe.register_files(pooma_files())
    return fe


def compile_pooma(mode: InstantiationMode = InstantiationMode.USED):
    """Compile KrylovApp.cpp; returns the ILTree."""
    return pooma_frontend(mode).compile("KrylovApp.cpp")
