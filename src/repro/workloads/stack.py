"""The templated Stack corpus — paper Figure 1, in the paper's layout.

Three files, matching the PDB excerpt of paper Figure 3:

* ``StackAr.h`` — the class template ``Stack``; includes
  ``<vector.h>`` (the KAI header), ``dsexceptions.h``, and — the
  idiom the paper's caption points out — ``StackAr.cpp`` at the end,
  "so that templates are instantiated in the PDB file",
* ``StackAr.cpp`` — the out-of-line member function templates,
* ``TestStackAr.cpp`` — ``main``, which instantiates ``Stack<int>``
  and uses push / isEmpty / topAndPop (leaving top / pop / makeEmpty
  unused, which used-mode must *not* instantiate).
"""

from __future__ import annotations

from repro.cpp import Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.workloads.stl import KAI_INCLUDE_DIR, stl_files

DSEXCEPTIONS_H = """\
#ifndef DSEXCEPTIONS_H
#define DSEXCEPTIONS_H

class Overflow {
public:
    Overflow( ) { }
};

class Underflow {
public:
    Underflow( ) { }
};

class OutOfMemory {
public:
    OutOfMemory( ) { }
};

class BadIterator {
public:
    BadIterator( ) { }
};

#endif
"""

STACKAR_H = """\
#ifndef STACKAR_H
#define STACKAR_H

#include <vector.h>
#include "dsexceptions.h"

template <class Object>
class Stack {
public:
    explicit Stack( int capacity = 10 );

    bool isEmpty( ) const;
    bool isFull( ) const;
    const Object & top( ) const;

    void makeEmpty( );
    void pop( );
    void push( const Object & x );
    Object topAndPop( );

private:
    vector<Object> theArray;
    int topOfStack;
};

#include "StackAr.cpp"
#endif
"""

STACKAR_CPP = """\
template <class Object>
Stack<Object>::Stack( int capacity ) : theArray( capacity ), topOfStack( -1 ) {
}

template <class Object>
bool Stack<Object>::isEmpty( ) const {
    return topOfStack == -1;
}

template <class Object>
bool Stack<Object>::isFull( ) const {
    return topOfStack == theArray.size( ) - 1;
}

template <class Object>
void Stack<Object>::makeEmpty( ) {
    topOfStack = -1;
}

template <class Object>
const Object & Stack<Object>::top( ) const {
    if( isEmpty( ) )
        throw Underflow( );
    return theArray[ topOfStack ];
}

template <class Object>
void Stack<Object>::pop( ) {
    if( isEmpty( ) )
        throw Underflow( );
    topOfStack--;
}

template <class Object>
void Stack<Object>::push( const Object & x ) {
    if( isFull( ) )
        throw Overflow( );
    theArray[ ++topOfStack ] = x;
}

template <class Object>
Object Stack<Object>::topAndPop( ) {
    if( isEmpty( ) )
        throw Underflow( );
    return theArray[ topOfStack-- ];
}
"""

TESTSTACKAR_CPP = """\
#include "StackAr.h"
#include <iostream.h>

int main( ) {
    Stack<int> s;

    for( int i = 0; i < 10; i++ )
        s.push( i );

    while( !s.isEmpty( ) )
        cout << s.topAndPop( ) << endl;

    return 0;
}
"""

#: Stack members main() uses (bodies must be instantiated in USED mode)
USED_MEMBERS = ("Stack<int>", "push", "isEmpty", "isFull", "topAndPop")
#: Stack members main() never touches (must stay uninstantiated)
UNUSED_MEMBERS = ("top", "pop", "makeEmpty")


def stack_files() -> dict[str, str]:
    """The Stack corpus plus the mini-STL it includes."""
    files = dict(stl_files())
    files["dsexceptions.h"] = DSEXCEPTIONS_H
    files["StackAr.h"] = STACKAR_H
    files["StackAr.cpp"] = STACKAR_CPP
    files["TestStackAr.cpp"] = TESTSTACKAR_CPP
    return files


def stack_frontend(
    mode: InstantiationMode = InstantiationMode.USED,
) -> Frontend:
    """A frontend pre-loaded with the Stack corpus."""
    fe = Frontend(
        FrontendOptions(include_paths=[KAI_INCLUDE_DIR], instantiation_mode=mode)
    )
    fe.register_files(stack_files())
    return fe


def compile_stack(mode: InstantiationMode = InstantiationMode.USED):
    """Compile TestStackAr.cpp; returns the ILTree."""
    return stack_frontend(mode).compile("TestStackAr.cpp")
