"""Java corpus: an N-body particle simulation.

Exercises the Java front end's construct coverage: two packages, an
interface with implementations (dynamic dispatch), inheritance, static
and instance methods, constructors, fields, arrays, and cross-package
calls."""

from __future__ import annotations

from repro.java.frontend import JavaFrontend

VECTOR3_JAVA = """\
package math;

public class Vector3 {
    public double x;
    public double y;
    public double z;

    public Vector3(double x, double y, double z) {
        this.x = x;
        this.y = y;
        this.z = z;
    }

    public Vector3 add(Vector3 other) {
        return new Vector3(x + other.x, y + other.y, z + other.z);
    }

    public Vector3 scale(double factor) {
        return new Vector3(x * factor, y * factor, z * factor);
    }

    public double norm() {
        return dot(this);
    }

    public double dot(Vector3 other) {
        return x * other.x + y * other.y + z * other.z;
    }

    public static Vector3 zero() {
        return new Vector3(0.0, 0.0, 0.0);
    }
}
"""

FORCE_JAVA = """\
package sim;

public interface Force {
    math.Vector3 apply(Body a, Body b);
    double cutoff();
}
"""

GRAVITY_JAVA = """\
package sim;

public class Gravity implements Force {
    private double constant;

    public Gravity(double constant) {
        this.constant = constant;
    }

    public math.Vector3 apply(Body a, Body b) {
        Vector3 delta = b.position().add(a.position().scale(-1.0));
        double r2 = delta.dot(delta);
        return delta.scale(constant / r2);
    }

    public double cutoff() {
        return 0.0;
    }
}
"""

BODY_JAVA = """\
package sim;

public class Body {
    private Vector3 pos;
    private Vector3 vel;
    protected double mass;

    public Body(double mass) {
        this.mass = mass;
        this.pos = Vector3.zero();
        this.vel = Vector3.zero();
    }

    public Vector3 position() {
        return pos;
    }

    public void kick(Vector3 force, double dt) {
        Vector3 accel = force.scale(1.0 / mass);
        vel = vel.add(accel.scale(dt));
    }

    public void drift(double dt) {
        pos = pos.add(vel.scale(dt));
    }
}
"""

STAR_JAVA = """\
package sim;

public class Star extends Body {
    public Star(double mass) {
        super(mass);
    }

    public double luminosity() {
        return mass * 3.8;
    }
}
"""

SIMULATION_JAVA = """\
package sim;

public class Simulation {
    private Body[] bodies;
    private Force force;
    private int steps;

    public Simulation(int n, Force f) {
        this.force = f;
        this.steps = 0;
    }

    public void step(double dt) {
        Body a = bodies[0];
        Body b = bodies[1];
        Vector3 f = force.apply(a, b);
        a.kick(f, dt);
        a.drift(dt);
        steps = steps + 1;
    }

    public static void main(String[] args) {
        Gravity g = new Gravity(6.67e-11);
        Simulation sim = new Simulation(64, g);
        int i = 0;
        while (i < 100) {
            sim.step(0.01);
            i = i + 1;
        }
    }
}
"""


def java_files() -> dict[str, str]:
    """The Java N-body corpus, keyed by file name."""
    return {
        "math/Vector3.java": VECTOR3_JAVA,
        "sim/Force.java": FORCE_JAVA,
        "sim/Gravity.java": GRAVITY_JAVA,
        "sim/Body.java": BODY_JAVA,
        "sim/Star.java": STAR_JAVA,
        "sim/Simulation.java": SIMULATION_JAVA,
    }


def compile_nbody():
    """Compile the N-body corpus; returns the ILTree."""
    fe = JavaFrontend()
    fe.register_files(java_files())
    return fe.compile(sorted(java_files()))
