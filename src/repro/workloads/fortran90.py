"""Fortran 90 corpus: a heat-diffusion solver.

Exercises the Section 6 construct mapping end to end: two modules (one
defining a derived type, one the solver), a generic interface with two
module procedures, functions and subroutines with typed dummy
arguments, ``return`` exit points, and a program unit driving a
time-stepping loop.
"""

from __future__ import annotations

from repro.fortran.frontend import FortranFrontend

GRID_MOD_F90 = """\
module grid_mod
  implicit none

  type grid
     integer :: nx
     integer :: ny
     real, dimension(:), pointer :: cells
     real :: spacing
  end type grid

  real :: default_spacing = 0.1

contains

  subroutine grid_init(g, nx, ny)
    type(grid) :: g
    integer, intent(in) :: nx
    integer, intent(in) :: ny
    g%nx = nx
    g%ny = ny
    g%spacing = default_spacing
  end subroutine grid_init

  function grid_size(g) result(n)
    type(grid), intent(in) :: g
    integer :: n
    n = g%nx * g%ny
  end function grid_size

  function cell_value(g, i) result(v)
    type(grid), intent(in) :: g
    integer, intent(in) :: i
    real :: v
    v = 0.0
  end function cell_value

end module grid_mod
"""

HEAT_MOD_F90 = """\
module heat_mod
  use grid_mod
  implicit none

  interface residual
     module procedure residual_scalar, residual_field
  end interface

contains

  subroutine heat_step(g, dt)
    type(grid), intent(in) :: g
    real, intent(in) :: dt
    integer :: i
    integer :: n
    real :: flux
    n = grid_size(g)
    do i = 1, n
       flux = stencil(g, i) * dt
    end do
  end subroutine heat_step

  function stencil(g, i) result(s)
    type(grid), intent(in) :: g
    integer, intent(in) :: i
    real :: s
    s = cell_value(g, i) * 4.0
    if (i > 1) then
       s = s - cell_value(g, i - 1)
    end if
  end function stencil

  function residual_scalar(x) result(r)
    real, intent(in) :: x
    real :: r
    r = abs(x)
  end function residual_scalar

  function residual_field(g) result(r)
    type(grid), intent(in) :: g
    real :: r
    integer :: i
    r = 0.0
    do i = 1, grid_size(g)
       r = r + residual_scalar(cell_value(g, i))
    end do
  end function residual_field

  subroutine check_convergence(g, tol, done)
    type(grid), intent(in) :: g
    real, intent(in) :: tol
    logical, intent(out) :: done
    if (residual(g) < tol) then
       done = .true.
       return
    end if
    done = .false.
  end subroutine check_convergence

end module heat_mod
"""

HEAT_APP_F90 = """\
program heat_app
  use grid_mod
  use heat_mod
  implicit none

  type(grid) :: g
  integer :: step
  logical :: done

  call grid_init(g, 64, 64)
  do step = 1, 100
     call heat_step(g, 0.01)
     call check_convergence(g, 1.0e-6, done)
  end do
end program heat_app
"""


def fortran_files() -> dict[str, str]:
    """The Fortran heat-solver corpus, keyed by file name."""
    return {
        "grid_mod.f90": GRID_MOD_F90,
        "heat_mod.f90": HEAT_MOD_F90,
        "heat_app.f90": HEAT_APP_F90,
    }


def compile_heat():
    """Compile the heat solver; returns the ILTree."""
    fe = FortranFrontend()
    fe.register_files(fortran_files())
    return fe.compile(["grid_mod.f90", "heat_mod.f90", "heat_app.f90"])
