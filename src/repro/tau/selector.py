"""Instrumentation selection — the logic of paper Figure 6.

"For each template, TAU determines if the given routine belongs to a
class and that it is not a static member function.  If these conditions
are satisfied, then TAU inserts CT(*this), which returns the type of the
object with which the member function is associated.  The unique
instantiation of the class can therefore be incorporated in the name of
an instantiated template."

:func:`select_instrumentation` ports the Figure 6 loop: iterate the PDB
template vector, filter to function-kind templates, and decide the
``CT(*this)`` question by template kind — TE_MEMFUNC gets run-time type
info, TE_FUNC and TE_STATMEM do not.  Plain (non-template) routines are
instrumented with static names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.ductape.items import PdbRoutine, PdbTemplate
from repro.ductape.pdb import PDB


@dataclass
class InstrumentationPoint:
    """One entity to instrument (the paper's ``itemRef``).

    A point targets one *source location* — a template definition or a
    routine body.  Members of class templates share one point per source
    location across all instantiations; ``CT(*this)`` makes the run-time
    timer names unique per instantiation (paper Section 4.1)."""

    item: Union[PdbTemplate, PdbRoutine]
    #: True when the timer name is complete at instrumentation time;
    #: False when CT(*this) must supply the instantiation type at run time
    static_name: bool
    file_name: str
    line: int
    column: int
    name_override: Optional[str] = None

    @property
    def needs_ct(self) -> bool:
        return not self.static_name

    def timer_name(self) -> str:
        """The static part of the TAU_PROFILE name argument."""
        if self.name_override is not None:
            return self.name_override
        item = self.item
        if isinstance(item, PdbRoutine):
            sig = item.signature()
            sig_text = sig.name() if sig is not None else "()"
            return f"{item.fullName()} {sig_text}"
        return f"{item.fullName()}()"

    def type_argument(self) -> str:
        """The TAU_PROFILE type argument: CT(*this) for member-function
        templates, an empty string otherwise (paper Section 4.1)."""
        return "CT(*this)" if self.needs_ct else '" "'


def select_instrumentation(
    pdb: PDB, file: Optional[str] = None, include_plain_routines: bool = True
) -> list[InstrumentationPoint]:
    """Port of the Figure 6 selection loop, extended with plain routines.

    ``file`` restricts selection to templates/routines defined in that
    source file (the instrumentor rewrites one file at a time)."""
    itemvec: list[InstrumentationPoint] = []
    seen: set[tuple[str, int, int]] = set()
    # Get the list of templates.
    u = pdb.getTemplateVec()
    for te in u:  # (1) iterate over all templates
        loc = te.location()
        if not loc.known:
            continue
        if file is not None and loc.file().name() != file:
            continue
        tekind = te.kind()
        if tekind in (  # (2) filter out non-function templates
            PdbTemplate.TE_MEMFUNC,
            PdbTemplate.TE_STATMEM,
            PdbTemplate.TE_FUNC,
        ):
            # The target helps identify if we need to put CT(*this) in
            # the type.
            if tekind in (PdbTemplate.TE_FUNC, PdbTemplate.TE_STATMEM):  # (3)
                # There's no parent class (or it is static): no CT(*this).
                p = _point(te, static_name=True)
            else:
                # It is a member function, so add CT(*this).
                p = _point(te, static_name=False)
            itemvec.append(p)
            seen.add((p.file_name, p.line, p.column))
    if include_plain_routines:
        for r in pdb.getRoutineVec():
            loc = r.location()
            if not loc.known:
                continue
            if file is not None and loc.file().name() != file:
                continue
            if not _has_body(r):
                continue
            key = (loc.file().name(), loc.line(), loc.col())
            if key in seen:
                continue  # this source location already has a macro
            te = r.template()
            if te is not None and te.kind() == PdbTemplate.TE_CLASS:
                # member function defined inside a class template body:
                # one macro in the template text, CT(*this) for names
                p = _point(
                    r, static_name=False, name_override=_static_member_name(r)
                )
            elif te is not None:
                continue  # covered by the function-template points above
            else:
                p = _point(r, static_name=True)
            itemvec.append(p)
            seen.add(key)
    itemvec.sort(key=lambda p: (p.file_name, p.line, p.column))  # locCmp
    return itemvec


def _static_member_name(r: PdbRoutine) -> str:
    """The instantiation-independent part of a class-template member's
    timer name: ``vector<int>::vector<int>`` -> ``vector::vector()``."""
    parent = r.parentClass()
    cls = parent.name().split("<")[0] if parent is not None else "?"
    return f"{cls}::{r.name().split('<')[0]}()"


def _point(item, static_name: bool, name_override: Optional[str] = None) -> InstrumentationPoint:
    loc = item.location()
    return InstrumentationPoint(
        item=item,
        static_name=static_name,
        file_name=loc.file().name(),
        line=loc.line(),
        column=loc.col(),
        name_override=name_override,
    )


def _has_body(r: PdbRoutine) -> bool:
    return r.bodyBegin().known
