"""TAU — Tuning and Analysis Utilities (paper Section 4.1).

The paper's first PDT application: "The TAU instrumentor iterates
through the PDB descriptions of functions and templates to rewrite the
original source file, annotating the functions with TAU measurement
macros."  Modules:

* :mod:`repro.tau.selector` — which entities get instrumented and
  whether they need run-time type information (the ``CT(*this)``
  decision of paper Figure 6),
* :mod:`repro.tau.instrumentor` — source rewriting with ``TAU_PROFILE``
  macros,
* :mod:`repro.tau.runtime` — the measurement library: timers, per-node
  profile storage,
* :mod:`repro.tau.machine` — the deterministic cost model standing in
  for real hardware (see DESIGN.md substitutions),
* :mod:`repro.tau.simulate` — the call-graph execution simulator that
  drives the runtime ("running" the instrumented program),
* :mod:`repro.tau.profile` — pprof-style profile displays (the Figure 7
  analog),
* :mod:`repro.tau.tracing` — event traces and merging.
"""

from repro.tau.instrumentor import InstrumentedSource, instrument_sources
from repro.tau.profile import format_profile, format_mean_profile
from repro.tau.runtime import Profiler, TimerStats
from repro.tau.selector import InstrumentationPoint, select_instrumentation
from repro.tau.simulate import ExecutionSimulator, WorkloadSpec

__all__ = [
    "ExecutionSimulator",
    "InstrumentationPoint",
    "InstrumentedSource",
    "Profiler",
    "TimerStats",
    "WorkloadSpec",
    "format_mean_profile",
    "format_profile",
    "instrument_sources",
    "select_instrumentation",
]
