"""TAU-style event tracing.

Besides profiles, TAU's "profiling and tracing toolkit" (paper Section
4.1) records timestamped enter/exit events per node.  The simulator's
traced engine emits them here; :func:`merge_traces` time-merges per-node
buffers the way TAU's trace merger does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class EventKind(enum.Enum):
    """Trace event kinds: routine enter and exit."""
    ENTER = "enter"
    EXIT = "exit"


@dataclass(frozen=True)
class TraceEvent:
    """One enter/exit record: node, timer, virtual timestamp."""

    node: int
    kind: EventKind
    timer: str
    timestamp: float
    sequence: int  # tie-breaker: emission order within a node


@dataclass
class TraceBuffer:
    """Per-run event storage (all nodes interleaved as emitted)."""

    events: list[TraceEvent] = field(default_factory=list)
    max_events: int = 5_000_000
    dropped: int = 0

    def enter(self, node: int, timer: str, timestamp: float) -> None:
        self._emit(node, EventKind.ENTER, timer, timestamp)

    def exit(self, node: int, timer: str, timestamp: float) -> None:
        self._emit(node, EventKind.EXIT, timer, timestamp)

    def _emit(self, node: int, kind: EventKind, timer: str, ts: float) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(node, kind, timer, ts, len(self.events)))

    def node_events(self, node: int) -> list[TraceEvent]:
        return [e for e in self.events if e.node == node]

    def nodes(self) -> list[int]:
        return sorted({e.node for e in self.events})

    def __len__(self) -> int:
        return len(self.events)

    def validate_nesting(self) -> None:
        """Per node, enter/exit events must nest like brackets and
        timestamps must be monotone (property-tested)."""
        for node in self.nodes():
            stack: list[str] = []
            last_ts = float("-inf")
            for e in self.node_events(node):
                assert e.timestamp >= last_ts, "timestamps must be monotone"
                last_ts = e.timestamp
                if e.kind is EventKind.ENTER:
                    stack.append(e.timer)
                else:
                    assert stack and stack[-1] == e.timer, (
                        f"unbalanced exit of {e.timer!r} on node {node}"
                    )
                    stack.pop()
            assert not stack, f"unclosed timers on node {node}: {stack}"


def merge_traces(buffer: TraceBuffer) -> Iterator[TraceEvent]:
    """Global time-ordered event stream across nodes (stable on ties)."""
    yield from sorted(buffer.events, key=lambda e: (e.timestamp, e.node, e.sequence))


def format_trace(buffer: TraceBuffer, limit: int = 100) -> str:
    """Human-readable merged trace listing."""
    lines = ["timestamp      node  event  timer"]
    for i, e in enumerate(merge_traces(buffer)):
        if i >= limit:
            lines.append(f"... ({len(buffer) - limit} more events)")
            break
        lines.append(
            f"{e.timestamp:<13.1f} {e.node:<5} {e.kind.value:<6} {e.timer}"
        )
    return "\n".join(lines)
