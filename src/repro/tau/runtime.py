"""The TAU measurement runtime: timers and profile storage.

A real (not mocked) measurement library: timers nest on a per-thread
stack, exclusive time flows to the routine on top, inclusive time covers
the whole span, and statistics accumulate per (node, context, thread) —
TAU's n,c,t triple.  The only substitution versus the paper is the clock
source: instead of wall-clock on real hardware, time is whatever the
caller reports (the execution simulator's virtual cycle counter), which
keeps profiles deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class TimerStats:
    """Accumulated measurements for one timer on one (n,c,t).

    ``calls``/``subrs`` are integral on a live thread profile; mean
    views (:meth:`Profiler.mean_stats`) carry fractional values, as in
    TAU's mean display — 1 call across 2 ranks is 0.5 calls."""

    name: str
    group: str = "TAU_DEFAULT"
    calls: float = 0
    subrs: float = 0  # child timer starts while this timer was on top
    inclusive: float = 0.0
    exclusive: float = 0.0

    @property
    def inclusive_per_call(self) -> float:
        return self.inclusive / self.calls if self.calls else 0.0

    @property
    def exclusive_per_call(self) -> float:
        return self.exclusive / self.calls if self.calls else 0.0


@dataclass
class _ActiveTimer:
    stats: TimerStats
    start: float
    child_time: float = 0.0
    #: first activation of this timer on the stack — recursive
    #: re-activations must not double-count inclusive time
    outermost: bool = True


class ThreadProfile:
    """Timer storage and the running timer stack for one (n,c,t)."""

    def __init__(self, node: int = 0, context: int = 0, thread: int = 0):
        self.node = node
        self.context = context
        self.thread = thread
        self.timers: dict[str, TimerStats] = {}
        self._stack: list[_ActiveTimer] = []
        self._now = 0.0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        """Report elapsed work time (the simulator's virtual clock)."""
        if dt < 0:
            raise ValueError("time cannot run backwards")
        self._now += dt

    # -- timers ------------------------------------------------------------

    def timer(self, name: str, group: str = "TAU_DEFAULT") -> TimerStats:
        t = self.timers.get(name)
        if t is None:
            t = TimerStats(name=name, group=group)
            self.timers[name] = t
        return t

    def start(self, name: str, group: str = "TAU_DEFAULT") -> None:
        stats = self.timer(name, group)
        stats.calls += 1
        if self._stack:
            self._stack[-1].stats.subrs += 1
        outermost = all(a.stats is not stats for a in self._stack)
        self._stack.append(
            _ActiveTimer(stats=stats, start=self._now, outermost=outermost)
        )

    def stop(self, name: Optional[str] = None) -> None:
        if not self._stack:
            raise RuntimeError("timer stack underflow")
        active = self._stack.pop()
        if name is not None and active.stats.name != name:
            raise RuntimeError(
                f"timer stop mismatch: stopping {name!r}, "
                f"top of stack is {active.stats.name!r}"
            )
        span = self._now - active.start
        if active.outermost:
            active.stats.inclusive += span
        active.stats.exclusive += span - active.child_time
        if self._stack:
            self._stack[-1].child_time += span

    def stop_all(self) -> None:
        """Stop every running timer at the current clock.

        A program that exits while ``main`` (or anything else) is still
        on the stack must not lose that time: the profile writers call
        this so end-of-run snapshots account for dangling timers."""
        while self._stack:
            self.stop()

    def snapshot_timers(self) -> dict[str, TimerStats]:
        """Copy of the timer table *as if* :meth:`stop_all` ran now,
        without disturbing the live stack — the snapshot-at-``now``
        view the profile writers serialise."""
        copies = {
            name: TimerStats(
                name=t.name,
                group=t.group,
                calls=t.calls,
                subrs=t.subrs,
                inclusive=t.inclusive,
                exclusive=t.exclusive,
            )
            for name, t in self.timers.items()
        }
        # Replay the pending stops top-down: each popped frame's full
        # span becomes child time of the frame below it (mirrors stop()).
        inherited = 0.0
        for frame in reversed(self._stack):
            span = self._now - frame.start
            c = copies[frame.stats.name]
            if frame.outermost:
                c.inclusive += span
            c.exclusive += span - frame.child_time - inherited
            inherited = span
        return copies

    @property
    def depth(self) -> int:
        return len(self._stack)

    def top(self) -> Optional[TimerStats]:
        return self._stack[-1].stats if self._stack else None

    def total_time(self) -> float:
        return self._now

    def check_consistency(self) -> None:
        """Invariants any real profile must satisfy (property-tested):
        inclusive >= exclusive >= 0 for every timer, and no timer's
        inclusive exceeds the total elapsed time.  Checked on the
        snapshot-at-``now`` view, so the invariants hold even while
        timers are still running (dangling at end-of-run)."""
        for t in self.snapshot_timers().values():
            assert t.exclusive >= -1e-9, f"{t.name}: negative exclusive"
            assert t.inclusive >= t.exclusive - 1e-9, f"{t.name}: incl < excl"
            assert t.inclusive <= self._now + 1e-9, f"{t.name}: incl > total"


class Profiler:
    """Whole-program profile storage across nodes/contexts/threads."""

    def __init__(self):
        self.profiles: dict[tuple[int, int, int], ThreadProfile] = {}

    def profile(self, node: int = 0, context: int = 0, thread: int = 0) -> ThreadProfile:
        key = (node, context, thread)
        p = self.profiles.get(key)
        if p is None:
            p = ThreadProfile(node, context, thread)
            self.profiles[key] = p
        return p

    def nodes(self) -> list[int]:
        return sorted({n for (n, _, _) in self.profiles})

    def all_timer_names(self) -> list[str]:
        names: dict[str, None] = {}
        for p in self.profiles.values():
            for name in p.timers:
                names.setdefault(name)
        return list(names)

    def stop_all(self) -> None:
        """Stop every running timer on every thread profile."""
        for p in self.profiles.values():
            p.stop_all()

    def mean_stats(self) -> dict[str, TimerStats]:
        """Per-timer statistics averaged over all (n,c,t) profiles —
        TAU's "mean" display (paper Figure 7 shows mean profiles).

        Means are true averages: call counts come out fractional when a
        timer did not fire the same number of times on every profile
        (TAU's mean display shows fractional calls).  A timer seen with
        different groups across profiles takes the group of the
        first profile (in sorted (n,c,t) order) that has it."""
        count = max(1, len(self.profiles))
        out: dict[str, TimerStats] = {}
        for name in self.all_timer_names():
            agg = TimerStats(name=name)
            group: Optional[str] = None
            for key in sorted(self.profiles):
                t = self.profiles[key].timers.get(name)
                if t is None:
                    continue
                agg.calls += t.calls
                agg.subrs += t.subrs
                agg.inclusive += t.inclusive
                agg.exclusive += t.exclusive
                if group is None:
                    group = t.group
            if group is not None:
                agg.group = group
            agg.calls /= count
            agg.subrs /= count
            agg.inclusive /= count
            agg.exclusive /= count
            out[name] = agg
        return out

    def groups(self) -> list[str]:
        """All profile groups seen across nodes (TAU_USER, TAU_FIELD, …)."""
        out: dict[str, None] = {}
        for p in self.profiles.values():
            for t in p.timers.values():
                out.setdefault(t.group)
        return list(out)

    def group_stats(self, group: str) -> dict[str, TimerStats]:
        """Mean statistics restricted to one profile group — TAU's
        group-filtered displays."""
        return {
            name: t for name, t in self.mean_stats().items() if t.group == group
        }

    def total_stats(self) -> dict[str, TimerStats]:
        """Per-timer statistics summed over all profiles.  Group
        resolution matches :meth:`mean_stats`: first-seen wins, in
        sorted (n,c,t) order."""
        out: dict[str, TimerStats] = {}
        for name in self.all_timer_names():
            agg = TimerStats(name=name)
            group: Optional[str] = None
            for key in sorted(self.profiles):
                t = self.profiles[key].timers.get(name)
                if t is None:
                    continue
                agg.calls += t.calls
                agg.subrs += t.subrs
                agg.inclusive += t.inclusive
                agg.exclusive += t.exclusive
                if group is None:
                    group = t.group
            if group is not None:
                agg.group = group
            out[name] = agg
        return out
