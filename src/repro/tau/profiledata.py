"""TAU's on-disk profile format: ``profile.<node>.<context>.<thread>``.

The real TAU runtime dumps one file per (n,c,t) at program exit; pprof
and paraprof read them back.  Format (per file)::

    <ntimers> templated_functions
    # Name Calls Subrs Excl Incl ProfileCalls
    "main() int ()" 1 4 12.5 3210.0 0 GROUP="TAU_DEFAULT"
    ...
    0 aggregates

:func:`write_profiles` / :func:`read_profiles` round-trip a
:class:`~repro.tau.runtime.Profiler` through that format, so simulated
runs can be inspected with the same file-based workflow the paper's
users had.
"""

from __future__ import annotations

import os
import re

from repro.tau.runtime import Profiler, ThreadProfile

_HEADER_RE = re.compile(r"^(\d+)\s+templated_functions")
_ROW_RE = re.compile(
    r'^"(?P<name>(?:[^"\\]|\\.)*)"\s+'
    r"(?P<calls>\d+)\s+(?P<subrs>\d+)\s+"
    r"(?P<excl>[0-9.eE+-]+)\s+(?P<incl>[0-9.eE+-]+)\s+"
    r'(?P<pcalls>\d+)\s+GROUP="(?P<group>[^"]*)"\s*$'
)
_FILE_RE = re.compile(r"^profile\.(\d+)\.(\d+)\.(\d+)$")


def profile_file_name(node: int, context: int = 0, thread: int = 0) -> str:
    """TAU's profile file naming convention."""
    return f"profile.{node}.{context}.{thread}"


def write_profiles(profiler: Profiler, directory: str) -> list[str]:
    """Dump one ``profile.n.c.t`` file per thread profile; returns the
    written file names."""
    os.makedirs(directory, exist_ok=True)
    written: list[str] = []
    for (node, context, thread), prof in sorted(profiler.profiles.items()):
        name = profile_file_name(node, context, thread)
        path = os.path.join(directory, name)
        with open(path, "w") as f:
            f.write(render_profile(prof))
        written.append(name)
    return written


def render_profile(prof: ThreadProfile) -> str:
    """Render one thread profile in TAU's file format.

    Uses the snapshot-at-``now`` view, so timers still running when the
    profile is written (a program exiting inside ``main``) contribute
    their time instead of silently reporting zero."""
    timers = prof.snapshot_timers()
    lines = [f"{len(timers)} templated_functions"]
    lines.append("# Name Calls Subrs Excl Incl ProfileCalls")
    for t in timers.values():
        quoted = t.name.replace("\\", "\\\\").replace('"', '\\"')
        lines.append(
            f'"{quoted}" {t.calls:.0f} {t.subrs:.0f} {t.exclusive:.6g} '
            f'{t.inclusive:.6g} 0 GROUP="{t.group}"'
        )
    lines.append("0 aggregates")
    return "\n".join(lines) + "\n"


def read_profiles(directory: str) -> Profiler:
    """Load every ``profile.n.c.t`` file in ``directory``."""
    profiler = Profiler()
    for entry in sorted(os.listdir(directory)):
        m = _FILE_RE.match(entry)
        if m is None:
            continue
        node, context, thread = (int(g) for g in m.groups())
        with open(os.path.join(directory, entry)) as f:
            _parse_into(profiler.profile(node, context, thread), f.read(), entry)
    return profiler


def _parse_into(prof: ThreadProfile, text: str, source: str) -> None:
    lines = text.splitlines()
    if not lines:
        raise ValueError(f"{source}: empty profile file")
    head = _HEADER_RE.match(lines[0])
    if head is None:
        raise ValueError(f"{source}: malformed header {lines[0]!r}")
    expected = int(head.group(1))
    seen = 0
    total = 0.0
    for line in lines[1:]:
        if line.startswith("#") or not line.strip():
            continue
        if line.strip().endswith("aggregates"):
            break
        m = _ROW_RE.match(line)
        if m is None:
            raise ValueError(f"{source}: malformed row {line!r}")
        name = m.group("name").replace('\\"', '"').replace("\\\\", "\\")
        t = prof.timer(name, m.group("group"))
        t.calls = int(m.group("calls"))
        t.subrs = int(m.group("subrs"))
        t.exclusive = float(m.group("excl"))
        t.inclusive = float(m.group("incl"))
        total = max(total, t.inclusive)
        seen += 1
    if seen != expected:
        raise ValueError(f"{source}: header says {expected} timers, found {seen}")
    # restore the elapsed clock from the deepest inclusive time
    prof.advance(total)
