"""Call-graph execution simulator — "running" the instrumented program.

The paper ran TAU-instrumented binaries on real hardware; offline, this
simulator interprets the PDB's static call graph under a
:class:`WorkloadSpec` (per-call-site trip counts + a cost model) and
drives the real TAU runtime (:mod:`repro.tau.runtime`).

Two engines produce identical profiles (cross-checked by tests):

* :meth:`ExecutionSimulator.run_traced` — direct recursive
  interpretation, calling ``Profiler.start``/``advance``/``stop`` per
  simulated invocation; also emits trace events.  Cost: proportional to
  the number of simulated calls.
* :meth:`ExecutionSimulator.run` — closed-form evaluation: each
  routine's subtree effect (span, timer deltas) is computed once per
  node and scaled by trip counts.  Cost: proportional to the size of the
  call graph, so million-iteration workloads are instant.

Recursive cycles are cut after one level (the recursive call charges its
own cost but does not recurse further), deterministically in both
engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ductape.items import PdbRoutine
from repro.ductape.pdb import PDB
from repro.tau.machine import CostModel, uniform_model
from repro.tau.runtime import Profiler, ThreadProfile
from repro.tau.selector import InstrumentationPoint
from repro.tau.tracing import TraceBuffer


@dataclass
class WorkloadSpec:
    """What to execute and how much of it.

    ``pair_counts[(caller, callee)]`` gives the number of times each
    static call site from *caller* to *callee* executes per invocation
    of the caller (think loop trip count); ``callee_counts`` is the
    per-callee fallback; unlisted sites run once.  Names are routine
    full names (``Stack<int>::push``)."""

    entry: str = "main"
    nodes: int = 1
    cost: CostModel = field(default_factory=uniform_model)
    #: (caller full name, call-site file name, call-site line) -> count;
    #: the most precise control (distinguishes multiple sites calling the
    #: same callee, e.g. CG's initial matvec vs the loop-body matvec)
    site_counts: dict[tuple[str, str, int], int] = field(default_factory=dict)
    pair_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    callee_counts: dict[str, int] = field(default_factory=dict)
    default_count: int = 1

    def count(
        self, caller: str, callee: str, site: Optional[tuple[str, int]] = None
    ) -> int:
        if site is not None:
            c = self.site_counts.get((caller, site[0], site[1]))
            if c is not None:
                return c
        c = self.pair_counts.get((caller, callee))
        if c is not None:
            return c
        c = self.callee_counts.get(callee)
        if c is not None:
            return c
        return self.default_count


class TauNaming:
    """Timer naming from instrumentation points.

    A routine's timer comes from the instrumentation point that covers
    it — directly, or through the template it was instantiated from.
    Member-function-template points carry ``CT(*this)``: at "run time"
    the object's type (the routine's parent class instantiation) is
    appended, giving the per-instantiation unique names of paper
    Section 4.1.  Routines without a point are untimed (their cost folds
    into the enclosing timer, as with real TAU)."""

    def __init__(self, points: list[InstrumentationPoint]):
        self._by_ref = {}
        self._by_loc = {}
        for p in points:
            self._by_ref[p.item.ref] = p
            self._by_loc[(p.file_name, p.line, p.column)] = p

    def timer_for(self, r: PdbRoutine) -> Optional[str]:
        p = self._by_ref.get(r.ref)
        if p is None:
            te = r.template()
            if te is not None:
                p = self._by_ref.get(te.ref)
        if p is None:
            # instantiations share the point at their source location
            loc = r.location()
            if loc.known:
                p = self._by_loc.get((loc.file().name(), loc.line(), loc.col()))
        if p is None:
            return None
        name = p.timer_name()
        if p.needs_ct:
            parent = r.parentClass()
            ct = parent.name() if parent is not None else "?"
            name = f"{name} [CT = {ct}]"
        return name


def name_all_defined(r: PdbRoutine) -> Optional[str]:
    """Default naming: every routine with a body gets a timer."""
    if not r.bodyBegin().known:
        return None
    sig = r.signature()
    sig_text = f" {sig.name()}" if sig is not None else ""
    return f"{r.fullName()}{sig_text}"


def _site_of(call) -> Optional[tuple[str, int]]:
    loc = call.location()
    if not loc.known:
        return None
    return (loc.file().name(), loc.line())


@dataclass
class _Effect:
    """Closed-form subtree effect of one routine invocation."""

    span: float = 0.0
    timed_top: float = 0.0  # time covered by top-level timers within
    top_starts: int = 0  # top-level timer starts within
    # timer name -> [calls, subrs, inclusive, exclusive]
    deltas: dict[str, list[float]] = field(default_factory=dict)


class ExecutionSimulator:
    """Interprets a PDB call graph, producing TAU profiles (and traces)."""

    def __init__(
        self,
        pdb: PDB,
        spec: WorkloadSpec,
        namer: Optional[Callable[[PdbRoutine], Optional[str]]] = None,
        group: str = "TAU_DEFAULT",
    ):
        self.pdb = pdb
        self.spec = spec
        self.namer = namer or name_all_defined
        self.group = group
        self._entry = pdb.findRoutine(spec.entry)
        if self._entry is None:
            raise ValueError(f"entry routine {spec.entry!r} not found in PDB")
        self._names: dict = {}
        self._groups: dict[str, str] = {}

    def _timer(self, r: PdbRoutine) -> Optional[str]:
        if r.ref not in self._names:
            named = self.namer(r)
            if isinstance(named, tuple):
                # namer may return (timer name, profile group)
                name, group = named
                self._groups[name] = group
                named = name
            self._names[r.ref] = named
        return self._names[r.ref]

    def _group(self, timer: Optional[str]) -> str:
        if timer is None:
            return self.group
        return self._groups.get(timer, self.group)

    # -- traced engine --------------------------------------------------------

    def run_traced(
        self,
        tracer: Optional[TraceBuffer] = None,
        max_events: int = 2_000_000,
        callpath_depth: int = 1,
    ) -> Profiler:
        """Direct interpretation.  ``callpath_depth > 1`` enables TAU's
        callpath profiling: timers are named by the trailing window of
        the timer stack (``main => solve => dot``), so the same routine
        reached through different paths accumulates separately."""
        if callpath_depth < 1:
            raise ValueError("callpath_depth must be >= 1")
        profiler = Profiler()
        for node in range(self.spec.nodes):
            prof = profiler.profile(node=node)
            budget = [max_events]
            self._exec(
                self._entry, node, prof, tracer, set(), budget, [], callpath_depth
            )
            # end-of-run snapshot: anything still on the stack (e.g. a
            # simulated program that never returns from main) is stopped
            # at the final clock so its time is not lost
            prof.stop_all()
        return profiler

    def _exec(
        self,
        r: PdbRoutine,
        node: int,
        prof: ThreadProfile,
        tracer: Optional[TraceBuffer],
        active: set,
        budget: list[int],
        path: list[str],
        depth: int,
    ) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        base = self._timer(r)
        timer = base
        if base is not None and depth > 1:
            window = (path + [base])[-depth:]
            timer = " => ".join(window)
        if timer is not None:
            prof.start(timer, self._group(base))
            if tracer is not None:
                tracer.enter(node, timer, prof.now)
            path.append(base)  # type: ignore[arg-type]
        prof.advance(self.spec.cost.cost(r.fullName(), node))
        if r.ref not in active:
            active.add(r.ref)
            try:
                for call in r.callees():
                    callee = call.call()
                    if callee is None:
                        continue
                    n = self.spec.count(
                        r.fullName(), callee.fullName(), _site_of(call)
                    )
                    for _ in range(n):
                        if budget[0] <= 0:
                            break
                        self._exec(
                            callee, node, prof, tracer, active, budget, path, depth
                        )
            finally:
                active.discard(r.ref)
        if timer is not None:
            path.pop()
            prof.stop(timer)
            if tracer is not None:
                tracer.exit(node, timer, prof.now)

    # -- closed-form engine -------------------------------------------------------

    def run(self) -> Profiler:
        profiler = Profiler()
        for node in range(self.spec.nodes):
            memo: dict = {}
            effect = self._effect(self._entry, node, memo, frozenset())
            prof = profiler.profile(node=node)
            prof.advance(effect.span)
            for name, (calls, subrs, incl, excl) in effect.deltas.items():
                t = prof.timer(name, self._group(name))
                t.calls += int(calls)
                t.subrs += int(subrs)
                t.inclusive += incl
                t.exclusive += excl
            prof.check_consistency()
        return profiler

    def _effect(self, r: PdbRoutine, node: int, memo: dict, active: frozenset) -> _Effect:
        e, _cut = self._effect_cut(r, node, memo, active)
        return e

    def _effect_cut(
        self, r: PdbRoutine, node: int, memo: dict, active: frozenset
    ) -> tuple[_Effect, bool]:
        """Returns (effect, cut): ``cut`` marks that a recursion cut
        happened within, in which case the effect depends on ``active``
        and must not be memoised."""
        key = r.ref
        cached = memo.get(key)
        if cached is not None:
            return cached, False
        cost = self.spec.cost.cost(r.fullName(), node)
        timer = self._timer(r)
        if key in active:
            # recursion cut: own cost only, no further descent.  The
            # re-activation is nested inside the same timer, so it
            # contributes calls and exclusive time but no inclusive time
            # (matching the runtime's outermost-activation rule).
            e = _Effect(span=cost)
            if timer is not None:
                e.timed_top = cost
                e.top_starts = 1
                e.deltas[timer] = [1, 0, 0, cost]
            return e, True
        child_span = 0.0
        child_timed = 0.0
        child_starts = 0
        any_cut = False
        deltas: dict[str, list[float]] = {}
        for call in r.callees():
            callee = call.call()
            if callee is None:
                continue
            n = self.spec.count(r.fullName(), callee.fullName(), _site_of(call))
            if n <= 0:
                continue
            ce, cut = self._effect_cut(callee, node, memo, active | {key})
            any_cut = any_cut or cut
            child_span += n * ce.span
            child_timed += n * ce.timed_top
            child_starts += n * ce.top_starts
            for name, d in ce.deltas.items():
                acc = deltas.setdefault(name, [0, 0, 0.0, 0.0])
                acc[0] += n * d[0]
                acc[1] += n * d[1]
                acc[2] += n * d[2]
                acc[3] += n * d[3]
        span = cost + child_span
        e = _Effect(span=span, deltas=deltas)
        if timer is not None:
            own = deltas.setdefault(timer, [0, 0, 0.0, 0.0])
            own[0] += 1
            own[1] += child_starts
            own[2] += span
            own[3] += span - child_timed
            e.timed_top = span
            e.top_starts = 1
        else:
            e.timed_top = child_timed
            e.top_starts = child_starts
        if not any_cut:
            memo[key] = e
        return e, any_cut
