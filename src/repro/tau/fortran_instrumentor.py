"""TAU instrumentation of Fortran 90 source — the paper's Section 6
requirement, implemented.

"TAU must know the locations of Fortran routine entry and exit points
to insert profiling instrumentation."  The Fortran front end records
both in the PDB (``rfexec`` / ``rexit``); this instrumentor rewrites
the source in TAU's Fortran style::

    subroutine heat_step(g, dt)
       ...declarations...
       integer, dimension(2) :: tau_profiler = (/ 0, 0 /)   ! added
       call TAU_PROFILE_TIMER(tau_profiler, 'heat_mod::heat_step')  ! entry
       call TAU_PROFILE_START(tau_profiler)
       ...
       call TAU_PROFILE_STOP(tau_profiler)                  ! before return
       return
       ...
       call TAU_PROFILE_STOP(tau_profiler)                  ! before end
    end subroutine heat_step
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ductape.pdb import PDB

PROFILER_DECL = "integer, dimension(2) :: tau_profiler = (/ 0, 0 /)"


@dataclass
class FortranInstrumented:
    """Rewriting result for one Fortran file."""

    file_name: str
    original: str
    text: str
    routines_instrumented: list[str] = field(default_factory=list)


def instrument_fortran_file(file_name: str, text: str, pdb: PDB) -> FortranInstrumented:
    """Insert TAU entry/exit instrumentation into one Fortran file."""
    lines = text.splitlines()
    #: line -> list of (indent-source-line, text) inserted *before* it
    before: dict[int, list[str]] = {}
    instrumented: list[str] = []
    for r in pdb.getRoutineVec():
        if r.linkage() != "fortran":
            continue
        loc = r.location()
        if not loc.known or loc.file().name() != file_name:
            continue
        entry = r.raw.get_location("rfexec")
        exits = [r.raw.get_location("rexit")] if r.raw.get("rexit") else []
        exits = []
        for a in r.raw.get_all("rexit"):
            if len(a.words) >= 3 and a.words[0] != "NULL":
                exits.append(int(a.words[1]))
        if entry is None or entry.file is None:
            continue
        timer = r.fullName()
        before.setdefault(entry.line, []).extend(
            [
                PROFILER_DECL,
                f"call TAU_PROFILE_TIMER(tau_profiler, '{timer}')",
                "call TAU_PROFILE_START(tau_profiler)",
            ]
        )
        for line_no in exits:
            before.setdefault(line_no, []).append(
                "call TAU_PROFILE_STOP(tau_profiler)"
            )
        instrumented.append(timer)
    out: list[str] = []
    for i, line in enumerate(lines, start=1):
        if i in before:
            indent = " " * (len(line) - len(line.lstrip()))
            out.extend(indent + ins for ins in before[i])
        out.append(line)
    return FortranInstrumented(
        file_name=file_name,
        original=text,
        text="\n".join(out) + ("\n" if text.endswith("\n") else ""),
        routines_instrumented=instrumented,
    )


def instrument_fortran_sources(
    pdb: PDB, sources: dict[str, str]
) -> dict[str, FortranInstrumented]:
    """Rewrite every Fortran source file known to the PDB."""
    return {
        name: instrument_fortran_file(name, text, pdb)
        for name, text in sources.items()
    }
