"""Cost model for the execution simulator.

The paper measured TAU-instrumented POOMA on real ACL hardware; offline
we substitute a deterministic cost model (see DESIGN.md): every executed
routine charges a base cost plus per-pattern work, and per-node skew
models load imbalance so multi-node mean profiles are non-degenerate.
Profile *shape* (who dominates, by what factor) is a function of the
call structure and these weights — both explicit and documented here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class CostRule:
    """``pattern`` (regex, matched against the routine's full name) ->
    exclusive cycles charged per invocation."""

    pattern: str
    cycles: float
    _rx: re.Pattern = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rx = re.compile(self.pattern)

    def matches(self, name: str) -> bool:
        return self._rx.search(name) is not None


@dataclass
class CostModel:
    """Per-routine exclusive cost: first matching rule wins."""

    rules: list[CostRule] = field(default_factory=list)
    default_cycles: float = 10.0
    #: multiplicative skew per node (len = node count; 1.0 = no skew)
    node_skew: list[float] = field(default_factory=lambda: [1.0])

    def add(self, pattern: str, cycles: float) -> "CostModel":
        self.rules.append(CostRule(pattern, cycles))
        return self

    def cost(self, routine_name: str, node: int = 0) -> float:
        base = self.default_cycles
        for rule in self.rules:
            if rule.matches(routine_name):
                base = rule.cycles
                break
        skew = self.node_skew[node % len(self.node_skew)] if self.node_skew else 1.0
        return base * skew


def uniform_model(cycles: float = 10.0, nodes: int = 1) -> CostModel:
    """Every routine costs the same — the null model for tests."""
    return CostModel(default_cycles=cycles, node_skew=[1.0] * max(1, nodes))


def linear_skew(nodes: int, spread: float = 0.2) -> list[float]:
    """Deterministic per-node skew factors in [1-spread/2, 1+spread/2]."""
    if nodes <= 1:
        return [1.0]
    return [1.0 - spread / 2 + spread * i / (nodes - 1) for i in range(nodes)]
