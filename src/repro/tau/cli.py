"""tau-instr — instrument C++ sources using PDT, run the simulator,
and display profiles (the TAU workflow of paper Section 4.1)."""

from __future__ import annotations

import argparse
import os
from typing import Optional

from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.tau.instrumentor import TAU_H, instrument_sources
from repro.tau.profile import format_mean_profile, format_profile
from repro.tau.selector import select_instrumentation
from repro.tau.simulate import ExecutionSimulator, TauNaming, WorkloadSpec


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="tau-instr",
        description="TAU automatic source instrumentation via PDT",
    )
    ap.add_argument("source", help="translation unit to instrument")
    ap.add_argument("-I", dest="include_paths", action="append", default=[])
    ap.add_argument("-o", "--outdir", default="tau-out", help="rewritten sources dir")
    ap.add_argument("--run", action="store_true", help="simulate execution and profile")
    ap.add_argument("--nodes", type=int, default=1, help="simulated node count")
    ap.add_argument("--entry", default="main", help="entry routine")
    ap.add_argument(
        "--select", help="TAU selective instrumentation file (BEGIN_EXCLUDE_LIST ...)"
    )
    args = ap.parse_args(argv)

    rules = None
    if args.select:
        from repro.tau.selectfile import SelectiveRules

        with open(args.select) as fh:
            rules = SelectiveRules.parse(fh.read())

    fe = Frontend(FrontendOptions(include_paths=args.include_paths))
    tree = fe.compile(args.source)
    pdb = PDB(analyze(tree))
    sources = {
        f.name: f.text for f in tree.files if not f.name.startswith("<")
    }
    if rules is not None:
        from repro.tau.instrumentor import instrument_file

        results = {}
        for name, text in sources.items():
            pts = rules.apply(select_instrumentation(pdb, file=name))
            results[name] = instrument_file(name, text, pts)
    else:
        results = instrument_sources(pdb, sources)
    os.makedirs(args.outdir, exist_ok=True)
    with open(os.path.join(args.outdir, "TAU.h"), "w") as fh:
        fh.write(TAU_H)
    n_macros = 0
    for name, res in results.items():
        out_path = os.path.join(args.outdir, os.path.basename(name))
        with open(out_path, "w") as fh:
            fh.write(res.text)
        n_macros += len(res.insertions)
    print(f"{args.outdir}: {len(results)} files rewritten, {n_macros} timers inserted")
    if args.run:
        points = select_instrumentation(pdb)
        if rules is not None:
            points = rules.apply(points)
        spec = WorkloadSpec(entry=args.entry, nodes=args.nodes)
        sim = ExecutionSimulator(pdb, spec, namer=TauNaming(points).timer_for)
        profiler = sim.run()
        if args.nodes > 1:
            print(format_mean_profile(profiler))
        print(format_profile(profiler, node=0))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
