"""TAU selective-instrumentation files.

Real-world TAU drives the PDT-based instrumentor with a *select file*
restricting what gets instrumented::

    BEGIN_EXCLUDE_LIST
    vector#
    # comment: '#' inside a name is TAU's wildcard
    ostream::operator<<#
    END_EXCLUDE_LIST

    BEGIN_FILE_INCLUDE_LIST
    StackAr.cpp
    *.h
    END_FILE_INCLUDE_LIST

Supported sections: ``BEGIN_EXCLUDE_LIST``/``END_EXCLUDE_LIST``,
``BEGIN_INCLUDE_LIST``/``END_INCLUDE_LIST`` (routine name patterns with
``#`` as the multi-character wildcard), and
``BEGIN_FILE_INCLUDE_LIST``/``BEGIN_FILE_EXCLUDE_LIST`` (file patterns
with ``*``/``?`` globs).  Include lists, when present, are exhaustive;
exclude lists prune.  Lines starting with ``#`` outside a name are
comments when the ``#`` is the first character and the line is not a
pattern continuation — TAU's actual rule; here: a line whose first
non-blank char is ``#`` AND which contains a space is a comment.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field

from repro.tau.selector import InstrumentationPoint


@dataclass
class SelectiveRules:
    """Parsed select-file rules."""

    exclude: list[str] = field(default_factory=list)
    include: list[str] = field(default_factory=list)
    file_include: list[str] = field(default_factory=list)
    file_exclude: list[str] = field(default_factory=list)

    # -- parsing ----------------------------------------------------------

    _SECTIONS = {
        "BEGIN_EXCLUDE_LIST": ("END_EXCLUDE_LIST", "exclude"),
        "BEGIN_INCLUDE_LIST": ("END_INCLUDE_LIST", "include"),
        "BEGIN_FILE_INCLUDE_LIST": ("END_FILE_INCLUDE_LIST", "file_include"),
        "BEGIN_FILE_EXCLUDE_LIST": ("END_FILE_EXCLUDE_LIST", "file_exclude"),
    }

    @classmethod
    def parse(cls, text: str) -> "SelectiveRules":
        rules = cls()
        current_end: str | None = None
        current_attr: str | None = None
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#") and " " in line:
                continue  # comment line
            if current_end is None:
                section = cls._SECTIONS.get(line)
                if section is None:
                    raise ValueError(
                        f"select file line {line_no}: expected a BEGIN_* section, got {line!r}"
                    )
                current_end, current_attr = section
                continue
            if line == current_end:
                current_end = current_attr = None
                continue
            getattr(rules, current_attr).append(line)
        if current_end is not None:
            raise ValueError(f"select file: missing {current_end}")
        return rules

    # -- matching -----------------------------------------------------------

    @staticmethod
    def _name_matches(pattern: str, name: str) -> bool:
        """TAU name patterns: ``#`` is a multi-character wildcard."""
        rx = "".join(".*" if ch == "#" else re.escape(ch) for ch in pattern)
        return re.fullmatch(rx, name) is not None

    def allows_file(self, file_name: str) -> bool:
        base = file_name.rsplit("/", 1)[-1]
        if self.file_include:
            if not any(
                fnmatch.fnmatch(file_name, p) or fnmatch.fnmatch(base, p)
                for p in self.file_include
            ):
                return False
        return not any(
            fnmatch.fnmatch(file_name, p) or fnmatch.fnmatch(base, p)
            for p in self.file_exclude
        )

    def allows_routine(self, timer_name: str) -> bool:
        if self.include:
            if not any(self._name_matches(p, timer_name) for p in self.include):
                return False
        return not any(self._name_matches(p, timer_name) for p in self.exclude)

    def apply(self, points: list[InstrumentationPoint]) -> list[InstrumentationPoint]:
        """Filter an instrumentation-point list through the rules."""
        out = []
        for p in points:
            if not self.allows_file(p.file_name):
                continue
            if not self.allows_routine(p.timer_name()):
                continue
            out.append(p)
        return out


def throttle(
    stats: dict,
    calls_threshold: int = 100_000,
    percall_threshold_usec: float = 10.0,
) -> tuple[dict, list[str]]:
    """TAU's runtime throttling rule (TAU_THROTTLE), applied post hoc:
    timers with more than ``calls_threshold`` calls *and* less than
    ``percall_threshold_usec`` inclusive time per call are dropped from
    the profile (their time stays in their parents' exclusive, which is
    where the runtime would have left it).

    Returns (kept timers, names of throttled timers)."""
    kept: dict = {}
    throttled: list[str] = []
    for name, t in stats.items():
        if t.calls > calls_threshold and t.inclusive_per_call < percall_threshold_usec:
            throttled.append(name)
        else:
            kept[name] = t
    return kept, throttled
