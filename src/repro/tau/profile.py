"""Profile displays — the pprof-style text analog of paper Figure 7.

Figure 7 shows TAU displays of "time spent in POOMA's Krylov Solver
routines", mean over nodes and per node.  We render the classic pprof
table::

    ---------------------------------------------------------------
    %Time    Exclusive    Inclusive   #Call   #Subrs  Incl/Call Name
             msec         total msec
    ---------------------------------------------------------------
     100.0       12           3,210       1       42    3210000 main
    ...

Times are virtual microseconds (the simulator's cycle counter divided
by a nominal clock), so absolute values are meaningless; ordering and
ratios — the profile *shape* — are the reproduction target.
"""

from __future__ import annotations

from typing import Optional

from repro.tau.runtime import Profiler, TimerStats

#: nominal "clock": virtual cycles per microsecond
CYCLES_PER_USEC = 1.0


def _usec(cycles: float) -> float:
    return cycles / CYCLES_PER_USEC


def _fmt_msec(usec: float) -> str:
    msec = usec / 1000.0
    if msec >= 1000:
        return f"{msec:,.0f}"
    if msec >= 1:
        return f"{msec:.3g}"
    return f"{msec:.3g}"


def format_stats_table(
    stats: dict[str, TimerStats],
    total: Optional[float] = None,
    title: str = "",
    top: Optional[int] = None,
) -> str:
    """One pprof-style table, sorted by exclusive time descending."""
    rows = sorted(stats.values(), key=lambda t: -t.exclusive)
    if top is not None:
        rows = rows[:top]
    if total is None:
        total = max((t.inclusive for t in stats.values()), default=0.0)
    lines: list[str] = []
    if title:
        lines.append(title)
    bar = "-" * 78
    lines.append(bar)
    lines.append(
        f"{'%Time':>6} {'Exclusive':>12} {'Inclusive':>12} "
        f"{'#Call':>8} {'#Subrs':>8} {'Incl/Call':>10}  Name"
    )
    lines.append(
        f"{'':>6} {'msec':>12} {'total msec':>12} {'':>8} {'':>8} {'usec':>10}"
    )
    lines.append(bar)
    for t in rows:
        pct = 100.0 * t.inclusive / total if total else 0.0
        # mean views carry fractional calls (TAU's mean display); ``g``
        # renders 0.5 as 0.5 and integral counts without a trailing .0
        lines.append(
            f"{pct:>6.1f} {_fmt_msec(_usec(t.exclusive)):>12} "
            f"{_fmt_msec(_usec(t.inclusive)):>12} "
            f"{t.calls:>8g} {t.subrs:>8g} "
            f"{_usec(t.inclusive_per_call):>10.0f}  {t.name}"
        )
    lines.append(bar)
    return "\n".join(lines)


def format_profile(profiler: Profiler, node: int = 0, top: Optional[int] = None) -> str:
    """Per-node profile display (``NODE 0;CONTEXT 0;THREAD 0:``)."""
    prof = profiler.profile(node=node)
    title = f"NODE {node};CONTEXT 0;THREAD 0:"
    return format_stats_table(prof.timers, total=prof.total_time(), title=title, top=top)


def format_mean_profile(profiler: Profiler, top: Optional[int] = None) -> str:
    """Mean-over-nodes display — what paper Figure 7 shows."""
    stats = profiler.mean_stats()
    n = len(profiler.profiles)
    total = (
        sum(p.total_time() for p in profiler.profiles.values()) / n if n else 0.0
    )
    return format_stats_table(stats, total=total, title=f"FUNCTION SUMMARY (mean over {n} nodes):", top=top)


def format_total_profile(profiler: Profiler, top: Optional[int] = None) -> str:
    """Sum-over-nodes display (TAU's "total" view)."""
    stats = profiler.total_stats()
    total = sum(p.total_time() for p in profiler.profiles.values())
    return format_stats_table(stats, total=total, title="FUNCTION SUMMARY (total):", top=top)


def format_bars(
    profiler: Profiler,
    node: Optional[int] = None,
    metric: str = "exclusive",
    width: int = 50,
    top: Optional[int] = 15,
) -> str:
    """Racy/paraprof-style horizontal bar display — the graphical form
    of paper Figure 7, rendered in text.

    ``node=None`` shows the mean profile; ``metric`` is ``exclusive`` or
    ``inclusive``."""
    if node is None:
        stats = profiler.mean_stats()
        title = f"mean over {len(profiler.profiles)} node(s), {metric} time"
    else:
        stats = dict(profiler.profile(node=node).timers)
        title = f"node {node}, {metric} time"
    rows = sorted(stats.values(), key=lambda t: -getattr(t, metric))
    if top is not None:
        rows = rows[:top]
    peak = max((getattr(t, metric) for t in rows), default=0.0)
    lines = [title, "-" * (width + 30)]
    for t in rows:
        value = getattr(t, metric)
        n = int(round(width * value / peak)) if peak else 0
        bar = "#" * max(n, 1 if value > 0 else 0)
        lines.append(f"{_fmt_msec(_usec(value)):>10} msec |{bar:<{width}}| {t.name}")
    return "\n".join(lines)


def format_callgraph(profiler: Profiler, node: int = 0) -> str:
    """pprof's callgraph view, reconstructed from callpath timers.

    Requires a profile produced with ``run_traced(callpath_depth=2)``:
    each ``parent => child`` timer contributes an edge; per parent we
    show how its children's inclusive time divides up."""
    prof = profiler.profile(node=node)
    edges: dict[str, list[tuple[str, "TimerStats"]]] = {}
    flat: dict[str, float] = {}
    for name, t in prof.timers.items():
        if " => " in name:
            parent, child = name.rsplit(" => ", 1)
            parent = parent.rsplit(" => ", 1)[-1]
            edges.setdefault(parent, []).append((child, t))
        else:
            flat[name] = t.inclusive
    if not edges:
        raise ValueError(
            "no callpath timers found — produce the profile with "
            "run_traced(callpath_depth=2) or deeper"
        )
    lines: list[str] = [f"CALLGRAPH (node {node}):"]
    for parent in sorted(edges, key=lambda p: -sum(t.inclusive for _, t in edges[p])):
        children = sorted(edges[parent], key=lambda x: -x[1].inclusive)
        total = sum(t.inclusive for _, t in children)
        lines.append(f"{parent}")
        for child, t in children:
            pct = 100.0 * t.inclusive / total if total else 0.0
            lines.append(
                f"    {pct:5.1f}%  {_fmt_msec(_usec(t.inclusive)):>10} msec  "
                f"{t.calls:>6} calls  {child}"
            )
    return "\n".join(lines)


def exclusive_ranking(profiler: Profiler) -> list[tuple[str, float]]:
    """(timer, mean exclusive) pairs, descending — bench assertions use
    this to check the profile shape without string parsing."""
    stats = profiler.mean_stats()
    return sorted(((t.name, t.exclusive) for t in stats.values()), key=lambda x: -x[1])
