"""The TAU instrumentor: source rewriting with TAU measurement macros.

"The TAU instrumentor iterates through the PDB descriptions of functions
and templates to rewrite the original source file, annotating the
functions with TAU measurement macros.  The translated source code can
subsequently be compiled and linked with the TAU library."

Rewriting inserts, right after the opening brace of each selected
entity's body::

    TAU_PROFILE("vector::vector()", CT(*this), TAU_USER);

with ``CT(*this)`` only for member-function templates (paper Figure 6 /
Section 4.1).  Each rewritten file gets ``#include <TAU.h>`` prepended;
:data:`TAU_H` supplies a parseable no-op definition of the macros so the
translated sources re-compile through the front end (bench E5 verifies
this round trip).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ductape.items import PdbRoutine, PdbTemplate
from repro.ductape.pdb import PDB
from repro.tau.selector import InstrumentationPoint, select_instrumentation

#: the TAU measurement API header (no-op expansion for re-compilation)
TAU_H = """\
#ifndef TAU_H
#define TAU_H

#define TAU_DEFAULT 0
#define TAU_USER 1
#define TAU_PROFILE(name, type, group)
#define TAU_PROFILE_TIMER(var, name, type, group)
#define TAU_PROFILE_START(var)
#define TAU_PROFILE_STOP(var)
#define CT(obj) ""

#endif
"""


@dataclass
class Insertion:
    """One macro insertion: position + the inserted text."""

    line: int
    column: int
    text: str
    timer_name: str


@dataclass
class InstrumentedSource:
    """The rewriting result for one source file."""

    file_name: str
    original: str
    text: str
    insertions: list[Insertion] = field(default_factory=list)


def instrument_sources(
    pdb: PDB, sources: dict[str, str], profile_group: str = "TAU_USER"
) -> dict[str, InstrumentedSource]:
    """Rewrite every file in ``sources`` that contains instrumentable
    entities; files without any come back unchanged (minus the TAU.h
    include).  Returns a map file name -> result."""
    out: dict[str, InstrumentedSource] = {}
    for file_name, text in sources.items():
        points = select_instrumentation(pdb, file=file_name)
        out[file_name] = instrument_file(file_name, text, points, profile_group)
    return out


def instrument_file(
    file_name: str,
    text: str,
    points: list[InstrumentationPoint],
    profile_group: str = "TAU_USER",
) -> InstrumentedSource:
    """Apply the instrumentation points that target ``file_name``."""
    insertions: list[Insertion] = []
    for p in points:
        if p.file_name != file_name:
            continue
        body = _body_begin(p)
        if body is None:
            continue
        brace = _find_open_brace(text, body[0], body[1])
        if brace is None:
            continue
        macro = (
            f' TAU_PROFILE("{p.timer_name()}", {p.type_argument()}, {profile_group});'
        )
        insertions.append(Insertion(brace[0], brace[1], macro, p.timer_name()))
    new_text = _apply_insertions(text, insertions)
    if insertions:
        new_text = '#include "TAU.h"\n' + new_text
    return InstrumentedSource(
        file_name=file_name, original=text, text=new_text, insertions=insertions
    )


def _body_begin(p: InstrumentationPoint):
    item = p.item
    if isinstance(item, (PdbRoutine, PdbTemplate)):
        loc = item.bodyBegin()
        if loc.known or loc.line():
            return (loc.line(), loc.col())
    return None


def _find_open_brace(text: str, line: int, col: int):
    """First ``{`` at or after (line, col); returns its (line, col) or
    None.  Needed because a constructor's body extent begins at the
    initialiser-list ``:``."""
    lines = text.splitlines()
    if not (1 <= line <= len(lines)):
        return None
    idx = lines[line - 1].find("{", max(0, col - 1))
    if idx >= 0:
        return (line, idx + 1)
    for ln in range(line + 1, len(lines) + 1):
        idx = lines[ln - 1].find("{")
        if idx >= 0:
            return (ln, idx + 1)
    return None


def _apply_insertions(text: str, insertions: list[Insertion]) -> str:
    """Insert macro texts right after their braces, last position first
    so earlier coordinates stay valid."""
    lines = text.splitlines(keepends=True)
    for ins in sorted(insertions, key=lambda i: (i.line, i.column), reverse=True):
        if not (1 <= ins.line <= len(lines)):
            continue
        s = lines[ins.line - 1]
        cut = ins.column  # column is 1-based and points at "{"
        lines[ins.line - 1] = s[:cut] + ins.text + s[cut:]
    return "".join(lines)
