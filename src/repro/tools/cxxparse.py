"""cxxparse — the front-end driver: C++ sources -> PDB file.

In the real PDT distribution this is the EDG front end invoked with the
used-instantiation option, piped into the IL Analyzer.  Here it routes
through the shared :mod:`repro.tools.pdbbuild` driver with one worker
and no cache, so compiling N sources still means N separate
compilations ``pdbmerge``d into one database (the PDT build workflow) —
``pdbbuild`` is the same pipeline run parallel and incremental."""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.tools.pdbbuild import (
    BuildOptions,
    TUCompileError,
    add_mode_arguments,
    add_recovery_arguments,
    build,
    parse_passes,
)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="cxxparse", description="compile C++ sources into a PDB file"
    )
    ap.add_argument(
        "source",
        nargs="+",
        help="translation unit(s); multiple TUs are compiled separately "
        "and pdbmerge'd into one database (the PDT build workflow)",
    )
    ap.add_argument("-o", "--output", help="output PDB (default: <source>.pdb)")
    ap.add_argument(
        "-I", dest="include_paths", action="append", default=[], help="include path"
    )
    add_mode_arguments(ap)
    add_recovery_arguments(ap)
    ap.add_argument(
        "--passes",
        help="comma-separated analyzer traversals to run (so,te,na,cl,ro,ty,ma) "
        "— §3.1's 'selection of the constructs to be reported'",
    )
    args = ap.parse_args(argv)
    options = BuildOptions(
        include_paths=tuple(args.include_paths),
        instantiation_mode=args.mode,
        passes=parse_passes(ap, args.passes),
        keep_going_errors=args.keep_going_errors,
    )
    try:
        merged, stats = build(args.source, options)
    except TUCompileError as exc:
        for line in exc.diagnostics:
            print(line, file=sys.stderr)
        print(f"cxxparse: error: {exc}", file=sys.stderr)
        return 1
    out = args.output or (args.source[0].rsplit(".", 1)[0] + ".pdb")
    merged.write(out)
    print(f"{out}: {stats.output_items} items")
    if stats.warnings:
        print(f"{stats.warnings} warning(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
