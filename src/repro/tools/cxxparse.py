"""cxxparse — the front-end driver: C++ sources -> PDB file.

In the real PDT distribution this is the EDG front end invoked with the
used-instantiation option, piped into the IL Analyzer.  Here it drives
:class:`repro.cpp.Frontend` and the analyzer."""

from __future__ import annotations

import argparse
from typing import Optional

from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.pdbfmt.writer import write_pdb


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="cxxparse", description="compile C++ sources into a PDB file"
    )
    ap.add_argument(
        "source",
        nargs="+",
        help="translation unit(s); multiple TUs are compiled separately "
        "and pdbmerge'd into one database (the PDT build workflow)",
    )
    ap.add_argument("-o", "--output", help="output PDB (default: <source>.pdb)")
    ap.add_argument(
        "-I", dest="include_paths", action="append", default=[], help="include path"
    )
    ap.add_argument(
        "--tused",
        dest="mode",
        action="store_const",
        const=InstantiationMode.USED,
        default=InstantiationMode.USED,
        help="used-instantiation mode (default; the mode PDT needs)",
    )
    ap.add_argument(
        "--tall",
        dest="mode",
        action="store_const",
        const=InstantiationMode.ALL,
        help="instantiate all members of instantiated templates",
    )
    ap.add_argument(
        "--tauto",
        dest="mode",
        action="store_const",
        const=InstantiationMode.PRELINK,
        help="EDG automatic (prelinker) scheme: instantiations absent from the IL",
    )
    ap.add_argument(
        "--passes",
        help="comma-separated analyzer traversals to run (so,te,na,cl,ro,ty,ma) "
        "— §3.1's 'selection of the constructs to be reported'",
    )
    args = ap.parse_args(argv)
    fe = Frontend(
        FrontendOptions(include_paths=args.include_paths, instantiation_mode=args.mode)
    )
    if args.passes:
        from repro.analyzer.ilanalyzer import DEFAULT_PASSES

        selected = tuple(p.strip() for p in args.passes.split(",") if p.strip())
        unknown = set(selected) - set(DEFAULT_PASSES)
        if unknown:
            ap.error(f"unknown passes: {', '.join(sorted(unknown))}")
        passes = selected
    else:
        passes = None
    warnings = 0
    docs = []
    for source in args.source:
        tree = fe.compile(source)
        docs.append(analyze(tree, passes=passes) if passes else analyze(tree))
        if fe.last_sink is not None:
            warnings += fe.last_sink.warning_count
    if len(docs) == 1:
        doc = docs[0]
    else:
        from repro.ductape.pdb import PDB
        from repro.tools.pdbmerge import merge_pdbs

        merged, _stats = merge_pdbs([PDB(d) for d in docs])
        doc = merged.doc
    out = args.output or (args.source[0].rsplit(".", 1)[0] + ".pdb")
    with open(out, "w") as f:
        f.write(write_pdb(doc))
    print(f"{out}: {len(doc.items)} items")
    if warnings:
        print(f"{warnings} warning(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
