"""pdbhtml — web-based documentation with navigation via HTML links
(paper Table 2).

Generates one page per source file, class, routine, template, and
namespace, plus an index; cross-references (member functions, call
targets, base classes, template provenance) become hyperlinks."""

from __future__ import annotations

import argparse
import html
import os
from typing import Optional

from repro.ductape.items import (
    PdbClass,
    PdbFile,
    PdbItem,
    PdbNamespace,
    PdbRoutine,
    PdbSimpleItem,
    PdbTemplate,
)
from repro.ductape.pdb import PDB

_STYLE = """
body { font-family: sans-serif; margin: 2em; }
h1 { border-bottom: 2px solid #888; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: left; }
.kind { color: #666; font-size: 80%; }
.ferr { color: #a00; }
"""


def _page_name(item: PdbSimpleItem) -> str:
    return f"{item.prefix()}_{item.id()}.html"


def _link(item: Optional[PdbSimpleItem], label: Optional[str] = None) -> str:
    if item is None:
        return "&mdash;"
    text = html.escape(label if label is not None else item.fullName())
    return f'<a href="{_page_name(item)}">{text}</a>'


def _page(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        f"<body><p><a href='index.html'>&laquo; index</a></p>"
        f"<h1>{html.escape(title)}</h1>{body}</body></html>"
    )


def _loc_str(item: PdbItem) -> str:
    return _source_link(item)


def _error_line(e) -> str:
    """One rendered ``ferr`` diagnostic, linking to the source line."""
    loc = e.location()
    text = html.escape(f"{e.severity()}: {e.message()}")
    if loc.known:
        anchor = f"{_page_name(loc.file())}#L{loc.line()}"
        where = html.escape(f"{loc.file().name()}:{loc.line()}:{loc.col()}")
        return f'<a href="{anchor}">{where}</a>: {text}'
    return text


def _file_page(f: PdbFile, source: Optional[str] = None, errors: Optional[list] = None) -> str:
    rows = "".join(
        f"<li>{_link(inc, inc.name())}</li>" for inc in f.includes()
    )
    body = f"<h2>Includes</h2><ul>{rows or '<li>none</li>'}</ul>"
    if errors:
        items = "".join(f"<li class='ferr'>{_error_line(e)}</li>" for e in errors)
        body = (
            f"<h2>Frontend errors</h2><p class='kind'>this file failed to "
            f"compile cleanly; entities below may be incomplete</p>"
            f"<ul>{items}</ul>"
        ) + body
    if source is not None:
        numbered = []
        for n, line in enumerate(source.splitlines(), start=1):
            numbered.append(
                f"<a id='L{n}'></a>{n:>5}  {html.escape(line)}"
            )
        body += "<h2>Source</h2><pre>" + "\n".join(numbered) + "</pre>"
    return _page(f"File {f.name()}", body)


def _source_link(item: PdbItem) -> str:
    """A link to the item's source line on its file page."""
    loc = item.location()
    if not loc.known:
        return "&mdash;"
    return (
        f'<a href="{_page_name(loc.file())}#L{loc.line()}">'
        f"{html.escape(loc.file().name())}:{loc.line()}:{loc.col()}</a>"
    )


def _class_page(c: PdbClass) -> str:
    parts: list[str] = [f"<p class='kind'>{c.kind()} &middot; location {_loc_str(c)}</p>"]
    te = c.template()
    if te is not None:
        parts.append(f"<p>Instantiated from template {_link(te)}</p>")
    if c.isSpecialized():
        parts.append("<p>Explicit specialization (originating template unknown)</p>")
    bases = c.baseClasses()
    if bases:
        rows = "".join(
            f"<tr><td>{acs}</td><td>{'virtual' if virt else ''}</td><td>{_link(b)}</td></tr>"
            for acs, virt, b in bases
        )
        parts.append(f"<h2>Base classes</h2><table>{rows}</table>")
    funcs = c.memberFunctions()
    if funcs:
        rows = "".join(
            f"<tr><td>{_link(r, r.name())}</td><td>{r.access()}</td>"
            f"<td>{html.escape(r.signature().name() if r.signature() else '')}</td></tr>"
            for r in funcs
        )
        parts.append(
            f"<h2>Member functions</h2><table><tr><th>name</th><th>access</th>"
            f"<th>signature</th></tr>{rows}</table>"
        )
    members = c.dataMembers()
    if members:
        rows = "".join(
            f"<tr><td>{html.escape(m.name())}</td><td>{m.access()}</td>"
            f"<td>{m.kind()}</td><td>{_link(m.type())}</td></tr>"
            for m in members
        )
        parts.append(
            f"<h2>Data members</h2><table><tr><th>name</th><th>access</th>"
            f"<th>kind</th><th>type</th></tr>{rows}</table>"
        )
    return _page(f"Class {c.fullName()}", "".join(parts))


def _routine_page(r: PdbRoutine) -> str:
    sig = r.signature()
    parts = [
        f"<p class='kind'>{r.kind()} &middot; {r.access()} &middot; "
        f"{html.escape(sig.name() if sig else '')} &middot; location {_loc_str(r)}</p>"
    ]
    te = r.template()
    if te is not None:
        parts.append(f"<p>Instantiated from template {_link(te)}</p>")
    parent = r.parentClass()
    if parent is not None:
        parts.append(f"<p>Member of {_link(parent)}</p>")
    calls = r.callees()
    if calls:
        rows = "".join(
            f"<tr><td>{_link(c.call())}</td>"
            f"<td>{'virtual' if c.isVirtual() else ''}</td>"
            f"<td>{html.escape(str(c.location()))}</td></tr>"
            for c in calls
        )
        parts.append(f"<h2>Calls</h2><table>{rows}</table>")
    callers = r.callers()
    if callers:
        rows = "".join(f"<li>{_link(c)}</li>" for c in callers)
        parts.append(f"<h2>Called by</h2><ul>{rows}</ul>")
    return _page(f"Routine {r.fullName()}", "".join(parts))


def _template_page(t: PdbTemplate) -> str:
    body = (
        f"<p class='kind'>{t.kind()} template &middot; location {_loc_str(t)}</p>"
        f"<h2>Definition</h2><pre>{html.escape(t.text())}</pre>"
    )
    return _page(f"Template {t.fullName()}", body)


def _type_page(t) -> str:
    rows = []
    for attr in t.raw.attributes:
        value = attr.text if attr.text is not None else " ".join(attr.words)
        rows.append(f"<tr><td>{html.escape(attr.key)}</td><td>{html.escape(value)}</td></tr>")
    body = f"<p class='kind'>{t.kind()}</p><table>{''.join(rows)}</table>"
    return _page(f"Type {t.name()}", body)


def _namespace_page(n: PdbNamespace) -> str:
    rows = "".join(
        f"<li><span class='kind'>{m.prefix()}</span> {_link(m)}</li>" for m in n.members()
    )
    return _page(f"Namespace {n.fullName()}", f"<ul>{rows or '<li>empty</li>'}</ul>")


def _index_page(pdb: PDB) -> str:
    sections = [
        ("Source files", pdb.getFileVec()),
        ("Namespaces", pdb.getNamespaceVec()),
        ("Templates", pdb.getTemplateVec()),
        ("Classes", pdb.getClassVec()),
        ("Routines", pdb.getRoutineVec()),
    ]
    parts = []
    errors = pdb.getErrorVec()
    if errors:
        rows = "".join(
            f"<li class='ferr'>{html.escape(e.name())}: {_error_line(e)}</li>"
            for e in errors
        )
        parts.append(f"<h2>Frontend diagnostics</h2><ul>{rows}</ul>")
    for title, items in sections:
        if not items:
            continue
        rows = "".join(f"<li>{_link(i)}</li>" for i in items)
        parts.append(f"<h2>{title}</h2><ul>{rows}</ul>")
    return _page("Program database", "".join(parts))


def generate_html(
    pdb: PDB, out_dir: str, sources: Optional[dict[str, str]] = None
) -> list[str]:
    """Generate the documentation tree; returns the written file names.

    ``sources`` (file name -> text) enables annotated source pages with
    per-line anchors, so every item location links into the code —
    Table 2's "navigation of code via HTML links"."""
    os.makedirs(out_dir, exist_ok=True)
    written: list[str] = []

    def emit(name: str, content: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as f:
            f.write(content)
        written.append(name)

    emit("index.html", _index_page(pdb))
    for f in pdb.getFileVec():
        text = (sources or {}).get(f.name())
        emit(_page_name(f), _file_page(f, text, errors=pdb.errors_of(f)))
    for c in pdb.getClassVec():
        emit(_page_name(c), _class_page(c))
    for r in pdb.getRoutineVec():
        emit(_page_name(r), _routine_page(r))
    for t in pdb.getTemplateVec():
        emit(_page_name(t), _template_page(t))
    for n in pdb.getNamespaceVec():
        emit(_page_name(n), _namespace_page(n))
    for ty in pdb.getTypeVec():
        emit(_page_name(ty), _type_page(ty))
    return written


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbhtml", description="generate web-based documentation from a PDB"
    )
    ap.add_argument("pdb", help="input PDB file")
    ap.add_argument("-o", "--output", default="pdbhtml-out", help="output directory")
    ap.add_argument(
        "-s",
        "--source-dir",
        help="directory to read referenced source files from (enables "
        "annotated source pages with line anchors)",
    )
    args = ap.parse_args(argv)
    pdb = PDB.read(args.pdb)
    sources: Optional[dict[str, str]] = None
    if args.source_dir:
        sources = {}
        for f in pdb.getFileVec():
            base = f.name().rsplit("/", 1)[-1]
            path = os.path.join(args.source_dir, base)
            if os.path.isfile(path):
                with open(path) as fh:
                    sources[f.name()] = fh.read()
    written = generate_html(pdb, args.output, sources=sources)
    print(f"{args.output}: {len(written)} pages")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
