"""pdbcheck — whole-program static-analysis checks over PDB files.

Runs the :mod:`repro.check` pass suite (dead code, template bloat,
cross-TU ODR, hierarchy lints, include lints) over one PDB, or over the
merge of several (so cross-TU checks see the whole program), and
reports as human text, JSON (``pdbcheck-findings/1``), or SARIF 2.1.0.

Exit codes: 0 — clean (or findings below ``--fail-on``); 1 — findings
at or above the ``--fail-on`` severity; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.check import (
    Suppressions,
    all_checks,
    render_json,
    render_sarif,
    render_text,
    resolve_selection,
    run_checks,
)
from repro.check.core import SEVERITIES
from repro.tools.pdbmerge import merge_pdbs

from repro.ductape.pdb import PDB


def list_rules() -> str:
    """One line per registered rule: id, name, severity, check, summary."""
    lines = []
    for check in all_checks():
        for r in check.rules:
            lines.append(f"{r.id}  {r.name:28s} {r.severity:8s} [{check.name}] {r.summary}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbcheck",
        description="whole-program static-analysis checks over PDB files",
    )
    ap.add_argument(
        "inputs", nargs="*", help="PDB file(s); several are merged before checking"
    )
    ap.add_argument(
        "--checks",
        default="all",
        metavar="LIST",
        help="comma list of check names, rule ids, or rule names (default: all)",
    )
    ap.add_argument(
        "--entry",
        action="append",
        default=[],
        metavar="NAME",
        help="extra entry-point routine for reachability (repeatable; main is implicit)",
    )
    ap.add_argument(
        "--select",
        metavar="FILE",
        help="TAU select-file with suppression include/exclude lists",
    )
    ap.add_argument(
        "-f",
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    ap.add_argument("-o", "--output", help="write the report here instead of stdout")
    ap.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default="warning",
        help="exit 1 when findings reach this severity (default: warning)",
    )
    ap.add_argument(
        "--list-rules", action="store_true", help="list every rule and exit"
    )
    ap.add_argument(
        "-v", "--verbose", action="store_true", help="per-check timings (text format)"
    )
    args = ap.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0
    if not args.inputs:
        ap.print_usage(sys.stderr)
        print("pdbcheck: error: no input PDB files", file=sys.stderr)
        return 2

    try:
        resolve_selection(args.checks)
    except ValueError as e:
        print(f"pdbcheck: error: {e}", file=sys.stderr)
        return 2

    suppressions = None
    if args.select:
        try:
            suppressions = Suppressions.load(args.select)
        except (OSError, ValueError) as e:
            print(f"pdbcheck: error: {args.select}: {e}", file=sys.stderr)
            return 2

    try:
        pdbs = [PDB.read(p) for p in args.inputs]
    except OSError as e:
        print(f"pdbcheck: error: {e}", file=sys.stderr)
        return 2
    pdb, _merge_stats = merge_pdbs(pdbs) if len(pdbs) > 1 else (pdbs[0], [])

    report = run_checks(
        pdb, select=args.checks, entries=args.entry, suppressions=suppressions
    )

    if args.format == "text":
        out = render_text(report, verbose=args.verbose)
    elif args.format == "json":
        out = render_json(report)
    else:
        out = render_sarif(report)
    if args.output:
        with open(args.output, "w") as f:
            f.write(out + "\n")
    else:
        print(out)

    return 1 if report.fails(args.fail_on) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
