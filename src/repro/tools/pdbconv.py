"""pdbconv — convert compact PDB into a readable format (paper Table 2).

The readable format spells out item kinds and attribute meanings, one
block per item::

    ROUTINE ro#15 "push"
        location:   StackAr.cpp:35:21
        parent:     class Stack<int> (cl#7)
        access:     pub
        ...

``--check`` validates a PDB instead: every reference must resolve, and
every attribute key must belong to its item's schema.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.ductape.items import PdbItem
from repro.ductape.pdb import PDB
from repro.pdbfmt.items import ItemRef
from repro.pdbfmt.spec import ATTRIBUTE_SCHEMAS, ITEM_TYPES

_KIND_LABELS = {
    "so": "SOURCE FILE",
    "ro": "ROUTINE",
    "cl": "CLASS",
    "ty": "TYPE",
    "te": "TEMPLATE",
    "na": "NAMESPACE",
    "ma": "MACRO",
}


def convert_pdb(pdb: PDB) -> str:
    """Render a PDB in the readable format."""
    blocks: list[str] = [f"Program database, format {pdb.doc.version}", ""]
    for item in pdb.items():
        raw = item.raw
        head = f'{_KIND_LABELS.get(raw.prefix, raw.prefix)} {raw.ref} "{item.fullName()}"'
        lines = [head]
        if isinstance(item, PdbItem):
            loc = item.location()
            if loc.known:
                lines.append(f"    location:   {loc}")
            parent = item.parent()
            if parent is not None:
                lines.append(
                    f"    parent:     {parent.name()} ({parent.ref})"
                )
            if item.access() != "NA":
                lines.append(f"    access:     {item.access()}")
        for attr in raw.attributes:
            if attr.key.endswith("loc") or attr.key in ("rclass", "rnspace", "cclass", "cnspace", "racs", "cacs", "tacs", "yacs"):
                continue  # already rendered above
            value = attr.text if attr.text is not None else " ".join(attr.words)
            value = _humanise_refs(pdb, value)
            lines.append(f"    {attr.key:<11} {value}")
        blocks.append("\n".join(lines))
        blocks.append("")
    return "\n".join(blocks)


def _humanise_refs(pdb: PDB, value: str) -> str:
    """Append names to item references: ``ro#15`` -> ``ro#15[push]``."""
    out: list[str] = []
    for word in value.split(" "):
        if "#" in word and word.split("#")[0] in ITEM_TYPES:
            try:
                ref = ItemRef.parse(word)
            except ValueError:
                out.append(word)
                continue
            target = pdb.item(ref) if ref else None
            out.append(f"{word}[{target.name()}]" if target is not None else word)
        else:
            out.append(word)
    return " ".join(out)


def check_pdb(pdb: PDB) -> list[str]:
    """Validate a PDB: dangling references and unknown attributes."""
    problems: list[str] = []
    for item in pdb.items():
        raw = item.raw
        schema = ATTRIBUTE_SCHEMAS.get(raw.prefix, {})
        for attr in raw.attributes:
            if attr.key not in schema:
                problems.append(f"{raw.ref}: unknown attribute {attr.key!r}")
            for word in attr.words:
                if "#" in word and word.split("#")[0] in ITEM_TYPES:
                    try:
                        ref = ItemRef.parse(word)
                    except ValueError:
                        continue
                    if ref is not None and pdb.item(ref) is None:
                        problems.append(f"{raw.ref}: dangling reference {word}")
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbconv", description="convert a PDB file into a readable format"
    )
    ap.add_argument("pdb", help="input PDB file")
    ap.add_argument("-o", "--output", help="output file (default: stdout)")
    ap.add_argument(
        "-c", "--check", action="store_true", help="validate instead of converting"
    )
    args = ap.parse_args(argv)
    pdb = PDB.read(args.pdb)
    if args.check:
        problems = check_pdb(pdb)
        for p in problems:
            print(p, file=sys.stderr)
        print(f"{args.pdb}: {len(pdb.items())} items, {len(problems)} problem(s)")
        return 1 if problems else 0
    text = convert_pdb(pdb)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
