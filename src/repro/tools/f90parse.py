"""f90parse — the Fortran 90 front-end driver: sources -> PDB file.

The analog of ``cxxparse`` for the paper's Section 6 extension; in the
real PDT this is the Mutek-derived Fortran 90 front end + IL Analyzer."""

from __future__ import annotations

import argparse
from typing import Optional

from repro.analyzer import analyze
from repro.fortran.frontend import FortranFrontend
from repro.pdbfmt.writer import write_pdb


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="f90parse", description="compile Fortran 90 sources into a PDB file"
    )
    ap.add_argument(
        "sources", nargs="+",
        help="source files, module-defining files first (compilation order)",
    )
    ap.add_argument("-o", "--output", required=True, help="output PDB")
    args = ap.parse_args(argv)
    fe = FortranFrontend()
    tree = fe.compile(args.sources)
    doc = analyze(tree)
    with open(args.output, "w") as f:
        f.write(write_pdb(doc))
    print(f"{args.output}: {len(doc.items)} items")
    if fe.sink.warning_count:
        print(f"{fe.sink.warning_count} warning(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
