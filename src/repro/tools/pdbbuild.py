"""pdbbuild — parallel, incrementally-cached multi-TU PDB build driver.

The paper's PDT workflow compiles each translation unit separately and
``pdbmerge``s the per-TU databases into one program database (Table 2).
This driver runs that pipeline as a build system would:

* per-TU compilation (``Frontend`` + IL Analyzer + PDB writer) fans out
  across worker processes (``-j N``),
* an on-disk cache keyed by a content hash of the TU's full preprocessed
  dependency closure plus the frontend options skips unchanged TUs
  (:mod:`repro.buildcache`),
* the per-TU databases are merged in *source order* regardless of worker
  completion order, so the output is byte-identical to the serial
  ``cxxparse``-per-TU + ``pdbmerge`` pipeline,
* ``--stats-json`` emits a machine-readable per-phase report (schema
  documented in docs/FORMAT.md).

``cxxparse`` routes through :func:`build` with one worker and no cache,
so single-TU behaviour is unchanged.
"""

from __future__ import annotations

import argparse
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro.buildcache import BuildCache, content_hash
from repro.cpp import Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.ductape.pdb import PDB, MergeStats
from repro.pdbfmt.writer import write_pdb

#: bump when the PDB output of a compilation changes incompatibly, so
#: stale caches from older code can never be reused
CACHE_FORMAT = "pdbbuild-cache/1"

#: schema tag emitted in --stats-json reports
STATS_SCHEMA = "pdbbuild-stats/1"


@dataclass(frozen=True)
class BuildOptions:
    """Everything that affects a TU's compilation (hence its cache key)."""

    include_paths: tuple[str, ...] = ()
    instantiation_mode: InstantiationMode = InstantiationMode.USED
    predefined_macros: tuple[tuple[str, str], ...] = ()
    passes: Optional[tuple[str, ...]] = None

    def fingerprint(self) -> str:
        """Stable hash of the options, part of every cache key."""
        blob = json.dumps(
            {
                "format": CACHE_FORMAT,
                "include_paths": list(self.include_paths),
                "mode": self.instantiation_mode.value,
                "predefined": sorted(self.predefined_macros),
                "passes": list(self.passes) if self.passes is not None else None,
            },
            sort_keys=True,
        )
        return content_hash(blob)

    def frontend_options(self) -> FrontendOptions:
        return FrontendOptions(
            include_paths=list(self.include_paths),
            instantiation_mode=self.instantiation_mode,
            predefined_macros=dict(self.predefined_macros),
        )


@dataclass
class TUReport:
    """Per-TU observability record (one row of the --stats-json report)."""

    source: str
    cache_hit: bool
    wall_s: float
    items: int
    warnings: int


@dataclass
class BuildStats:
    """Whole-build observability: per-TU rows plus merge aggregates."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    tus: list[TUReport] = field(default_factory=list)
    merge: MergeStats = field(default_factory=MergeStats)
    merge_wall_s: float = 0.0
    total_wall_s: float = 0.0
    output_items: int = 0
    warnings: int = 0

    def to_dict(self) -> dict:
        """The --stats-json document (schema: ``pdbbuild-stats/1``)."""
        return {
            "schema": STATS_SCHEMA,
            "jobs": self.jobs,
            "sources": [t.source for t in self.tus],
            "cache": {
                "dir": self.cache_dir,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "tus": [asdict(t) for t in self.tus],
            "merge": {"wall_s": self.merge_wall_s, **asdict(self.merge)},
            "output_items": self.output_items,
            "warnings": self.warnings,
            "total_wall_s": self.total_wall_s,
        }


@dataclass
class _TUOutput:
    """What one compilation (in-process or worker) hands back."""

    source: str
    pdb_text: str
    dep_hashes: list[tuple[str, str]]
    items: int
    warnings: int
    wall_s: float


def _compile_tu(
    source: str,
    options: BuildOptions,
    files: Optional[dict[str, str]],
) -> _TUOutput:
    """Compile one TU to PDB text.  Top-level so worker processes can
    unpickle it; everything it needs travels as plain data."""
    from repro.analyzer import analyze

    start = time.perf_counter()
    fe = Frontend(options.frontend_options())
    if files:
        fe.register_files(files)
    tree = fe.compile(source)
    doc = analyze(tree, passes=options.passes) if options.passes else analyze(tree)
    text = write_pdb(doc)
    deps = [(f.name, content_hash(f.text)) for f in fe.last_consumed_files]
    warnings = fe.last_sink.warning_count if fe.last_sink is not None else 0
    return _TUOutput(
        source=source,
        pdb_text=text,
        dep_hashes=deps,
        items=len(doc.items),
        warnings=warnings,
        wall_s=time.perf_counter() - start,
    )


def build(
    sources: list[str],
    options: Optional[BuildOptions] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    files: Optional[dict[str, str]] = None,
) -> tuple[PDB, BuildStats]:
    """Compile ``sources`` and merge them into one PDB.

    ``jobs`` > 1 fans the per-TU compilations across worker processes;
    merge order always follows ``sources`` order, so the result is
    deterministic.  ``cache_dir`` enables the incremental cache.
    ``files`` supplies an in-memory corpus (name -> text), the same shape
    :meth:`Frontend.register_files` takes.
    """
    t0 = time.perf_counter()
    options = options or BuildOptions()
    stats = BuildStats(jobs=jobs, cache_dir=cache_dir)
    cache = BuildCache(cache_dir) if cache_dir else None
    fingerprint = options.fingerprint()

    def read_content(name: str) -> Optional[str]:
        if files and name in files:
            return files[name]
        try:
            return Path(name).read_text()
        except OSError:
            return None

    outputs: dict[int, _TUOutput] = {}
    hits: dict[int, bool] = {}
    to_compile: list[tuple[int, str]] = []
    for i, source in enumerate(sources):
        entry = cache.lookup(fingerprint, source, read_content) if cache else None
        if entry is not None:
            outputs[i] = _TUOutput(
                source=source,
                pdb_text=entry.pdb_text,
                dep_hashes=entry.deps,
                items=entry.items,
                warnings=entry.warnings,
                wall_s=0.0,
            )
            hits[i] = True
        else:
            to_compile.append((i, source))
            hits[i] = False

    if len(to_compile) > 1 and jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                i: pool.submit(_compile_tu, source, options, files)
                for i, source in to_compile
            }
            for i, fut in futures.items():
                outputs[i] = fut.result()
    else:
        for i, source in to_compile:
            outputs[i] = _compile_tu(source, options, files)

    for i, _ in to_compile:
        out = outputs[i]
        if cache:
            cache.store(
                fingerprint,
                out.source,
                out.dep_hashes,
                out.pdb_text,
                items=out.items,
                warnings=out.warnings,
            )

    for i in range(len(sources)):
        out = outputs[i]
        stats.tus.append(
            TUReport(
                source=out.source,
                cache_hit=hits[i],
                wall_s=out.wall_s,
                items=out.items,
                warnings=out.warnings,
            )
        )
        stats.warnings += out.warnings
    if cache:
        stats.cache_hits = cache.stats.hits
        stats.cache_misses = cache.stats.misses

    tm = time.perf_counter()
    from repro.tools.pdbmerge import merge_pdbs

    pdbs = [PDB.from_text(outputs[i].pdb_text) for i in range(len(sources))]
    merged, merge_stats = merge_pdbs(pdbs)
    stats.merge_wall_s = time.perf_counter() - tm
    for ms in merge_stats:
        stats.merge.items_in += ms.items_in
        stats.merge.items_added += ms.items_added
        stats.merge.duplicates_eliminated += ms.duplicates_eliminated
        stats.merge.duplicate_instantiations += ms.duplicate_instantiations
    stats.output_items = len(merged.doc.items)
    stats.total_wall_s = time.perf_counter() - t0
    return merged, stats


def add_mode_arguments(ap: argparse.ArgumentParser) -> None:
    """The --tused/--tall/--tauto instantiation-mode flags shared by
    cxxparse and pdbbuild."""
    ap.add_argument(
        "--tused",
        dest="mode",
        action="store_const",
        const=InstantiationMode.USED,
        default=InstantiationMode.USED,
        help="used-instantiation mode (default; the mode PDT needs)",
    )
    ap.add_argument(
        "--tall",
        dest="mode",
        action="store_const",
        const=InstantiationMode.ALL,
        help="instantiate all members of instantiated templates",
    )
    ap.add_argument(
        "--tauto",
        dest="mode",
        action="store_const",
        const=InstantiationMode.PRELINK,
        help="EDG automatic (prelinker) scheme: instantiations absent from the IL",
    )


def parse_passes(ap: argparse.ArgumentParser, spec: Optional[str]):
    """Validate a --passes spec against the analyzer's known traversals."""
    if not spec:
        return None
    from repro.analyzer.ilanalyzer import DEFAULT_PASSES

    selected = tuple(p.strip() for p in spec.split(",") if p.strip())
    unknown = set(selected) - set(DEFAULT_PASSES)
    if unknown:
        ap.error(f"unknown passes: {', '.join(sorted(unknown))}")
    return selected


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbbuild",
        description="parallel, incrementally-cached C++ -> PDB build driver",
    )
    ap.add_argument("source", nargs="+", help="translation units to compile")
    ap.add_argument("-o", "--output", help="output PDB (default: <source>.pdb)")
    ap.add_argument(
        "-I", dest="include_paths", action="append", default=[], help="include path"
    )
    ap.add_argument(
        "-j", "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    ap.add_argument(
        "--cache-dir",
        default=".pdbbuild-cache",
        help="incremental cache directory (default .pdbbuild-cache)",
    )
    ap.add_argument(
        "--no-cache", action="store_true", help="disable the incremental cache"
    )
    ap.add_argument(
        "--stats-json", help="write the per-phase build report to this file"
    )
    add_mode_arguments(ap)
    ap.add_argument(
        "--passes",
        help="comma-separated analyzer traversals to run (so,te,na,cl,ro,ty,ma)",
    )
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)
    options = BuildOptions(
        include_paths=tuple(args.include_paths),
        instantiation_mode=args.mode,
        passes=parse_passes(ap, args.passes),
    )
    cache_dir = None if args.no_cache else args.cache_dir
    merged, stats = build(
        args.source, options, jobs=max(1, args.jobs), cache_dir=cache_dir
    )
    out = args.output or (args.source[0].rsplit(".", 1)[0] + ".pdb")
    merged.write(out)
    if args.stats_json:
        with open(args.stats_json, "w") as f:
            json.dump(stats.to_dict(), f, indent=1)
    if args.verbose:
        for tu in stats.tus:
            tag = "hit " if tu.cache_hit else "miss"
            print(f"  [{tag}] {tu.source}: {tu.items} items, {tu.wall_s:.3f}s")
        print(
            f"  merge: {stats.merge.duplicates_eliminated} duplicates eliminated "
            f"({stats.merge.duplicate_instantiations} template instantiations), "
            f"{stats.merge_wall_s:.3f}s"
        )
    print(f"{out}: {stats.output_items} items")
    if stats.warnings:
        print(f"{stats.warnings} warning(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
