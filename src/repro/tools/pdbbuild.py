"""pdbbuild — parallel, incrementally-cached multi-TU PDB build driver.

The paper's PDT workflow compiles each translation unit separately and
``pdbmerge``s the per-TU databases into one program database (Table 2).
This driver runs that pipeline as a build system would:

* per-TU compilation (``Frontend`` + IL Analyzer + PDB writer) fans out
  across worker processes (``-j N``),
* an on-disk cache keyed by a content hash of the TU's full preprocessed
  dependency closure plus the frontend options skips unchanged TUs
  (:mod:`repro.buildcache`),
* the per-TU databases are merged in *source order* regardless of worker
  completion order, so the output is byte-identical to the serial
  ``cxxparse``-per-TU + ``pdbmerge`` pipeline,
* ``--stats-json`` emits a machine-readable per-phase report (schema
  documented in docs/FORMAT.md).

The driver is self-observing (docs/FORMAT.md, "Build observability"):
``--trace-json OUT`` records every toolchain phase — per-TU frontend
phases, analyzer passes, PDB write, merge — as Chrome-trace complete
events across worker pids, with cache hit/miss/eviction counter
events; ``--self-profile DIR`` replays the same spans through the
repro's own TAU measurement runtime and writes ``profile.n.c.t`` files
(one node per build process) readable by ``repro.tau.profiledata`` —
the toolchain profiled by the paper's own profiler.  Either flag also
populates the per-phase wall-time aggregates of stats schema ``/4``.

``--check[=RULES]`` runs the :mod:`repro.check` static-analysis suite
on the merged result (CI-style lint-on-build): findings print like
compiler diagnostics, per-check wall time lands in the stats report's
``check`` section and — on observability builds — as ``check.*`` spans
in ``--trace-json``, and findings at warning level or above make the
build exit non-zero.

``cxxparse`` routes through :func:`build` with one worker and no cache,
so single-TU behaviour is unchanged.

The driver is fault-tolerant (docs/DESIGN.md, "Failure model"):

* ``-k/--keep-going`` quarantines failed TUs instead of aborting: the
  build merges every TU that compiled, records each failure (phase,
  error, rendered diagnostics) in the stats report, and exits non-zero,
* ``--keep-going-errors N`` turns on frontend error recovery, so a TU
  with user-source errors still contributes its partial IL, annotated
  with ``ferr`` diagnostic records,
* ``--timeout`` bounds each TU's wall clock; a hung worker is abandoned
  (its TU fails with phase ``timeout``) and the rest of the build
  continues in a fresh pool,
* a worker crash poisons every pending future in the pool
  (``BrokenProcessPool`` cannot name the victim), so each affected TU is
  retried once in an isolated single-worker pool — innocent bystanders
  recover, the deterministic crasher fails with phase ``worker``.

Fault-injection hooks for the test harness (read inside the worker, so
they propagate to forked pools): ``PDBBUILD_FAULT_SLEEP=<name>:<secs>``
sleeps before compiling a matching TU; ``PDBBUILD_FAULT_EXIT=<name>`` or
``<name>:<once-marker-path>`` kills the worker process outright (with a
marker file: only the first time).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro import obs
from repro.buildcache import BuildCache, content_hash
from repro.cpp import CppError, Frontend, FrontendOptions
from repro.cpp.instantiate import InstantiationMode
from repro.ductape.pdb import PDB, MergeStats
from repro.pdbfmt.writer import write_pdb

#: bump when the PDB output of a compilation changes incompatibly, so
#: stale caches from older code can never be reused
CACHE_FORMAT = "pdbbuild-cache/2"

#: schema tag emitted in --stats-json reports
STATS_SCHEMA = "pdbbuild-stats/5"


@dataclass(frozen=True)
class BuildOptions:
    """Everything that affects a TU's compilation (hence its cache key)."""

    include_paths: tuple[str, ...] = ()
    instantiation_mode: InstantiationMode = InstantiationMode.USED
    predefined_macros: tuple[tuple[str, str], ...] = ()
    passes: Optional[tuple[str, ...]] = None
    #: None = errors are fatal (classic behaviour); N = recover from up
    #: to N user-source errors per TU, annotating the PDB with ``ferr``
    #: records.  Part of the fingerprint: recovery changes the output.
    keep_going_errors: Optional[int] = None

    def fingerprint(self) -> str:
        """Stable hash of the options, part of every cache key."""
        blob = json.dumps(
            {
                "format": CACHE_FORMAT,
                "include_paths": list(self.include_paths),
                "mode": self.instantiation_mode.value,
                "predefined": sorted(self.predefined_macros),
                "passes": list(self.passes) if self.passes is not None else None,
                "keep_going_errors": self.keep_going_errors,
            },
            sort_keys=True,
        )
        return content_hash(blob)

    def frontend_options(self) -> FrontendOptions:
        fo = FrontendOptions(
            include_paths=list(self.include_paths),
            instantiation_mode=self.instantiation_mode,
            predefined_macros=dict(self.predefined_macros),
        )
        if self.keep_going_errors is not None:
            fo.fatal_errors = False
            fo.max_errors = max(1, self.keep_going_errors)
        return fo


@dataclass
class TUReport:
    """Per-TU observability record (one row of the --stats-json report).

    ``phases`` (observability builds only) maps phase name -> wall
    seconds inside this TU's compilation (frontend.preprocess,
    frontend.parse, analyze.*, pdb.write, …)."""

    source: str
    cache_hit: bool
    wall_s: float
    items: int
    warnings: int
    errors: int = 0  # recovered frontend errors (``ferr`` records)
    phases: dict[str, float] = field(default_factory=dict)


@dataclass
class TUFailure:
    """One quarantined TU: why it contributed nothing to the merge.

    ``phase`` is ``frontend`` (unrecoverable or cascading source
    errors), ``timeout`` (exceeded the per-TU wall-clock bound), or
    ``worker`` (the worker process died and the retry died too)."""

    source: str
    phase: str
    error: str
    diagnostics: list[str] = field(default_factory=list)
    retries: int = 0


class TUCompileError(Exception):
    """One TU failed to compile.

    Carries the rendered diagnostics so keep-going builds can report
    them without re-running the frontend.  All constructor arguments
    flow through ``Exception.args``, so instances survive the pickling
    round-trip from worker processes unchanged."""

    def __init__(self, source: str, message: str, diagnostics: tuple = ()):
        super().__init__(source, message, tuple(diagnostics))
        self.source = source
        self.message = message
        self.diagnostics = list(diagnostics)

    def __str__(self) -> str:
        return f"{self.source}: {self.message}"


@dataclass
class BuildStats:
    """Whole-build observability: per-TU rows plus merge aggregates.

    ``phases`` holds per-phase wall-time aggregates over every span the
    build recorded (driver + workers); ``trace_spans``/``trace_counters``
    carry the raw Chrome-trace material for ``--trace-json`` and
    ``--self-profile`` (populated only on observability builds, never
    serialised into the stats document)."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    tus: list[TUReport] = field(default_factory=list)
    failures: list[TUFailure] = field(default_factory=list)
    merge: MergeStats = field(default_factory=MergeStats)
    merge_wall_s: float = 0.0
    #: reduction rounds of the pairwise tree merge (0 = fold shape)
    merge_tree_depth: int = 0
    #: frontend header-cache activity summed over every compiled TU
    #: (cache-hit TUs never run the frontend, so they contribute zero)
    hc_hits: int = 0
    hc_misses: int = 0
    hc_uncacheable: int = 0
    total_wall_s: float = 0.0
    output_items: int = 0
    warnings: int = 0
    errors: int = 0
    phases: dict[str, dict] = field(default_factory=dict)
    #: static-analysis section (``--check`` builds only): selection,
    #: per-rule finding counts, per-check wall time
    check: Optional[dict] = None
    #: the full CheckReport behind ``check`` (never serialised)
    check_report: Optional[object] = None
    trace_spans: list = field(default_factory=list)
    trace_counters: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """The --stats-json document (schema: ``pdbbuild-stats/5``).

        ``/5`` keeps every ``/4`` field and adds the ``header_cache``
        section plus ``merge.tree_depth`` (see docs/FORMAT.md)."""
        d = {
            "schema": STATS_SCHEMA,
            "jobs": self.jobs,
            "sources": [t.source for t in self.tus],
            "cache": {
                "dir": self.cache_dir,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
            },
            "header_cache": {
                "hits": self.hc_hits,
                "misses": self.hc_misses,
                "uncacheable": self.hc_uncacheable,
            },
            "tus": [asdict(t) for t in self.tus],
            "failures": [asdict(f) for f in self.failures],
            "merge": {
                "wall_s": self.merge_wall_s,
                "tree_depth": self.merge_tree_depth,
                **asdict(self.merge),
            },
            "output_items": self.output_items,
            "warnings": self.warnings,
            "errors": self.errors,
            "phases": self.phases,
            "total_wall_s": self.total_wall_s,
        }
        if self.check is not None:
            d["check"] = self.check
        return d


@dataclass
class _TUOutput:
    """What one compilation (in-process or worker) hands back.

    ``spans`` are the :class:`repro.obs.Span` records of an
    observability build — plain picklable data, so they travel back
    from worker processes with the rest."""

    source: str
    pdb_text: str
    dep_hashes: list[tuple[str, str]]
    items: int
    warnings: int
    wall_s: float
    errors: list[str] = field(default_factory=list)
    spans: list = field(default_factory=list)
    #: frontend header-cache activity during this TU's compilation
    #: (plain ints, so they pickle back from worker processes)
    hc_hits: int = 0
    hc_misses: int = 0
    hc_uncacheable: int = 0


def _fault_matches(source: str, name: str) -> bool:
    return source == name or Path(source).name == Path(name).name


def _apply_fault_hooks(source: str) -> None:
    """Test-harness fault injection (see module docstring).  No-ops
    unless the PDBBUILD_FAULT_* environment variables are set."""
    spec = os.environ.get("PDBBUILD_FAULT_SLEEP")
    if spec and ":" in spec:
        name, _, secs = spec.rpartition(":")
        if _fault_matches(source, name):
            time.sleep(float(secs))
    spec = os.environ.get("PDBBUILD_FAULT_EXIT")
    if spec:
        name, _, marker = spec.partition(":")
        if _fault_matches(source, name):
            if marker:
                if not os.path.exists(marker):
                    Path(marker).write_text("crashed")
                    os._exit(13)
            else:
                os._exit(13)


#: per-process Frontend reuse: ``(fingerprint, build epoch, Frontend)``.
#: ProcessPoolExecutor recycles worker processes, so TUs compiled by the
#: same worker within one :func:`build` call share one Frontend — and
#: with it the shared-header token cache (:mod:`repro.cpp.headercache`).
#: The epoch scopes sharing to a single build: a later build must not
#: see this one's SourceManager state (disk files may have changed).
_WORKER_FE: Optional[tuple[str, str, Frontend]] = None


def _worker_frontend(options: BuildOptions, epoch: str) -> Frontend:
    global _WORKER_FE
    fp = options.fingerprint()
    if _WORKER_FE is None or _WORKER_FE[0] != fp or _WORKER_FE[1] != epoch:
        _WORKER_FE = (fp, epoch, Frontend(options.frontend_options()))
    return _WORKER_FE[2]


def _compile_tu(
    source: str,
    options: BuildOptions,
    files: Optional[dict[str, str]],
    trace: bool = False,
    epoch: str = "",
) -> _TUOutput:
    """Compile one TU to PDB text.  Top-level so worker processes can
    unpickle it; everything it needs travels as plain data.

    ``trace`` installs a fresh :class:`repro.obs.Observer` around the
    compilation, so every instrumented phase (frontend, analyzer
    passes, PDB write) reports a span; the spans ride back on the
    output.  Observers are per-call, so pool workers reused across TUs
    never mix spans.

    Failure contract: raises :class:`TUCompileError` (picklable) when
    the TU cannot contribute a PDB — an unrecoverable frontend error, or
    an error cascade past the recovery bound.  In recovery mode
    (``keep_going_errors``) a TU with recorded errors still returns its
    partial PDB, annotated with ``ferr`` records."""
    if trace:
        observer = obs.enable()
        try:
            with observer.phase(
                f"compile {Path(source).name}", cat="tu", source=source
            ):
                out = _compile_tu(source, options, files, trace=False, epoch=epoch)
        finally:
            obs.disable()
        out.spans = observer.spans
        return out

    from repro.analyzer import analyze

    _apply_fault_hooks(source)
    start = time.perf_counter()
    fe = _worker_frontend(options, epoch)
    if files:
        fe.register_files(files)
    hc = fe.header_cache
    hc_base = (hc.hits, hc.misses, hc.uncacheable) if hc is not None else (0, 0, 0)
    try:
        tree = fe.compile(source)
    except CppError as exc:
        diags = fe.last_sink.render_errors() if fe.last_sink is not None else []
        if not diags:
            diags = [str(exc)]
        raise TUCompileError(source, exc.message, tuple(diags)) from exc
    errors: list[str] = []
    if fe.last_sink is not None:
        errors = fe.last_sink.render_errors()
    if fe.last_error_overflow:
        raise TUCompileError(
            source,
            f"too many errors (--keep-going-errors bound of "
            f"{fe.options.max_errors} reached); giving up on this TU",
            tuple(errors),
        )
    doc = analyze(tree, passes=options.passes) if options.passes else analyze(tree)
    if errors:
        from repro.cpp.diagnostics import Severity
        from repro.pdbfmt.ferr import append_error_items

        error_diags = [
            d for d in fe.last_sink.diagnostics if d.severity is Severity.ERROR
        ]
        append_error_items(doc, error_diags, source)
    text = write_pdb(doc)
    deps = [(f.name, content_hash(f.text)) for f in fe.last_consumed_files]
    warnings = fe.last_sink.warning_count if fe.last_sink is not None else 0
    return _TUOutput(
        source=source,
        pdb_text=text,
        dep_hashes=deps,
        items=len(doc.items),
        warnings=warnings,
        wall_s=time.perf_counter() - start,
        errors=errors,
        # deltas, not totals: the Frontend (and its counters) is shared
        # across every TU this worker compiles in the current build
        hc_hits=hc.hits - hc_base[0] if hc is not None else 0,
        hc_misses=hc.misses - hc_base[1] if hc is not None else 0,
        hc_uncacheable=hc.uncacheable - hc_base[2] if hc is not None else 0,
    )


def _failure_from(source: str, exc: Exception, phase: str, retries: int = 0) -> TUFailure:
    if isinstance(exc, TUCompileError):
        return TUFailure(
            source=source,
            phase=phase,
            error=exc.message,
            diagnostics=list(exc.diagnostics),
            retries=retries,
        )
    return TUFailure(source=source, phase=phase, error=str(exc), retries=retries)


def _retry_broken(
    i: int,
    source: str,
    options: BuildOptions,
    files: Optional[dict[str, str]],
    timeout: Optional[float],
    outputs: dict[int, "_TUOutput"],
    failures: dict[int, TUFailure],
    trace: bool = False,
    epoch: str = "",
) -> None:
    """Re-run one TU whose shared-pool future died with BrokenProcessPool.

    A single crashing worker poisons every pending future in the pool,
    so most victims are innocent: rerun each once in an isolated
    single-worker pool.  A TU that kills its worker *again* is the real
    culprit and fails with phase ``worker``."""
    pool = ProcessPoolExecutor(max_workers=1)
    fut = pool.submit(_compile_tu, source, options, files, trace, epoch)
    try:
        outputs[i] = fut.result(timeout=timeout)
        pool.shutdown()
    except TUCompileError as exc:
        pool.shutdown()
        failures[i] = _failure_from(source, exc, "frontend", retries=1)
    except FuturesTimeout:
        pool.shutdown(wait=False, cancel_futures=True)
        failures[i] = TUFailure(
            source, "timeout", f"timed out after {timeout:g}s (on retry)", retries=1
        )
    except BrokenProcessPool:
        pool.shutdown(wait=False)
        failures[i] = TUFailure(
            source, "worker", "worker process crashed (reproduced on retry)", retries=1
        )


def build(
    sources: list[str],
    options: Optional[BuildOptions] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    files: Optional[dict[str, str]] = None,
    keep_going: bool = False,
    timeout: Optional[float] = None,
    trace: bool = False,
    checks: Optional[str] = None,
) -> tuple[PDB, BuildStats]:
    """Compile ``sources`` and merge them into one PDB.

    ``jobs`` > 1 fans the per-TU compilations across worker processes;
    merge order always follows ``sources`` order, so the result is
    deterministic.  ``cache_dir`` enables the incremental cache.
    ``files`` supplies an in-memory corpus (name -> text), the same shape
    :meth:`Frontend.register_files` takes.

    ``keep_going`` quarantines failed TUs (recorded in
    ``stats.failures``) and merges the rest — the merged output is
    byte-identical to a build that never listed the failed TUs.  Without
    it, the first failure raises :class:`TUCompileError`.  ``timeout``
    bounds each TU's wall clock; it needs worker processes (``jobs`` >
    1) to be enforceable, since a hung in-process compile cannot be
    abandoned.

    ``trace`` turns on self-observability: every toolchain phase
    (driver scheduling, per-TU frontend/analyzer/writer phases across
    worker pids, merge) records spans into ``stats.trace_spans``, cache
    activity records counter samples into ``stats.trace_counters``, and
    ``stats.phases`` aggregates per-phase wall time — the material for
    ``--trace-json`` / ``--self-profile`` / stats schema ``/4``.

    ``checks`` runs the :mod:`repro.check` static-analysis suite over
    the merged result ("all" or a selection as in
    :func:`repro.check.resolve_selection`); findings land in
    ``stats.check_report``, the summary (per-rule counts, per-check wall
    time) in ``stats.check`` / the stats document's ``check`` section.
    """
    observer = obs.enable() if trace else None
    try:
        if observer is None:
            return _build(
                sources, options, jobs, cache_dir, files, keep_going, timeout,
                trace, observer, checks,
            )
        with observer.phase("pdbbuild.build", cat="pdbbuild", jobs=jobs):
            merged, stats = _build(
                sources, options, jobs, cache_dir, files, keep_going, timeout,
                trace, observer, checks,
            )
    finally:
        if observer is not None:
            obs.disable()
    stats.trace_spans = list(observer.spans)
    stats.trace_counters = list(observer.counters)
    stats.phases = obs.phase_aggregates(stats.trace_spans)
    return merged, stats


def _build(
    sources: list[str],
    options: Optional[BuildOptions],
    jobs: int,
    cache_dir: Optional[str],
    files: Optional[dict[str, str]],
    keep_going: bool,
    timeout: Optional[float],
    trace: bool,
    observer,
    checks: Optional[str] = None,
) -> tuple[PDB, BuildStats]:
    """The build pipeline behind :func:`build` (observer installed)."""
    t0 = time.perf_counter()
    options = options or BuildOptions()
    stats = BuildStats(jobs=jobs, cache_dir=cache_dir)
    cache = BuildCache(cache_dir) if cache_dir else None
    fingerprint = options.fingerprint()
    epoch = uuid.uuid4().hex  # scopes per-worker Frontend reuse to this build

    def read_content(name: str) -> Optional[str]:
        if files and name in files:
            return files[name]
        try:
            return Path(name).read_text()
        except OSError:
            return None

    outputs: dict[int, _TUOutput] = {}
    failures: dict[int, TUFailure] = {}
    hits: dict[int, bool] = {}
    to_compile: list[tuple[int, str]] = []
    with obs.observe("cache.lookup", cat="pdbbuild", tus=len(sources)):
        for i, source in enumerate(sources):
            entry = cache.lookup(fingerprint, source, read_content) if cache else None
            if entry is not None:
                outputs[i] = _TUOutput(
                    source=source,
                    pdb_text=entry.pdb_text,
                    dep_hashes=entry.deps,
                    items=entry.items,
                    warnings=entry.warnings,
                    wall_s=0.0,
                    errors=entry.errors,
                )
                hits[i] = True
            else:
                to_compile.append((i, source))
                hits[i] = False
            if cache is not None and observer is not None:
                # cumulative hit/miss/eviction ramp, one sample per lookup
                observer.counter(
                    "cache",
                    hits=cache.stats.hits,
                    misses=cache.stats.misses,
                    evictions=cache.stats.evictions,
                )

    use_pool = jobs > 1 and (len(to_compile) > 1 or (to_compile and timeout))
    if use_pool:
        # Batches re-run whatever a mid-batch pool shutdown (hung
        # worker) left uncollected; every batch records at least one
        # failure before re-queueing, so the loop terminates.
        remaining = list(to_compile)
        while remaining:
            batch, remaining = remaining, []
            pool = ProcessPoolExecutor(max_workers=jobs)
            futures = [
                (
                    i,
                    source,
                    pool.submit(_compile_tu, source, options, files, trace, epoch),
                )
                for i, source in batch
            ]
            broken: list[tuple[int, str]] = []
            hung = False
            for i, source, fut in futures:
                if hung:
                    # the pool is shut down; keep finished results,
                    # re-queue what was cancelled or still running
                    if fut.done() and not fut.cancelled():
                        try:
                            outputs[i] = fut.result()
                        except TUCompileError as exc:
                            failures[i] = _failure_from(source, exc, "frontend")
                        except BrokenProcessPool:
                            broken.append((i, source))
                    else:
                        remaining.append((i, source))
                    continue
                try:
                    outputs[i] = fut.result(timeout=timeout)
                except TUCompileError as exc:
                    failures[i] = _failure_from(source, exc, "frontend")
                except FuturesTimeout:
                    failures[i] = TUFailure(
                        source, "timeout", f"timed out after {timeout:g}s"
                    )
                    hung = True
                    pool.shutdown(wait=False, cancel_futures=True)
                except BrokenProcessPool:
                    broken.append((i, source))
            if not hung:
                pool.shutdown()
            for i, source in broken:
                _retry_broken(
                    i, source, options, files, timeout, outputs, failures, trace, epoch
                )
    else:
        for i, source in to_compile:
            try:
                outputs[i] = _compile_tu(source, options, files, trace, epoch)
            except TUCompileError as exc:
                failures[i] = _failure_from(source, exc, "frontend")

    if failures and not keep_going:
        first = min(failures)
        f = failures[first]
        raise TUCompileError(f.source, f.error, tuple(f.diagnostics))

    for i, _ in to_compile:
        if i in failures:
            continue  # quarantined: never cached, never merged
        out = outputs[i]
        if cache:
            cache.store(
                fingerprint,
                out.source,
                out.dep_hashes,
                out.pdb_text,
                items=out.items,
                warnings=out.warnings,
                errors=out.errors,
            )

    for i in range(len(sources)):
        if i in failures:
            continue
        out = outputs[i]
        if observer is not None and out.spans:
            observer.adopt(out.spans)
        stats.tus.append(
            TUReport(
                source=out.source,
                cache_hit=hits[i],
                wall_s=out.wall_s,
                items=out.items,
                warnings=out.warnings,
                errors=len(out.errors),
                phases={
                    name: row["wall_s"]
                    for name, row in obs.phase_aggregates(out.spans).items()
                },
            )
        )
        stats.warnings += out.warnings
        stats.errors += len(out.errors)
        stats.hc_hits += out.hc_hits
        stats.hc_misses += out.hc_misses
        stats.hc_uncacheable += out.hc_uncacheable
    stats.failures = [failures[i] for i in sorted(failures)]
    if cache:
        stats.cache_hits = cache.stats.hits
        stats.cache_misses = cache.stats.misses
        stats.cache_evictions = cache.stats.evictions

    tm = time.perf_counter()
    from repro.tools.pdbmerge import merge_pdb_texts_tree

    with obs.observe("pdb.merge", cat="pdbbuild", tus=len(sources) - len(failures)):
        texts = [
            outputs[i].pdb_text for i in range(len(sources)) if i not in failures
        ]
        # pairwise reduction tree; byte-identical to the serial fold,
        # with the fold's aggregate MergeStats recovered analytically
        merged, stats.merge, stats.merge_tree_depth = merge_pdb_texts_tree(texts)
    stats.merge_wall_s = time.perf_counter() - tm
    stats.output_items = len(merged.doc.items)

    if checks is not None:
        from repro.check import run_checks

        tc = time.perf_counter()
        report = run_checks(merged, select=checks)
        stats.check_report = report
        stats.check = {
            "selection": checks,
            "findings": len(report.findings),
            "errors": report.count("error"),
            "warnings": report.count("warning"),
            "rules": report.rule_counts,
            "checks": {
                name: {"wall_s": report.timings[name]} for name in report.checks_run
            },
            "wall_s": time.perf_counter() - tc,
        }

    stats.total_wall_s = time.perf_counter() - t0
    return merged, stats


def _process_names(spans) -> dict[int, str]:
    """Chrome-trace process labels: the driver pid vs worker pids."""
    labels: dict[int, str] = {}
    for s in spans:
        if s.pid not in labels:
            labels[s.pid] = "pdbbuild driver" if s.pid == os.getpid() else "pdbbuild worker"
    return labels


def add_mode_arguments(ap: argparse.ArgumentParser) -> None:
    """The --tused/--tall/--tauto instantiation-mode flags shared by
    cxxparse and pdbbuild."""
    ap.add_argument(
        "--tused",
        dest="mode",
        action="store_const",
        const=InstantiationMode.USED,
        default=InstantiationMode.USED,
        help="used-instantiation mode (default; the mode PDT needs)",
    )
    ap.add_argument(
        "--tall",
        dest="mode",
        action="store_const",
        const=InstantiationMode.ALL,
        help="instantiate all members of instantiated templates",
    )
    ap.add_argument(
        "--tauto",
        dest="mode",
        action="store_const",
        const=InstantiationMode.PRELINK,
        help="EDG automatic (prelinker) scheme: instantiations absent from the IL",
    )


def add_recovery_arguments(ap: argparse.ArgumentParser) -> None:
    """The frontend error-recovery flag shared by cxxparse and pdbbuild."""
    ap.add_argument(
        "--keep-going-errors",
        type=int,
        metavar="N",
        help="recover from up to N user-source errors per TU instead of "
        "aborting on the first; recovered errors become ferr records in "
        "the output PDB",
    )


def parse_passes(ap: argparse.ArgumentParser, spec: Optional[str]):
    """Validate a --passes spec against the analyzer's known traversals."""
    if not spec:
        return None
    from repro.analyzer.ilanalyzer import DEFAULT_PASSES

    selected = tuple(p.strip() for p in spec.split(",") if p.strip())
    unknown = set(selected) - set(DEFAULT_PASSES)
    if unknown:
        ap.error(f"unknown passes: {', '.join(sorted(unknown))}")
    return selected


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbbuild",
        description="parallel, incrementally-cached C++ -> PDB build driver",
    )
    ap.add_argument("source", nargs="+", help="translation units to compile")
    ap.add_argument("-o", "--output", help="output PDB (default: <source>.pdb)")
    ap.add_argument(
        "-I", dest="include_paths", action="append", default=[], help="include path"
    )
    ap.add_argument(
        "-j", "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    ap.add_argument(
        "--cache-dir",
        default=".pdbbuild-cache",
        help="incremental cache directory (default .pdbbuild-cache)",
    )
    ap.add_argument(
        "--no-cache", action="store_true", help="disable the incremental cache"
    )
    ap.add_argument(
        "--stats-json", help="write the per-phase build report to this file"
    )
    ap.add_argument(
        "--trace-json",
        metavar="OUT",
        help="write a Chrome-trace (chrome://tracing / Perfetto) JSON "
        "of the build: per-TU, per-phase spans across worker pids plus "
        "cache counter events",
    )
    ap.add_argument(
        "--self-profile",
        metavar="DIR",
        help="write a TAU-format profile (profile.n.c.t files, one node "
        "per build process) of the build itself into DIR — readable by "
        "the repro's own profile reader/displays",
    )
    ap.add_argument(
        "-k",
        "--keep-going",
        action="store_true",
        help="quarantine failed TUs and merge the rest (exit non-zero, "
        "failures listed in --stats-json)",
    )
    ap.add_argument(
        "--timeout",
        type=float,
        metavar="SECS",
        help="per-TU wall-clock bound; a hung worker fails its TU "
        "(needs -j > 1 to be enforceable)",
    )
    ap.add_argument(
        "--check",
        nargs="?",
        const="all",
        default=None,
        metavar="RULES",
        help="run the static-analysis suite on the merged result "
        "(optionally a comma list of check names / rule ids; default all); "
        "findings at warning level or above exit non-zero",
    )
    add_mode_arguments(ap)
    add_recovery_arguments(ap)
    ap.add_argument(
        "--passes",
        help="comma-separated analyzer traversals to run (so,te,na,cl,ro,ty,ma)",
    )
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)
    options = BuildOptions(
        include_paths=tuple(args.include_paths),
        instantiation_mode=args.mode,
        passes=parse_passes(ap, args.passes),
        keep_going_errors=args.keep_going_errors,
    )
    cache_dir = None if args.no_cache else args.cache_dir
    trace = bool(args.trace_json or args.self_profile)
    if args.check is not None:
        from repro.check import resolve_selection

        try:
            resolve_selection(args.check)
        except ValueError as e:
            ap.error(str(e))
    try:
        merged, stats = build(
            args.source,
            options,
            jobs=max(1, args.jobs),
            cache_dir=cache_dir,
            keep_going=args.keep_going,
            timeout=args.timeout,
            trace=trace,
            checks=args.check,
        )
    except TUCompileError as exc:
        for line in exc.diagnostics:
            print(line, file=sys.stderr)
        print(f"pdbbuild: error: {exc}", file=sys.stderr)
        return 1
    out = args.output or (args.source[0].rsplit(".", 1)[0] + ".pdb")
    merged.write(out)
    if args.stats_json:
        with open(args.stats_json, "w") as f:
            json.dump(stats.to_dict(), f, indent=1)
    if args.trace_json:
        obs.write_chrome_trace(
            args.trace_json,
            stats.trace_spans,
            stats.trace_counters,
            process_names=_process_names(stats.trace_spans),
        )
    if args.self_profile:
        from repro.tau.profiledata import write_profiles

        write_profiles(obs.replay_spans(stats.trace_spans), args.self_profile)
    if args.verbose:
        for tu in stats.tus:
            tag = "hit " if tu.cache_hit else "miss"
            print(f"  [{tag}] {tu.source}: {tu.items} items, {tu.wall_s:.3f}s")
        print(
            f"  merge: {stats.merge.duplicates_eliminated} duplicates eliminated "
            f"({stats.merge.duplicate_instantiations} template instantiations), "
            f"{stats.merge_wall_s:.3f}s"
        )
    check_failed = False
    if stats.check_report is not None:
        from repro.check import render_text

        print(render_text(stats.check_report, verbose=args.verbose))
        check_failed = stats.check_report.fails("warning")
    print(f"{out}: {stats.output_items} items")
    if stats.warnings:
        print(f"{stats.warnings} warning(s)")
    if stats.errors:
        print(f"{stats.errors} recovered error(s) recorded as ferr items")
    for f_ in stats.failures:
        for line in f_.diagnostics:
            print(line, file=sys.stderr)
        print(
            f"pdbbuild: error: {f_.source}: [{f_.phase}] {f_.error}", file=sys.stderr
        )
    if stats.failures:
        n = len(stats.failures)
        print(
            f"pdbbuild: {n} of {len(args.source)} TU(s) failed; "
            f"merged the remaining {len(stats.tus)}",
            file=sys.stderr,
        )
        return 1
    return 1 if check_failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
