"""pdbmerge — merge PDB files from separate compilations into one,
eliminating duplicate template instantiations in the process (paper
Table 2)."""

from __future__ import annotations

import argparse
from typing import Optional

from repro.ductape.pdb import PDB, MergeStats
from repro.pdbfmt.items import Attribute, PdbDocument, RawItem


def _clone(pdb: PDB) -> PDB:
    """Deep-copy a PDB (same ids, names, attribute order — identical text)."""
    doc = PdbDocument(version=pdb.doc.version)
    for raw in pdb.doc.items:
        item = RawItem(prefix=raw.prefix, id=raw.id, name=raw.name)
        for a in raw.attributes:
            item.attributes.append(Attribute(a.key, list(a.words), a.text))
        doc.items.append(item)
    return PDB(doc)


def merge_pdbs(
    pdbs: list[PDB], odr_log: Optional[list] = None
) -> tuple[PDB, list[MergeStats]]:
    """Fold a list of PDBs left-to-right into one *fresh* merged PDB.

    The inputs are never modified — the first PDB is deep-copied before
    the others are folded in — so callers can keep reusing them (the
    pdbbuild cache hands out the same parsed per-TU PDBs repeatedly).
    Pass ``odr_log`` (a list) to collect One-Definition-Rule conflict
    details across all the folds (``--check``).
    """
    if not pdbs:
        return PDB(), []
    base = _clone(pdbs[0])
    stats: list[MergeStats] = []
    for other in pdbs[1:]:
        stats.append(base.merge(other, odr_log=odr_log))
    return base, stats


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbmerge",
        description="merge PDB files, eliminating duplicate template instantiations",
    )
    ap.add_argument("inputs", nargs="+", help="PDB files to merge")
    ap.add_argument("-o", "--output", required=True, help="merged output PDB")
    ap.add_argument(
        "--check",
        action="store_true",
        help="report cross-TU One-Definition-Rule conflicts found while merging",
    )
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)
    pdbs = [PDB.read(p) for p in args.inputs]
    odr_log: Optional[list] = [] if args.check else None
    merged, stats = merge_pdbs(pdbs, odr_log=odr_log)
    merged.write(args.output)
    if args.verbose:
        for path, st in zip(args.inputs[1:], stats):
            print(
                f"{path}: {st.items_in} items in, {st.items_added} added, "
                f"{st.duplicates_eliminated} duplicates eliminated "
                f"({st.duplicate_instantiations} template instantiations)"
            )
    if args.check:
        total = sum(st.odr_conflicts for st in stats)
        print(f"ODR conflicts: {total}")
        for c in odr_log or []:
            print(
                f"  {c['kind']} '{c['name']}': defined at {c['existing']} "
                f"and {c['incoming']}"
            )
    print(f"{args.output}: {len(merged.items())} items")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
