"""pdbmerge — merge PDB files from separate compilations into one,
eliminating duplicate template instantiations in the process (paper
Table 2).

Two merge strategies produce byte-identical output:

* :func:`merge_pdbs` — the reference serial left fold, with per-fold
  :class:`MergeStats` and optional ODR conflict logging;
* :func:`merge_pdbs_tree` / :func:`merge_pdb_texts_tree` — a pairwise
  reduction tree.  Deduplication keys, insertion order, and per-prefix
  id counters all compose under pairwise reduction exactly as under the
  left fold, so the merged document is identical; the aggregate
  MergeStats the serial fold would have produced are recovered
  analytically from the base document, the final document, and the
  per-input item counts (per-fold attribution does not survive a tree,
  so ``odr_log`` is a serial-only feature).
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.ductape.pdb import PDB, MergeStats, _odr_key
from repro.pdbfmt.items import PdbDocument, RawItem
from repro.pdbfmt.reader import parse_pdb


def _clone(pdb: PDB) -> PDB:
    """Deep-copy a PDB (same ids, names, attribute order — identical text)."""
    doc = PdbDocument(version=pdb.doc.version)
    for raw in pdb.doc.items:
        item = RawItem(prefix=raw.prefix, id=raw.id, name=raw.name)
        for a in raw.attributes:
            item.attributes.append(a.clone())
        doc.items.append(item)
    return PDB(doc)


def merge_pdbs(
    pdbs: list[PDB], odr_log: Optional[list] = None
) -> tuple[PDB, list[MergeStats]]:
    """Fold a list of PDBs left-to-right into one *fresh* merged PDB.

    The inputs are never modified — the first PDB is deep-copied before
    the others are folded in — so callers can keep reusing them (the
    pdbbuild cache hands out the same parsed per-TU PDBs repeatedly).
    Pass ``odr_log`` (a list) to collect One-Definition-Rule conflict
    details across all the folds (``--check``).
    """
    if not pdbs:
        return PDB(), []
    base = _clone(pdbs[0])
    stats: list[MergeStats] = []
    for other in pdbs[1:]:
        stats.append(base.merge(other, odr_log=odr_log))
    return base, stats


# -- tree reduction ----------------------------------------------------------


def _templ_count(doc: PdbDocument) -> int:
    """Items that are template instantiations (``ctempl``/``rtempl``)."""
    n = 0
    for raw in doc.items:
        if raw.prefix == "cl":
            if raw.get("ctempl") is not None:
                n += 1
        elif raw.prefix == "ro":
            if raw.get("rtempl") is not None:
                n += 1
    return n


def _odr_multiset(doc: PdbDocument) -> dict:
    """ODR key -> number of definition items carrying it."""
    index = doc.index()
    counts: dict = {}
    for raw in doc.items:
        key = _odr_key(index, raw)
        if key is not None:
            counts[key] = counts.get(key, 0) + 1
    return counts


def _fold_equivalent_stats(
    base_doc: PdbDocument, final_doc: PdbDocument, items_in: int, templ_in: int
) -> MergeStats:
    """The aggregate MergeStats the serial left fold would have summed.

    Every incoming item is either added (present in the final document)
    or eliminated, so the aggregates follow from endpoint counts:

    * ``items_added``    = final items − base items
    * ``duplicates_eliminated`` = incoming − added, and likewise for
      ``duplicate_instantiations`` restricted to ``ctempl``/``rtempl``
      carriers (clones preserve attributes, so the counts line up);
    * ``odr_conflicts``: for an ODR key with ``b`` definitions in the
      base and ``m`` in the final document, the fold counted every
      added definition beyond the first known one: ``m − max(b, 1)``.
    """
    base_items = len(base_doc.items)
    final_items = len(final_doc.items)
    added = final_items - base_items
    templ_added = _templ_count(final_doc) - _templ_count(base_doc)
    base_odr = _odr_multiset(base_doc)
    odr_conflicts = 0
    for key, m in _odr_multiset(final_doc).items():
        known = base_odr.get(key, 0)
        if known < 1:
            known = 1
        if m > known:
            odr_conflicts += m - known
    return MergeStats(
        items_in=items_in,
        items_added=added,
        duplicates_eliminated=items_in - added,
        duplicate_instantiations=templ_in - templ_added,
        odr_conflicts=odr_conflicts,
    )


#: below this many inputs the reduction keeps the fold shape — a
#: pairwise tree repeats key computation and item cloning on its
#: intermediate documents, which only pays for itself once the fold's
#: quadratic accumulator re-scans dominate (measured crossover ~8 TUs)
TREE_MIN_FANIN = 8


def merge_pdbs_tree(
    pdbs: list[PDB], min_fanin: int = TREE_MIN_FANIN
) -> tuple[PDB, MergeStats, int]:
    """Merge by pairwise reduction, in-process.

    Returns ``(merged, stats, depth)`` where ``merged`` is byte-identical
    to ``merge_pdbs(pdbs)[0]``, ``stats`` is the serial-equivalent
    aggregate, and ``depth`` is the number of reduction rounds.  The
    inputs are never modified, but the result may alias items of
    ``pdbs[0]`` — treat the inputs as frozen afterwards.  O(N log N)
    pair merges replace the fold's O(N²) re-scans of the growing
    accumulator; merging is order-sensitive (ids are assigned in
    insertion order) but associative, so any contiguous grouping gives
    the same bytes.  Below ``min_fanin`` inputs the grouping
    degenerates to the fold itself, where the tree's re-processing of
    intermediates would cost more than it saves (pass ``min_fanin=2``
    to force the pairwise shape, e.g. for equivalence tests).
    """
    if not pdbs:
        return PDB(), MergeStats(), 0
    if len(pdbs) == 1:
        return _clone(pdbs[0]), MergeStats(), 0
    if len(pdbs) < min_fanin:
        merged, per_fold = merge_pdbs(pdbs)
        stats = MergeStats()
        for st in per_fold:
            stats.items_in += st.items_in
            stats.items_added += st.items_added
            stats.duplicates_eliminated += st.duplicates_eliminated
            stats.duplicate_instantiations += st.duplicate_instantiations
            stats.odr_conflicts += st.odr_conflicts
        return merged, stats, len(pdbs) - 1
    items_in = sum(len(p.doc.items) for p in pdbs[1:])
    templ_in = sum(_templ_count(p.doc) for p in pdbs[1:])
    level = list(pdbs)
    owned = [False] * len(level)  # True once an element is our private clone
    depth = 0
    while len(level) > 1:
        next_level = []
        next_owned = []
        for i in range(0, len(level) - 1, 2):
            if owned[i]:
                left = level[i]
            else:
                # merge only ever *appends* to the base document — existing
                # items are never mutated — so guarding an input needs just
                # a fresh items list, not the deep copy the serial fold
                # makes (the result therefore aliases items of pdbs[0];
                # inputs must be treated as frozen afterwards)
                src = level[i].doc
                left = PDB(PdbDocument(version=src.version, items=list(src.items)))
            left.merge(level[i + 1])
            next_level.append(left)
            next_owned.append(True)
        if len(level) % 2:
            next_level.append(level[-1])
            next_owned.append(owned[-1])
        level, owned = next_level, next_owned
        depth += 1
    merged = level[0]
    stats = _fold_equivalent_stats(pdbs[0].doc, merged.doc, items_in, templ_in)
    return merged, stats, depth


def _pair_merge_text(left_text: str, right_text: str) -> str:
    """Process-pool task: merge two PDB texts into one."""
    left = PDB.from_text(left_text)
    left.merge(PDB.from_text(right_text))
    return left.to_text()


def merge_pdb_texts_tree(
    texts: list[str], pool=None, min_fanin: int = TREE_MIN_FANIN
) -> tuple[PDB, MergeStats, int]:
    """Tree merge over PDB *texts*, optionally on a process pool.

    With a pool, each reduction round ships its pairs to workers (parse,
    merge, re-render per pair); that round trip re-parses every
    intermediate document, so it only pays when pair-merge cost
    dominates parse+render — for typical PDB sizes the in-process
    reduction is faster, which is why ``pdbbuild`` passes ``pool=None``
    and the pooled path is opt-in.  Without a pool this parses every
    text once and reduces in-process."""
    if pool is None or len(texts) < max(4, min_fanin):
        return merge_pdbs_tree([PDB.from_text(t) for t in texts], min_fanin=min_fanin)
    base_doc = parse_pdb(texts[0])
    items_in = 0
    templ_in = 0
    for t in texts[1:]:
        doc = parse_pdb(t)
        items_in += len(doc.items)
        templ_in += _templ_count(doc)
    level = list(texts)
    depth = 0
    while len(level) > 1:
        lefts = level[0:-1:2]
        rights = level[1::2]
        next_level = list(pool.map(_pair_merge_text, lefts, rights))
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        depth += 1
    merged = PDB.from_text(level[0])
    stats = _fold_equivalent_stats(base_doc, merged.doc, items_in, templ_in)
    return merged, stats, depth


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbmerge",
        description="merge PDB files, eliminating duplicate template instantiations",
    )
    ap.add_argument("inputs", nargs="+", help="PDB files to merge")
    ap.add_argument("-o", "--output", required=True, help="merged output PDB")
    ap.add_argument(
        "--check",
        action="store_true",
        help="report cross-TU One-Definition-Rule conflicts found while merging",
    )
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)
    pdbs = [PDB.read(p) for p in args.inputs]
    odr_log: Optional[list] = [] if args.check else None
    merged, stats = merge_pdbs(pdbs, odr_log=odr_log)
    merged.write(args.output)
    if args.verbose:
        for path, st in zip(args.inputs[1:], stats):
            print(
                f"{path}: {st.items_in} items in, {st.items_added} added, "
                f"{st.duplicates_eliminated} duplicates eliminated "
                f"({st.duplicate_instantiations} template instantiations)"
            )
    if args.check:
        total = sum(st.odr_conflicts for st in stats)
        print(f"ODR conflicts: {total}")
        for c in odr_log or []:
            print(
                f"  {c['kind']} '{c['name']}': defined at {c['existing']} "
                f"and {c['incoming']}"
            )
    print(f"{args.output}: {len(merged.items())} items")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
