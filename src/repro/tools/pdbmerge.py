"""pdbmerge — merge PDB files from separate compilations into one,
eliminating duplicate template instantiations in the process (paper
Table 2)."""

from __future__ import annotations

import argparse
from typing import Optional

from repro.ductape.pdb import PDB, MergeStats


def merge_pdbs(pdbs: list[PDB]) -> tuple[PDB, list[MergeStats]]:
    """Fold a list of PDBs left-to-right into one merged PDB."""
    if not pdbs:
        return PDB(), []
    base = pdbs[0]
    stats: list[MergeStats] = []
    for other in pdbs[1:]:
        stats.append(base.merge(other))
    return base, stats


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbmerge",
        description="merge PDB files, eliminating duplicate template instantiations",
    )
    ap.add_argument("inputs", nargs="+", help="PDB files to merge")
    ap.add_argument("-o", "--output", required=True, help="merged output PDB")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)
    pdbs = [PDB.read(p) for p in args.inputs]
    merged, stats = merge_pdbs(pdbs)
    merged.write(args.output)
    if args.verbose:
        for path, st in zip(args.inputs[1:], stats):
            print(
                f"{path}: {st.items_in} items in, {st.items_added} added, "
                f"{st.duplicates_eliminated} duplicates eliminated "
                f"({st.duplicate_instantiations} template instantiations)"
            )
    print(f"{args.output}: {len(merged.items())} items")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
