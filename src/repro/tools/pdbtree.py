"""pdbtree — display file inclusion, class hierarchy, and call graph
trees (paper Table 2).

:func:`print_func_tree` is a faithful port of the ``printFuncTree``
routine the paper reproduces in Figure 5, including its quirks: the
``level != 0 || rr->callees().size()`` leaf filter at the root level, the
``(VIRTUAL)`` tag on virtual call sites, and the `` ... `` marker where
the ACTIVE flag cuts recursion on cycles.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.ductape.items import ACTIVE, INACTIVE, PdbRoutine
from repro.ductape.pdb import PDB


def print_func_tree(r: PdbRoutine, level: int, out: list[str]) -> None:
    """Port of paper Figure 5's printFuncTree (output into ``out``)."""
    r.flag(ACTIVE)
    c = r.callees()
    for it in c:  # (1) iterate over functions called by the current one
        rr = it.call()
        if rr is None:
            continue
        if level != 0 or len(rr.callees()) > 0:
            line = " " * max(0, (level - 1) * 5)
            if level:
                line += "`--> "
            line += rr.fullName()  # (2) report the callee
            if it.isVirtual():
                line += " (VIRTUAL)"
            if rr.flag() == ACTIVE:
                out.append(line + " ... ")
            else:
                out.append(line)
                print_func_tree(rr, level + 1, out)  # (3) recurse
    r.flag(INACTIVE)


def render_call_tree(pdb: PDB, root_name: Optional[str] = None) -> str:
    """Call graph rendering: one Figure 5-style tree per root."""
    tree = pdb.getCallTree()
    for r in pdb.getRoutineVec():
        r.flag(INACTIVE)
    roots = tree.roots
    if root_name is not None:
        root = tree.root_named(root_name) or pdb.findRoutine(root_name)
        roots = [root] if root is not None else []
    lines: list[str] = []
    for root in roots:
        if not root.callees():
            continue
        lines.append(root.fullName())
        print_func_tree(root, 1, lines)
        lines.append("")
    return "\n".join(lines).rstrip()


def render_inclusion_tree(pdb: PDB) -> str:
    """Source file inclusion forest."""
    return pdb.getInclusionTree().render()


def render_class_tree(pdb: PDB) -> str:
    """Class hierarchy forest."""
    return pdb.getClassHierarchy().render()


def render_diagnostics(pdb: PDB) -> str:
    """Frontend error records (``ferr``), grouped by translation unit.

    Non-empty only for PDBs produced by fault-tolerant builds where a TU
    compiled with recovered errors."""
    by_tu: dict[str, list[str]] = {}
    for e in pdb.getErrorVec():
        by_tu.setdefault(e.name(), []).append(e.render())
    lines: list[str] = []
    for tu, rendered in by_tu.items():
        lines.append(f"{tu}: {len(rendered)} error(s)")
        for r in rendered:
            lines.append(f"    {r}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="pdbtree",
        description="display file inclusion, class hierarchy, and call graph trees",
    )
    ap.add_argument("pdb", help="input PDB file")
    ap.add_argument(
        "-t",
        "--tree",
        choices=["calls", "classes", "includes", "errors", "all"],
        default="all",
        help="which tree to display",
    )
    ap.add_argument("-r", "--root", help="call-tree root routine (default: all roots)")
    args = ap.parse_args(argv)
    pdb = PDB.read(args.pdb)
    sections: list[tuple[str, str]] = []
    if args.tree in ("includes", "all"):
        sections.append(("FILE INCLUSION TREE", render_inclusion_tree(pdb)))
    if args.tree in ("classes", "all"):
        sections.append(("CLASS HIERARCHY", render_class_tree(pdb)))
    if args.tree in ("calls", "all"):
        sections.append(("STATIC CALL GRAPH", render_call_tree(pdb, args.root)))
    if args.tree == "errors" or (args.tree == "all" and pdb.getErrorVec()):
        sections.append(("DIAGNOSTICS", render_diagnostics(pdb)))
    for title, body in sections:
        print(title)
        print("=" * len(title))
        print(body)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
