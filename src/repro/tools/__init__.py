"""PDT static analysis utilities (paper Table 2).

========  ====================================================================
pdbconv   converts files in the compact PDB format into a more readable
          format (and validates them)
pdbhtml   automatically creates web-based documentation that enables
          navigation of code via HTML links
pdbmerge  merges PDB files from separate compilations into one PDB file,
          eliminating duplicate template instantiations in the process
pdbtree   displays file inclusion, class hierarchy, and call graph trees
========  ====================================================================

Plus ``cxxparse``, the front-end driver (source files -> PDB), which in
the real PDT distribution is the EDG front end + IL Analyzer pipeline.
Each module exposes both a library function and a CLI ``main()``.
"""

from repro.tools.pdbconv import convert_pdb
from repro.tools.pdbhtml import generate_html
from repro.tools.pdbmerge import merge_pdbs
from repro.tools.pdbtree import (
    print_func_tree,
    render_call_tree,
    render_class_tree,
    render_inclusion_tree,
)

__all__ = [
    "convert_pdb",
    "generate_html",
    "merge_pdbs",
    "print_func_tree",
    "render_call_tree",
    "render_class_tree",
    "render_inclusion_tree",
]
