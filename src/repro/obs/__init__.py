"""repro.obs — toolchain self-observability: phase-scoped wall timers.

The repro's dynamic-analysis half is a real TAU measurement runtime
(:mod:`repro.tau.runtime`) driven, for paper experiments, by a virtual
clock.  This module *dogfoods* that runtime with a wall-clock source to
observe the toolchain itself: the frontend's phases (preprocess, lex,
parse, instantiate), the IL Analyzer passes, the PDB writer and merge,
and ``pdbbuild``'s workers all report into phase-scoped timers.

Two products come out of one set of measurements:

* **Chrome trace** (``chrome://tracing`` / Perfetto event format):
  every phase is a complete ``"ph": "X"`` span with microsecond ``ts``
  and ``dur``, grouped by process (``pid``) and thread (``tid``);
  counters (cache hits/misses/evictions) are ``"ph": "C"`` events.
* **TAU profile**: :func:`replay_spans` reconstructs the nesting and
  drives a real :class:`~repro.tau.runtime.Profiler`, so the paper's
  own display code (``pprof`` tables, ``profile.n.c.t`` files) renders
  the toolchain's hot phases — one worker process per TAU "node".

Layering: this module depends only on the standard library and
``repro.tau.runtime``.  It must never import the tools it observes
(``repro.tools.pdbbuild``, the frontend) — they import *it*.

Usage::

    obs.enable()
    with obs.observe("frontend.parse", cat="frontend"):
        ...
    observer = obs.disable()
    write_chrome_trace("trace.json", observer.spans, observer.counters)

Instrumented code calls :func:`observe` unconditionally; when no
observer is installed it is a no-op costing one global read, which is
what keeps observability overhead within the E17 budget.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.tau.runtime import Profiler, ThreadProfile

__all__ = [
    "Span",
    "Counter",
    "Observer",
    "enable",
    "disable",
    "get_observer",
    "is_enabled",
    "observe",
    "timed",
    "counter",
    "chrome_trace_events",
    "write_chrome_trace",
    "replay_spans",
    "phase_aggregates",
]


@dataclass
class Span:
    """One completed phase: a Chrome-trace ``"X"`` (complete) event.

    ``ts`` is microseconds since the Unix epoch (wall clock), so spans
    from different processes merge on one timeline; ``dur`` is
    microseconds.  Plain data — it survives the worker-process pickle
    round trip unchanged."""

    name: str
    cat: str
    ts: float
    dur: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur


@dataclass
class Counter:
    """One Chrome-trace ``"C"`` counter sample (name -> series values)."""

    name: str
    ts: float
    pid: int
    values: dict = field(default_factory=dict)


class Observer:
    """Collects phase spans and drives a TAU profiler with wall time.

    The TAU runtime measures whatever clock it is fed; here the feed is
    ``clock()`` (default :func:`time.perf_counter`) synchronised before
    every start/stop, so inclusive/exclusive accounting — the part the
    paper's runtime already does — works unchanged on wall time.

    ``epoch`` anchors span timestamps to an absolute timeline
    (defaults to :func:`time.time` at construction); tests pass a fake
    clock and ``epoch=0`` for determinism.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        epoch: Optional[float] = None,
    ):
        self._clock = clock
        self._t0 = clock()
        self.epoch = time.time() if epoch is None else epoch
        self.profiler = Profiler()
        self.spans: list[Span] = []
        self.counters: list[Counter] = []
        self.pid = os.getpid()

    # -- clock -----------------------------------------------------------

    def _elapsed(self) -> float:
        """Seconds since this observer was created."""
        return self._clock() - self._t0

    def _prof(self) -> ThreadProfile:
        return self.profiler.profile(node=0)

    def _sync(self) -> ThreadProfile:
        """Advance the TAU profile's clock to wall-now."""
        prof = self._prof()
        t = self._elapsed()
        if t > prof.now:
            prof.advance(t - prof.now)
        return prof

    # -- phases ----------------------------------------------------------

    @contextmanager
    def phase(self, name: str, cat: str = "toolchain", **args):
        """Phase-scoped timer: a TAU timer start/stop pair plus one
        Chrome-trace complete span."""
        prof = self._sync()
        t_start = prof.now
        prof.start(name, cat)
        try:
            yield self
        finally:
            prof = self._sync()
            prof.stop(name)
            self.spans.append(
                Span(
                    name=name,
                    cat=cat,
                    ts=(self.epoch + t_start) * 1e6,
                    dur=(prof.now - t_start) * 1e6,
                    pid=self.pid,
                    tid=threading.get_native_id(),
                    args=dict(args),
                )
            )

    def timed(self, name: Optional[str] = None, cat: str = "toolchain"):
        """Decorator form of :meth:`phase`."""

        def deco(fn):
            phase_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*a, **kw):
                with self.phase(phase_name, cat):
                    return fn(*a, **kw)

            return wrapper

        return deco

    def counter(self, name: str, **values: float) -> None:
        """Record one counter sample (cache hits/misses, evictions…)."""
        self.counters.append(
            Counter(
                name=name,
                ts=(self.epoch + self._elapsed()) * 1e6,
                pid=self.pid,
                values=dict(values),
            )
        )

    # -- results ---------------------------------------------------------

    def adopt(self, spans: Iterable[Span]) -> None:
        """Merge spans collected elsewhere (worker processes)."""
        self.spans.extend(spans)


# ---------------------------------------------------------------- gating

#: installed observers; a stack so nested enables (an in-process
#: pdbbuild worker inside an observed driver) restore cleanly
_observers: list[Observer] = []


def enable(observer: Optional[Observer] = None) -> Observer:
    """Install (push) an observer; returns it."""
    obs = observer or Observer()
    _observers.append(obs)
    return obs


def disable() -> Optional[Observer]:
    """Uninstall (pop) the current observer; returns it."""
    return _observers.pop() if _observers else None


def get_observer() -> Optional[Observer]:
    """The currently installed observer, or None when disabled."""
    return _observers[-1] if _observers else None


def is_enabled() -> bool:
    """Whether an observer is installed (observability on)."""
    return bool(_observers)


@contextmanager
def observe(name: str, cat: str = "toolchain", **args):
    """Module-level phase scope: no-op when no observer is installed.

    This is what instrumented toolchain code calls; the disabled path is
    one list read, so instrumentation can stay in place unconditionally.
    """
    if not _observers:
        yield None
        return
    with _observers[-1].phase(name, cat, **args) as obs:
        yield obs


def timed(name: Optional[str] = None, cat: str = "toolchain"):
    """Module-level decorator: times through whatever observer is
    installed at call time (no-op when disabled)."""

    def deco(fn):
        phase_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*a, **kw):
            if not _observers:
                return fn(*a, **kw)
            with _observers[-1].phase(phase_name, cat):
                return fn(*a, **kw)

        return wrapper

    return deco


def counter(name: str, **values: float) -> None:
    """Module-level counter sample (no-op when disabled)."""
    if _observers:
        _observers[-1].counter(name, **values)


# ----------------------------------------------------- Chrome trace export

def chrome_trace_events(
    spans: Iterable[Span],
    counters: Iterable[Counter] = (),
    process_names: Optional[dict[int, str]] = None,
) -> list[dict]:
    """Render spans/counters as Chrome trace events.

    Timestamps are rebased to the earliest event so traces start near
    zero; events come out sorted by ``ts`` (Perfetto does not require
    it, but sorted output diffs and tests cleanly).  ``process_names``
    adds ``process_name`` metadata records per pid.
    """
    spans = list(spans)
    counters = list(counters)
    base = min(
        [s.ts for s in spans] + [c.ts for c in counters], default=0.0
    )
    events: list[dict] = []
    for pid, label in sorted((process_names or {}).items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    body: list[dict] = []
    for s in spans:
        body.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": s.ts - base,
                "dur": s.dur,
                "pid": s.pid,
                "tid": s.tid,
                "args": s.args,
            }
        )
    for c in counters:
        body.append(
            {
                "name": c.name,
                "ph": "C",
                "ts": c.ts - base,
                "pid": c.pid,
                "tid": 0,
                "args": dict(c.values),
            }
        )
    body.sort(key=lambda e: (e["ts"], e["pid"], e.get("dur", 0.0)))
    return events + body


def write_chrome_trace(
    path: str,
    spans: Iterable[Span],
    counters: Iterable[Counter] = (),
    process_names: Optional[dict[int, str]] = None,
) -> None:
    """Write a ``chrome://tracing`` / Perfetto JSON object trace."""
    doc = {
        "traceEvents": chrome_trace_events(spans, counters, process_names),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)


# ------------------------------------------------------ TAU profile replay

def replay_spans(spans: Iterable[Span]) -> Profiler:
    """Reconstruct a TAU profiler from completed spans.

    Each distinct ``pid`` becomes one TAU node (sorted pid order), each
    ``tid`` within it one thread; within a thread the spans' containment
    nesting is replayed through the real runtime's start/advance/stop,
    so inclusive/exclusive accounting is the runtime's own.  The
    profiler's clock unit is **microseconds** — what the pprof-style
    displays and ``profile.n.c.t`` files assume — so the paper's own
    display code renders the toolchain's real times.

    Spans produced by :meth:`Observer.phase` context managers always
    nest properly per thread; a span that merely overlaps (clock skew
    across processes cannot produce this within one thread) would be
    treated as nested under the span it starts inside.
    """
    profiler = Profiler()
    by_thread: dict[tuple[int, int], list[Span]] = {}
    for s in spans:
        by_thread.setdefault((s.pid, s.tid), []).append(s)
    pids = sorted({pid for pid, _ in by_thread})
    node_of = {pid: i for i, pid in enumerate(pids)}
    for pid in pids:
        tids = sorted(t for p, t in by_thread if p == pid)
        tid_of = {tid: i for i, tid in enumerate(tids)}
        for tid in tids:
            prof = profiler.profile(node=node_of[pid], thread=tid_of[tid])
            _replay_thread(prof, by_thread[(pid, tid)])
    return profiler


def _replay_thread(prof: ThreadProfile, spans: list[Span]) -> None:
    """Drive one ThreadProfile from one thread's spans."""

    def advance_to(ts_us: float) -> None:
        if ts_us > prof.now:
            prof.advance(ts_us - prof.now)

    # parents first: earlier start, then longer duration on ties
    ordered = sorted(spans, key=lambda s: (s.ts, -s.dur))
    base = ordered[0].ts if ordered else 0.0
    stack: list[Span] = []
    for s in ordered:
        while stack and stack[-1].end <= s.ts:
            top = stack.pop()
            advance_to(top.end - base)
            prof.stop(top.name)
        advance_to(s.ts - base)
        prof.start(s.name, s.cat)
        stack.append(s)
    while stack:
        top = stack.pop()
        advance_to(top.end - base)
        prof.stop(top.name)


def phase_aggregates(spans: Iterable[Span]) -> dict[str, dict[str, float]]:
    """Per-phase wall-time totals for the ``--stats-json`` report:
    ``{name: {"count": n, "wall_s": seconds}}``, sorted by name."""
    agg: dict[str, dict[str, float]] = {}
    for s in spans:
        row = agg.setdefault(s.name, {"count": 0, "wall_s": 0.0})
        row["count"] += 1
        row["wall_s"] += s.dur / 1e6
    return {name: agg[name] for name in sorted(agg)}
