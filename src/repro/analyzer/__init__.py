"""The IL Analyzer (paper Section 3.1).

Walks the front end's IL tree and emits a PDB document: "it traverses
the IL tree, reporting information on designated, high-level constructs
as they are encountered.  Separate traversals for source files, routines,
types, classes, namespaces, templates, and macros allow selection of the
constructs to be reported."

The template-provenance attributes (``rtempl``/``ctempl``) are computed
by *location matching* (:mod:`repro.analyzer.templatematch`), not by
reading the front end's ground-truth links — reproducing the paper's
mechanism and its documented limitation for specializations.
"""

from repro.analyzer.ilanalyzer import ILAnalyzer, analyze

__all__ = ["ILAnalyzer", "analyze"]
