"""Routine traversal: ``ro`` items.

Per paper Table 1: the template from which the routine was instantiated
(``rtempl``, via location matching), parent class or namespace, access
mode, signature, functions called (``rcall`` with virtual flag and call
location), and characteristics specifying linkage, storage class, and
virtuality."""

from __future__ import annotations



def emit_routines(an) -> None:
    for r in an.tree.all_routines:
        if not an.visible(r):
            continue
        item = an.routine_item(r)
        item.add("rloc", *an.location_words(r.location))
        an.parent_attrs(item, r, "rclass", "rnspace")
        item.add("racs", r.access.value)
        item.add("rsig", an.type_ref(r.signature))
        item.add("rkind", r.kind.value)
        item.add("rlink", r.linkage)
        item.add("rstore", r.storage)
        item.add("rvirt", r.virtuality.value)
        if r.is_inline:
            item.add("rinline", "yes")
        if r.is_static_member:
            item.add("rstatic", "yes")
        if r.is_specialization:
            item.add("rspecl", "yes")
        if r.is_instantiation:
            te = an.template_index.match(r.location)
            if te is not None:
                item.add("rtempl", an.template_item(te).ref)
        for p in r.parameters:
            item.add(
                "rarg",
                an.type_ref(p.type),
                p.name or "_",
                "D" if p.default_text is not None else "-",
            )
        # Fortran 90 extension (paper Section 6): generic-interface
        # aliases, and the exit points TAU's instrumentation needs
        for alias in r.flags.get("aliases", []):  # type: ignore[union-attr]
            item.add("ralias", alias)
        for exit_loc in r.flags.get("exits", []):  # type: ignore[union-attr]
            item.add("rexit", *an.location_words(exit_loc))
        first_exec = r.flags.get("first_exec")
        if first_exec is not None:
            item.add("rfexec", *an.location_words(first_exec))
        for call in r.calls:
            callee = call.callee
            if not an.visible(callee):
                continue
            item.add(
                "rcall",
                an.routine_item(callee).ref,
                "virt" if call.is_virtual else "no",
                *an.location_words(call.location),
            )
        item.add("rpos", *an.pos_words(r.position))
