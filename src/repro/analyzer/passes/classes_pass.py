"""Class traversal: ``cl`` items.

Per paper Table 1, a class reports: the template from which it was
instantiated (``ctempl``, via location matching), parent scope, access
mode, direct base classes, friend classes and functions, member
functions (``cfunc`` with each function's location), and information on
other members — access, kind, and type (``cmem`` groups, cf. the
``theArray``/``topOfStack`` rows in paper Figure 3)."""

from __future__ import annotations

from repro.cpp.il import Access, TemplateKind


def emit_classes(an) -> None:
    for c in an.tree.all_classes:
        if not an.visible(c):
            continue
        item = an.class_item(c)
        item.add("cloc", *an.location_words(c.location))
        item.add("ckind", c.kind.value)
        if c.is_instantiation:
            te = an.template_index.match(c.location)
            if te is not None and te.kind in (TemplateKind.CLASS, TemplateKind.MEMBER_CLASS):
                item.add("ctempl", an.template_item(te).ref)
        if c.is_specialization:
            item.add("cspecl", "yes")
        an.parent_attrs(item, c, "cclass", "cnspace")
        if c.access is not Access.NA:
            item.add("cacs", c.access.value)
        for base, access, virtual in c.bases:
            item.add(
                "cbase", access.value, "virt" if virtual else "no", an.class_item(base).ref
            )
        for fc in c.friend_classes:
            item.add("cfriend", an.class_item(fc).ref)
        for fr in c.friend_routines:
            item.add("cfrfunc", an.routine_item(fr).ref)
        for r in c.routines:
            if an.visible(r):
                item.add("cfunc", an.routine_item(r).ref, *an.location_words(r.location))
        for f in c.fields:
            item.add_text("cmem", f.name)
            item.add("cmloc", *an.location_words(f.location))
            item.add("cmacs", f.access.value)
            kind = "mut" if f.is_mutable else f.member_kind
            item.add("cmkind", kind)
            item.add("cmtype", an.type_ref(f.type))
        item.add("cpos", *an.pos_words(c.position))
