"""IL Analyzer traversal passes — one module per construct kind."""

from repro.analyzer.passes.classes_pass import emit_classes
from repro.analyzer.passes.files_pass import emit_files
from repro.analyzer.passes.macros_pass import emit_macros
from repro.analyzer.passes.namespaces_pass import emit_namespaces
from repro.analyzer.passes.routines_pass import emit_routines
from repro.analyzer.passes.types_pass import emit_types

__all__ = [
    "emit_classes",
    "emit_files",
    "emit_macros",
    "emit_namespaces",
    "emit_routines",
    "emit_types",
]
