"""Macro traversal: ``ma`` items (kind, text, location — paper Table 1)."""

from __future__ import annotations


def emit_macros(an) -> None:
    for rec in an.tree.macros:
        if rec.location.file.name.startswith("<"):
            continue  # predefined macros are not user constructs
        item = an._new_item("ma", rec.name)
        item.add("makind", rec.kind)
        item.add("maloc", *an.location_words(rec.location))
        item.add_text("matext", rec.text)
