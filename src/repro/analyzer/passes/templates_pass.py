"""Template traversal: ``te`` items.

Each template reports its name location, parent scope, access, kind
(class / func / memfunc / statmem / memclass — the constants the TAU
instrumentor dispatches on, paper Figure 6), the template's source text
(``ttext``), and its header/body extents (``tpos``) — the extents the
location matcher scans."""

from __future__ import annotations

from repro.cpp.il import Access


def emit_templates(an) -> None:
    for te in an.tree.all_templates:
        item = an.template_item(te)
        item.add("tloc", *an.location_words(te.location))
        an.parent_attrs(item, te, "tclass", "tnspace")
        if te.owner_class_template is not None:
            # out-of-line member templates report their class template
            item.add("tclass", an.template_item(te.owner_class_template).ref)
        if te.access is not Access.NA:
            item.add("tacs", te.access.value)
        item.add("tkind", te.kind.value)
        if te.text:
            item.add_text("ttext", te.text)
        item.add("tpos", *an.pos_words(te.position))
