"""Type traversal: ``ty`` items.

Most ``ty`` items are created on demand when another item references a
type (signatures, member types); this pass additionally walks the IL's
named types — enums and typedefs — so they are reported even when
nothing references them, and fills in the per-kind attributes (paper
Table 1: "various characteristics, depending on type: e.g., for function
types, return type, parameter types, presence of ellipsis, and exception
class IDs")."""

from __future__ import annotations

from repro.cpp.cpptypes import (
    ArrayType,
    BuiltinType,
    DependentNameType,
    EnumType,
    FunctionType,
    NonTypeArg,
    PointerType,
    QualifiedType,
    ReferenceType,
    TemplateIdType,
    TemplateParamType,
    TypedefType,
    UnknownType,
)
from repro.cpp.il import Access, Class, Namespace


def emit_types(an) -> None:
    for e in an.tree.all_enums:
        an.type_item(an.tree.types.enum_type(e))
    for td in an.tree.all_typedefs:
        an.type_item(an.tree.types.typedef_type(td))


def _named_type_common(an, item, decl) -> None:
    item.add("yloc", *an.location_words(decl.location))
    parent = decl.parent
    if isinstance(parent, Class):
        item.add("yclass", an.class_item(parent).ref)
    elif isinstance(parent, Namespace) and not parent.is_global:
        item.add("ynspace", an.namespace_item(parent).ref)
    if decl.access is not Access.NA:
        item.add("yacs", decl.access.value)


def populate_type_item(an, item, t) -> None:
    """Fill the attributes of a freshly created ``ty`` item."""
    if isinstance(t, BuiltinType):
        item.add("ykind", t.ykind)
        if t.yikind:
            item.add("yikind", t.yikind)
        return
    if isinstance(t, PointerType):
        item.add("ykind", "ptr")
        item.add("yptr", an.type_ref(t.pointee))
        return
    if isinstance(t, ReferenceType):
        item.add("ykind", "ref")
        item.add("yref", an.type_ref(t.referenced))
        return
    if isinstance(t, QualifiedType):
        item.add("ykind", "tref")
        item.add("ytref", an.type_ref(t.base))
        quals = [q for q, on in (("const", t.const), ("volatile", t.volatile)) if on]
        if quals:
            item.add("yqual", *quals)
        return
    if isinstance(t, ArrayType):
        item.add("ykind", "array")
        item.add("yelem", an.type_ref(t.element))
        if t.size is not None:
            item.add("ysize", t.size)
        return
    if isinstance(t, FunctionType):
        item.add("ykind", "func")
        item.add("yrett", an.type_ref(t.return_type))
        for i, p in enumerate(t.parameters):
            words = [an.type_ref(p)]
            if i == len(t.parameters) - 1 and not t.ellipsis:
                words.append("F")  # final-argument marker (paper Figure 3)
            item.add("yargt", *words)
        if t.ellipsis:
            item.add("yellip", "yes")
        if t.const:
            item.add("yqual", "const")
        for exc in t.exceptions:
            item.add("yexcep", an.type_ref(exc))
        return
    if isinstance(t, EnumType):
        item.add("ykind", "enum")
        _named_type_common(an, item, t.decl)
        for name, value in t.decl.enumerators:
            item.add("yename", name, value)
        return
    if isinstance(t, TypedefType):
        item.add("ykind", "typedef")
        _named_type_common(an, item, t.decl)
        item.add("ytref", an.type_ref(t.decl.underlying))
        return
    if isinstance(t, (TemplateParamType, DependentNameType, TemplateIdType)):
        item.add("ykind", "dependent")
        return
    if isinstance(t, NonTypeArg):
        item.add("ykind", "nontype")
        return
    if isinstance(t, UnknownType):
        item.add("ykind", "unknown")
        return
    item.add("ykind", "unknown")
